//! # profirt-bench — benchmark fixtures
//!
//! Shared inputs for the Criterion benchmarks in `benches/` (one benchmark
//! per reproduced table/figure, plus the ablations of DESIGN.md §3). The
//! fixtures pin seeds so timing comparisons across commits measure code,
//! not workload drift.

#![forbid(unsafe_code)]

use profirt_base::{Prng, TaskSet, Time};
use profirt_core::NetworkConfig;
use profirt_profibus::BusParams;
use profirt_workload::{
    generate_network, generate_task_set, DeadlinePolicy, NetGenParams, PeriodRange,
    StreamGenParams, TaskGenParams,
};

/// A pinned-seed task set with `n` tasks at utilisation `u`.
pub fn task_set(n: usize, u: f64) -> TaskSet {
    let mut rng = Prng::seed_from_u64(0xBE4C_0000 + n as u64);
    generate_task_set(
        &mut rng,
        &TaskGenParams {
            n,
            total_utilization: u,
            periods: PeriodRange::new(Time::new(100), Time::new(5_000), Time::new(10)),
            deadline: DeadlinePolicy::Implicit,
        },
    )
    .expect("task generation")
}

/// A pinned-seed constrained-deadline task set.
pub fn constrained_task_set(n: usize, u: f64) -> TaskSet {
    let mut rng = Prng::seed_from_u64(0xBE4C_1000 + n as u64);
    generate_task_set(
        &mut rng,
        &TaskGenParams {
            n,
            total_utilization: u,
            periods: PeriodRange::new(Time::new(100), Time::new(5_000), Time::new(10)),
            deadline: DeadlinePolicy::ConstrainedFraction {
                min_frac: 0.5,
                max_frac: 1.0,
            },
        },
    )
    .expect("task generation")
}

/// A pinned-seed network with `n_masters` masters × `nh` streams.
pub fn network(n_masters: usize, nh: usize, tightness: f64) -> NetworkConfig {
    let mut rng = Prng::seed_from_u64(0xBE4C_2000 + (n_masters * 37 + nh) as u64);
    generate_network(
        &mut rng,
        &BusParams::profile_500k(),
        &NetGenParams {
            n_masters,
            streams: StreamGenParams {
                nh,
                req_payload: (2, 16),
                resp_payload: (2, 32),
                periods: PeriodRange::new(Time::new(80_000), Time::new(800_000), Time::new(100)),
                deadline_frac: (tightness, tightness),
            },
            low_priority_prob: 0.4,
            low_payload: (8, 32),
            low_period: Time::new(500_000),
            ttr: Time::new(4_000),
        },
    )
    .expect("network generation")
    .config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(task_set(6, 0.7), task_set(6, 0.7));
        assert_eq!(network(3, 4, 0.8), network(3, 4, 0.8));
        assert_eq!(constrained_task_set(5, 0.8), constrained_task_set(5, 0.8));
    }

    #[test]
    fn fixture_shapes() {
        assert_eq!(task_set(6, 0.7).len(), 6);
        let net = network(3, 4, 0.8);
        assert_eq!(net.n_masters(), 3);
        assert_eq!(net.total_streams(), 12);
    }
}
