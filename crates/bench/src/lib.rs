//! # profirt-bench — benchmark fixtures
//!
//! Shared inputs for the Criterion benchmarks in `benches/` (one benchmark
//! per reproduced table/figure, plus the ablations of DESIGN.md §3). The
//! fixtures pin seeds so timing comparisons across commits measure code,
//! not workload drift.

#![forbid(unsafe_code)]

use profirt_base::{Prng, TaskSet, Time};
use profirt_core::NetworkConfig;
use profirt_profibus::BusParams;
use profirt_workload::{
    generate_network, generate_task_set, DeadlinePolicy, NetGenParams, PeriodRange,
    StreamGenParams, TaskGenParams,
};

/// A pinned-seed task set with `n` tasks at utilisation `u`.
pub fn task_set(n: usize, u: f64) -> TaskSet {
    let mut rng = Prng::seed_from_u64(0xBE4C_0000 + n as u64);
    generate_task_set(
        &mut rng,
        &TaskGenParams {
            n,
            total_utilization: u,
            periods: PeriodRange::new(Time::new(100), Time::new(5_000), Time::new(10)),
            deadline: DeadlinePolicy::Implicit,
        },
    )
    .expect("task generation")
}

/// A pinned-seed constrained-deadline task set.
pub fn constrained_task_set(n: usize, u: f64) -> TaskSet {
    let mut rng = Prng::seed_from_u64(0xBE4C_1000 + n as u64);
    generate_task_set(
        &mut rng,
        &TaskGenParams {
            n,
            total_utilization: u,
            periods: PeriodRange::new(Time::new(100), Time::new(5_000), Time::new(10)),
            deadline: DeadlinePolicy::ConstrainedFraction {
                min_frac: 0.5,
                max_frac: 1.0,
            },
        },
    )
    .expect("task generation")
}

/// A pinned-seed network with `n_masters` masters × `nh` streams.
pub fn network(n_masters: usize, nh: usize, tightness: f64) -> NetworkConfig {
    let mut rng = Prng::seed_from_u64(0xBE4C_2000 + (n_masters * 37 + nh) as u64);
    generate_network(
        &mut rng,
        &BusParams::profile_500k(),
        &NetGenParams {
            n_masters,
            streams: StreamGenParams {
                nh,
                req_payload: (2, 16),
                resp_payload: (2, 32),
                periods: PeriodRange::new(Time::new(80_000), Time::new(800_000), Time::new(100)),
                deadline_frac: (tightness, tightness),
            },
            low_priority_prob: 0.4,
            low_payload: (8, 32),
            low_period: Time::new(500_000),
            ttr: Time::new(4_000),
            criticality_mix: profirt_workload::CriticalityMix::AllHi,
        },
    )
    .expect("network generation")
    .config
}

pub mod large {
    //! Shared large-n worst-case fixtures for the analysis benchmarks.
    //!
    //! The extended `edf_demand` / `edf_np_feasibility` / `edf_rta` /
    //! `fixed_rta` benches and the `analysis_fast` fast-vs-exhaustive
    //! comparison all pull from here, so old and new benches stress the
    //! same workloads and their numbers are directly comparable.

    use profirt_base::{Task, TaskSet};

    /// The preemptive demand-test stress set: 448 tasks at `U = 0.94`
    /// whose synchronous busy period spans ~1570 light periods.
    ///
    /// 48 "light" tasks share a 1000-tick period with staggered constrained
    /// deadlines (940…987); 400 "bulk" tasks at period 2 000 000 carry
    /// `ΣC = 440 000` of cost, stretching the busy period to ~1.57M ticks —
    /// ~75 000 distinct checkpoints for the exhaustive scan, while the QPA
    /// backward scan clears the bulk-deadline band in a handful of jumps
    /// and then descends geometrically through the light band. Deadlines
    /// are staggered so no two progressions collapse into one merged
    /// point; two period classes keep the exact utilisation arithmetic
    /// within the 128-bit fraction bound.
    pub fn demand_set() -> TaskSet {
        let mut tasks = Vec::with_capacity(448);
        for i in 0..48i64 {
            tasks.push(Task::new(15, 940 + i, 1_000).unwrap());
        }
        for i in 0..400i64 {
            tasks.push(Task::new(1_100, 1_200_000 + 2_000 * i, 2_000_000).unwrap());
        }
        TaskSet::new(tasks).expect("large demand fixture")
    }

    /// The non-preemptive demand-test stress set: like [`demand_set`] but
    /// with bulk costs (110) kept *below* the earliest light deadline, so
    /// the set stays feasible under George/Zheng–Shin blocking — the
    /// worst case for eqs. (4)/(5) is the full-horizon scan, not an early
    /// violation exit. Its ~7700 checkpoints spread over ~450 distinct
    /// deadlines, which also exercises the fast front's
    /// checkpoints-vs-segments selection rule.
    pub fn np_demand_set() -> TaskSet {
        let mut tasks = Vec::with_capacity(448);
        for i in 0..48i64 {
            tasks.push(Task::new(15, 940 + i, 1_000).unwrap());
        }
        for i in 0..400i64 {
            tasks.push(Task::new(110, 120_000 + 200 * i, 200_000).unwrap());
        }
        TaskSet::new(tasks).expect("large np demand fixture")
    }

    /// The EDF-RTA stress set: 32 constrained-deadline tasks at `U = 0.9`
    /// (the deadline-busy-period enumeration is quadratic-ish in practice,
    /// so this is "large" for eqs. (6)–(10)).
    pub fn edf_rta_set() -> TaskSet {
        super::constrained_task_set(32, 0.9)
    }

    /// The fixed-priority RTA stress set: 48 implicit-deadline tasks at
    /// `U = 0.9` (the largest size whose exact utilisation arithmetic stays
    /// within the 128-bit fraction bound for this generator's period pool).
    pub fn fp_rta_set() -> TaskSet {
        super::task_set(48, 0.9)
    }

    /// A campaign-shaped sweep: many small pinned-seed task sets, the
    /// workload pattern where per-call allocation dominates the RTA cost
    /// and [`profirt_sched::AnalysisScratch`] reuse pays off.
    pub fn rta_sweep(sets: usize, n: usize, u: f64) -> Vec<TaskSet> {
        (0..sets)
            .map(|k| {
                let mut rng = profirt_base::Prng::seed_from_u64(0xBE4C_3000 + k as u64);
                profirt_workload::generate_task_set(
                    &mut rng,
                    &profirt_workload::TaskGenParams::standard(n, u),
                )
                .expect("sweep task generation")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(task_set(6, 0.7), task_set(6, 0.7));
        assert_eq!(network(3, 4, 0.8), network(3, 4, 0.8));
        assert_eq!(constrained_task_set(5, 0.8), constrained_task_set(5, 0.8));
        assert_eq!(large::demand_set(), large::demand_set());
    }

    #[test]
    fn large_fixtures_are_analyzable() {
        let demand = large::demand_set();
        assert_eq!(demand.len(), 448);
        assert!(demand.total_utilization().lt_one());
        assert!(large::np_demand_set().total_utilization().lt_one());
        assert!(large::edf_rta_set().total_utilization().lt_one());
        assert!(large::fp_rta_set().total_utilization().lt_one());
        assert_eq!(large::rta_sweep(4, 6, 0.85).len(), 4);
    }

    #[test]
    fn fixture_shapes() {
        assert_eq!(task_set(6, 0.7).len(), 6);
        let net = network(3, 4, 0.8);
        assert_eq!(net.n_masters(), 3);
        assert_eq!(net.total_streams(), 12);
    }
}
