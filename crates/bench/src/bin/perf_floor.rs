//! Advisory perf floor over the `BENCH_analysis.json` and
//! `BENCH_sim.json` baselines.
//!
//! Reads the artifact the `analysis_fast` bench writes (workspace
//! `target/BENCH_analysis.json` by default, `BENCH_ANALYSIS_JSON`
//! overrides) and warns — exit code 1 — when either batch-analysis
//! headline slips:
//!
//! * the `warm_sweep_chain64_vs_cold` speedup drops below
//!   [`WARM_SWEEP_FLOOR`] (the warm chain should stay at least 2x the
//!   per-call cold walk), or
//! * the campaign `warm_units_per_sec` regresses more than
//!   [`REGRESSION_TOLERANCE`] below [`CAMPAIGN_UNITS_PER_SEC_REFERENCE`]
//!   (a committed reference measurement; absolute throughput is
//!   machine-relative, which is one reason the CI step is advisory).
//!
//! It then reads the artifact the `sim_kernel` bench writes (workspace
//! `target/BENCH_sim.json` by default, `BENCH_SIM_JSON` overrides) and
//! applies the idle fast-forward floors:
//!
//! * the sparse fixture's `ffwd_speedup` must stay at least
//!   [`SPARSE_FFWD_FLOOR`] (the O(1) idle-span skip measures two orders
//!   of magnitude on that fixture; below 5x it has effectively stopped
//!   engaging), and
//! * the dense fixture's `ffwd_speedup` must not fall below
//!   `1 / (1 + REGRESSION_TOLERANCE)` — the fast-forward bookkeeping is
//!   a streak counter on the hot loop and must stay within noise when it
//!   never fires.
//!
//! A missing or unparseable artifact, or one written by a smoke run
//! (`smoke_run: true` — throughput of a smoke fixture is meaningless),
//! exits 2 so CI logs distinguish "floor tripped" from "nothing to
//! check". Success prints the checked numbers and exits 0.
//!
//! The CI step running this is `continue-on-error: true` by design: the
//! floor flags a perf regression for a human to look at; it must not
//! block an otherwise-green build on a noisy shared runner.

use profirt_base::json::{self, Value};

/// Minimum acceptable warm-sweep speedup (warm chain vs per-call cold).
const WARM_SWEEP_FLOOR: f64 = 2.0;

/// Committed reference for the warm campaign's evaluation throughput,
/// measured on the fixture of `analysis_fast::campaign_spec` (256 units,
/// one worker). Re-measure and update when the fixture changes.
const CAMPAIGN_UNITS_PER_SEC_REFERENCE: f64 = 230_000.0;

/// Fractional regression against the reference that trips the warning.
const REGRESSION_TOLERANCE: f64 = 0.30;

/// Minimum acceptable `ffwd_speedup` on the sparse sim fixture.
const SPARSE_FFWD_FLOOR: f64 = 5.0;

fn fail_setup(msg: &str) -> ! {
    eprintln!("perf_floor: {msg}");
    std::process::exit(2);
}

/// Loads a bench artifact, refusing smoke-run data (exit 2).
fn load_artifact(path: &str, bench_hint: &str) -> Value {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail_setup(&format!(
            "cannot read {path}: {e} (run `cargo bench -p profirt_bench --bench {bench_hint}` first)"
        )),
    };
    let doc = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => fail_setup(&format!("cannot parse {path}: {e}")),
    };
    if doc.get("smoke_run").and_then(Value::as_bool) != Some(false) {
        fail_setup(&format!(
            "{path} was written by a smoke run; throughput floors only apply to full runs"
        ));
    }
    doc
}

/// The `ffwd_speedup` recorded for one sim fixture.
fn ffwd_speedup(doc: &Value, path: &str, fixture: &str) -> f64 {
    doc.get("fixtures")
        .and_then(Value::as_array)
        .and_then(|rows| {
            rows.iter()
                .find(|r| r.get("fixture").and_then(Value::as_str) == Some(fixture))
        })
        .and_then(|r| r.get("ffwd_speedup"))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| fail_setup(&format!("{path} has no {fixture} ffwd_speedup")))
}

fn main() {
    let path = std::env::var("BENCH_ANALYSIS_JSON")
        .unwrap_or_else(|_| "target/BENCH_analysis.json".to_string());
    let doc = load_artifact(&path, "analysis_fast");

    let warm_sweep = doc
        .get("comparisons")
        .and_then(Value::as_array)
        .and_then(|rows| {
            rows.iter().find(|r| {
                r.get("comparison").and_then(Value::as_str) == Some("warm_sweep_chain64_vs_cold")
            })
        })
        .and_then(|r| r.get("speedup"))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| fail_setup(&format!("{path} has no warm_sweep_chain64_vs_cold row")));
    let campaign_ups = doc
        .get("campaign")
        .and_then(|c| c.get("warm_units_per_sec"))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| fail_setup(&format!("{path} has no campaign.warm_units_per_sec")));

    let sim_path =
        std::env::var("BENCH_SIM_JSON").unwrap_or_else(|_| "target/BENCH_sim.json".to_string());
    let sim_doc = load_artifact(&sim_path, "sim_kernel");
    let sparse_ffwd = ffwd_speedup(&sim_doc, &sim_path, "sparse_long_horizon");
    let dense_ffwd = ffwd_speedup(&sim_doc, &sim_path, "dense_long_horizon");

    let ups_floor = CAMPAIGN_UNITS_PER_SEC_REFERENCE * (1.0 - REGRESSION_TOLERANCE);
    let dense_floor = 1.0 / (1.0 + REGRESSION_TOLERANCE);
    let mut tripped = false;
    if warm_sweep < WARM_SWEEP_FLOOR {
        eprintln!(
            "perf_floor: WARN warm-sweep speedup {warm_sweep:.2}x is below the {WARM_SWEEP_FLOOR:.1}x floor"
        );
        tripped = true;
    }
    if campaign_ups < ups_floor {
        eprintln!(
            "perf_floor: WARN campaign warm throughput {campaign_ups:.0} units/s regressed \
             more than {:.0}% below the committed reference {CAMPAIGN_UNITS_PER_SEC_REFERENCE:.0} \
             units/s (floor {ups_floor:.0})",
            REGRESSION_TOLERANCE * 100.0
        );
        tripped = true;
    }
    if sparse_ffwd < SPARSE_FFWD_FLOOR {
        eprintln!(
            "perf_floor: WARN sparse-fixture fast-forward speedup {sparse_ffwd:.2}x is below \
             the {SPARSE_FFWD_FLOOR:.1}x floor — the idle-span skip has stopped engaging"
        );
        tripped = true;
    }
    if dense_ffwd < dense_floor {
        eprintln!(
            "perf_floor: WARN dense-fixture fast-forward ratio {dense_ffwd:.2}x is below \
             {dense_floor:.2}x — the skip bookkeeping slowed the busy per-visit loop \
             by more than {:.0}%",
            REGRESSION_TOLERANCE * 100.0
        );
        tripped = true;
    }
    if tripped {
        std::process::exit(1);
    }
    println!(
        "perf_floor: ok (warm-sweep {warm_sweep:.2}x >= {WARM_SWEEP_FLOOR:.1}x, campaign \
         {campaign_ups:.0} units/s >= {ups_floor:.0} units/s, sparse ffwd {sparse_ffwd:.1}x \
         >= {SPARSE_FFWD_FLOOR:.1}x, dense ffwd {dense_ffwd:.2}x >= {dense_floor:.2}x)"
    );
}
