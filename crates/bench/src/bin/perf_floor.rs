//! Advisory perf floor over the `BENCH_analysis.json` baseline.
//!
//! Reads the artifact the `analysis_fast` bench writes (workspace
//! `target/BENCH_analysis.json` by default, `BENCH_ANALYSIS_JSON`
//! overrides) and warns — exit code 1 — when either batch-analysis
//! headline slips:
//!
//! * the `warm_sweep_chain64_vs_cold` speedup drops below
//!   [`WARM_SWEEP_FLOOR`] (the warm chain should stay at least 2x the
//!   per-call cold walk), or
//! * the campaign `warm_units_per_sec` regresses more than
//!   [`REGRESSION_TOLERANCE`] below [`CAMPAIGN_UNITS_PER_SEC_REFERENCE`]
//!   (a committed reference measurement; absolute throughput is
//!   machine-relative, which is one reason the CI step is advisory).
//!
//! A missing or unparseable artifact, or one written by a smoke run
//! (`smoke_run: true` — throughput of a smoke fixture is meaningless),
//! exits 2 so CI logs distinguish "floor tripped" from "nothing to
//! check". Success prints the checked numbers and exits 0.
//!
//! The CI step running this is `continue-on-error: true` by design: the
//! floor flags a perf regression for a human to look at; it must not
//! block an otherwise-green build on a noisy shared runner.

use profirt_base::json::{self, Value};

/// Minimum acceptable warm-sweep speedup (warm chain vs per-call cold).
const WARM_SWEEP_FLOOR: f64 = 2.0;

/// Committed reference for the warm campaign's evaluation throughput,
/// measured on the fixture of `analysis_fast::campaign_spec` (256 units,
/// one worker). Re-measure and update when the fixture changes.
const CAMPAIGN_UNITS_PER_SEC_REFERENCE: f64 = 230_000.0;

/// Fractional regression against the reference that trips the warning.
const REGRESSION_TOLERANCE: f64 = 0.30;

fn fail_setup(msg: &str) -> ! {
    eprintln!("perf_floor: {msg}");
    std::process::exit(2);
}

fn main() {
    let path = std::env::var("BENCH_ANALYSIS_JSON")
        .unwrap_or_else(|_| "target/BENCH_analysis.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail_setup(&format!(
            "cannot read {path}: {e} (run `cargo bench -p profirt_bench --bench analysis_fast` first)"
        )),
    };
    let doc = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => fail_setup(&format!("cannot parse {path}: {e}")),
    };
    if doc.get("smoke_run").and_then(Value::as_bool) != Some(false) {
        fail_setup(&format!(
            "{path} was written by a smoke run; throughput floors only apply to full runs"
        ));
    }

    let warm_sweep = doc
        .get("comparisons")
        .and_then(Value::as_array)
        .and_then(|rows| {
            rows.iter().find(|r| {
                r.get("comparison").and_then(Value::as_str) == Some("warm_sweep_chain64_vs_cold")
            })
        })
        .and_then(|r| r.get("speedup"))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| fail_setup(&format!("{path} has no warm_sweep_chain64_vs_cold row")));
    let campaign_ups = doc
        .get("campaign")
        .and_then(|c| c.get("warm_units_per_sec"))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| fail_setup(&format!("{path} has no campaign.warm_units_per_sec")));

    let ups_floor = CAMPAIGN_UNITS_PER_SEC_REFERENCE * (1.0 - REGRESSION_TOLERANCE);
    let mut tripped = false;
    if warm_sweep < WARM_SWEEP_FLOOR {
        eprintln!(
            "perf_floor: WARN warm-sweep speedup {warm_sweep:.2}x is below the {WARM_SWEEP_FLOOR:.1}x floor"
        );
        tripped = true;
    }
    if campaign_ups < ups_floor {
        eprintln!(
            "perf_floor: WARN campaign warm throughput {campaign_ups:.0} units/s regressed \
             more than {:.0}% below the committed reference {CAMPAIGN_UNITS_PER_SEC_REFERENCE:.0} \
             units/s (floor {ups_floor:.0})",
            REGRESSION_TOLERANCE * 100.0
        );
        tripped = true;
    }
    if tripped {
        std::process::exit(1);
    }
    println!(
        "perf_floor: ok (warm-sweep {warm_sweep:.2}x >= {WARM_SWEEP_FLOOR:.1}x, campaign \
         {campaign_ups:.0} units/s >= {ups_floor:.0} units/s)"
    );
}
