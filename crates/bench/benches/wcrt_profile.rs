//! F2 bench: the representative-master WCRT profile computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use profirt_core::{compare_policies, DmAnalysis, EdfAnalysis};
use profirt_experiments::exps::f2;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_wcrt_profile");
    group.sample_size(30);
    let net = f2::representative();
    group.bench_function("profile_all_policies", |b| {
        b.iter(|| {
            compare_policies(
                black_box(&net),
                &DmAnalysis::conservative(),
                &EdfAnalysis::paper(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
