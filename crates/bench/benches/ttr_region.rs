//! F4 bench: the eq. (15) feasibility-region probe (max TTR per network).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_bench::network;
use profirt_core::{max_feasible_ttr, TcycleModel};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_ttr_region");
    group.sample_size(60);
    for tightness in [0.9f64, 0.5, 0.2] {
        let net = network(3, 4, tightness);
        group.bench_with_input(
            BenchmarkId::new("max_ttr", format!("{tightness:.1}")),
            &tightness,
            |b, _| b.iter(|| max_feasible_ttr(black_box(&net), TcycleModel::Paper)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
