//! T2 bench: the processor-demand feasibility test (eq. (3)) — checkpoint
//! enumeration cost as utilisation approaches 1 (the `tmax` blow-up the
//! paper warns about).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_bench::{constrained_task_set, large};
use profirt_sched::edf::{
    edf_feasible_preemptive, edf_feasible_preemptive_exhaustive, DemandConfig,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_edf_demand");
    group.sample_size(30);
    for &(label, u) in &[("u60", 0.6f64), ("u80", 0.8), ("u95", 0.95)] {
        let set = constrained_task_set(8, u);
        group.bench_with_input(BenchmarkId::new("demand_test", label), &u, |b, _| {
            b.iter(|| edf_feasible_preemptive(black_box(&set), &DemandConfig::default()).unwrap())
        });
    }
    for n in [4usize, 8, 16, 32] {
        let set = constrained_task_set(n, 0.8);
        group.bench_with_input(BenchmarkId::new("scaling_n", n), &n, |b, _| {
            b.iter(|| edf_feasible_preemptive(black_box(&set), &DemandConfig::default()).unwrap())
        });
    }
    // The shared large-n worst case (same workload `analysis_fast`
    // compares fast vs exhaustive on).
    let set = large::demand_set();
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("large_448", "fast"), &(), |b, ()| {
        b.iter(|| edf_feasible_preemptive(black_box(&set), &DemandConfig::default()).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("large_448", "exhaustive"), &(), |b, ()| {
        b.iter(|| {
            edf_feasible_preemptive_exhaustive(black_box(&set), &DemandConfig::default()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
