//! F6 bench: the bound-tightness measurement loop (simulation + ratio
//! extraction against each policy's bound).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use profirt_base::Time;
use profirt_bench::network;
use profirt_core::DmAnalysis;
use profirt_profibus::QueuePolicy;
use profirt_sim::{simulate_network, NetworkSimConfig, SimMaster, SimNetwork};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f6_tightness");
    group.sample_size(10);
    let net = network(3, 3, 0.8);
    let bounds = DmAnalysis::conservative().analyze(&net).unwrap();
    let sim_net = SimNetwork {
        masters: net
            .masters
            .iter()
            .map(|m| SimMaster::priority_queued(m.streams.clone(), QueuePolicy::DeadlineMonotonic))
            .collect(),
        ttr: net.ttr,
        token_pass: Time::new(166),
    };
    group.bench_function("tightness_round", |b| {
        b.iter(|| {
            let obs = simulate_network(
                black_box(&sim_net),
                &NetworkSimConfig {
                    horizon: Time::new(1_000_000),
                    ..Default::default()
                },
            );
            let mut worst = 0.0f64;
            for (k, rows) in bounds.masters.iter().enumerate() {
                for (i, row) in rows.iter().enumerate() {
                    let o = obs.streams[k][i].max_response;
                    if row.schedulable && o.is_positive() {
                        worst = worst.max(row.response_time.ticks() as f64 / o.ticks() as f64);
                    }
                }
            }
            worst
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
