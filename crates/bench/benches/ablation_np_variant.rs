//! Ablation B-A5: eq. (1) `Audsley` (ceiling) vs `George` (floor+1)
//! non-preemptive fixed-priority variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_bench::constrained_task_set;
use profirt_sched::fixed::{
    np_response_times, BlockingRule, NpFixedConfig, NpFixedVariant, PriorityMap,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_np_variant");
    group.sample_size(40);
    for n in [8usize, 16, 32] {
        let set = constrained_task_set(n, 0.7);
        let pm = PriorityMap::deadline_monotonic(&set);
        for (label, variant) in [
            ("audsley", NpFixedVariant::Audsley),
            ("george", NpFixedVariant::George),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    np_response_times(
                        black_box(&set),
                        &pm,
                        &NpFixedConfig {
                            variant,
                            blocking: BlockingRule::MaxLowerCost,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
