//! `analysis_fast` bench: the analysis fast paths against their retained
//! exhaustive/plain references, over the shared large-n fixtures of
//! [`profirt_bench::large`].
//!
//! Four comparisons:
//!
//! * `demand` — QPA backward scan vs the exhaustive checkpoint walk for
//!   the preemptive demand test (eq. (3)) on the ~75k-checkpoint fixture.
//! * `np_demand` — the non-preemptive test (eq. (5), George blocking) on
//!   the feasible many-deadline fixture; here the selection rule selects
//!   the exhaustive walk (checkpoints do not dominate segments), so this
//!   comparison guards against regression rather than proving a speedup.
//! * `edf_rta` / `fp_rta` — one shared [`profirt_sched::AnalysisScratch`]
//!   across a campaign-shaped sweep of small task sets vs the
//!   fresh-allocation entry points (identical algorithm; measures the
//!   allocation/hoisting discipline in the pattern campaigns actually
//!   execute).
//!
//! Besides the criterion groups, the bench writes `BENCH_analysis.json`
//! (workspace `target/` by default, `BENCH_ANALYSIS_JSON` overrides) — the
//! analysis-side perf baseline artifact CI uploads alongside `BENCH_sim`,
//! recording per-comparison mean ns for both paths and the fast/reference
//! speedup. Before timing, every pair is checked for verdict equality, so
//! a speedup in the artifact is always a speedup at equal answers.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use profirt_base::json::{self, Value};
use profirt_base::TaskSet;
use profirt_bench::large;
use profirt_sched::edf::{
    edf_feasible_nonpreemptive, edf_feasible_nonpreemptive_exhaustive, edf_feasible_preemptive,
    edf_feasible_preemptive_exhaustive, edf_response_times, edf_response_times_with, DemandConfig,
    EdfRtaConfig, NpFeasibilityConfig,
};
use profirt_sched::fixed::{response_times, response_times_with, PriorityMap, RtaConfig};
use profirt_sched::AnalysisScratch;

fn edf_sweep_fresh(sets: &[TaskSet]) {
    for set in sets {
        black_box(edf_response_times(black_box(set), &EdfRtaConfig::default()).unwrap());
    }
}

fn edf_sweep_scratch(sets: &[TaskSet], scratch: &mut AnalysisScratch) {
    for set in sets {
        black_box(
            edf_response_times_with(black_box(set), &EdfRtaConfig::default(), scratch).unwrap(),
        );
    }
}

fn fp_sweep_fresh(sets: &[(TaskSet, PriorityMap)]) {
    for (set, pm) in sets {
        black_box(response_times(black_box(set), pm, &RtaConfig::default()).unwrap());
    }
}

fn fp_sweep_scratch(sets: &[(TaskSet, PriorityMap)], scratch: &mut AnalysisScratch) {
    for (set, pm) in sets {
        black_box(response_times_with(black_box(set), pm, &RtaConfig::default(), scratch).unwrap());
    }
}

fn fp_sweep() -> Vec<(TaskSet, PriorityMap)> {
    large::rta_sweep(256, 8, 0.85)
        .into_iter()
        .map(|set| {
            let pm = PriorityMap::rate_monotonic(&set);
            (set, pm)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let demand_set = large::demand_set();
    let np_set = large::np_demand_set();
    let edf_sweep = large::rta_sweep(64, 6, 0.85);
    let fp_sets = fp_sweep();
    let mut scratch = AnalysisScratch::new();

    let mut group = c.benchmark_group("analysis_fast");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("demand", "fast"), &(), |b, ()| {
        b.iter(|| edf_feasible_preemptive(black_box(&demand_set), &DemandConfig::default()))
    });
    group.bench_with_input(BenchmarkId::new("demand", "exhaustive"), &(), |b, ()| {
        b.iter(|| {
            edf_feasible_preemptive_exhaustive(black_box(&demand_set), &DemandConfig::default())
        })
    });
    group.bench_with_input(BenchmarkId::new("np_demand", "fast"), &(), |b, ()| {
        b.iter(|| edf_feasible_nonpreemptive(black_box(&np_set), &NpFeasibilityConfig::default()))
    });
    group.bench_with_input(BenchmarkId::new("np_demand", "exhaustive"), &(), |b, ()| {
        b.iter(|| {
            edf_feasible_nonpreemptive_exhaustive(
                black_box(&np_set),
                &NpFeasibilityConfig::default(),
            )
        })
    });
    group.bench_with_input(
        BenchmarkId::new("edf_rta_sweep", "scratch"),
        &(),
        |b, ()| b.iter(|| edf_sweep_scratch(&edf_sweep, &mut scratch)),
    );
    group.bench_with_input(BenchmarkId::new("edf_rta_sweep", "fresh"), &(), |b, ()| {
        b.iter(|| edf_sweep_fresh(&edf_sweep))
    });
    group.bench_with_input(BenchmarkId::new("fp_rta_sweep", "scratch"), &(), |b, ()| {
        b.iter(|| fp_sweep_scratch(&fp_sets, &mut scratch))
    });
    group.bench_with_input(BenchmarkId::new("fp_rta_sweep", "fresh"), &(), |b, ()| {
        b.iter(|| fp_sweep_fresh(&fp_sets))
    });
    group.finish();
}

criterion_group!(benches, bench);

/// Mean per-iteration nanoseconds of `f` over `iters` runs.
fn mean_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Checks every fast path against its reference once, then times both and
/// writes the `BENCH_analysis.json` perf baseline (the artifact CI
/// uploads).
fn write_baseline(full: bool) {
    let iters = if full { 20 } else { 2 };
    let demand_set = large::demand_set();
    let np_set = large::np_demand_set();
    let edf_sweep = large::rta_sweep(64, 6, 0.85);
    let fp_sets = fp_sweep();
    let mut scratch = AnalysisScratch::new();

    // Equality gates: a speedup is only meaningful at equal answers.
    let d_fast = edf_feasible_preemptive(&demand_set, &DemandConfig::default()).unwrap();
    let d_ref = edf_feasible_preemptive_exhaustive(&demand_set, &DemandConfig::default()).unwrap();
    assert_eq!(d_fast.feasible, d_ref.feasible, "demand verdict mismatch");
    assert_eq!(
        d_fast.violation, d_ref.violation,
        "demand violation mismatch"
    );
    assert!(
        d_fast.feasible,
        "demand fixture must exercise the full scan"
    );
    let n_fast = edf_feasible_nonpreemptive(&np_set, &NpFeasibilityConfig::default()).unwrap();
    let n_ref =
        edf_feasible_nonpreemptive_exhaustive(&np_set, &NpFeasibilityConfig::default()).unwrap();
    assert_eq!(n_fast.feasible, n_ref.feasible, "np verdict mismatch");
    assert_eq!(n_fast.violation, n_ref.violation, "np violation mismatch");
    assert!(n_fast.feasible, "np fixture must exercise the full scan");
    for set in &edf_sweep {
        let fresh = edf_response_times(set, &EdfRtaConfig::default()).unwrap();
        let reused = edf_response_times_with(set, &EdfRtaConfig::default(), &mut scratch).unwrap();
        assert_eq!(fresh, reused, "edf rta scratch mismatch");
    }
    for (set, pm) in &fp_sets {
        let fresh = response_times(set, pm, &RtaConfig::default()).unwrap();
        let reused = response_times_with(set, pm, &RtaConfig::default(), &mut scratch).unwrap();
        assert_eq!(fresh, reused, "fp rta scratch mismatch");
    }

    let mut rows = Vec::new();
    let mut record = |label: &str, fast_ns: f64, reference_ns: f64| {
        rows.push(json::object([
            ("comparison", Value::Str(label.to_string())),
            ("fast_ns", Value::Float(fast_ns)),
            ("reference_ns", Value::Float(reference_ns)),
            ("speedup", Value::Float(reference_ns / fast_ns)),
        ]));
    };

    let fast = mean_ns(iters, || {
        black_box(edf_feasible_preemptive(black_box(&demand_set), &DemandConfig::default()).ok());
    });
    let refr = mean_ns(iters, || {
        black_box(
            edf_feasible_preemptive_exhaustive(black_box(&demand_set), &DemandConfig::default())
                .ok(),
        );
    });
    record("demand_qpa_vs_exhaustive", fast, refr);

    let fast = mean_ns(iters, || {
        black_box(
            edf_feasible_nonpreemptive(black_box(&np_set), &NpFeasibilityConfig::default()).ok(),
        );
    });
    let refr = mean_ns(iters, || {
        black_box(
            edf_feasible_nonpreemptive_exhaustive(
                black_box(&np_set),
                &NpFeasibilityConfig::default(),
            )
            .ok(),
        );
    });
    record("np_demand_fast_vs_exhaustive", fast, refr);

    let fast = mean_ns(iters, || edf_sweep_scratch(&edf_sweep, &mut scratch));
    let refr = mean_ns(iters, || edf_sweep_fresh(&edf_sweep));
    record("edf_rta_sweep_scratch_vs_fresh", fast, refr);

    let fast = mean_ns(iters, || fp_sweep_scratch(&fp_sets, &mut scratch));
    let refr = mean_ns(iters, || fp_sweep_fresh(&fp_sets));
    record("fp_rta_sweep_scratch_vs_fresh", fast, refr);

    let doc = json::object([
        ("bench", Value::Str("analysis_fast".to_string())),
        ("samples_per_path", Value::Int(iters as i64)),
        ("smoke_run", Value::Bool(!full)),
        ("comparisons", Value::Array(rows)),
    ]);
    let path = std::env::var("BENCH_ANALYSIS_JSON").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_analysis.json"
        )
        .to_string()
    });
    match std::fs::write(&path, doc.pretty() + "\n") {
        Ok(()) => println!("[baseline] wrote {path}"),
        Err(e) => eprintln!("[baseline] cannot write {path}: {e}"),
    }
}

fn main() {
    benches();
    // Full measurement only under `cargo bench` (the harness passes
    // `--bench`); test/smoke invocations still emit a valid artifact.
    let full = std::env::args().any(|a| a == "--bench");
    write_baseline(full);
}
