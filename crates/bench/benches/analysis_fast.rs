//! `analysis_fast` bench: the analysis fast paths against their retained
//! exhaustive/plain references, over the shared large-n fixtures of
//! [`profirt_bench::large`].
//!
//! Six comparisons:
//!
//! * `demand` — QPA backward scan vs the exhaustive checkpoint walk for
//!   the preemptive demand test (eq. (3)) on the ~75k-checkpoint fixture.
//! * `np_demand` — the non-preemptive test (eq. (5), George blocking) on
//!   the feasible many-deadline fixture; here the selection rule selects
//!   the exhaustive walk (checkpoints do not dominate segments), so this
//!   comparison guards against regression rather than proving a speedup.
//! * `edf_rta` / `fp_rta` — one shared [`profirt_sched::AnalysisScratch`]
//!   across a campaign-shaped sweep of small task sets vs the
//!   fresh-allocation entry points (identical algorithm; measures the
//!   allocation/hoisting discipline in the pattern campaigns actually
//!   execute).
//! * `warm_sweep` — a campaign-shaped warm chain: 64 deadline-varied
//!   variants of one constrained set (one axis varied per step), each
//!   analysed through [`edf_feasibility_batch`] (all six demand variants
//!   in one checkpoint merge) plus the warm-memo np-RTA, against the
//!   per-call cold path with no shared state. Verdict equality across
//!   the whole chain is asserted before timing.
//! * `campaign` — the end-to-end fixture of ISSUE 8: an analysis-only
//!   network matrix with `ttr` as the fastest axis, executed through
//!   [`EvalMode::Warm`] vs [`EvalMode::Cold`] on one worker, with the
//!   stripped `units.csv` payloads asserted byte-identical before the
//!   throughput ratio is recorded.
//!
//! Besides the criterion groups, the bench writes `BENCH_analysis.json`
//! (workspace `target/` by default, `BENCH_ANALYSIS_JSON` overrides) — the
//! analysis-side perf baseline artifact CI uploads alongside `BENCH_sim`,
//! recording per-comparison best-of-N ns for both paths and the fast/reference
//! speedup, plus the campaign `units_per_sec` block the advisory
//! `perf_floor` CI step checks. Before timing, every pair is checked for
//! verdict equality, so a speedup in the artifact is always a speedup at
//! equal answers.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use profirt_base::json::{self, Value};
use profirt_base::{Task, TaskSet, Time};
use profirt_bench::large;
use profirt_experiments::campaign::{
    run_campaign_with, CampaignOutcome, CampaignSpec, EvalMode, ScenarioKind,
};
use profirt_sched::edf::{
    edf_feasibility_batch, edf_feasible_nonpreemptive, edf_feasible_nonpreemptive_exhaustive,
    edf_feasible_preemptive, edf_feasible_preemptive_exhaustive, edf_response_times,
    edf_response_times_with, DemandConfig, DemandFormula, DemandVariantSpec, EdfRtaConfig,
    Feasibility, NpBlockingModel, NpFeasibilityConfig,
};
use profirt_sched::fixed::{
    np_response_times, np_response_times_with, response_times, response_times_with, NpFixedConfig,
    PriorityMap, RtaConfig,
};
use profirt_sched::{AnalysisScratch, FixpointConfig};

fn edf_sweep_fresh(sets: &[TaskSet]) {
    for set in sets {
        black_box(edf_response_times(black_box(set), &EdfRtaConfig::default()).unwrap());
    }
}

fn edf_sweep_scratch(sets: &[TaskSet], scratch: &mut AnalysisScratch) {
    for set in sets {
        black_box(
            edf_response_times_with(black_box(set), &EdfRtaConfig::default(), scratch).unwrap(),
        );
    }
}

fn fp_sweep_fresh(sets: &[(TaskSet, PriorityMap)]) {
    for (set, pm) in sets {
        black_box(response_times(black_box(set), pm, &RtaConfig::default()).unwrap());
    }
}

fn fp_sweep_scratch(sets: &[(TaskSet, PriorityMap)], scratch: &mut AnalysisScratch) {
    for (set, pm) in sets {
        black_box(response_times_with(black_box(set), pm, &RtaConfig::default(), scratch).unwrap());
    }
}

fn fp_sweep() -> Vec<(TaskSet, PriorityMap)> {
    large::rta_sweep(256, 8, 0.85)
        .into_iter()
        .map(|set| {
            let pm = PriorityMap::rate_monotonic(&set);
            (set, pm)
        })
        .collect()
}

/// Tightens one task's deadline without violating `C <= D` — the
/// "one axis varied" neighbor step the campaign's warm chains walk.
fn tighten(set: &TaskSet, step: usize) -> TaskSet {
    let tasks: Vec<Task> = set
        .iter()
        .map(|(i, task)| {
            if i == step % set.len() {
                let d = (task.d - Time::ONE).max(task.c);
                Task::new(task.c, d, task.t).unwrap()
            } else {
                *task
            }
        })
        .collect();
    TaskSet::new(tasks).unwrap()
}

/// The warm-sweep chain: 64 deadline-varied variants of one small
/// constrained-deadline set at `U = 0.995` (a long synchronous busy
/// period, so the warm busy-period memo — keyed on the deadline-free
/// `(C, T)` columns and therefore hot across the whole chain — retires
/// the dominant fixpoints; `n = 8` keeps every level-i busy period inside
/// the memo's capacity), paired with their DM priority maps.
fn warm_sweep_chain() -> Vec<(TaskSet, PriorityMap)> {
    let mut current = profirt_bench::constrained_task_set(8, 0.995);
    let mut chain = Vec::with_capacity(64);
    for step in 0..64 {
        let pm = PriorityMap::deadline_monotonic(&current);
        chain.push((current.clone(), pm));
        current = tighten(&current, step);
    }
    chain
}

/// All six demand variants (both formulas × preemptive/ZS/George).
fn demand_variants() -> Vec<DemandVariantSpec> {
    let mut v = Vec::new();
    for formula in [DemandFormula::Standard, DemandFormula::PaperCeiling] {
        for blocking in [
            None,
            Some(NpBlockingModel::ZhengShin),
            Some(NpBlockingModel::George),
        ] {
            v.push(DemandVariantSpec { formula, blocking });
        }
    }
    v
}

/// The cold per-call reference for one demand variant.
fn per_call_feasibility(set: &TaskSet, v: DemandVariantSpec) -> Feasibility {
    match v.blocking {
        None => edf_feasible_preemptive(
            set,
            &DemandConfig {
                formula: v.formula,
                ..Default::default()
            },
        )
        .unwrap(),
        Some(blocking) => edf_feasible_nonpreemptive(
            set,
            &NpFeasibilityConfig {
                blocking,
                formula: v.formula,
                ..Default::default()
            },
        )
        .unwrap(),
    }
}

/// The warm chain walk: batched demand variants sharing one checkpoint
/// merge plus the warm-memo np-RTA, all on one shared scratch.
fn warm_sweep_warm(
    chain: &[(TaskSet, PriorityMap)],
    variants: &[DemandVariantSpec],
    scratch: &mut AnalysisScratch,
) {
    for (set, pm) in chain {
        black_box(
            edf_feasibility_batch(black_box(set), variants, FixpointConfig::default(), scratch)
                .unwrap(),
        );
        black_box(np_response_times_with(set, pm, &NpFixedConfig::george(), scratch).unwrap());
    }
}

/// The cold reference walk: per-call entry points, no shared state.
fn warm_sweep_cold(chain: &[(TaskSet, PriorityMap)], variants: &[DemandVariantSpec]) {
    for (set, pm) in chain {
        for v in variants {
            black_box(per_call_feasibility(black_box(set), *v));
        }
        black_box(np_response_times(set, pm, &NpFixedConfig::george()).unwrap());
    }
}

/// The ISSUE 8 campaign fixture: an analysis-only network matrix with
/// `ttr` as the fastest axis. A cold unit pays workload generation plus
/// the eq. (15) search per replication; a warm-chain unit pays only the
/// O(1) in-place `TTR` patch and the policy analysis, so generation-heavy
/// networks (many masters × many streams) with long ttr chains are where
/// the amortization shows. One worker, so the recorded ratio measures the
/// algorithm, not core count.
fn campaign_spec(full: bool) -> CampaignSpec {
    let ttrs: Vec<i64> = if full {
        (1..=64).map(|k| 1_000 + 100 * k).collect()
    } else {
        vec![1_500, 3_000, 4_500, 6_000]
    };
    let mut spec = CampaignSpec::new(
        "bench-warm-campaign",
        "analysis-only warm-vs-cold throughput fixture",
        ScenarioKind::Network,
    )
    .replications(if full { 2 } else { 1 });
    spec = if full {
        spec.axis_i64("masters", &[10, 12])
            .axis_i64("streams", &[32])
            .axis_f64("tightness", &[0.9, 0.6])
            .axis_str("policy", &["fcfs"])
    } else {
        spec.axis_i64("masters", &[2])
            .axis_f64("tightness", &[0.9])
            .axis_str("policy", &["fcfs", "dm"])
    };
    let mut spec = spec.axis_i64("ttr", &ttrs);
    spec.workers = 1;
    spec
}

/// Strips the trailing instrumentation columns (`fixpoint_iters`,
/// `warm_hit`, `unit_micros`) from `units.csv`, leaving the payload the
/// warm path must reproduce byte-identically.
fn stripped_units_csv(dir: &std::path::Path) -> Vec<String> {
    let csv = std::fs::read_to_string(dir.join("units.csv")).expect("units.csv");
    csv.lines()
        .map(|line| {
            let mut rest = line;
            for _ in 0..3 {
                rest = rest.rsplit_once(',').expect("instrumentation column").0;
            }
            rest.to_string()
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let demand_set = large::demand_set();
    let np_set = large::np_demand_set();
    let edf_sweep = large::rta_sweep(64, 6, 0.85);
    let fp_sets = fp_sweep();
    let mut scratch = AnalysisScratch::new();

    let mut group = c.benchmark_group("analysis_fast");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("demand", "fast"), &(), |b, ()| {
        b.iter(|| edf_feasible_preemptive(black_box(&demand_set), &DemandConfig::default()))
    });
    group.bench_with_input(BenchmarkId::new("demand", "exhaustive"), &(), |b, ()| {
        b.iter(|| {
            edf_feasible_preemptive_exhaustive(black_box(&demand_set), &DemandConfig::default())
        })
    });
    group.bench_with_input(BenchmarkId::new("np_demand", "fast"), &(), |b, ()| {
        b.iter(|| edf_feasible_nonpreemptive(black_box(&np_set), &NpFeasibilityConfig::default()))
    });
    group.bench_with_input(BenchmarkId::new("np_demand", "exhaustive"), &(), |b, ()| {
        b.iter(|| {
            edf_feasible_nonpreemptive_exhaustive(
                black_box(&np_set),
                &NpFeasibilityConfig::default(),
            )
        })
    });
    group.bench_with_input(
        BenchmarkId::new("edf_rta_sweep", "scratch"),
        &(),
        |b, ()| b.iter(|| edf_sweep_scratch(&edf_sweep, &mut scratch)),
    );
    group.bench_with_input(BenchmarkId::new("edf_rta_sweep", "fresh"), &(), |b, ()| {
        b.iter(|| edf_sweep_fresh(&edf_sweep))
    });
    group.bench_with_input(BenchmarkId::new("fp_rta_sweep", "scratch"), &(), |b, ()| {
        b.iter(|| fp_sweep_scratch(&fp_sets, &mut scratch))
    });
    group.bench_with_input(BenchmarkId::new("fp_rta_sweep", "fresh"), &(), |b, ()| {
        b.iter(|| fp_sweep_fresh(&fp_sets))
    });
    let chain = warm_sweep_chain();
    let variants = demand_variants();
    group.bench_with_input(BenchmarkId::new("warm_sweep", "warm"), &(), |b, ()| {
        b.iter(|| warm_sweep_warm(&chain, &variants, &mut scratch))
    });
    group.bench_with_input(BenchmarkId::new("warm_sweep", "cold"), &(), |b, ()| {
        b.iter(|| warm_sweep_cold(&chain, &variants))
    });
    group.finish();
}

criterion_group!(benches, bench);

/// Best (minimum) per-iteration nanoseconds of `f` over `iters` runs.
///
/// Every timed path is deterministic, so run-to-run variation is pure
/// scheduling/frequency noise; the minimum estimates the true cost where a
/// mean would fold contention spikes into the reported ratio.
fn best_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Checks every fast path against its reference once, then times both and
/// writes the `BENCH_analysis.json` perf baseline (the artifact CI
/// uploads).
fn write_baseline(full: bool) {
    let iters = if full { 20 } else { 2 };
    let demand_set = large::demand_set();
    let np_set = large::np_demand_set();
    let edf_sweep = large::rta_sweep(64, 6, 0.85);
    let fp_sets = fp_sweep();
    let mut scratch = AnalysisScratch::new();

    // Equality gates: a speedup is only meaningful at equal answers.
    let d_fast = edf_feasible_preemptive(&demand_set, &DemandConfig::default()).unwrap();
    let d_ref = edf_feasible_preemptive_exhaustive(&demand_set, &DemandConfig::default()).unwrap();
    assert_eq!(d_fast.feasible, d_ref.feasible, "demand verdict mismatch");
    assert_eq!(
        d_fast.violation, d_ref.violation,
        "demand violation mismatch"
    );
    assert!(
        d_fast.feasible,
        "demand fixture must exercise the full scan"
    );
    let n_fast = edf_feasible_nonpreemptive(&np_set, &NpFeasibilityConfig::default()).unwrap();
    let n_ref =
        edf_feasible_nonpreemptive_exhaustive(&np_set, &NpFeasibilityConfig::default()).unwrap();
    assert_eq!(n_fast.feasible, n_ref.feasible, "np verdict mismatch");
    assert_eq!(n_fast.violation, n_ref.violation, "np violation mismatch");
    assert!(n_fast.feasible, "np fixture must exercise the full scan");
    for set in &edf_sweep {
        let fresh = edf_response_times(set, &EdfRtaConfig::default()).unwrap();
        let reused = edf_response_times_with(set, &EdfRtaConfig::default(), &mut scratch).unwrap();
        assert_eq!(fresh, reused, "edf rta scratch mismatch");
    }
    for (set, pm) in &fp_sets {
        let fresh = response_times(set, pm, &RtaConfig::default()).unwrap();
        let reused = response_times_with(set, pm, &RtaConfig::default(), &mut scratch).unwrap();
        assert_eq!(fresh, reused, "fp rta scratch mismatch");
    }

    let mut rows = Vec::new();
    let mut record = |label: &str, fast_ns: f64, reference_ns: f64| {
        rows.push(json::object([
            ("comparison", Value::Str(label.to_string())),
            ("fast_ns", Value::Float(fast_ns)),
            ("reference_ns", Value::Float(reference_ns)),
            ("speedup", Value::Float(reference_ns / fast_ns)),
        ]));
    };

    let fast = best_ns(iters, || {
        black_box(edf_feasible_preemptive(black_box(&demand_set), &DemandConfig::default()).ok());
    });
    let refr = best_ns(iters, || {
        black_box(
            edf_feasible_preemptive_exhaustive(black_box(&demand_set), &DemandConfig::default())
                .ok(),
        );
    });
    record("demand_qpa_vs_exhaustive", fast, refr);

    let fast = best_ns(iters, || {
        black_box(
            edf_feasible_nonpreemptive(black_box(&np_set), &NpFeasibilityConfig::default()).ok(),
        );
    });
    let refr = best_ns(iters, || {
        black_box(
            edf_feasible_nonpreemptive_exhaustive(
                black_box(&np_set),
                &NpFeasibilityConfig::default(),
            )
            .ok(),
        );
    });
    record("np_demand_fast_vs_exhaustive", fast, refr);

    let fast = best_ns(iters, || edf_sweep_scratch(&edf_sweep, &mut scratch));
    let refr = best_ns(iters, || edf_sweep_fresh(&edf_sweep));
    record("edf_rta_sweep_scratch_vs_fresh", fast, refr);

    let fast = best_ns(iters, || fp_sweep_scratch(&fp_sets, &mut scratch));
    let refr = best_ns(iters, || fp_sweep_fresh(&fp_sets));
    record("fp_rta_sweep_scratch_vs_fresh", fast, refr);

    // Warm-sweep chain: equality across all 64 variants first, then time
    // the batched/warm walk against the per-call cold walk.
    let chain = warm_sweep_chain();
    let variants = demand_variants();
    let mut warm = AnalysisScratch::new();
    for (set, pm) in &chain {
        let batch =
            edf_feasibility_batch(set, &variants, FixpointConfig::default(), &mut warm).unwrap();
        for (v, got) in variants.iter().zip(batch.iter()) {
            assert_eq!(
                *got,
                per_call_feasibility(set, *v),
                "warm-sweep demand mismatch for {v:?}"
            );
        }
        let np_warm = np_response_times_with(set, pm, &NpFixedConfig::george(), &mut warm).unwrap();
        let np_cold = np_response_times(set, pm, &NpFixedConfig::george()).unwrap();
        assert_eq!(np_warm, np_cold, "warm-sweep np rta mismatch");
    }
    let fast = best_ns(iters, || warm_sweep_warm(&chain, &variants, &mut warm));
    let refr = best_ns(iters, || warm_sweep_cold(&chain, &variants));
    record("warm_sweep_chain64_vs_cold", fast, refr);

    // Campaign throughput: the warm executor against the cold per-unit
    // path on the same analysis-only matrix (ISSUE 8's ≥10× target). The
    // stripped payload must match byte-for-byte before the ratio counts.
    let spec = campaign_spec(full);
    assert!(
        (spec.unit_count() as u64) * spec.replications <= 100_000,
        "campaign fixture exceeds the 100k-unit cap"
    );
    let tmp = std::env::temp_dir().join("profirt-bench-analysis-campaign");
    let _ = std::fs::remove_dir_all(&tmp);
    // Both campaigns are deterministic, so (as with `best_ns`) the fastest
    // of a few runs estimates the true per-mode cost; a single sample can
    // be 2x off under CI-runner contention.
    let runs = if full { 3 } else { 1 };
    let run_mode = |mode: EvalMode, tag: &str| -> (f64, f64, CampaignOutcome) {
        let mut best: Option<(f64, f64, CampaignOutcome)> = None;
        for r in 0..runs {
            let t0 = Instant::now();
            let out = run_campaign_with(&spec, &tmp.join(format!("{tag}{r}")), mode)
                .expect("campaign run");
            let wall = t0.elapsed().as_secs_f64();
            let eval = out.unit_micros.iter().sum::<f64>() / 1e6;
            if best.as_ref().is_none_or(|(b, _, _)| eval < *b) {
                best = Some((eval, wall, out));
            }
        }
        best.expect("at least one campaign run")
    };
    let (cold_secs, cold_wall, cold) = run_mode(EvalMode::Cold, "cold");
    let (warm_secs, warm_wall, warm) = run_mode(EvalMode::Warm, "warm");
    assert_eq!(
        stripped_units_csv(&cold.out_dir),
        stripped_units_csv(&warm.out_dir),
        "warm campaign diverged from the cold reference"
    );
    std::fs::remove_dir_all(&tmp).ok();
    // Evaluation time = the worker-observed per-unit timing summed over
    // the matrix (the `unit_micros` column). Both runs additionally pay an
    // identical artifact-serialization cost, reported as `*_wall_secs`;
    // the headline `units_per_sec` ratio compares the evaluation paths
    // the warm engine actually changes.
    let units = spec.unit_count() as f64;
    record(
        "campaign_warm_vs_cold_per_unit",
        warm_secs * 1e9 / units,
        cold_secs * 1e9 / units,
    );
    let campaign = json::object([
        ("unit_count", Value::Int(spec.unit_count() as i64)),
        ("replications", Value::Int(spec.replications as i64)),
        ("workers", Value::Int(spec.workers as i64)),
        ("cold_units_per_sec", Value::Float(units / cold_secs)),
        ("warm_units_per_sec", Value::Float(units / warm_secs)),
        ("speedup", Value::Float(cold_secs / warm_secs)),
        ("cold_wall_secs", Value::Float(cold_wall)),
        ("warm_wall_secs", Value::Float(warm_wall)),
        ("wall_speedup", Value::Float(cold_wall / warm_wall)),
        ("warm_hit_rate", Value::Float(warm.warm_hit_rate())),
        ("fixpoint_iters", Value::Float(warm.total_fixpoint_iters())),
    ]);

    let doc = json::object([
        ("bench", Value::Str("analysis_fast".to_string())),
        ("samples_per_path", Value::Int(iters as i64)),
        ("smoke_run", Value::Bool(!full)),
        ("comparisons", Value::Array(rows)),
        ("campaign", campaign),
    ]);
    let path = std::env::var("BENCH_ANALYSIS_JSON").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_analysis.json"
        )
        .to_string()
    });
    match std::fs::write(&path, doc.pretty() + "\n") {
        Ok(()) => println!("[baseline] wrote {path}"),
        Err(e) => eprintln!("[baseline] cannot write {path}: {e}"),
    }
}

fn main() {
    benches();
    // Full measurement only under `cargo bench` (the harness passes
    // `--bench`); test/smoke invocations still emit a valid artifact.
    let full = std::env::args().any(|a| a == "--bench");
    write_baseline(full);
}
