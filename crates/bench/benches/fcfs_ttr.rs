//! T6 bench: the FCFS bound (eq. (11)) and the eq. (15) TTR derivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_bench::network;
use profirt_core::{max_feasible_ttr, FcfsAnalysis, TcycleModel};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t6_fcfs_ttr");
    group.sample_size(50);
    for nh in [2usize, 4, 8, 16] {
        let net = network(3, nh, 0.9);
        group.bench_with_input(BenchmarkId::new("eq11_fcfs", nh), &nh, |b, _| {
            b.iter(|| FcfsAnalysis::paper().run(black_box(&net)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("eq15_ttr", nh), &nh, |b, _| {
            b.iter(|| max_feasible_ttr(black_box(&net), TcycleModel::Paper))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
