//! T7 bench: the full three-policy comparison (FCFS eq. (11), DM eq. (16),
//! EDF eqs. (17)–(18)) on one network — the end-user-facing analysis path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_bench::network;
use profirt_core::{compare_policies, DmAnalysis, EdfAnalysis};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t7_policy_compare");
    group.sample_size(20);
    for nh in [2usize, 4, 8] {
        let net = network(3, nh, 0.6);
        group.bench_with_input(BenchmarkId::new("all_policies", nh), &nh, |b, _| {
            b.iter(|| {
                compare_policies(
                    black_box(&net),
                    &DmAnalysis::conservative(),
                    &EdfAnalysis::paper(),
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("dm_only", nh), &nh, |b, _| {
            b.iter(|| DmAnalysis::conservative().analyze(black_box(&net)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("edf_only", nh), &nh, |b, _| {
            b.iter(|| EdfAnalysis::paper().analyze(black_box(&net)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
