//! `conc_exec` bench: the work-stealing executor core behind
//! `par_map_seeds` against the channel-fed worker pool it replaced, on
//! a campaign-shaped workload (many independent seeds, each evaluating
//! a small schedulability analysis).
//!
//! The reference implementation below is the previous runner verbatim
//! in shape: an unbounded MPMC channel distributes seeds to scoped
//! workers, results land in per-seed mutex slots. The executor path is
//! `profirt_experiments::runner::par_map_seeds`, now mounted on
//! `profirt_conc::exec::Core` (sharded deques + stealing + the
//! model-checked park protocol).
//!
//! Besides the criterion group, the bench writes `BENCH_conc.json`
//! (workspace `target/` by default, `BENCH_CONC_JSON` overrides) — the
//! executor-side perf baseline artifact CI uploads alongside
//! `BENCH_sim`/`BENCH_analysis`, recording per-worker-count mean ns for
//! both pools. Before timing, both paths are checked for identical
//! seed-ordered results, so the comparison is always at equal answers.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Mutex;
use std::time::Instant;

use crossbeam::channel;
use profirt_base::json::{self, Value};
use profirt_bench::task_set;
use profirt_experiments::runner::par_map_seeds;
use profirt_sched::edf::{edf_response_times, EdfRtaConfig};

const SEEDS: u64 = 96;

/// One campaign-shaped work unit: a seed-dependent task set through the
/// EDF response-time analysis, folded to a checksum.
fn unit(seed: u64) -> u64 {
    let n = 4 + (seed % 5) as usize;
    let u = 0.55 + (seed % 32) as f64 * 0.01;
    let set = task_set(n, u);
    match edf_response_times(&set, &EdfRtaConfig::default()) {
        Ok((_, rts)) => rts.iter().fold(seed, |acc, r| {
            acc.wrapping_mul(31).wrapping_add(r.wcrt.ticks() as u64)
        }),
        Err(_) => seed,
    }
}

/// The retained reference: the channel-fed pool `par_map_seeds` used
/// before it moved onto the executor core.
fn channel_pool(n: u64, workers: usize) -> Vec<u64> {
    let workers = workers.clamp(1, n.max(1) as usize);
    let (tx, rx) = channel::unbounded::<u64>();
    for seed in 0..n {
        tx.send(seed).expect("channel open");
    }
    drop(tx);
    let mut results: Vec<Option<u64>> = (0..n).map(|_| None).collect();
    let slots: Vec<_> = results.iter_mut().map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let slots = &slots;
            scope.spawn(move || {
                while let Ok(seed) = rx.recv() {
                    **slots[seed as usize].lock().expect("slot lock") = Some(unit(seed));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

fn executor_pool(n: u64, workers: usize) -> Vec<u64> {
    par_map_seeds(n, workers, unit)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("conc_exec");
    group.sample_size(10);
    for workers in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("executor", workers), &workers, |b, &w| {
            b.iter(|| black_box(executor_pool(SEEDS, w)))
        });
        group.bench_with_input(
            BenchmarkId::new("channel_pool", workers),
            &workers,
            |b, &w| b.iter(|| black_box(channel_pool(SEEDS, w))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);

/// Mean per-iteration nanoseconds of `f` over `iters` runs.
fn mean_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Checks both pools produce identical seed-ordered results, then times
/// them and writes the `BENCH_conc.json` perf baseline.
fn write_baseline(full: bool) {
    let iters = if full { 20 } else { 2 };

    // Equality gate across worker counts — including the serial pool,
    // which doubles as the ground truth for both.
    let reference: Vec<u64> = (0..SEEDS).map(unit).collect();
    for workers in [1usize, 2, 4, 8] {
        assert_eq!(
            executor_pool(SEEDS, workers),
            reference,
            "executor results diverge at {workers} workers"
        );
        assert_eq!(
            channel_pool(SEEDS, workers),
            reference,
            "channel pool results diverge at {workers} workers"
        );
    }

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let exec_ns = mean_ns(iters, || {
            black_box(executor_pool(SEEDS, workers));
        });
        let chan_ns = mean_ns(iters, || {
            black_box(channel_pool(SEEDS, workers));
        });
        rows.push(json::object([
            ("workers", Value::Int(workers as i64)),
            ("executor_ns", Value::Float(exec_ns)),
            ("channel_pool_ns", Value::Float(chan_ns)),
            ("speedup", Value::Float(chan_ns / exec_ns)),
        ]));
    }

    let doc = json::object([
        ("bench", Value::Str("conc_exec".to_string())),
        ("seeds", Value::Int(SEEDS as i64)),
        ("samples_per_path", Value::Int(iters as i64)),
        ("smoke_run", Value::Bool(!full)),
        ("comparisons", Value::Array(rows)),
    ]);
    let path = std::env::var("BENCH_CONC_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_conc.json").to_string()
    });
    match std::fs::write(&path, doc.pretty() + "\n") {
        Ok(()) => println!("[baseline] wrote {path}"),
        Err(e) => eprintln!("[baseline] cannot write {path}: {e}"),
    }
}

fn main() {
    benches();
    // Full measurement only under `cargo bench` (the harness passes
    // `--bench`); test/smoke invocations still emit a valid artifact.
    let full = std::env::args().any(|a| a == "--bench");
    write_baseline(full);
}
