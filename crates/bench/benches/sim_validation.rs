//! T8 bench: one full validation round — analysis + simulation + ratio
//! extraction — per AP-queue policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_base::Time;
use profirt_bench::network;
use profirt_core::{DmAnalysis, EdfAnalysis, FcfsAnalysis};
use profirt_profibus::QueuePolicy;
use profirt_sim::{simulate_network, NetworkSimConfig, SimMaster, SimNetwork};

fn sim_for(net: &profirt_core::NetworkConfig, policy: QueuePolicy) -> SimNetwork {
    SimNetwork {
        masters: net
            .masters
            .iter()
            .map(|m| match policy {
                QueuePolicy::Fcfs => SimMaster::stock(m.streams.clone()),
                p => SimMaster::priority_queued(m.streams.clone(), p),
            })
            .collect(),
        ttr: net.ttr,
        token_pass: Time::new(166),
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t8_sim_validation");
    group.sample_size(10);
    let net = network(3, 3, 0.8);
    let cfg = NetworkSimConfig {
        horizon: Time::new(1_000_000),
        ..Default::default()
    };
    for (label, policy) in [
        ("fcfs", QueuePolicy::Fcfs),
        ("dm", QueuePolicy::DeadlineMonotonic),
        ("edf", QueuePolicy::Edf),
    ] {
        let sim_net = sim_for(&net, policy);
        group.bench_with_input(
            BenchmarkId::new("validation_round", label),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let _bounds = match p {
                        QueuePolicy::Fcfs => FcfsAnalysis::paper().run(&net).ok(),
                        QueuePolicy::DeadlineMonotonic => {
                            DmAnalysis::conservative().analyze(&net).ok()
                        }
                        QueuePolicy::Edf => EdfAnalysis::paper().analyze(&net).ok(),
                    };
                    simulate_network(black_box(&sim_net), &cfg)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
