//! T3 bench: non-preemptive EDF feasibility, eq. (4) vs eq. (5) (the
//! refined blocking term costs a per-checkpoint max).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_bench::{constrained_task_set, large};
use profirt_sched::edf::{
    edf_feasible_nonpreemptive, edf_feasible_nonpreemptive_exhaustive, NpBlockingModel,
    NpFeasibilityConfig,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_np_edf_feasibility");
    group.sample_size(30);
    for n in [4usize, 8, 16] {
        let set = constrained_task_set(n, 0.7);
        for (label, blocking) in [
            ("eq4_zheng_shin", NpBlockingModel::ZhengShin),
            ("eq5_george", NpBlockingModel::George),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    edf_feasible_nonpreemptive(
                        black_box(&set),
                        &NpFeasibilityConfig {
                            blocking,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                })
            });
        }
    }
    // The shared large-n worst case (same workload `analysis_fast` uses):
    // feasible under both blocking models, so the full horizon is walked.
    let set = large::np_demand_set();
    group.sample_size(10);
    for (label, blocking) in [
        ("large_448_zs", NpBlockingModel::ZhengShin),
        ("large_448_george", NpBlockingModel::George),
    ] {
        let cfg = NpFeasibilityConfig {
            blocking,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new(label, "fast"), &(), |b, ()| {
            b.iter(|| edf_feasible_nonpreemptive(black_box(&set), &cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new(label, "exhaustive"), &(), |b, ()| {
            b.iter(|| edf_feasible_nonpreemptive_exhaustive(black_box(&set), &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
