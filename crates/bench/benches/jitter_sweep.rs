//! F5 bench: jitter-aware DM/EDF message analysis and the end-to-end
//! pipeline (host RTA + inheritance + message analysis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_base::{StreamSet, TaskSet, Time};
use profirt_core::{
    DmAnalysis, EdfAnalysis, EndToEndAnalysis, JitterModel, MasterConfig, NetworkConfig,
    TaskSegments,
};
use profirt_sched::fixed::PriorityMap;

fn jittered_net(j: i64) -> NetworkConfig {
    NetworkConfig::new(
        vec![MasterConfig::new(
            StreamSet::from_cdtj(&[
                (600, 25_000, 30_000, j),
                (600, 90_000, 200_000, 0),
                (600, 350_000, 400_000, 0),
            ])
            .unwrap(),
            Time::new(800),
        )],
        Time::new(4_000),
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f5_jitter");
    group.sample_size(40);
    for j in [0i64, 15_000, 30_000] {
        let net = jittered_net(j);
        group.bench_with_input(BenchmarkId::new("dm", j), &j, |b, _| {
            b.iter(|| DmAnalysis::conservative().analyze(black_box(&net)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("edf", j), &j, |b, _| {
            b.iter(|| EdfAnalysis::paper().analyze(black_box(&net)).unwrap())
        });
    }

    let host = TaskSet::from_cdt(&[
        (200, 8_000, 30_000),
        (1_500, 25_000, 60_000),
        (4_000, 100_000, 200_000),
    ])
    .unwrap();
    let pm = PriorityMap::deadline_monotonic(&host);
    let net = jittered_net(0);
    let segments = [
        TaskSegments {
            generator: JitterModel::SeparateSender { task: 0 },
            delivery_task: 0,
        },
        TaskSegments {
            generator: JitterModel::SeparateSender { task: 1 },
            delivery_task: 1,
        },
        TaskSegments {
            generator: JitterModel::SeparateSender { task: 2 },
            delivery_task: 2,
        },
    ];
    group.bench_function("end_to_end_pipeline", |b| {
        b.iter(|| {
            EndToEndAnalysis::edf()
                .analyze(black_box(&net), 0, &host, &pm, &segments)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
