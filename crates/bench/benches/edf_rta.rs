//! T4 bench: EDF worst-case response-time analysis (eqs. (6)–(10)) — the
//! expensive deadline-busy-period enumeration, preemptive vs
//! non-preemptive, scaling with task count and utilisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_bench::{large, task_set};
use profirt_sched::edf::{
    edf_response_times, edf_response_times_with, np_edf_response_times, EdfRtaConfig,
    NpEdfRtaConfig,
};
use profirt_sched::AnalysisScratch;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t4_edf_rta");
    group.sample_size(15);
    for n in [3usize, 5, 8] {
        let set = task_set(n, 0.7);
        group.bench_with_input(BenchmarkId::new("preemptive", n), &n, |b, _| {
            b.iter(|| edf_response_times(black_box(&set), &EdfRtaConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("non_preemptive", n), &n, |b, _| {
            b.iter(|| np_edf_response_times(black_box(&set), &NpEdfRtaConfig::default()).unwrap())
        });
    }
    for &(label, u) in &[("u55", 0.55f64), ("u75", 0.75), ("u90", 0.9)] {
        let set = task_set(4, u);
        group.bench_with_input(BenchmarkId::new("preemptive_vs_u", label), &u, |b, _| {
            b.iter(|| edf_response_times(black_box(&set), &EdfRtaConfig::default()).unwrap())
        });
    }
    // Shared large-n worst case, with and without scratch reuse (same
    // workload `analysis_fast` sweeps over).
    let set = large::edf_rta_set();
    let mut scratch = AnalysisScratch::new();
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("large_32_u90", "scratch"), &(), |b, ()| {
        b.iter(|| {
            edf_response_times_with(black_box(&set), &EdfRtaConfig::default(), &mut scratch)
                .unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("large_32_u90", "fresh"), &(), |b, ()| {
        b.iter(|| edf_response_times(black_box(&set), &EdfRtaConfig::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
