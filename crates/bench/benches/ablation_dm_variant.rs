//! Ablation B-A4: eq. (16) `Paper` vs `Conservative` DM variant — cost and
//! (via the printed summary of T8) the soundness/pessimism trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_bench::network;
use profirt_core::DmAnalysis;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dm_variant");
    group.sample_size(40);
    for nh in [4usize, 8, 16] {
        let net = network(3, nh, 0.7);
        group.bench_with_input(BenchmarkId::new("paper", nh), &nh, |b, _| {
            b.iter(|| DmAnalysis::paper().analyze(black_box(&net)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("conservative", nh), &nh, |b, _| {
            b.iter(|| DmAnalysis::conservative().analyze(black_box(&net)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
