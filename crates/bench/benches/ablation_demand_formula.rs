//! Ablation B-A3: `Standard` vs `PaperCeiling` demand formula — timing cost
//! (identical asymptotics expected; the difference is correctness, see T2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_bench::constrained_task_set;
use profirt_sched::edf::{edf_feasible_preemptive_exhaustive, DemandConfig, DemandFormula};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_demand_formula");
    group.sample_size(40);
    let set = constrained_task_set(12, 0.85);
    for (label, formula) in [
        ("standard", DemandFormula::Standard),
        ("paper_ceiling", DemandFormula::PaperCeiling),
    ] {
        group.bench_with_input(BenchmarkId::new("formula", label), &formula, |b, &f| {
            b.iter(|| {
                // The exhaustive reference: both formulas walk the same
                // checkpoints, so the comparison isolates the formula cost
                // (the fast front would pick different scan modes per
                // formula).
                edf_feasible_preemptive_exhaustive(
                    black_box(&set),
                    &DemandConfig {
                        formula: f,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
