//! F3 bench: token-lateness evaluation across ring sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_bench::network;
use profirt_core::tcycle::{token_lateness, TcycleModel};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_tdel_sweep");
    group.sample_size(60);
    for masters in [2usize, 8, 16, 32] {
        let net = network(masters, 3, 0.9);
        group.bench_with_input(BenchmarkId::new("paper", masters), &masters, |b, _| {
            b.iter(|| token_lateness(black_box(&net), TcycleModel::Paper))
        });
        group.bench_with_input(BenchmarkId::new("refined", masters), &masters, |b, _| {
            b.iter(|| token_lateness(black_box(&net), TcycleModel::Refined))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
