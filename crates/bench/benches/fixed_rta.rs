//! T1 bench: fixed-priority response-time analysis cost, scaling with task
//! count, for the preemptive (Joseph & Pandya) and non-preemptive
//! (eqs. (1)–(2), both variants) recurrences.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_bench::{large, task_set};
use profirt_sched::fixed::{
    np_response_times, response_times, response_times_with, NpFixedConfig, PriorityMap, RtaConfig,
};
use profirt_sched::AnalysisScratch;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_fixed_rta");
    group.sample_size(30);
    for n in [4usize, 8, 16, 32, 64] {
        let set = task_set(n, 0.8);
        let pm = PriorityMap::rate_monotonic(&set);
        group.bench_with_input(BenchmarkId::new("preemptive", n), &n, |b, _| {
            b.iter(|| response_times(black_box(&set), &pm, &RtaConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("np_george", n), &n, |b, _| {
            b.iter(|| np_response_times(black_box(&set), &pm, &NpFixedConfig::george()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("np_paper", n), &n, |b, _| {
            b.iter(|| np_response_times(black_box(&set), &pm, &NpFixedConfig::paper()).unwrap())
        });
    }
    // Shared large-n fixture, with and without scratch reuse (same
    // workload `analysis_fast` sweeps over).
    let set = large::fp_rta_set();
    let pm = PriorityMap::rate_monotonic(&set);
    let mut scratch = AnalysisScratch::new();
    group.bench_with_input(BenchmarkId::new("large_48_u90", "scratch"), &(), |b, ()| {
        b.iter(|| {
            response_times_with(black_box(&set), &pm, &RtaConfig::default(), &mut scratch).unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("large_48_u90", "fresh"), &(), |b, ()| {
        b.iter(|| response_times(black_box(&set), &pm, &RtaConfig::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
