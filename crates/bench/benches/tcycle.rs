//! T5 bench: token-cycle bound evaluation (eqs. (13)–(14)) and the network
//! simulator's throughput (simulated bus-seconds per wall-second is the
//! harness cost that gates all validation experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use profirt_base::Time;
use profirt_bench::network;
use profirt_core::tcycle::{tcycle, TcycleModel};
use profirt_sim::{simulate_network, NetworkSimConfig, SimMaster, SimNetwork};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("t5_tcycle");
    group.sample_size(30);
    for masters in [2usize, 8, 16] {
        let net = network(masters, 3, 0.9);
        group.bench_with_input(BenchmarkId::new("eq13_paper", masters), &masters, |b, _| {
            b.iter(|| tcycle(black_box(&net), TcycleModel::Paper))
        });
        group.bench_with_input(
            BenchmarkId::new("eq13_refined", masters),
            &masters,
            |b, _| b.iter(|| tcycle(black_box(&net), TcycleModel::Refined)),
        );
    }
    // Simulator throughput at a fixed horizon.
    let net = network(4, 3, 0.9);
    let sim_net = SimNetwork {
        masters: net
            .masters
            .iter()
            .map(|m| SimMaster::stock(m.streams.clone()))
            .collect(),
        ttr: net.ttr,
        token_pass: Time::new(166),
    };
    group.sample_size(10);
    group.bench_function("simulate_1M_ticks", |b| {
        b.iter(|| {
            simulate_network(
                black_box(&sim_net),
                &NetworkSimConfig {
                    horizon: Time::new(1_000_000),
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
