//! `sim_kernel` bench: the streaming simulation kernel against the
//! pre-materialized baseline, over pinned fixtures.
//!
//! The fixtures bracket the design space:
//!
//! * `dense_long_horizon` — 3 masters × 6 short-period streams over a
//!   20M-tick horizon (~100k releases): the baseline materializes, sorts
//!   and walks a multi-megabyte release vector that the streaming kernel
//!   never allocates.
//! * `lp_backlog` — a single master whose low-priority arrival rate
//!   outruns its service rate: the pending backlog grows with the
//!   horizon, so the baseline's linear-scan + `Vec::remove` low-priority
//!   selection goes quadratic while the kernel's heap stays logarithmic.
//! * `churn_ring` — the dense fixture under membership churn + GAP
//!   polling (kernel-only: the reference models static rings). Static
//!   fixtures keep running through the static fast path, whose per-visit
//!   cost is unchanged by the churn machinery — the baseline JSON records
//!   both so CI can watch the fast path staying within noise of the
//!   pre-churn numbers.
//! * `mc_churn` — the churn fixture with mixed-criticality labels and
//!   the mode controller armed: records the mode machinery's overhead
//!   against the churn-only loop (and asserts the armed controller is a
//!   result-no-op on all-HI traffic first).
//! * `sparse_long_horizon` — long-period traffic over a 100M-tick
//!   horizon: almost every token rotation is idle, so the run is
//!   dominated by rotation bookkeeping unless the kernel fast-forwards
//!   idle spans in O(1). The fixture the `ffwd_speedup` floor watches.
//!
//! Besides the criterion groups, the bench writes `BENCH_sim.json`
//! (workspace `target/` by default, `BENCH_SIM_JSON` overrides) — the
//! perf baseline artifact CI uploads, recording per-fixture mean ns for
//! both engines, the streaming/materialized speedup, and — for every
//! static fixture — `unskipped_ns`/`ffwd_speedup`: the same kernel with
//! `fast_forward` disabled, so the idle-span skip's win (sparse) and
//! non-regression (dense) are both on record. Before timing, the bench
//! asserts static-fixture result equality between the kernel and the
//! reference (with the fast-forward on — the skip is inside the equality
//! pin), and churn-fixture determinism — a perf artifact from
//! disagreeing engines would be meaningless.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use profirt_base::json::{self, Value};
use profirt_base::{Criticality, StreamSet, Time};
use profirt_profibus::{LowPriorityTraffic, QueuePolicy};
use profirt_sim::{
    simulate_network, simulate_network_materialized, MembershipPlan, ModeSimConfig,
    NetworkSimConfig, SimMaster, SimNetwork,
};

/// Pinned release-dense, schedulable fixture: ~100k releases over the
/// horizon, jitter on some streams to exercise the look-ahead path.
fn dense_long_horizon() -> (SimNetwork, NetworkSimConfig) {
    let mk_master = |shift: i64| {
        let streams = StreamSet::from_cdtj(&[
            (80, 2_000 + shift, 2_000 + shift, 0),
            (60, 2_500, 2_500 + shift, 300),
            (90, 3_000 + shift, 3_000, 0),
            (70, 4_000, 4_000 + shift, 500),
            (50, 5_000 + shift, 5_000, 0),
            (60, 9_000, 9_000 + shift, 0),
        ])
        .unwrap();
        SimMaster::priority_queued(streams, QueuePolicy::DeadlineMonotonic)
    };
    let net = SimNetwork {
        masters: vec![mk_master(0), mk_master(100), mk_master(250)],
        ttr: Time::new(4_000),
        token_pass: Time::new(166),
    };
    let cfg = NetworkSimConfig {
        horizon: Time::new(20_000_000),
        ..Default::default()
    };
    (net, cfg)
}

/// Pinned fixture whose low-priority backlog grows with the horizon:
/// arrivals every 50 ticks, service bounded by the rotation budget.
fn lp_backlog() -> (SimNetwork, NetworkSimConfig) {
    let streams = profirt_base::StreamSet::from_cdt(&[(300, 40_000, 30_000)]).unwrap();
    let master = SimMaster::stock(streams)
        .with_low_priority(LowPriorityTraffic::new(Time::new(300), Time::new(50)));
    let net = SimNetwork {
        masters: vec![master],
        ttr: Time::new(10_000),
        token_pass: Time::new(166),
    };
    let cfg = NetworkSimConfig {
        horizon: Time::new(1_000_000),
        ..Default::default()
    };
    (net, cfg)
}

/// The dense fixture under mid-run joins/leaves plus GAP maintenance:
/// the dynamic-membership loop's overhead fixture. Kernel-only — the
/// materialized reference is gated to static rings.
fn churn_ring() -> (SimNetwork, NetworkSimConfig) {
    let (net, cfg) = dense_long_horizon();
    let horizon = cfg.horizon;
    let cfg = NetworkSimConfig {
        gap_factor: 5,
        membership: MembershipPlan::new()
            .power_cycle(
                1,
                Time::new(horizon.ticks() / 5),
                Time::new(horizon.ticks() / 3),
            )
            .power_cycle(
                2,
                Time::new(horizon.ticks() / 2),
                Time::new(horizon.ticks() * 7 / 10),
            ),
        ..cfg
    };
    (net, cfg)
}

/// The churn fixture with the mixed-criticality mode controller armed:
/// every master's streams alternate HI/LO, so ring shrinkage degrades
/// the mode and sheds half the traffic until match-up. The overhead
/// record pairs this against the churn-only loop on identical traffic.
fn mc_churn() -> (SimNetwork, NetworkSimConfig) {
    let (mut net, cfg) = churn_ring();
    for m in &mut net.masters {
        net_labels(m);
    }
    let cfg = NetworkSimConfig {
        mode: ModeSimConfig::enabled(),
        ..cfg
    };
    (net, cfg)
}

/// Pinned sparse fixture: periods three to four orders of magnitude above
/// the rotation time, over a 100M-tick horizon. Without the idle-span
/// fast-forward the kernel walks ~300k idle rotations (~600k visits);
/// with it the visit count tracks the ~500 releases instead.
fn sparse_long_horizon() -> (SimNetwork, NetworkSimConfig) {
    let mk_master = |shift: i64| {
        let streams =
            StreamSet::from_cdt(&[(120, 400_000, 1_000_000 + shift), (90, 800_000, 2_000_000)])
                .unwrap();
        SimMaster::stock(streams)
    };
    let net = SimNetwork {
        masters: vec![mk_master(0), mk_master(7_000)],
        ttr: Time::new(4_000),
        token_pass: Time::new(166),
    };
    let cfg = NetworkSimConfig {
        horizon: Time::new(100_000_000),
        ..Default::default()
    };
    (net, cfg)
}

fn net_labels(m: &mut SimMaster) {
    m.criticality = (0..m.streams.len())
        .map(|i| {
            if i % 2 == 1 {
                Criticality::Lo
            } else {
                Criticality::Hi
            }
        })
        .collect();
}

fn fixtures() -> Vec<(&'static str, SimNetwork, NetworkSimConfig)> {
    let (d_net, d_cfg) = dense_long_horizon();
    let (l_net, l_cfg) = lp_backlog();
    let (s_net, s_cfg) = sparse_long_horizon();
    vec![
        ("dense_long_horizon", d_net, d_cfg),
        ("lp_backlog", l_net, l_cfg),
        ("sparse_long_horizon", s_net, s_cfg),
    ]
}

/// The same config with the idle-span fast-forward disabled: the
/// per-visit reference loop the `ffwd_speedup` records compare against.
fn no_ffwd(cfg: &NetworkSimConfig) -> NetworkSimConfig {
    NetworkSimConfig {
        fast_forward: false,
        ..cfg.clone()
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernel");
    group.sample_size(10);
    for (label, net, cfg) in fixtures() {
        group.bench_with_input(BenchmarkId::new("streaming", label), &(), |b, ()| {
            b.iter(|| simulate_network(black_box(&net), &cfg))
        });
        group.bench_with_input(BenchmarkId::new("materialized", label), &(), |b, ()| {
            b.iter(|| simulate_network_materialized(black_box(&net), &cfg))
        });
    }
    // The sparse fixture without the idle-span skip: the gap between this
    // and `streaming/sparse_long_horizon` is the fast-forward's win.
    let (sparse_net, sparse_cfg) = sparse_long_horizon();
    let sparse_off = no_ffwd(&sparse_cfg);
    group.bench_with_input(
        BenchmarkId::new("unskipped", "sparse_long_horizon"),
        &(),
        |b, ()| b.iter(|| simulate_network(black_box(&sparse_net), &sparse_off)),
    );
    let (churn_net, churn_cfg) = churn_ring();
    group.bench_with_input(BenchmarkId::new("streaming", "churn_ring"), &(), |b, ()| {
        b.iter(|| simulate_network(black_box(&churn_net), &churn_cfg))
    });
    let (mc_net, mc_cfg) = mc_churn();
    group.bench_with_input(BenchmarkId::new("streaming", "mc_churn"), &(), |b, ()| {
        b.iter(|| simulate_network(black_box(&mc_net), &mc_cfg))
    });
    group.finish();
}

criterion_group!(benches, bench);

/// Mean per-iteration nanoseconds of `f` over `iters` runs.
fn mean_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Writes the `BENCH_sim.json` perf baseline (the artifact CI uploads).
fn write_baseline(full: bool) {
    let iters = if full { 5 } else { 1 };
    let mut rows = Vec::new();
    for (label, net, cfg) in fixtures() {
        // Verdict check before timing: the engines must agree on every
        // static fixture or the speedup numbers are meaningless. The
        // default config fast-forwards idle spans, so the idle-span skip
        // sits inside this equality pin; the explicit unskipped run must
        // land on the identical result too.
        assert_eq!(
            simulate_network(&net, &cfg),
            simulate_network_materialized(&net, &cfg),
            "engine disagreement on {label}"
        );
        assert_eq!(
            simulate_network(&net, &cfg),
            simulate_network(&net, &no_ffwd(&cfg)),
            "fast-forward changed the result on {label}"
        );
        let streaming = mean_ns(iters, || {
            black_box(simulate_network(black_box(&net), &cfg));
        });
        let materialized = mean_ns(iters, || {
            black_box(simulate_network_materialized(black_box(&net), &cfg));
        });
        let unskipped = mean_ns(iters, || {
            black_box(simulate_network(black_box(&net), &no_ffwd(&cfg)));
        });
        rows.push(json::object([
            ("fixture", Value::Str(label.to_string())),
            ("horizon_ticks", Value::Int(cfg.horizon.ticks())),
            ("streaming_ns", Value::Float(streaming)),
            ("materialized_ns", Value::Float(materialized)),
            ("speedup", Value::Float(materialized / streaming)),
            ("unskipped_ns", Value::Float(unskipped)),
            ("ffwd_speedup", Value::Float(unskipped / streaming)),
        ]));
    }
    // Churn fixture: kernel-only (the reference is static-ring-gated);
    // the record pairs the dynamic loop against the static fast path on
    // the identical traffic so fast-path regressions stand out.
    let (churn_net, churn_cfg) = churn_ring();
    assert_eq!(
        simulate_network(&churn_net, &churn_cfg),
        simulate_network(&churn_net, &churn_cfg),
        "churn fixture must be deterministic"
    );
    let (static_net, static_cfg) = dense_long_horizon();
    let static_ns = mean_ns(iters, || {
        black_box(simulate_network(black_box(&static_net), &static_cfg));
    });
    let churn_ns = mean_ns(iters, || {
        black_box(simulate_network(black_box(&churn_net), &churn_cfg));
    });
    rows.push(json::object([
        ("fixture", Value::Str("churn_ring".to_string())),
        ("horizon_ticks", Value::Int(churn_cfg.horizon.ticks())),
        ("streaming_ns", Value::Float(churn_ns)),
        ("static_fast_path_ns", Value::Float(static_ns)),
        ("churn_overhead", Value::Float(churn_ns / static_ns)),
    ]));
    // Mode-controller fixture: on all-HI traffic the armed controller
    // must be a result-no-op (it may switch modes, but sheds nothing) —
    // asserted before timing. The recorded overhead then pairs the
    // mixed-criticality run against the churn-only loop on identical
    // traffic, isolating the mode machinery's per-visit cost.
    let (mc_net, mc_cfg) = mc_churn();
    let all_hi_cfg = NetworkSimConfig {
        mode: ModeSimConfig::enabled(),
        ..churn_cfg.clone()
    };
    assert_eq!(
        simulate_network(&churn_net, &churn_cfg),
        simulate_network(&churn_net, &all_hi_cfg),
        "armed controller must not change all-HI results"
    );
    assert_eq!(
        simulate_network(&mc_net, &mc_cfg),
        simulate_network(&mc_net, &mc_cfg),
        "mc_churn fixture must be deterministic"
    );
    let mc_ns = mean_ns(iters, || {
        black_box(simulate_network(black_box(&mc_net), &mc_cfg));
    });
    rows.push(json::object([
        ("fixture", Value::Str("mc_churn".to_string())),
        ("horizon_ticks", Value::Int(mc_cfg.horizon.ticks())),
        ("streaming_ns", Value::Float(mc_ns)),
        ("churn_only_ns", Value::Float(churn_ns)),
        ("mode_overhead", Value::Float(mc_ns / churn_ns)),
    ]));
    let doc = json::object([
        ("bench", Value::Str("sim_kernel".to_string())),
        ("samples_per_engine", Value::Int(iters as i64)),
        ("smoke_run", Value::Bool(!full)),
        ("fixtures", Value::Array(rows)),
    ]);
    let path = std::env::var("BENCH_SIM_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_sim.json").to_string()
    });
    match std::fs::write(&path, doc.pretty() + "\n") {
        Ok(()) => println!("[baseline] wrote {path}"),
        Err(e) => eprintln!("[baseline] cannot write {path}: {e}"),
    }
}

fn main() {
    benches();
    // Full measurement only under `cargo bench` (the harness passes
    // `--bench`); test/smoke invocations still emit a valid artifact.
    let full = std::env::args().any(|a| a == "--bench");
    write_baseline(full);
}
