//! F1 bench: the acceptance-ratio sweep point (the unit of work behind the
//! schedulability-ratio curves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use profirt_experiments::exps::f1;
use profirt_experiments::ExpConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_sched_ratio");
    group.sample_size(10);
    let cfg = ExpConfig {
        replications: 8,
        workers: 2,
        ..ExpConfig::quick()
    };
    for tightness in [0.8f64, 0.4, 0.2] {
        group.bench_with_input(
            BenchmarkId::new("sweep_point", format!("{tightness:.1}")),
            &tightness,
            |b, &t| b.iter(|| f1::point(&cfg, t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
