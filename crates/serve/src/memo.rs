//! A bounded LRU memo for analysis results.
//!
//! Each engine shard owns one: near-duplicate queries — the campaign
//! matrix asking the same ring under four policies, an admission
//! controller re-probing after every reject — hit cache instead of
//! re-running the fixpoints. Keys are the canonicalized request shape
//! ([`crate::proto::Request::key`]: the request object minus its `"id"`,
//! compact-rendered), values are the cached `"result"` [`Value`]; the
//! response envelope is rebuilt per request, so a cache hit is
//! byte-identical to a fresh evaluation.
//!
//! Recency is stamp-based: a monotone tick per access, eviction removes
//! the minimum stamp. Eviction is `O(n)` over the map — deliberate: caps
//! are small (hundreds), and a scan beats the intrusive-list bookkeeping
//! an exact LRU would need for shapes this size.

use std::collections::HashMap;

use profirt_base::json::Value;

/// A bounded least-recently-used map from canonical request keys to
/// cached result values. Capacity 0 disables caching entirely.
#[derive(Debug, Default)]
pub struct Memo {
    cap: usize,
    tick: u64,
    map: HashMap<String, (Value, u64)>,
}

impl Memo {
    /// Creates a memo holding at most `cap` entries (0 = disabled).
    pub fn new(cap: usize) -> Memo {
        Memo {
            cap,
            tick: 0,
            map: HashMap::with_capacity(cap.min(1024)),
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, refreshing its recency on hit.
    pub fn get(&mut self, key: &str) -> Option<Value> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(value, stamp)| {
            *stamp = tick;
            value.clone()
        })
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when at capacity.
    pub fn put(&mut self, key: &str, value: Value) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(key) && self.map.len() >= self.cap {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key.to_string(), (value, self.tick));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: i64) -> Value {
        Value::Int(n)
    }

    #[test]
    fn hit_and_miss() {
        let mut m = Memo::new(4);
        assert_eq!(m.get("a"), None);
        m.put("a", v(1));
        assert_eq!(m.get("a"), Some(v(1)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut m = Memo::new(2);
        m.put("a", v(1));
        m.put("b", v(2));
        // Touch "a" so "b" is the LRU entry.
        assert_eq!(m.get("a"), Some(v(1)));
        m.put("c", v(3));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("b"), None, "LRU entry must have been evicted");
        assert_eq!(m.get("a"), Some(v(1)));
        assert_eq!(m.get("c"), Some(v(3)));
    }

    #[test]
    fn refresh_does_not_grow() {
        let mut m = Memo::new(2);
        m.put("a", v(1));
        m.put("a", v(2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("a"), Some(v(2)));
    }

    #[test]
    fn cap_zero_disables() {
        let mut m = Memo::new(0);
        m.put("a", v(1));
        assert!(m.is_empty());
        assert_eq!(m.get("a"), None);
    }
}
