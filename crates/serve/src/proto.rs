//! The wire protocol: request parsing, pure evaluation, and canonical
//! response rendering.
//!
//! One request per line, one response per line, both JSON. A request is
//! an object with an `"op"` field selecting the query and an optional
//! `"id"` echoed verbatim in the response (any JSON value — correlate
//! pipelined requests however you like). Responses are rendered with
//! [`Value::compact`]: single line, no insignificant whitespace, object
//! keys sorted — equal answers are equal bytes, which is what the memo
//! cache and the differential tests rely on.
//!
//! Success: `{"id":…,"ok":true,"op":"…","result":{…}}`.
//! Failure: `{"id":…,"ok":false,"error":{"kind":"…","detail":"…"}}`.
//!
//! The split between the two follows the campaign evaluator's precedent:
//! an *analysis* outcome — including "this set is not schedulable" and
//! "utilization ≥ 1, the analysis rejects the set" — is a successful
//! answer (`ok:true` with `"feasible":false` and a `"reason"`), while
//! wire-level problems (malformed JSON, unknown ops, invalid model
//! parameters, queue overload) are errors with a typed `kind`.
//!
//! [`eval`] is deliberately free of any serving machinery: the engine is
//! a scheduler around it, and [`answer_line`] — parse, evaluate, render
//! with fresh scratch — is the reference implementation the differential
//! tests compare the whole queue/shard/memo pipeline against.

use profirt_base::json::{self, Value};
use profirt_base::{Criticality, MessageStream, StreamSet, Task, TaskSet, Time};
use profirt_core::{
    MasterConfig, ModeAnalysis, NetworkAnalysis, NetworkConfig, PolicyKind, PolicyTuning,
};
use profirt_sched::edf::{
    edf_feasible_nonpreemptive_with, edf_feasible_preemptive_with, edf_response_times_with,
    edf_utilization_test, np_edf_response_times_with, DemandConfig, DemandFormula, EdfRtaConfig,
    NpBlockingModel, NpEdfRtaConfig, NpFeasibilityConfig,
};
use profirt_sched::fixed::{
    hyperbolic_schedulable, np_response_times_with, response_times_with,
    rm_utilization_schedulable, NpFixedConfig, PriorityMap, RtaConfig,
};
use profirt_sched::AnalysisScratch;

/// Default cap on one request line, in bytes. Generous for any realistic
/// ring spec (a 32-master, 32-stream network renders well under 8 KiB)
/// while bounding per-connection memory — the line-length analogue of the
/// parser's nesting cap.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Default per-hop token pass time in ticks (SD4 + TSYN + TID2 at
/// 500 kbit/s), matching the CLI config-file default.
pub const DEFAULT_TOKEN_PASS: i64 = 166;

/// The task-set schedulability tests servable through
/// `{"op":"task_feasibility"}` — the same spellings the campaign engine's
/// `cpu` scenarios accept.
pub const TASK_TESTS: [&str; 12] = [
    "rm-ll",
    "rm-hb",
    "rm-rta",
    "dm-rta",
    "np-dm",
    "edf-util",
    "edf-demand",
    "edf-demand-paper",
    "np-edf-zs",
    "np-edf-george",
    "edf-rta",
    "np-edf-rta",
];

/// A wire-level failure: a stable machine-readable `kind` plus a
/// human-readable detail. Rendered as the response's `"error"` object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Stable error class: `"oversized"`, `"parse"`, `"schema"`,
    /// `"unknown_op"`, `"unknown_policy"`, `"unknown_test"`, `"model"`,
    /// `"overloaded"`, `"shed"`, `"closed"`, or `"internal"`.
    pub kind: &'static str,
    /// Free-form diagnostic text.
    pub detail: String,
}

fn wire(kind: &'static str, detail: impl Into<String>) -> WireError {
    WireError {
        kind,
        detail: detail.into(),
    }
}

/// A request that failed before evaluation, with whatever `id` could be
/// recovered from the line (so even malformed requests correlate).
#[derive(Clone, Debug)]
pub struct RequestError {
    /// The request's `id` if the document parsed far enough to have one.
    pub id: Value,
    /// What went wrong.
    pub err: WireError,
}

/// A parsed, validated request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Echo token (`Value::Null` when absent).
    pub id: Value,
    /// Canonical memo key: the request object minus `"id"`, compact-
    /// rendered. Two requests asking the same question have equal keys
    /// regardless of field order or correlation ids.
    pub key: String,
    /// The validated operation.
    pub op: Op,
}

/// The operations the daemon answers.
#[derive(Clone, Debug)]
pub enum Op {
    /// Liveness probe.
    Ping,
    /// Engine counters (served by the engine, not by [`eval`]).
    Stats,
    /// Whole-ring schedulability: is every stream's bound within its
    /// deadline under the given policy?
    Feasibility {
        /// Queue policy to analyze under.
        policy: PolicyKind,
        /// The ring specification.
        net: NetworkConfig,
    },
    /// Per-stream worst-case response-time bounds.
    ResponseTimes {
        /// Queue policy to analyze under.
        policy: PolicyKind,
        /// The ring specification.
        net: NetworkConfig,
    },
    /// Admission control: would the ring stay fully schedulable with one
    /// more stream on the given master?
    Admit {
        /// Queue policy to analyze under.
        policy: PolicyKind,
        /// The ring as currently admitted.
        net: NetworkConfig,
        /// Index of the master the stream would join.
        master: usize,
        /// The candidate stream.
        stream: MessageStream,
        /// The candidate's declared criticality, when the request carries
        /// one. `None` keeps the legacy all-HI semantics (and the legacy
        /// result shape) byte-identical.
        criticality: Option<Criticality>,
    },
    /// A §2-style processor task-set schedulability test (see
    /// [`TASK_TESTS`] for the accepted names).
    TaskFeasibility {
        /// Test name.
        test: String,
        /// The task set under test.
        tasks: TaskSet,
    },
}

impl Op {
    /// The canonical op name, echoed in responses.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::Feasibility { .. } => "feasibility",
            Op::ResponseTimes { .. } => "response_times",
            Op::Admit { .. } => "admit",
            Op::TaskFeasibility { .. } => "task_feasibility",
        }
    }
}

fn field_i64(obj: &Value, key: &str, default: Option<i64>) -> Result<i64, WireError> {
    match obj.get(key) {
        Some(v) => v
            .as_i64()
            .ok_or_else(|| wire("schema", format!("field {key:?} must be an integer"))),
        None => default.ok_or_else(|| wire("schema", format!("missing field {key:?}"))),
    }
}

fn parse_policy(obj: &Value) -> Result<PolicyKind, WireError> {
    let name = obj
        .get("policy")
        .ok_or_else(|| wire("schema", "missing field \"policy\""))?
        .as_str()
        .ok_or_else(|| wire("schema", "field \"policy\" must be a string"))?;
    PolicyKind::parse(name).ok_or_else(|| {
        wire(
            "unknown_policy",
            format!("unknown policy {name:?} (want fcfs|dm|dm-paper|edf)"),
        )
    })
}

fn parse_stream(v: &Value) -> Result<MessageStream, WireError> {
    let ch = field_i64(v, "ch", None)?;
    let d = field_i64(v, "d", None)?;
    let t = field_i64(v, "t", None)?;
    let j = field_i64(v, "j", Some(0))?;
    MessageStream::with_jitter(ch, d, t, j).map_err(|e| wire("model", e.to_string()))
}

fn parse_net(obj: &Value) -> Result<NetworkConfig, WireError> {
    let net = obj
        .get("net")
        .ok_or_else(|| wire("schema", "missing field \"net\""))?;
    let ttr = field_i64(net, "ttr", None)?;
    let token_pass = field_i64(net, "token_pass", Some(DEFAULT_TOKEN_PASS))?;
    let masters = net
        .get("masters")
        .ok_or_else(|| wire("schema", "missing field \"net.masters\""))?
        .as_array()
        .ok_or_else(|| wire("schema", "field \"net.masters\" must be an array"))?
        .iter()
        .map(|m| {
            let cl = field_i64(m, "cl", Some(0))?;
            let streams = m
                .get("streams")
                .ok_or_else(|| wire("schema", "missing field \"streams\" in master"))?
                .as_array()
                .ok_or_else(|| wire("schema", "field \"streams\" must be an array"))?
                .iter()
                .map(parse_stream)
                .collect::<Result<Vec<_>, _>>()?;
            let set = StreamSet::new(streams).map_err(|e| wire("model", e.to_string()))?;
            Ok(MasterConfig::new(set, Time::new(cl)))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    Ok(NetworkConfig::new(masters, Time::new(ttr))
        .map_err(|e| wire("model", e.to_string()))?
        .with_token_pass(Time::new(token_pass)))
}

fn parse_tasks(obj: &Value) -> Result<TaskSet, WireError> {
    let tasks = obj
        .get("tasks")
        .ok_or_else(|| wire("schema", "missing field \"tasks\""))?
        .as_array()
        .ok_or_else(|| wire("schema", "field \"tasks\" must be an array"))?
        .iter()
        .map(|t| {
            let c = field_i64(t, "c", None)?;
            let d = field_i64(t, "d", None)?;
            let period = field_i64(t, "t", None)?;
            let j = field_i64(t, "j", Some(0))?;
            Task::with_jitter(c, d, period, j).map_err(|e| wire("model", e.to_string()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    TaskSet::new(tasks).map_err(|e| wire("model", e.to_string()))
}

/// Parses and validates one request line. On failure the recovered `id`
/// (if any) rides along so the error response still correlates.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let fail = |id: Value, err: WireError| Err(RequestError { id, err });
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return fail(Value::Null, wire("parse", e.to_string())),
    };
    let Some(obj) = doc.as_object() else {
        return fail(Value::Null, wire("schema", "request must be a JSON object"));
    };
    let id = obj.get("id").cloned().unwrap_or(Value::Null);
    // Canonical memo key: the request minus its correlation id.
    let key = {
        let mut canonical = obj.clone();
        canonical.remove("id");
        Value::Object(canonical).compact()
    };
    let op_name = match obj.get("op").map(|v| v.as_str()) {
        Some(Some(name)) => name,
        Some(None) => return fail(id, wire("schema", "field \"op\" must be a string")),
        None => return fail(id, wire("schema", "missing field \"op\"")),
    };
    let parsed = match op_name {
        "ping" => Ok(Op::Ping),
        "stats" => Ok(Op::Stats),
        "feasibility" => parse_policy(&doc).and_then(|policy| {
            Ok(Op::Feasibility {
                policy,
                net: parse_net(&doc)?,
            })
        }),
        "response_times" => parse_policy(&doc).and_then(|policy| {
            Ok(Op::ResponseTimes {
                policy,
                net: parse_net(&doc)?,
            })
        }),
        "admit" => parse_policy(&doc).and_then(|policy| {
            let net = parse_net(&doc)?;
            let sv = doc
                .get("stream")
                .ok_or_else(|| wire("schema", "missing field \"stream\""))?;
            let master = field_i64(sv, "master", None)?;
            let master = usize::try_from(master)
                .ok()
                .filter(|&k| k < net.n_masters())
                .ok_or_else(|| {
                    wire(
                        "schema",
                        format!(
                            "field \"stream.master\" must index a master (0..{})",
                            net.n_masters()
                        ),
                    )
                })?;
            let criticality = match sv.get("criticality") {
                None | Some(Value::Null) => None,
                Some(v) => {
                    let name = v.as_str().ok_or_else(|| {
                        wire("schema", "field \"stream.criticality\" must be a string")
                    })?;
                    Some(Criticality::parse(name).ok_or_else(|| {
                        wire(
                            "schema",
                            format!(
                                "unknown criticality {name:?} (want \"lo\", \"mid\" or \"hi\")"
                            ),
                        )
                    })?)
                }
            };
            Ok(Op::Admit {
                policy,
                net,
                master,
                stream: parse_stream(sv)?,
                criticality,
            })
        }),
        "task_feasibility" => {
            let test = match doc.get("test").map(|v| v.as_str()) {
                Some(Some(name)) => name.to_string(),
                Some(None) => return fail(id, wire("schema", "field \"test\" must be a string")),
                None => return fail(id, wire("schema", "missing field \"test\"")),
            };
            if !TASK_TESTS.contains(&test.as_str()) {
                return fail(
                    id,
                    wire("unknown_test", format!("unknown task test {test:?}")),
                );
            }
            parse_tasks(&doc).map(|tasks| Op::TaskFeasibility { test, tasks })
        }
        other => return fail(id, wire("unknown_op", format!("unknown op {other:?}"))),
    };
    match parsed {
        Ok(op) => Ok(Request { id, key, op }),
        Err(err) => fail(id, err),
    }
}

/// Reusable per-shard working memory: the policy-dispatch scratch for
/// network analyses plus the `profirt_sched` scratch for task-set tests.
#[derive(Debug, Default)]
pub struct EvalScratch {
    policy: profirt_core::PolicyScratch,
    tasks: AnalysisScratch,
}

fn feasibility_result(an: &NetworkAnalysis) -> Value {
    let streams = an.masters.iter().map(Vec::len).sum::<usize>();
    let sched = an
        .masters
        .iter()
        .flatten()
        .filter(|r| r.schedulable)
        .count();
    json::object([
        ("feasible", Value::Bool(an.all_schedulable())),
        ("streams", Value::Int(streams as i64)),
        ("schedulable_streams", Value::Int(sched as i64)),
        ("tcycle", Value::Int(an.tcycle.ticks())),
        ("tdel", Value::Int(an.tdel.ticks())),
    ])
}

/// The `ok:true, feasible:false` shape for analysis-level rejections
/// (utilization ≥ 1, divergent recurrences): the analysis *answered* —
/// the set is not admissible — and says why.
fn infeasible_result(reason: impl std::fmt::Display) -> Value {
    json::object([
        ("feasible", Value::Bool(false)),
        ("reason", Value::Str(reason.to_string())),
    ])
}

fn response_times_result(an: &NetworkAnalysis) -> Value {
    let rows = an
        .masters
        .iter()
        .flatten()
        .map(|r| {
            json::object([
                ("master", Value::Int(r.master as i64)),
                ("stream", Value::Int(r.stream as i64)),
                ("r", Value::Int(r.response_time.ticks())),
                ("d", Value::Int(r.deadline.ticks())),
                ("schedulable", Value::Bool(r.schedulable)),
            ])
        })
        .collect();
    json::object([
        ("feasible", Value::Bool(an.all_schedulable())),
        ("tcycle", Value::Int(an.tcycle.ticks())),
        ("tdel", Value::Int(an.tdel.ticks())),
        ("rows", Value::Array(rows)),
    ])
}

fn eval_admit(
    policy: PolicyKind,
    net: &NetworkConfig,
    master: usize,
    stream: MessageStream,
    criticality: Option<Criticality>,
    tuning: &PolicyTuning,
    scratch: &mut EvalScratch,
) -> Result<Value, WireError> {
    // Candidate ring: the existing spec with the stream appended to the
    // target master. Reconstruction can fail only on model-level limits
    // (e.g. overflow) — that is a definitive "no".
    let mut masters = net.masters.clone();
    let mut streams = masters[master].streams.streams().to_vec();
    streams.push(stream);
    let candidate = StreamSet::new(streams)
        .and_then(|set| {
            let n = set.len();
            let mut mc = MasterConfig::new(set, masters[master].cl);
            // The candidate is the last stream; all existing wire streams
            // are HI. Only a sub-HI label changes the analysis shape.
            if criticality.is_some_and(|c| c.shed_in_hi_mode()) {
                let mut labels = vec![Criticality::Hi; n];
                labels[n - 1] = criticality.unwrap_or_default();
                mc = mc.with_criticality(labels);
            }
            masters[master] = mc;
            NetworkConfig::new(masters, net.ttr)
        })
        .map(|c| c.with_token_pass(net.token_pass));
    let candidate = match candidate {
        Ok(c) => c,
        Err(e) => {
            return Ok(json::object([
                ("admit", Value::Bool(false)),
                ("reason", Value::Str(e.to_string())),
            ]))
        }
    };
    // Fields shared by the legacy and the criticality-labelled shapes.
    let base_fields = |an: &NetworkAnalysis| {
        let r_new = an.masters[master]
            .last()
            .map(|r| r.response_time.ticks())
            .unwrap_or(0);
        let streams = an.masters.iter().map(Vec::len).sum::<usize>();
        let sched = an
            .masters
            .iter()
            .flatten()
            .filter(|r| r.schedulable)
            .count();
        vec![
            ("streams", Value::Int(streams as i64)),
            ("schedulable_streams", Value::Int(sched as i64)),
            ("tcycle", Value::Int(an.tcycle.ticks())),
            ("r_new", Value::Int(r_new)),
        ]
    };
    let reject = |e: &dyn std::fmt::Display| {
        Ok(json::object([
            ("admit", Value::Bool(false)),
            ("reason", Value::Str(e.to_string())),
        ]))
    };
    match criticality {
        // Legacy shape: no criticality field in, none out.
        None => match policy.analyze_with_scratch(&candidate, tuning, &mut scratch.policy) {
            Ok(an) => {
                let mut fields = vec![("admit", Value::Bool(an.all_schedulable()))];
                fields.extend(base_fields(&an));
                Ok(json::object(fields))
            }
            Err(e) => reject(&e),
        },
        // Labelled shape: a two-verdict answer. A HI candidate must keep
        // both modes feasible; a sub-HI one is shed in HI mode, so only
        // the stable-phase (LO) verdict gates it — but the HI baseline
        // must stay feasible either way.
        Some(c) => {
            match ModeAnalysis::analyze_with_scratch(
                policy,
                &candidate,
                tuning,
                &mut scratch.policy,
            ) {
                Ok(man) => {
                    let admit = man.lo_schedulable() && man.hi_schedulable();
                    let mut fields = vec![
                        ("admit", Value::Bool(admit)),
                        ("criticality", Value::Str(c.name().to_string())),
                        ("hi_feasible", Value::Bool(man.hi_schedulable())),
                    ];
                    fields.extend(base_fields(&man.lo));
                    Ok(json::object(fields))
                }
                Err(e) => reject(&e),
            }
        }
    }
}

fn wcrts_value(wcrts: Option<Vec<Time>>) -> Value {
    match wcrts {
        Some(ws) => Value::Array(ws.iter().map(|w| Value::Int(w.ticks())).collect()),
        None => Value::Null,
    }
}

fn task_result(accepted: bool, wcrts: Value) -> Value {
    json::object([("accepted", Value::Bool(accepted)), ("wcrts", wcrts)])
}

fn eval_task_test(test: &str, set: &TaskSet, scratch: &mut AnalysisScratch) -> Value {
    let fixed = |pm: &PriorityMap, np: bool, scratch: &mut AnalysisScratch| {
        let an = if np {
            np_response_times_with(set, pm, &NpFixedConfig::george(), scratch)
        } else {
            response_times_with(set, pm, &RtaConfig::default(), scratch)
        };
        match an {
            Ok(an) => task_result(an.all_schedulable(), wcrts_value(an.wcrts())),
            Err(e) => infeasible_task(e),
        }
    };
    let edf = |np: bool, scratch: &mut AnalysisScratch| {
        let details = if np {
            np_edf_response_times_with(set, &NpEdfRtaConfig::default(), scratch).map(|(_, d)| d)
        } else {
            edf_response_times_with(set, &EdfRtaConfig::default(), scratch).map(|(_, d)| d)
        };
        match details {
            Ok(details) => {
                let ok = set.iter().all(|(i, task)| details[i].wcrt <= task.d);
                let ws = details.iter().map(|d| d.wcrt).collect();
                task_result(ok, wcrts_value(Some(ws)))
            }
            Err(e) => infeasible_task(e),
        }
    };
    let demand = |formula: DemandFormula, scratch: &mut AnalysisScratch| {
        let cfg = DemandConfig {
            formula,
            ..Default::default()
        };
        match edf_feasible_preemptive_with(set, &cfg, scratch) {
            Ok(f) => task_result(f.feasible, Value::Null),
            Err(e) => infeasible_task(e),
        }
    };
    let np_demand = |blocking: NpBlockingModel, scratch: &mut AnalysisScratch| {
        let cfg = NpFeasibilityConfig {
            blocking,
            formula: DemandFormula::Standard,
            ..Default::default()
        };
        match edf_feasible_nonpreemptive_with(set, &cfg, scratch) {
            Ok(f) => task_result(f.feasible, Value::Null),
            Err(e) => infeasible_task(e),
        }
    };
    match test {
        "rm-ll" => task_result(
            rm_utilization_schedulable(set).is_schedulable(),
            Value::Null,
        ),
        "rm-hb" => task_result(hyperbolic_schedulable(set).is_schedulable(), Value::Null),
        "rm-rta" => fixed(&PriorityMap::rate_monotonic(set), false, scratch),
        "dm-rta" => fixed(&PriorityMap::deadline_monotonic(set), false, scratch),
        "np-dm" => fixed(&PriorityMap::deadline_monotonic(set), true, scratch),
        "edf-util" => task_result(
            edf_utilization_test(set).at_most_one && set.all_implicit_deadlines(),
            Value::Null,
        ),
        "edf-demand" => demand(DemandFormula::Standard, scratch),
        "edf-demand-paper" => demand(DemandFormula::PaperCeiling, scratch),
        "np-edf-zs" => np_demand(NpBlockingModel::ZhengShin, scratch),
        "np-edf-george" => np_demand(NpBlockingModel::George, scratch),
        "edf-rta" => edf(false, scratch),
        // parse_request validated against TASK_TESTS, so this arm is the
        // last member, not a catch-all that could mask typos.
        _ => edf(true, scratch),
    }
}

fn infeasible_task(reason: impl std::fmt::Display) -> Value {
    json::object([
        ("accepted", Value::Bool(false)),
        ("wcrts", Value::Null),
        ("reason", Value::Str(reason.to_string())),
    ])
}

/// Evaluates one request to its `"result"` value. Pure: same request,
/// same tuning → same value, independent of scratch history (every
/// scratch buffer is cleared before use — pinned by the core tests).
///
/// `Op::Stats` is the one op this function cannot answer (counters live
/// in the engine); it returns a `"schema"` error here so the pure path
/// stays total.
pub fn eval(
    req: &Request,
    tuning: &PolicyTuning,
    scratch: &mut EvalScratch,
) -> Result<Value, WireError> {
    match &req.op {
        Op::Ping => Ok(json::object([("pong", Value::Bool(true))])),
        Op::Stats => Err(wire(
            "schema",
            "op \"stats\" is only answered by a running engine",
        )),
        Op::Feasibility { policy, net } => {
            match policy.analyze_with_scratch(net, tuning, &mut scratch.policy) {
                Ok(an) => Ok(feasibility_result(&an)),
                Err(e) => Ok(infeasible_result(e)),
            }
        }
        Op::ResponseTimes { policy, net } => {
            match policy.analyze_with_scratch(net, tuning, &mut scratch.policy) {
                Ok(an) => Ok(response_times_result(&an)),
                Err(e) => Ok(infeasible_result(e)),
            }
        }
        Op::Admit {
            policy,
            net,
            master,
            stream,
            criticality,
        } => eval_admit(
            *policy,
            net,
            *master,
            *stream,
            *criticality,
            tuning,
            scratch,
        ),
        Op::TaskFeasibility { test, tasks } => Ok(eval_task_test(test, tasks, &mut scratch.tasks)),
    }
}

/// Renders an analysis network back to the wire schema's `"net"` value —
/// the inverse of the parser, used by the load harness and the test
/// corpora to build request lines from generated networks.
pub fn net_to_value(net: &NetworkConfig) -> Value {
    let masters = net
        .masters
        .iter()
        .map(|m| {
            let streams = m
                .streams
                .streams()
                .iter()
                .map(|s| {
                    json::object([
                        ("ch", Value::Int(s.ch.ticks())),
                        ("d", Value::Int(s.d.ticks())),
                        ("t", Value::Int(s.t.ticks())),
                        ("j", Value::Int(s.j.ticks())),
                    ])
                })
                .collect();
            json::object([
                ("cl", Value::Int(m.cl.ticks())),
                ("streams", Value::Array(streams)),
            ])
        })
        .collect();
    json::object([
        ("ttr", Value::Int(net.ttr.ticks())),
        ("token_pass", Value::Int(net.token_pass.ticks())),
        ("masters", Value::Array(masters)),
    ])
}

/// Builds the success envelope.
pub fn ok_envelope(id: &Value, op: &str, result: Value) -> Value {
    json::object([
        ("id", id.clone()),
        ("ok", Value::Bool(true)),
        ("op", Value::Str(op.to_string())),
        ("result", result),
    ])
}

/// Builds the failure envelope.
pub fn err_envelope(id: &Value, err: &WireError) -> Value {
    json::object([
        ("id", id.clone()),
        ("ok", Value::Bool(false)),
        (
            "error",
            json::object([
                ("kind", Value::Str(err.kind.to_string())),
                ("detail", Value::Str(err.detail.clone())),
            ]),
        ),
    ])
}

/// The oversized-line response (the request was never parsed, so no `id`
/// can be echoed).
pub fn oversized_response(len: usize, cap: usize) -> String {
    err_envelope(
        &Value::Null,
        &wire(
            "oversized",
            format!("request line is {len} bytes; the cap is {cap}"),
        ),
    )
    .compact()
}

/// The invalid-UTF-8 response for raw byte streams.
pub fn invalid_utf8_response() -> String {
    err_envelope(
        &Value::Null,
        &wire("parse", "request line is not valid UTF-8"),
    )
    .compact()
}

/// A backpressure response (`kind` is `"overloaded"`, `"shed"` or
/// `"closed"`), best-effort recovering the request's `id` so shed load
/// still correlates.
pub fn reject_response(line: &str, kind: &'static str, detail: &str) -> String {
    let id = json::parse(line)
        .ok()
        .and_then(|doc| doc.get("id").cloned())
        .unwrap_or(Value::Null);
    err_envelope(&id, &wire(kind, detail)).compact()
}

/// The criticality a request line declares on its candidate stream, if
/// any. Used by the engine's reject path to shed sub-HI work first
/// without evaluating the request.
pub fn declared_criticality(line: &str) -> Option<Criticality> {
    json::parse(line)
        .ok()?
        .get("stream")?
        .get("criticality")?
        .as_str()
        .and_then(Criticality::parse)
}

/// A full-queue rejection carrying a queue-depth-derived
/// `retry_after_hint_ms` inside the error object: the time to drain the
/// (full) injection queue across the shard workers, floored at 1 ms.
/// `kind` is `"shed"` when the request declared sub-HI criticality —
/// graceful degradation drops LO work first — and `"overloaded"`
/// otherwise.
pub fn overload_response(
    line: &str,
    kind: &'static str,
    queue_depth: usize,
    workers: usize,
) -> String {
    let id = json::parse(line)
        .ok()
        .and_then(|doc| doc.get("id").cloned())
        .unwrap_or(Value::Null);
    let hint = (queue_depth as i64 / workers.max(1) as i64).max(1);
    let detail = match kind {
        "shed" => "injection queue is full; sub-HI request shed first",
        _ => "injection queue is full; retry or shed",
    };
    json::object([
        ("id", id),
        ("ok", Value::Bool(false)),
        (
            "error",
            json::object([
                ("kind", Value::Str(kind.to_string())),
                ("detail", Value::Str(detail.to_string())),
                ("retry_after_hint_ms", Value::Int(hint)),
            ]),
        ),
    ])
    .compact()
}

/// The pure reference path: parse, evaluate with the given tuning and
/// scratch, render. The engine must answer byte-identically to this for
/// every request (`stats` aside) — the differential tests enforce it.
pub fn answer_line_with(line: &str, tuning: &PolicyTuning, scratch: &mut EvalScratch) -> String {
    match parse_request(line) {
        Err(re) => err_envelope(&re.id, &re.err).compact(),
        Ok(req) => match eval(&req, tuning, scratch) {
            Ok(result) => ok_envelope(&req.id, req.op.name(), result).compact(),
            Err(err) => err_envelope(&req.id, &err).compact(),
        },
    }
}

/// [`answer_line_with`] with default tuning and fresh scratch — one
/// request, zero shared state.
pub fn answer_line(line: &str) -> String {
    answer_line_with(line, &PolicyTuning::default(), &mut EvalScratch::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    const NET: &str = r#""net":{"ttr":2000,"masters":[{"cl":0,"streams":[{"ch":300,"d":30000,"t":30000},{"ch":240,"d":60000,"t":60000}]}]}"#;

    #[test]
    fn ping_pongs() {
        let resp = answer_line(r#"{"op":"ping","id":7}"#);
        assert_eq!(
            resp,
            r#"{"id":7,"ok":true,"op":"ping","result":{"pong":true}}"#
        );
    }

    #[test]
    fn feasibility_answers_and_echoes_id() {
        let line = format!(r#"{{"op":"feasibility","id":"q1","policy":"dm",{NET}}}"#);
        let resp = answer_line(&line);
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("id").unwrap().as_str(), Some("q1"));
        let result = doc.get("result").unwrap();
        assert_eq!(result.get("feasible").unwrap().as_bool(), Some(true));
        assert_eq!(result.get("streams").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn response_times_match_direct_analysis() {
        let line = format!(r#"{{"op":"response_times","policy":"fcfs",{NET}}}"#);
        let doc = json::parse(&answer_line(&line)).unwrap();
        let rows = doc
            .get("result")
            .unwrap()
            .get("rows")
            .unwrap()
            .as_array()
            .unwrap();
        // Direct library call on the same spec.
        let req = parse_request(&line).unwrap();
        let Op::ResponseTimes { net, .. } = &req.op else {
            panic!("parsed op mismatch")
        };
        let an = PolicyKind::Fcfs.analyze(net).unwrap();
        let direct: Vec<i64> = an
            .masters
            .iter()
            .flatten()
            .map(|r| r.response_time.ticks())
            .collect();
        let served: Vec<i64> = rows
            .iter()
            .map(|r| r.get("r").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(served, direct);
    }

    #[test]
    fn admit_accepts_then_rejects() {
        // A lax stream fits; a stream with a sub-Tcycle deadline never can.
        let ok_line = format!(
            r#"{{"op":"admit","policy":"dm",{NET},"stream":{{"master":0,"ch":100,"d":50000,"t":50000}}}}"#
        );
        let doc = json::parse(&answer_line(&ok_line)).unwrap();
        let result = doc.get("result").unwrap();
        assert_eq!(result.get("admit").unwrap().as_bool(), Some(true));
        assert!(result.get("r_new").unwrap().as_i64().unwrap() > 0);

        let no_line = format!(
            r#"{{"op":"admit","policy":"dm",{NET},"stream":{{"master":0,"ch":100,"d":10,"t":50000}}}}"#
        );
        let doc = json::parse(&answer_line(&no_line)).unwrap();
        assert_eq!(
            doc.get("result").unwrap().get("admit").unwrap().as_bool(),
            Some(false)
        );
    }

    #[test]
    fn admit_criticality_changes_shape_not_legacy_bytes() {
        // A labelled HI candidate gets the two-verdict shape; the same
        // request without the field keeps the legacy shape byte-for-byte.
        let plain = format!(
            r#"{{"op":"admit","policy":"dm",{NET},"stream":{{"master":0,"ch":100,"d":50000,"t":50000}}}}"#
        );
        let hi = format!(
            r#"{{"op":"admit","policy":"dm",{NET},"stream":{{"master":0,"ch":100,"criticality":"hi","d":50000,"t":50000}}}}"#
        );
        let plain_doc = json::parse(&answer_line(&plain)).unwrap();
        assert!(plain_doc
            .get("result")
            .unwrap()
            .get("criticality")
            .is_none());
        let hi_doc = json::parse(&answer_line(&hi)).unwrap();
        let result = hi_doc.get("result").unwrap();
        assert_eq!(result.get("criticality").unwrap().as_str(), Some("hi"));
        assert_eq!(result.get("hi_feasible").unwrap().as_bool(), Some(true));
        assert_eq!(result.get("admit").unwrap().as_bool(), Some(true));

        // A LO candidate is excluded from the HI projection: hi_feasible
        // reflects the HI baseline, and the verdict gates on both modes.
        let lo = format!(
            r#"{{"op":"admit","policy":"dm",{NET},"stream":{{"master":0,"ch":100,"criticality":"lo","d":50000,"t":50000}}}}"#
        );
        let lo_doc = json::parse(&answer_line(&lo)).unwrap();
        let result = lo_doc.get("result").unwrap();
        assert_eq!(result.get("criticality").unwrap().as_str(), Some("lo"));
        assert_eq!(result.get("hi_feasible").unwrap().as_bool(), Some(true));
        assert_eq!(result.get("admit").unwrap().as_bool(), Some(true));

        let bad = format!(
            r#"{{"op":"admit","policy":"dm",{NET},"stream":{{"master":0,"ch":100,"criticality":"urgent","d":50000,"t":50000}}}}"#
        );
        let doc = json::parse(&answer_line(&bad)).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            doc.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("schema")
        );
    }

    #[test]
    fn overload_response_carries_retry_hint_and_sheds_sub_hi() {
        let lo_line = r#"{"op":"admit","id":9,"stream":{"criticality":"lo"}}"#;
        assert_eq!(declared_criticality(lo_line), Some(Criticality::Lo));
        assert_eq!(declared_criticality(r#"{"op":"ping"}"#), None);

        let resp = overload_response(lo_line, "shed", 256, 4);
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("id").unwrap().as_i64(), Some(9));
        let err = doc.get("error").unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("shed"));
        assert_eq!(err.get("retry_after_hint_ms").unwrap().as_i64(), Some(64));

        // The hint never rounds to zero.
        let resp = overload_response(lo_line, "overloaded", 2, 8);
        let doc = json::parse(&resp).unwrap();
        assert_eq!(
            doc.get("error")
                .unwrap()
                .get("retry_after_hint_ms")
                .unwrap()
                .as_i64(),
            Some(1)
        );
    }

    #[test]
    fn utilization_overflow_is_an_answer_not_an_error() {
        // Periods equal to Tcycle-scale: utilization >= 1 under EDF.
        let line = r#"{"op":"feasibility","policy":"edf","net":{"ttr":900,"masters":[{"cl":100,"streams":[{"ch":100,"d":1500,"t":1500},{"ch":100,"d":1500,"t":1500}]}]}}"#;
        let doc = json::parse(&answer_line(line)).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        let result = doc.get("result").unwrap();
        assert_eq!(result.get("feasible").unwrap().as_bool(), Some(false));
        assert!(result.get("reason").unwrap().as_str().is_some());
    }

    #[test]
    fn task_feasibility_runs_every_test() {
        for test in TASK_TESTS {
            let line = format!(
                r#"{{"op":"task_feasibility","test":"{test}","tasks":[{{"c":1,"d":10,"t":10}},{{"c":2,"d":14,"t":14}}]}}"#
            );
            let doc = json::parse(&answer_line(&line)).unwrap();
            assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true), "{test}");
            let accepted = doc
                .get("result")
                .unwrap()
                .get("accepted")
                .unwrap()
                .as_bool()
                .unwrap();
            assert!(accepted, "{test}: trivial set must be accepted");
        }
    }

    #[test]
    fn wire_errors_are_typed() {
        let kind_of = |line: &str| {
            let doc = json::parse(&answer_line(line)).unwrap();
            assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
            doc.get("error")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        };
        assert_eq!(kind_of("not json"), "parse");
        assert_eq!(kind_of("[1,2]"), "schema");
        assert_eq!(kind_of(r#"{"op":"frobnicate"}"#), "unknown_op");
        assert_eq!(
            kind_of(&format!(r#"{{"op":"feasibility","policy":"lifo",{NET}}}"#)),
            "unknown_policy"
        );
        assert_eq!(
            kind_of(r#"{"op":"task_feasibility","test":"nope","tasks":[]}"#),
            "unknown_test"
        );
        // Model-level rejection: a zero period is not a valid stream.
        assert_eq!(
            kind_of(
                r#"{"op":"feasibility","policy":"dm","net":{"ttr":2000,"masters":[{"streams":[{"ch":1,"d":5,"t":0}]}]}}"#
            ),
            "model"
        );
        assert_eq!(kind_of(r#"{"op":"stats"}"#), "schema");
    }

    #[test]
    fn memo_key_ignores_id_but_not_payload() {
        let a = parse_request(&format!(
            r#"{{"op":"feasibility","id":1,"policy":"dm",{NET}}}"#
        ))
        .unwrap();
        let b = parse_request(&format!(
            r#"{{"op":"feasibility","id":"other","policy":"dm",{NET}}}"#
        ))
        .unwrap();
        let c = parse_request(&format!(
            r#"{{"op":"feasibility","id":1,"policy":"edf",{NET}}}"#
        ))
        .unwrap();
        assert_eq!(a.key, b.key);
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn responses_are_single_line_compact() {
        let line = format!(r#"{{"op":"response_times","policy":"edf",{NET}}}"#);
        let resp = answer_line(&line);
        assert!(!resp.contains('\n'));
        assert_eq!(json::parse(&resp).unwrap().compact(), resp);
    }
}
