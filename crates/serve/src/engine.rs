//! The serving engine: bounded injection queue → sharded workers, each
//! with warm analysis scratch and a bounded LRU memo.
//!
//! Requests enter through [`Engine::handle`], which injects a job into
//! the model-checked [`Core`] executor's bounded queue and blocks on a
//! per-request reply channel. Saturation is explicit: a full queue comes
//! back as [`Reject::Full`] and is answered with an `"overloaded"` error
//! (the caller sheds load or retries), never an unbounded buffer. After
//! [`Engine::shutdown`] the queue answers `"closed"`, and — the
//! executor's model-checked guarantee — every job accepted before the
//! close is still drained and answered.
//!
//! Each worker thread owns its shard state: a [`proto::EvalScratch`]
//! (reused allocations across analyses; never affects results) and a
//! [`Memo`] keyed by canonicalized request shape. A memo hit re-wraps the
//! cached result value in a fresh envelope with the request's own `id`,
//! so responses are byte-identical with the cache on or off.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

use crossbeam::channel;
use profirt_base::json::{self, Value};
use profirt_conc::exec::{Core, CoreConfig, Reject};
use profirt_conc::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use profirt_conc::sync::{Arc, Mutex};
use profirt_core::PolicyTuning;

use crate::memo::Memo;
use crate::proto::{self, Op};

/// Engine shape: shard count, queue bound, memo capacity, line cap.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker (= shard) count; clamped to at least 1.
    pub workers: usize,
    /// Bounded injection-queue capacity; beyond it requests are rejected
    /// with an `"overloaded"` error.
    pub queue_cap: usize,
    /// Per-shard memo capacity (0 disables caching).
    pub memo_cap: usize,
    /// Hard cap on one request line, in bytes.
    pub max_request_bytes: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            queue_cap: 256,
            memo_cap: 256,
            max_request_bytes: proto::DEFAULT_MAX_REQUEST_BYTES,
        }
    }
}

/// One queued request: the raw line plus its reply channel.
struct Job {
    line: String,
    reply: channel::Sender<String>,
}

/// Monotone engine counters, readable via the `stats` op and
/// [`Engine::stats`].
#[derive(Debug, Default)]
struct Stats {
    served: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    rejected_full: AtomicU64,
    rejected_closed: AtomicU64,
    shed: AtomicU64,
    wire_errors: AtomicU64,
    oversized: AtomicU64,
}

/// A point-in-time copy of the engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests answered by a worker (including error envelopes).
    pub served: u64,
    /// Memo cache hits.
    pub memo_hits: u64,
    /// Memo cache misses (evaluations run).
    pub memo_misses: u64,
    /// HI (or unlabelled) requests refused because the injection queue
    /// was full — answered `"overloaded"`.
    pub rejected_full: u64,
    /// Requests refused after shutdown.
    pub rejected_closed: u64,
    /// Sub-HI requests dropped first at a full queue — answered
    /// `"shed"`. Counted separately from `rejected_full` so overload
    /// telemetry distinguishes graceful degradation from hard refusal.
    pub shed: u64,
    /// Requests answered with a wire-level error envelope.
    pub wire_errors: u64,
    /// Lines refused for exceeding the byte cap.
    pub oversized: u64,
}

impl StatsSnapshot {
    /// Memo hit rate over all memoizable lookups (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

struct Inner {
    core: Core<Job>,
    stats: Stats,
    memo_cap: usize,
}

/// The running engine: a bounded queue in front of sharded workers.
pub struct Engine {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    shut: AtomicBool,
    workers: usize,
    queue_cap: usize,
    max_request_bytes: usize,
}

impl Engine {
    /// Starts the worker threads and returns the ready engine.
    pub fn start(cfg: EngineConfig) -> std::io::Result<Engine> {
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            core: Core::new(CoreConfig {
                workers,
                queue_cap: cfg.queue_cap,
                ..CoreConfig::default()
            }),
            stats: Stats::default(),
            memo_cap: cfg.memo_cap,
        });
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("serve-shard-{w}"))
                .spawn(move || shard_loop(&inner, w))?;
            handles.push(handle);
        }
        Ok(Engine {
            inner,
            handles: Mutex::new(handles),
            shut: AtomicBool::new(false),
            workers,
            queue_cap: cfg.queue_cap,
            max_request_bytes: cfg.max_request_bytes,
        })
    }

    /// The request byte cap this engine enforces.
    pub fn max_request_bytes(&self) -> usize {
        self.max_request_bytes
    }

    /// Number of shard workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Capacity of the bounded injection queue.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Answers one request line, blocking until a shard replies. Always
    /// returns a complete single-line response — backpressure and
    /// shutdown come back as structured errors, not silence.
    pub fn handle(&self, line: &str) -> String {
        if line.len() > self.max_request_bytes {
            self.inner.stats.oversized.fetch_add(1, Ordering::SeqCst);
            return proto::oversized_response(line.len(), self.max_request_bytes);
        }
        let (tx, rx) = channel::unbounded();
        match self.inner.core.inject(Job {
            line: line.to_string(),
            reply: tx,
        }) {
            Ok(()) => match rx.recv() {
                Ok(resp) => resp,
                // The worker dropped the reply channel without answering:
                // only possible if its thread died mid-request.
                Err(_) => proto::reject_response(line, "internal", "worker lost"),
            },
            Err(Reject::Full(job)) => {
                // Graceful degradation mirrors the sim's mode machine:
                // at a full queue, requests declaring sub-HI criticality
                // are shed first; everything else is told "overloaded"
                // with a queue-depth-derived retry hint.
                let sub_hi =
                    proto::declared_criticality(&job.line).is_some_and(|c| c.shed_in_hi_mode());
                let (kind, counter) = if sub_hi {
                    ("shed", &self.inner.stats.shed)
                } else {
                    ("overloaded", &self.inner.stats.rejected_full)
                };
                counter.fetch_add(1, Ordering::SeqCst);
                proto::overload_response(&job.line, kind, self.queue_cap, self.workers)
            }
            Err(Reject::Closed(job)) => {
                self.inner
                    .stats
                    .rejected_closed
                    .fetch_add(1, Ordering::SeqCst);
                proto::reject_response(&job.line, "closed", "engine is shut down")
            }
        }
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.inner.stats;
        StatsSnapshot {
            served: s.served.load(Ordering::SeqCst),
            memo_hits: s.memo_hits.load(Ordering::SeqCst),
            memo_misses: s.memo_misses.load(Ordering::SeqCst),
            rejected_full: s.rejected_full.load(Ordering::SeqCst),
            rejected_closed: s.rejected_closed.load(Ordering::SeqCst),
            shed: s.shed.load(Ordering::SeqCst),
            wire_errors: s.wire_errors.load(Ordering::SeqCst),
            oversized: s.oversized.load(Ordering::SeqCst),
        }
    }

    /// Graceful shutdown: stop accepting, drain everything already
    /// queued (each queued request still gets its answer), join the
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        if self.shut.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.core.close();
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self
                .handles
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            std::mem::take(&mut *guard)
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker thread: mounts the executor's worker loop with this
/// shard's private scratch and memo.
fn shard_loop(inner: &Inner, w: usize) {
    let mut scratch = proto::EvalScratch::default();
    let mut memo = Memo::new(inner.memo_cap);
    let tuning = PolicyTuning::default();
    inner.core.run_worker(w, |job: Job| {
        let resp = catch_unwind(AssertUnwindSafe(|| {
            serve_one(inner, &job.line, &tuning, &mut scratch, &mut memo)
        }))
        .unwrap_or_else(|_| {
            proto::reject_response(&job.line, "internal", "request evaluation panicked")
        });
        inner.stats.served.fetch_add(1, Ordering::SeqCst);
        // A send error means the requester gave up (dropped the
        // receiver); the answer is simply discarded.
        let _ = job.reply.send(resp);
    });
}

/// Evaluates one request on a shard: memo lookup for cacheable ops, the
/// pure [`proto`] path on miss, engine counters for `stats`.
fn serve_one(
    inner: &Inner,
    line: &str,
    tuning: &PolicyTuning,
    scratch: &mut proto::EvalScratch,
    memo: &mut Memo,
) -> String {
    let req = match proto::parse_request(line) {
        Ok(req) => req,
        Err(re) => {
            inner.stats.wire_errors.fetch_add(1, Ordering::SeqCst);
            return proto::err_envelope(&re.id, &re.err).compact();
        }
    };
    match &req.op {
        Op::Stats => {
            let snapshot = snapshot_value(inner);
            proto::ok_envelope(&req.id, "stats", snapshot).compact()
        }
        Op::Ping => match proto::eval(&req, tuning, scratch) {
            Ok(result) => proto::ok_envelope(&req.id, req.op.name(), result).compact(),
            Err(err) => proto::err_envelope(&req.id, &err).compact(),
        },
        _ => {
            if let Some(result) = memo.get(&req.key) {
                inner.stats.memo_hits.fetch_add(1, Ordering::SeqCst);
                return proto::ok_envelope(&req.id, req.op.name(), result).compact();
            }
            inner.stats.memo_misses.fetch_add(1, Ordering::SeqCst);
            match proto::eval(&req, tuning, scratch) {
                Ok(result) => {
                    memo.put(&req.key, result.clone());
                    proto::ok_envelope(&req.id, req.op.name(), result).compact()
                }
                Err(err) => {
                    inner.stats.wire_errors.fetch_add(1, Ordering::SeqCst);
                    proto::err_envelope(&req.id, &err).compact()
                }
            }
        }
    }
}

fn snapshot_value(inner: &Inner) -> Value {
    let s = &inner.stats;
    json::object([
        ("served", Value::Int(s.served.load(Ordering::SeqCst) as i64)),
        (
            "memo_hits",
            Value::Int(s.memo_hits.load(Ordering::SeqCst) as i64),
        ),
        (
            "memo_misses",
            Value::Int(s.memo_misses.load(Ordering::SeqCst) as i64),
        ),
        (
            "rejected_full",
            Value::Int(s.rejected_full.load(Ordering::SeqCst) as i64),
        ),
        (
            "rejected_closed",
            Value::Int(s.rejected_closed.load(Ordering::SeqCst) as i64),
        ),
        ("shed", Value::Int(s.shed.load(Ordering::SeqCst) as i64)),
        (
            "wire_errors",
            Value::Int(s.wire_errors.load(Ordering::SeqCst) as i64),
        ),
        (
            "oversized",
            Value::Int(s.oversized.load(Ordering::SeqCst) as i64),
        ),
        ("workers", Value::Int(inner.core.workers() as i64)),
        ("memo_cap", Value::Int(inner.memo_cap as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(workers: usize, memo_cap: usize) -> Engine {
        Engine::start(EngineConfig {
            workers,
            queue_cap: 64,
            memo_cap,
            max_request_bytes: 4096,
        })
        .unwrap()
    }

    const LINE: &str = r#"{"op":"feasibility","policy":"dm","net":{"ttr":2000,"masters":[{"streams":[{"ch":300,"d":30000,"t":30000}]}]}}"#;

    #[test]
    fn engine_matches_pure_path() {
        let e = engine(2, 16);
        assert_eq!(e.handle(LINE), proto::answer_line(LINE));
        e.shutdown();
    }

    #[test]
    fn memo_hits_on_duplicates() {
        let e = engine(1, 16);
        let first = e.handle(LINE);
        let second = e.handle(LINE);
        assert_eq!(first, second);
        let s = e.stats();
        assert_eq!(s.memo_hits, 1);
        assert_eq!(s.memo_misses, 1);
        e.shutdown();
    }

    #[test]
    fn oversized_lines_get_structured_error() {
        let e = engine(1, 0);
        let big = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(8192));
        let resp = e.handle(&big);
        assert!(resp.contains("\"oversized\""), "{resp}");
        assert_eq!(e.stats().oversized, 1);
        e.shutdown();
    }

    #[test]
    fn closed_engine_rejects_with_id() {
        let e = engine(1, 0);
        e.shutdown();
        let resp = e.handle(r#"{"op":"ping","id":42}"#);
        assert!(resp.contains("\"closed\""), "{resp}");
        assert!(resp.contains("\"id\":42"), "{resp}");
    }

    #[test]
    fn stats_op_reports_counters() {
        let e = engine(1, 16);
        let _ = e.handle(LINE);
        let resp = e.handle(r#"{"op":"stats","id":"s"}"#);
        let doc = profirt_base::json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        let result = doc.get("result").unwrap();
        assert!(result.get("served").unwrap().as_i64().unwrap() >= 1);
        assert_eq!(result.get("workers").unwrap().as_i64(), Some(1));
        e.shutdown();
    }
}
