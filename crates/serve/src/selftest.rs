//! The self-contained load-test harness behind `profirt serve --selftest`.
//!
//! Drives the full queue → shards → memo pipeline in-process with a
//! workload-generator corpus shaped like the campaign matrix (many
//! near-duplicate ring queries across policies), in three phases:
//!
//! 1. **Latency** — paced clients, one request outstanding per client,
//!    recording per-request wall time → p50/p99.
//! 2. **Saturation** — more clients than queue slots, tight loop for a
//!    fixed window → throughput at saturation and queue-full rejects
//!    (the backpressure path must actually fire, not just exist).
//! 3. **TCP smoke** — a real socket round trip against an ephemeral-port
//!    server.
//!
//! Results land in `target/BENCH_serve.json` (`BENCH_SERVE_JSON`
//! overrides the path) next to the other perf baselines CI uploads.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use profirt_base::json::{self, Value};
use profirt_base::Prng;
use profirt_conc::sync::Mutex;
use profirt_core::PolicyKind;
use profirt_profibus::BusParams;
use profirt_workload::{generate_network, generate_task_set, NetGenParams, TaskGenParams};

use crate::engine::{Engine, EngineConfig};
use crate::proto;
use crate::server::{Server, ServerConfig};

/// Harness knobs.
#[derive(Clone, Debug)]
pub struct SelftestConfig {
    /// Shrinks every phase for CI (sub-second total).
    pub quick: bool,
    /// Worker count for the engine under test.
    pub workers: usize,
    /// Output path override (`None` = `BENCH_SERVE_JSON` env var, then
    /// `target/BENCH_serve.json`).
    pub out_path: Option<String>,
}

impl Default for SelftestConfig {
    fn default() -> Self {
        SelftestConfig {
            quick: false,
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            out_path: None,
        }
    }
}

/// What the harness measured; serialized to `BENCH_serve.json`.
#[derive(Clone, Debug)]
pub struct SelftestReport {
    /// Quick (CI) run or full measurement.
    pub quick: bool,
    /// Engine worker count.
    pub workers: usize,
    /// Injection-queue capacity used in the saturation phase.
    pub queue_cap: usize,
    /// Per-shard memo capacity.
    pub memo_cap: usize,
    /// Distinct request lines in the corpus.
    pub corpus: usize,
    /// Requests timed in the latency phase.
    pub latency_requests: usize,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Responses per second with every client in a tight loop.
    pub saturation_req_per_s: f64,
    /// Responses produced during the saturation window.
    pub saturation_responses: u64,
    /// Queue-full rejections during the saturation window.
    pub rejected_full: u64,
    /// Memo cache hits across the whole run.
    pub memo_hits: u64,
    /// Memo cache misses across the whole run.
    pub memo_misses: u64,
    /// `memo_hits / (hits + misses)`.
    pub memo_hit_rate: f64,
    /// The TCP round trip succeeded.
    pub tcp_smoke_ok: bool,
    /// Where the JSON artifact was written.
    pub out_path: String,
}

impl SelftestReport {
    /// The JSON artifact document.
    pub fn to_json(&self) -> Value {
        json::object([
            ("bench", Value::Str("serve".to_string())),
            ("smoke_run", Value::Bool(self.quick)),
            ("workers", Value::Int(self.workers as i64)),
            ("queue_cap", Value::Int(self.queue_cap as i64)),
            ("memo_cap", Value::Int(self.memo_cap as i64)),
            ("corpus", Value::Int(self.corpus as i64)),
            ("latency_requests", Value::Int(self.latency_requests as i64)),
            ("latency_p50_us", Value::Float(self.p50_us)),
            ("latency_p99_us", Value::Float(self.p99_us)),
            (
                "saturation_req_per_s",
                Value::Float(self.saturation_req_per_s),
            ),
            (
                "saturation_responses",
                Value::Int(self.saturation_responses as i64),
            ),
            ("rejected_full", Value::Int(self.rejected_full as i64)),
            ("memo_hits", Value::Int(self.memo_hits as i64)),
            ("memo_misses", Value::Int(self.memo_misses as i64)),
            ("memo_hit_rate", Value::Float(self.memo_hit_rate)),
            ("tcp_smoke_ok", Value::Bool(self.tcp_smoke_ok)),
        ])
    }

    /// Human-readable summary for the CLI to print.
    pub fn summary(&self) -> String {
        format!(
            "serve selftest ({} mode): {} workers, corpus {}\n\
             latency: p50 {:.1} us, p99 {:.1} us over {} requests\n\
             saturation: {:.0} req/s ({} responses, {} queue-full rejects)\n\
             memo: {} hits / {} misses (hit rate {:.2})\n\
             tcp smoke: {}\n\
             wrote {}",
            if self.quick { "quick" } else { "full" },
            self.workers,
            self.corpus,
            self.p50_us,
            self.p99_us,
            self.latency_requests,
            self.saturation_req_per_s,
            self.saturation_responses,
            self.rejected_full,
            self.memo_hits,
            self.memo_misses,
            self.memo_hit_rate,
            if self.tcp_smoke_ok { "ok" } else { "FAILED" },
            self.out_path,
        )
    }
}

/// Builds the campaign-matrix-shaped request corpus: generated rings
/// queried under every policy plus a few task-set tests — with the
/// policy sweep making each `"net"` payload recur, which is exactly the
/// near-duplicate pattern the memo exists for.
pub fn build_corpus(quick: bool) -> Result<Vec<String>, String> {
    let bus = BusParams::profile_500k();
    let seeds: u64 = if quick { 4 } else { 16 };
    let mut lines = Vec::new();
    for seed in 0..seeds {
        let params = NetGenParams::standard(0.8, 3, 2 + (seed % 2) as usize);
        let mut rng = Prng::seed_from_u64(0xC0FFEE ^ seed);
        let g = generate_network(&mut rng, &bus, &params).map_err(|e| e.to_string())?;
        let net = proto::net_to_value(&g.config);
        for policy in PolicyKind::ALL {
            for op in ["feasibility", "response_times"] {
                lines.push(
                    json::object([
                        ("op", Value::Str(op.to_string())),
                        ("policy", Value::Str(policy.name().to_string())),
                        ("net", net.clone()),
                    ])
                    .compact(),
                );
            }
        }
        // One admission probe per ring: re-offer a copy of master 0's
        // first stream.
        if let Some(s) = g.config.masters[0].streams.streams().first() {
            lines.push(
                json::object([
                    ("op", Value::Str("admit".to_string())),
                    ("policy", Value::Str("dm".to_string())),
                    ("net", net.clone()),
                    (
                        "stream",
                        json::object([
                            ("master", Value::Int(0)),
                            ("ch", Value::Int(s.ch.ticks())),
                            ("d", Value::Int(s.d.ticks())),
                            ("t", Value::Int(s.t.ticks())),
                            ("j", Value::Int(0)),
                        ]),
                    ),
                ])
                .compact(),
            );
        }
        // A couple of processor-side tests.
        let mut rng = Prng::seed_from_u64(0xBEEF ^ seed);
        let set = generate_task_set(&mut rng, &TaskGenParams::standard(4, 0.6))
            .map_err(|e| e.to_string())?;
        let tasks: Vec<Value> = set
            .tasks()
            .iter()
            .map(|t| {
                json::object([
                    ("c", Value::Int(t.c.ticks())),
                    ("d", Value::Int(t.d.ticks())),
                    ("t", Value::Int(t.t.ticks())),
                ])
            })
            .collect();
        for test in ["dm-rta", "edf-demand"] {
            lines.push(
                json::object([
                    ("op", Value::Str("task_feasibility".to_string())),
                    ("test", Value::Str(test.to_string())),
                    ("tasks", Value::Array(tasks.clone())),
                ])
                .compact(),
            );
        }
    }
    Ok(lines)
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1_000.0
}

/// Runs the harness and writes `BENCH_serve.json`.
pub fn run_selftest(cfg: &SelftestConfig) -> Result<SelftestReport, String> {
    let workers = cfg.workers.max(1);
    // Queue deliberately shallower than the saturation client count so
    // the backpressure path is exercised, not just compiled.
    let queue_cap = workers.max(2);
    let memo_cap = 256;
    let engine = Engine::start(EngineConfig {
        workers,
        queue_cap,
        memo_cap,
        max_request_bytes: proto::DEFAULT_MAX_REQUEST_BYTES,
    })
    .map_err(|e| format!("cannot start engine: {e}"))?;

    let corpus = build_corpus(cfg.quick)?;
    if corpus.is_empty() {
        return Err("empty selftest corpus".to_string());
    }

    // Phase 1: paced latency. Each client walks the corpus at a fixed
    // offset (duplicated visits exercise the memo) with one request
    // outstanding and a short pause between sends.
    let per_client = if cfg.quick { 40 } else { 400 };
    let pace = Duration::from_micros(200);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for c in 0..workers {
            let (engine, corpus, latencies) = (&engine, &corpus, &latencies);
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let line = &corpus[(c * 7 + i) % corpus.len()];
                    let start = Instant::now();
                    let _ = engine.handle(line);
                    mine.push(start.elapsed().as_nanos() as u64);
                    std::thread::sleep(pace);
                }
                latencies
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .extend(mine);
            });
        }
    });
    let mut all = latencies
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clone();
    all.sort_unstable();
    let p50_us = percentile_us(&all, 0.50);
    let p99_us = percentile_us(&all, 0.99);
    let latency_requests = all.len();

    // Phase 2: saturation. 4x more clients than queue slots, tight loop
    // for a fixed window; throughput is responses (of any kind) per
    // second, and the stats delta shows how often the queue pushed back.
    let before = engine.stats();
    let window = if cfg.quick {
        Duration::from_millis(250)
    } else {
        Duration::from_millis(1_500)
    };
    let responses = Mutex::new(0u64);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..(queue_cap * 4) {
            let (engine, corpus, responses) = (&engine, &corpus, &responses);
            scope.spawn(move || {
                let mut n = 0u64;
                let mut i = c * 13;
                while start.elapsed() < window {
                    let _ = engine.handle(&corpus[i % corpus.len()]);
                    n += 1;
                    i += 1;
                }
                *responses
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()) += n;
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let saturation_responses = *responses
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let after = engine.stats();
    let rejected_full = after.rejected_full - before.rejected_full;
    engine.shutdown();
    let memo_hits = after.memo_hits;
    let memo_misses = after.memo_misses;

    // Phase 3: TCP smoke — one socket round trip end to end.
    let tcp_smoke_ok = tcp_smoke(workers).unwrap_or(false);

    let out_path = cfg.out_path.clone().unwrap_or_else(|| {
        std::env::var("BENCH_SERVE_JSON").unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_serve.json").to_string()
        })
    });
    let report = SelftestReport {
        quick: cfg.quick,
        workers,
        queue_cap,
        memo_cap,
        corpus: corpus.len(),
        latency_requests,
        p50_us,
        p99_us,
        saturation_req_per_s: saturation_responses as f64 / elapsed.max(1e-9),
        saturation_responses,
        rejected_full,
        memo_hits,
        memo_misses,
        memo_hit_rate: after.hit_rate(),
        tcp_smoke_ok,
        out_path: out_path.clone(),
    };
    std::fs::write(&out_path, report.to_json().pretty() + "\n")
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    Ok(report)
}

fn tcp_smoke(workers: usize) -> std::io::Result<bool> {
    let mut server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig {
            workers,
            queue_cap: 32,
            memo_cap: 16,
            max_request_bytes: proto::DEFAULT_MAX_REQUEST_BYTES,
        },
    })?;
    let mut conn = TcpStream::connect(server.local_addr())?;
    conn.set_read_timeout(Some(Duration::from_secs(5)))?;
    conn.write_all(b"{\"op\":\"ping\",\"id\":\"smoke\"}\n")?;
    let mut resp = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        use std::io::Read as _;
        conn.read_exact(&mut byte)?;
        if byte[0] == b'\n' {
            break;
        }
        resp.push(byte[0]);
        if resp.len() > 4096 {
            break;
        }
    }
    drop(conn);
    server.shutdown();
    Ok(String::from_utf8_lossy(&resp).contains("\"pong\":true"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_valid_and_answerable() {
        let corpus = build_corpus(true).unwrap();
        assert!(corpus.len() >= 20, "corpus too small: {}", corpus.len());
        for line in &corpus {
            let resp = proto::answer_line(line);
            let doc = json::parse(&resp).unwrap();
            assert_eq!(
                doc.get("ok").and_then(Value::as_bool),
                Some(true),
                "corpus line must be answerable: {line} -> {resp}"
            );
        }
    }

    #[test]
    fn quick_selftest_produces_artifact() {
        let tmp = std::env::temp_dir().join("profirt_selftest_test.json");
        let report = run_selftest(&SelftestConfig {
            quick: true,
            workers: 2,
            out_path: Some(tmp.to_string_lossy().to_string()),
        })
        .unwrap();
        assert!(report.latency_requests > 0);
        assert!(report.saturation_responses > 0);
        assert!(report.p50_us > 0.0 && report.p99_us >= report.p50_us);
        assert!(report.memo_hits > 0, "duplicated corpus must hit the memo");
        assert!(report.tcp_smoke_ok);
        let text = std::fs::read_to_string(&tmp).unwrap();
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("serve"));
        assert!(doc.get("latency_p99_us").unwrap().as_f64().is_some());
        let _ = std::fs::remove_file(&tmp);
    }
}
