//! The network front end: a TCP acceptor and a generic byte-stream
//! driver shared with `--stdin` mode.
//!
//! One request per `\n`-terminated line, one response per line. The line
//! splitter enforces the engine's byte cap *while reading*: an oversized
//! line is answered with a structured `"oversized"` error the moment the
//! cap is crossed, the remaining bytes are discarded up to the next
//! newline, and the connection stays up — the PR-1 depth-cap discipline
//! extended to request length. Invalid UTF-8 gets a structured parse
//! error the same way. A client can never crash the server or silently
//! lose its connection over a bad request.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

use profirt_conc::sync::atomic::{AtomicBool, Ordering};
use profirt_conc::sync::{Arc, Mutex};

use crate::engine::{Engine, EngineConfig};
use crate::proto;

/// Server shape: the bind address plus the engine configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// The engine behind the listener.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
        }
    }
}

/// How often blocked reads and the accept loop re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// A running server: listener thread, per-connection threads, and the
/// shared [`Engine`].
pub struct Server {
    engine: Arc<Engine>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds the listener, starts the engine and the accept thread.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let engine = Arc::new(Engine::start(cfg.engine)?);
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &engine, &stop, &conns))?
        };

        Ok(Server {
            engine,
            local_addr,
            stop,
            accept_handle: Some(accept_handle),
            conns,
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the listener (for stats and tests).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Blocks until the server is asked to stop (used by the foreground
    /// CLI mode, which parks the main thread here).
    pub fn wait(&self) {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(POLL_INTERVAL);
        }
    }

    /// Graceful shutdown: stop accepting, let in-flight connections
    /// observe the flag and finish, drain the engine queue, join
    /// everything. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let conns: Vec<JoinHandle<()>> = {
            let mut guard = self
                .conns
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            std::mem::take(&mut *guard)
        };
        for handle in conns {
            let _ = handle.join();
        }
        self.engine.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = Arc::clone(engine);
                let stop = Arc::clone(stop);
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        let _ = handle_conn(&engine, stream, &stop);
                    });
                if let Ok(handle) = spawned {
                    conns
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
}

fn handle_conn(engine: &Engine, stream: TcpStream, stop: &AtomicBool) -> io::Result<()> {
    // A finite read timeout lets the connection observe the stop flag
    // even while the client is idle.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let writer = stream.try_clone()?;
    serve_stream(engine, stream, writer, Some(stop))
}

/// Drives one byte stream: split lines, enforce the byte cap, answer
/// through the engine. `stop = None` runs to EOF (the `--stdin` mode);
/// with a stop flag, blocked reads poll it and return cleanly.
///
/// Every complete line gets exactly one response line — oversized input
/// and invalid UTF-8 included. Blank lines are skipped (netcat sends a
/// trailing one).
pub fn serve_stream<R: Read, W: Write>(
    engine: &Engine,
    mut reader: R,
    mut writer: W,
    stop: Option<&AtomicBool>,
) -> io::Result<()> {
    // The splitter tolerates a little slack over the cap so the
    // response can state the offending length; memory stays bounded.
    let cap = engine.max_request_bytes();
    let mut buf = [0u8; 8192];
    let mut line: Vec<u8> = Vec::new();
    let mut skipping = false;
    loop {
        if stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
            return Ok(());
        }
        let n = match reader.read(&mut buf) {
            Ok(0) => return Ok(()),
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        for &byte in &buf[..n] {
            if byte == b'\n' {
                if skipping {
                    skipping = false;
                } else {
                    respond_line(engine, &line, &mut writer)?;
                }
                line.clear();
                continue;
            }
            if skipping {
                continue;
            }
            line.push(byte);
            if line.len() > cap {
                writer.write_all(proto::oversized_response(line.len(), cap).as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                line.clear();
                skipping = true;
            }
        }
    }
}

fn respond_line<W: Write>(engine: &Engine, raw: &[u8], writer: &mut W) -> io::Result<()> {
    let response = match std::str::from_utf8(raw) {
        Err(_) => proto::invalid_utf8_response(),
        Ok(text) => {
            let text = text.trim();
            if text.is_empty() {
                return Ok(());
            }
            engine.handle(text)
        }
    };
    writer.write_all(response.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::start(EngineConfig {
            workers: 2,
            queue_cap: 32,
            memo_cap: 16,
            max_request_bytes: 1024,
        })
        .unwrap()
    }

    #[test]
    fn stream_mode_answers_line_per_line() {
        let e = engine();
        let input = b"{\"op\":\"ping\",\"id\":1}\n\n{\"op\":\"ping\",\"id\":2}\n";
        let mut out = Vec::new();
        serve_stream(&e, &input[..], &mut out, None).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"id\":1"));
        assert!(lines[1].contains("\"id\":2"));
        e.shutdown();
    }

    #[test]
    fn oversized_line_is_answered_and_connection_survives() {
        let e = engine();
        let mut input = vec![b'x'; 5000];
        input.push(b'\n');
        input.extend_from_slice(b"{\"op\":\"ping\",\"id\":\"after\"}\n");
        let mut out = Vec::new();
        serve_stream(&e, &input[..], &mut out, None).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"oversized\""), "{text}");
        assert!(lines[1].contains("\"after\""), "{text}");
        e.shutdown();
    }

    #[test]
    fn invalid_utf8_gets_parse_error() {
        let e = engine();
        let input = [0xFFu8, 0xFE, b'\n'];
        let mut out = Vec::new();
        serve_stream(&e, &input[..], &mut out, None).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("not valid UTF-8"), "{text}");
        e.shutdown();
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let mut server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig {
                workers: 2,
                queue_cap: 32,
                memo_cap: 16,
                max_request_bytes: 4096,
            },
        })
        .unwrap();
        let addr = server.local_addr();
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"op\":\"ping\",\"id\":\"tcp\"}\n")
            .unwrap();
        let mut resp = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            conn.read_exact(&mut byte).unwrap();
            if byte[0] == b'\n' {
                break;
            }
            resp.push(byte[0]);
        }
        let resp = String::from_utf8(resp).unwrap();
        assert!(resp.contains("\"pong\":true"), "{resp}");
        drop(conn);
        server.shutdown();
        assert!(server.engine().stats().served >= 1);
    }
}
