//! # profirt_serve — feasibility as a service
//!
//! The paper's schedulability analyses answer exactly the question an
//! online admission controller must ask: *can this message stream join
//! this ring without breaking any deadline?* This crate turns those
//! analyses into a long-running daemon (`profirt serve`) speaking a
//! line-delimited JSON protocol over TCP or stdin.
//!
//! The layering, request to response:
//!
//! 1. [`server`] — TCP acceptor / stdin driver. Reads one request per
//!    line with a hard byte cap (oversized lines get a structured error,
//!    the connection survives), writes one response per line.
//! 2. [`engine`] — the concurrency story. Requests flow through the
//!    bounded injection queue of the model-checked
//!    [`profirt_conc::exec::Core`] executor onto sharded workers;
//!    saturation surfaces as explicit backpressure
//!    ([`profirt_conc::exec::Reject::Full`] → an `"overloaded"` error)
//!    rather than an unbounded buffer. Each shard owns reusable analysis
//!    scratch and a bounded LRU memo keyed by canonicalized request
//!    shape, so near-duplicate queries (the campaign-matrix access
//!    pattern) hit cache.
//! 3. [`proto`] — the pure request/response layer: parsing, evaluation
//!    through [`profirt_core::PolicyKind`] dispatch and the
//!    `profirt_sched` task-set tests, and canonical rendering. The
//!    engine is a scheduler around this function; byte-for-byte it
//!    answers exactly what a direct library call answers (the
//!    differential tests pin this).
//! 4. [`selftest`] — a self-contained load harness
//!    (`profirt serve --selftest`) recording p50/p99 latency, saturation
//!    throughput, queue-full rejects, and memo hit rate into
//!    `target/BENCH_serve.json`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod memo;
pub mod proto;
pub mod selftest;
pub mod server;

pub use engine::{Engine, EngineConfig};
pub use proto::{answer_line, Request, WireError, DEFAULT_MAX_REQUEST_BYTES};
pub use selftest::{run_selftest, SelftestConfig, SelftestReport};
pub use server::{serve_stream, Server, ServerConfig};
