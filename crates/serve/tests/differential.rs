//! Differential contract: the served path is byte-identical to direct
//! library evaluation.
//!
//! [`answer_line`] is the pure reference implementation — parse, eval,
//! envelope, no queue, no threads, no cache. The engine must produce
//! *exactly* the same bytes for every request line regardless of how
//! many shards answer it or whether the memo is on: caching and
//! concurrency are performance artifacts, never observable in a
//! response. Any drift — a float formatted differently, a cache entry
//! serving a stale envelope, a shard-local tuning default — fails the
//! byte comparison.

use profirt_serve::selftest::build_corpus;
use profirt_serve::{answer_line, Engine, EngineConfig, DEFAULT_MAX_REQUEST_BYTES};

/// The generated corpus plus edge-case lines the generators do not
/// produce: errors, overload answers, and near-duplicate repeats that
/// force memo hits to prove a cached answer is still byte-identical.
fn corpus() -> Vec<String> {
    let mut lines = build_corpus(true).expect("corpus generation");
    lines.push("{\"op\":\"ping\"}".to_string());
    lines.push("{\"op\":\"ping\",\"id\":null}".to_string());
    lines.push("{\"op\":\"ping\",\"id\":\"str-id\"}".to_string());
    lines.push("not json at all".to_string());
    lines.push("{\"id\":3}".to_string());
    lines.push("{\"id\":4,\"op\":\"warp\"}".to_string());
    lines.push(
        "{\"id\":5,\"op\":\"feasibility\",\"policy\":\"rm\",\"net\":{\"ttr\":1,\"masters\":[]}}"
            .to_string(),
    );
    lines.push(
        "{\"id\":6,\"op\":\"feasibility\",\"policy\":\"dm\",\"net\":{\"ttr\":10,\"masters\":[{\"cl\":0,\"streams\":[{\"ch\":600,\"d\":700,\"t\":700}]}]}}"
            .to_string(),
    );
    // Repeat the whole corpus so the second pass is answered from the
    // memo (where enabled) — the comparison below does not care, which
    // is exactly the point.
    let repeat: Vec<String> = lines.clone();
    lines.extend(repeat);
    lines
}

fn run_differential(workers: usize, memo_cap: usize) {
    let engine = Engine::start(EngineConfig {
        workers,
        queue_cap: 64,
        memo_cap,
        max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
    })
    .expect("engine start");
    for line in corpus() {
        let direct = answer_line(&line);
        let served = engine.handle(&line);
        assert_eq!(
            served, direct,
            "served answer diverged from direct evaluation\n\
             workers={workers} memo_cap={memo_cap}\nrequest: {line}"
        );
    }
    let stats = engine.stats();
    if memo_cap > 0 {
        assert!(
            stats.memo_hits > 0,
            "duplicated corpus must exercise the memo (workers={workers})"
        );
    } else {
        assert_eq!(stats.memo_hits, 0, "memo disabled but hits recorded");
    }
    engine.shutdown();
}

#[test]
fn one_worker_no_memo_matches_direct() {
    run_differential(1, 0);
}

#[test]
fn one_worker_with_memo_matches_direct() {
    run_differential(1, 256);
}

#[test]
fn two_workers_with_memo_matches_direct() {
    run_differential(2, 256);
}

#[test]
fn eight_workers_no_memo_matches_direct() {
    run_differential(8, 0);
}

#[test]
fn eight_workers_with_memo_matches_direct() {
    run_differential(8, 256);
}

#[test]
fn stats_op_is_the_one_intentional_divergence() {
    // `stats` is answered from live engine counters; the pure path has
    // none and says so with a schema error. Assert the divergence is
    // exactly this shape so it stays intentional.
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_cap: 8,
        memo_cap: 8,
        max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
    })
    .expect("engine start");
    let served = engine.handle("{\"op\":\"stats\",\"id\":1}");
    let direct = answer_line("{\"op\":\"stats\",\"id\":1}");
    assert!(served.contains("\"ok\":true"), "{served}");
    assert!(served.contains("\"served\""), "{served}");
    assert!(direct.contains("\"ok\":false"), "{direct}");
    assert!(direct.contains("\"schema\""), "{direct}");
    engine.shutdown();
}
