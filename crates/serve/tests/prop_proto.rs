//! Protocol contract properties for the serve wire format.
//!
//! Three families:
//!
//! * **Round trips** — every valid request the generators can produce is
//!   compact-rendered, re-parsed, and re-rendered to the identical bytes
//!   (`parse ∘ render = id`), and every response the server emits obeys
//!   the same law (responses are themselves canonical JSON).
//! * **Fuzz** — arbitrary bytes, truncations of valid requests, and
//!   structurally-valid-but-schema-wrong documents all come back as a
//!   single-line structured error envelope with a known `kind`; nothing
//!   panics, nothing is answered `ok:true`.
//! * **Byte cap** — the engine answers any line over its configured cap
//!   with `kind:"oversized"` without evaluating it.

use proptest::prelude::*;

use profirt_base::json::{self, Value};
use profirt_serve::{answer_line, Engine, EngineConfig, DEFAULT_MAX_REQUEST_BYTES};

/// Every `error.kind` the protocol is allowed to emit.
const ERROR_KINDS: &[&str] = &[
    "oversized",
    "parse",
    "schema",
    "unknown_op",
    "unknown_policy",
    "unknown_test",
    "model",
    "overloaded",
    "shed",
    "closed",
    "internal",
];

/// Parses a response line and asserts the envelope invariants every
/// reply must satisfy; returns the parsed document.
fn check_envelope(line: &str, response: &str) -> Value {
    assert!(
        !response.contains('\n'),
        "response must be single-line for {line:?}: {response:?}"
    );
    let doc = json::parse(response)
        .unwrap_or_else(|e| panic!("response must be valid JSON for {line:?}: {e} {response:?}"));
    assert_eq!(
        doc.compact(),
        response,
        "responses must be canonical compact JSON"
    );
    let ok = doc.get("ok").and_then(Value::as_bool);
    assert!(ok.is_some(), "response must carry ok: {response:?}");
    if ok == Some(false) {
        let kind = doc
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("error response must carry error.kind: {response:?}"));
        assert!(
            ERROR_KINDS.contains(&kind),
            "unknown error kind {kind:?} in {response:?}"
        );
    }
    doc
}

/// Builds a structurally valid request from generated numbers. Stream
/// parameters are kept positive and ordered (ch < d <= t) so the model
/// layer accepts them; the request space still covers all four ops and
/// all four policies.
fn build_request(op_policy: usize, id: i64, streams: &[(i64, i64)]) -> Value {
    let policies = ["fcfs", "dm", "dm-paper", "edf"];
    let policy = policies[op_policy % policies.len()];
    let op = if op_policy.is_multiple_of(2) {
        "feasibility"
    } else {
        "response_times"
    };
    let rendered: Vec<Value> = streams
        .iter()
        .map(|&(ch, t)| {
            json::object([
                ("ch", Value::Int(ch)),
                ("d", Value::Int(t)),
                ("t", Value::Int(t)),
            ])
        })
        .collect();
    json::object([
        ("id", Value::Int(id)),
        ("op", Value::Str(op.to_string())),
        ("policy", Value::Str(policy.to_string())),
        (
            "net",
            json::object([
                ("ttr", Value::Int(5_000)),
                (
                    "masters",
                    Value::Array(vec![json::object([
                        ("cl", Value::Int(0)),
                        ("streams", Value::Array(rendered)),
                    ])]),
                ),
            ]),
        ),
    ])
}

proptest! {
    #[test]
    fn valid_requests_round_trip_and_get_canonical_answers(
        op_policy in 0usize..8,
        id in -1_000_000i64..1_000_000,
        raw in prop::collection::vec((10i64..500, 10_000i64..200_000), 1..5),
    ) {
        let req = build_request(op_policy, id, &raw);
        let line = req.compact();

        // parse ∘ render = id on the request itself.
        let reparsed = json::parse(&line).map_err(|e| {
            proptest::test_runner::TestCaseError::fail(format!("{e}"))
        })?;
        prop_assert_eq!(&reparsed, &req);
        prop_assert_eq!(reparsed.compact(), line.clone());

        // The answer echoes the id, is canonical, and round-trips too.
        let resp = answer_line(&line);
        let doc = check_envelope(&line, &resp);
        prop_assert_eq!(doc.get("id").and_then(Value::as_i64), Some(id));
        prop_assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true));
        let again = json::parse(&resp).map_err(|e| {
            proptest::test_runner::TestCaseError::fail(format!("{e}"))
        })?;
        prop_assert_eq!(again.compact(), resp);
    }

    #[test]
    fn arbitrary_bytes_never_panic_and_never_succeed(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let line = String::from_utf8_lossy(&bytes).replace(['\n', '\r'], " ");
        prop_assume!(!line.trim().is_empty());
        let resp = answer_line(&line);
        let doc = check_envelope(&line, &resp);
        // Random bytes essentially never form a valid request; if the
        // generator ever does produce one, a true answer is fine — what
        // is banned is a panic or a malformed envelope (checked above).
        if doc.get("ok").and_then(Value::as_bool) == Some(false) {
            prop_assert!(doc.get("error").is_some());
        }
    }

    #[test]
    fn truncated_valid_requests_fail_structurally(
        op_policy in 0usize..8,
        id in 0i64..1_000,
        cut in 1usize..60,
    ) {
        let line = build_request(op_policy, id, &[(100, 50_000)]).compact();
        prop_assume!(cut < line.len());
        let truncated = &line[..line.len() - cut];
        let resp = answer_line(truncated);
        let doc = check_envelope(truncated, &resp);
        prop_assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(false));
        let kind = doc
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str)
            .unwrap_or("");
        // A truncation either breaks the JSON ("parse") or removes a
        // required field ("schema").
        prop_assert!(
            kind == "parse" || kind == "schema",
            "unexpected kind {} for {}",
            kind,
            truncated
        );
    }

    #[test]
    fn schema_violations_are_schema_errors_not_panics(
        which in 0usize..6,
        id in 0i64..1_000,
    ) {
        // Structurally valid JSON, wrong shape: each case drops or
        // corrupts one required element.
        let line = match which {
            0 => format!("{{\"id\":{id}}}"),                        // no op
            1 => format!("{{\"id\":{id},\"op\":\"feasibility\"}}"), // no net
            2 => format!("{{\"id\":{id},\"op\":\"feasibility\",\"policy\":\"dm\",\"net\":[]}}"),
            3 => format!("{{\"id\":{id},\"op\":\"nope\"}}"),        // unknown op
            4 => format!(
                "{{\"id\":{id},\"op\":\"feasibility\",\"policy\":\"rm\",\"net\":{{\"ttr\":1,\"masters\":[]}}}}"
            ), // unknown policy
            _ => format!("{{\"id\":{id},\"op\":\"task_feasibility\",\"test\":\"nope\",\"tasks\":[]}}"),
        };
        let resp = answer_line(&line);
        let doc = check_envelope(&line, &resp);
        prop_assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(false));
        prop_assert_eq!(doc.get("id").and_then(Value::as_i64), Some(id));
    }
}

#[test]
fn oversized_lines_are_rejected_by_the_cap_not_evaluated() {
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_cap: 8,
        memo_cap: 8,
        max_request_bytes: 256,
    })
    .unwrap();
    // Valid request, padded past the cap with trailing spaces: the cap
    // must fire on raw byte length, before any parsing.
    let mut line = build_request(0, 7, &[(100, 50_000)]).compact();
    line.push_str(&" ".repeat(300));
    let resp = engine.handle(&line);
    let doc = check_envelope(&line, &resp);
    assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("oversized")
    );
    // Same request unpadded sails through.
    let ok = engine.handle(&build_request(0, 7, &[(100, 50_000)]).compact());
    let doc = check_envelope("unpadded", &ok);
    assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true));
    engine.shutdown();
}

#[test]
fn default_cap_bounds_every_accepted_line() {
    let line = "x".repeat(DEFAULT_MAX_REQUEST_BYTES + 1);
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_cap: 4,
        memo_cap: 0,
        max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
    })
    .unwrap();
    let resp = engine.handle(&line);
    assert!(resp.contains("\"oversized\""), "{resp}");
    engine.shutdown();
}
