//! Property-based tests for the frame codec and queues.

use bytes::BytesMut;
use proptest::prelude::*;

use profirt_base::{Priority, StreamId, Time};
use profirt_profibus::codec::{decode, encode};
use profirt_profibus::frame::{Frame, FunctionCode};
use profirt_profibus::{ApQueue, QueuePolicy, Request, StackQueue};

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(da, sa)| Frame::Token { da, sa }),
        Just(Frame::ShortAck),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(da, sa, fc)| Frame::Fixed {
            da,
            sa,
            fc: FunctionCode(fc)
        }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<[u8; 8]>()).prop_map(|(da, sa, fc, data)| {
            Frame::FixedData {
                da,
                sa,
                fc: FunctionCode(fc),
                data,
            }
        }),
        (
            any::<u8>(),
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 0..=246)
        )
            .prop_map(|(da, sa, fc, data)| Frame::Variable {
                da,
                sa,
                fc: FunctionCode(fc),
                data
            }),
    ]
}

proptest! {
    #[test]
    fn codec_round_trips(frame in arb_frame()) {
        let mut buf = BytesMut::new();
        let written = encode(&frame, &mut buf).unwrap();
        prop_assert_eq!(written, frame.char_len());
        let (decoded, consumed) = decode(&buf).unwrap();
        prop_assert_eq!(consumed, written);
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let _ = decode(&bytes); // must return Ok or Err, never panic
    }

    #[test]
    fn single_byte_corruption_never_yields_wrong_frame(
        frame in arb_frame(),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        // Fault injection: flip bits somewhere; decoding must either fail
        // or (if the corruption hit a "don't care" position such as the
        // address fields whose change keeps the FCS consistent — impossible
        // for single-byte XOR except on SD4/SC which have no FCS) produce a
        // *different* frame only for the unprotected token/ack formats.
        let mut buf = BytesMut::new();
        encode(&frame, &mut buf).unwrap();
        let mut bytes = buf.to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        match decode(&bytes) {
            Err(_) => {} // detected — good
            Ok((decoded, _)) => {
                let unprotected = matches!(
                    frame,
                    Frame::Token { .. } | Frame::ShortAck
                );
                if !unprotected {
                    // FCS-protected formats may only decode successfully if
                    // the corrupted byte produced a still-consistent frame;
                    // with a single-byte XOR the FCS check makes equality
                    // with the original impossible and consistency requires
                    // the mutation to cancel out, which XOR != 0 forbids —
                    // except start-delimiter mutations that turn the prefix
                    // into a shorter valid frame (e.g. SD2 -> SC prefix).
                    prop_assert_ne!(decoded, frame);
                }
            }
        }
    }

    #[test]
    fn ap_queue_pops_in_key_order(
        entries in proptest::collection::vec(
            (0usize..16, 0i64..10_000, 0u32..16, 1i64..1_000), 1..64
        ),
        policy_pick in 0u8..3,
    ) {
        let policy = match policy_pick {
            0 => QueuePolicy::Fcfs,
            1 => QueuePolicy::DeadlineMonotonic,
            _ => QueuePolicy::Edf,
        };
        let mut q = ApQueue::new(policy);
        for (i, &(stream, dl, prio, ch)) in entries.iter().enumerate() {
            q.push(Request {
                stream: StreamId(stream),
                release: Time::new(i as i64),
                abs_deadline: Time::new(dl),
                priority: Priority(prio),
                cycle_time: Time::new(ch),
            });
        }
        let drained = q.drain_ordered();
        prop_assert_eq!(drained.len(), entries.len());
        for w in drained.windows(2) {
            match policy {
                QueuePolicy::Fcfs => prop_assert!(w[0].release <= w[1].release),
                QueuePolicy::DeadlineMonotonic => {
                    prop_assert!(w[0].priority.0 <= w[1].priority.0)
                }
                QueuePolicy::Edf => {
                    prop_assert!(w[0].abs_deadline <= w[1].abs_deadline)
                }
            }
        }
    }

    #[test]
    fn stack_queue_never_exceeds_capacity(
        cap in 1usize..8,
        pushes in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut s = StackQueue::new(cap);
        let mut accepted = 0usize;
        let mut popped = 0usize;
        for (i, push) in pushes.iter().enumerate() {
            if *push {
                let pre_len = s.len();
                let ok = s.try_push(Request {
                    stream: StreamId(i),
                    release: Time::new(i as i64),
                    abs_deadline: Time::new(i as i64 + 100),
                    priority: Priority(0),
                    cycle_time: Time::new(1),
                });
                if ok { accepted += 1; }
                prop_assert!(s.len() <= cap);
                prop_assert_eq!(ok, pre_len < cap, "push accepted iff a slot was free");
                prop_assert_eq!(accepted - popped, s.len());
            } else if s.pop().is_some() {
                popped += 1;
            }
        }
        prop_assert_eq!(accepted - popped, s.len());
    }
}
