//! Property tests for the FDL master state machine as the simulation
//! kernel drives it: arbitrary event sequences never reach an invalid
//! state, rejected events never mutate state, and the token-holding
//! predicate stays consistent with the state set.

use proptest::prelude::*;

use profirt_base::MasterAddr;
use profirt_profibus::fdl::{step, Transition};
use profirt_profibus::{FdlEvent, FdlState, FdlStation};

const ALL_STATES: [FdlState; 7] = [
    FdlState::Offline,
    FdlState::ListenToken,
    FdlState::ActiveIdle,
    FdlState::ClaimToken,
    FdlState::UseToken,
    FdlState::AwaitResponse,
    FdlState::PassToken,
];

const ALL_EVENTS: [FdlEvent; 12] = [
    FdlEvent::PowerOn,
    FdlEvent::PowerOff,
    FdlEvent::RingEntryComplete,
    FdlEvent::TokenReceived,
    FdlEvent::TimeoutTto,
    FdlEvent::ClaimSucceeded,
    FdlEvent::RequestSent,
    FdlEvent::ResponseReceived,
    FdlEvent::ResponseTimeout,
    FdlEvent::HoldingDone,
    FdlEvent::PassConfirmed,
    FdlEvent::PassFailed,
];

fn arb_events() -> impl Strategy<Value = Vec<FdlEvent>> {
    proptest::collection::vec(0usize..ALL_EVENTS.len(), 0..=64)
        .prop_map(|idx| idx.into_iter().map(|i| ALL_EVENTS[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the event sequence, the station is always in one of the
    /// seven defined states, a rejected event leaves the state untouched,
    /// and `holds_token` is exactly the Use/Await/Pass subset.
    #[test]
    fn arbitrary_event_sequences_never_corrupt_state(events in arb_events()) {
        let mut st = FdlStation::new(MasterAddr(7));
        prop_assert_eq!(st.state(), FdlState::Offline);
        for ev in events {
            let before = st.state();
            match st.apply(ev) {
                Ok(next) => {
                    prop_assert!(ALL_STATES.contains(&next));
                    prop_assert_eq!(st.state(), next);
                    // The wrapper agrees with the pure transition function.
                    prop_assert_eq!(step(before, ev), Transition::To(next));
                }
                Err(unchanged) => {
                    prop_assert_eq!(unchanged, before);
                    prop_assert_eq!(st.state(), before);
                    prop_assert_eq!(step(before, ev), Transition::Invalid);
                }
            }
            prop_assert_eq!(
                st.holds_token(),
                matches!(
                    st.state(),
                    FdlState::UseToken | FdlState::AwaitResponse | FdlState::PassToken
                )
            );
        }
    }

    /// `PowerOff` is accepted from every reachable state and always lands
    /// in `Offline`; a powered-off station only ever reacts to `PowerOn`.
    #[test]
    fn power_off_is_total_and_offline_is_inert(events in arb_events()) {
        let mut st = FdlStation::new(MasterAddr(1));
        for ev in events {
            let _ = st.apply(ev);
        }
        st.apply(FdlEvent::PowerOff).unwrap();
        prop_assert_eq!(st.state(), FdlState::Offline);
        for &ev in &ALL_EVENTS {
            if ev == FdlEvent::PowerOn || ev == FdlEvent::PowerOff {
                continue;
            }
            prop_assert_eq!(st.apply(ev), Err(FdlState::Offline));
        }
    }
}

/// Exhaustive cross-product: `step` never panics, and every transition
/// target is a defined state (the property the proptest samples, proved
/// over the whole 7×12 table).
#[test]
fn full_transition_table_is_closed() {
    let mut valid = 0;
    for &state in &ALL_STATES {
        for &event in &ALL_EVENTS {
            match step(state, event) {
                Transition::To(next) => {
                    assert!(
                        ALL_STATES.contains(&next),
                        "{state:?} --{event:?}--> {next:?}"
                    );
                    valid += 1;
                }
                Transition::Invalid => {}
            }
        }
    }
    // 7 PowerOff transitions plus the 13 defined edges of the machine.
    assert_eq!(
        valid,
        7 + 13,
        "transition count drifted — update the diagram"
    );
}
