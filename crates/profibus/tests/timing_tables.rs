//! Golden timing tables: hand-computed message-cycle and protocol timings
//! across the standard bus profiles (the numbers the paper's `Chi` / `Cl`
//! inputs come from).

use profirt_base::time::t;
use profirt_profibus::chartime::{char_time, frame_chars};
use profirt_profibus::{BusParams, MessageCycleSpec, TokenPassTime};

/// Error-free SRD cycle times at 500 kbit/s, hand-computed:
/// TSYN(33) + 11·(9+req) + maxTSDR(100) + 11·(9+resp) + TID1(37).
#[test]
fn srd_cycle_golden_values_500k() {
    let p = BusParams::profile_500k();
    let cases = [
        // (req, resp, expected bits)
        (0usize, 0usize, 33 + 99 + 100 + 99 + 37),
        (2, 2, 33 + 121 + 100 + 121 + 37),
        (8, 12, 33 + 187 + 100 + 231 + 37),
        (32, 64, 33 + 451 + 100 + 803 + 37),
        (246, 246, 33 + 2805 + 100 + 2805 + 37),
    ];
    for (req, resp, expected) in cases {
        let spec = MessageCycleSpec::srd_sd2(req, resp);
        assert_eq!(spec.error_free_time(&p), t(expected), "srd({req},{resp})");
    }
}

/// Worst-case (with retries) = error-free + retries · (TSYN + request + TSL).
#[test]
fn retry_expansion_all_profiles() {
    for p in [
        BusParams::profile_93_75k(),
        BusParams::profile_500k(),
        BusParams::profile_1m5(),
    ] {
        let spec = MessageCycleSpec::srd_sd2(8, 8);
        let error_free = spec.error_free_time(&p);
        for retries in 0..=4u8 {
            let pr = p.with_max_retry(retries);
            let per_retry = pr.tsyn + char_time(frame_chars::sd2(8)) + pr.slot_time;
            assert_eq!(
                spec.worst_case_time(&pr),
                error_free + per_retry * retries as i64,
                "{} baud, {retries} retries",
                p.baud_rate
            );
        }
    }
}

/// Token pass = TSYN + 3 chars + TID2 for every profile.
#[test]
fn token_pass_golden_values() {
    assert_eq!(
        TokenPassTime::time(&BusParams::profile_93_75k()),
        t(33 + 33 + 60)
    );
    assert_eq!(
        TokenPassTime::time(&BusParams::profile_500k()),
        t(33 + 33 + 100)
    );
    assert_eq!(
        TokenPassTime::time(&BusParams::profile_1m5()),
        t(33 + 33 + 150)
    );
}

/// Wall-clock sanity: cycle durations in microseconds match the bit-time
/// arithmetic at each baud rate.
#[test]
fn wall_clock_durations() {
    let spec = MessageCycleSpec::srd_sd2(8, 12);
    // 500 kbit/s: 588 bits (error-free) = 1176 us.
    let p500 = BusParams::profile_500k();
    let ef = spec.error_free_time(&p500);
    assert_eq!(ef, t(588));
    assert!((p500.ticks_to_micros(ef) - 1_176.0).abs() < 1e-9);
    // 1.5 Mbit/s: different TSDR -> 638 bits = 425.3 us.
    let p1m5 = BusParams::profile_1m5();
    let ef2 = spec.error_free_time(&p1m5);
    assert_eq!(ef2, t(33 + 187 + 150 + 231 + 37));
    assert!((p1m5.ticks_to_micros(ef2) - ef2.ticks() as f64 / 1.5).abs() < 1e-9);
}

/// The acknowledge-only SDA exchange is the shortest possible cycle; the
/// maximal SD2/SD2 exchange is the longest — the generators stay inside
/// this envelope.
#[test]
fn cycle_time_envelope() {
    let p = BusParams::profile_500k();
    let shortest = MessageCycleSpec::sda_sd2(0).worst_case_time(&p);
    let longest = MessageCycleSpec::srd_sd2(246, 246).worst_case_time(&p);
    assert!(shortest < longest);
    for (req, resp) in [(1, 1), (16, 32), (100, 200), (246, 0)] {
        let c = MessageCycleSpec::srd_sd2(req, resp).worst_case_time(&p);
        assert!(c <= longest, "srd({req},{resp}) above envelope");
    }
    // SDA with equal payload is never longer than SRD (short ack response).
    for n in [0usize, 8, 64, 246] {
        assert!(
            MessageCycleSpec::sda_sd2(n).worst_case_time(&p)
                <= MessageCycleSpec::srd_sd2(n, n).worst_case_time(&p)
        );
    }
}

/// Character-count arithmetic for every frame format (the codec tests
/// verify byte-for-byte encodings; this pins the *time* model).
#[test]
fn frame_time_table() {
    assert_eq!(char_time(frame_chars::SHORT_ACK), t(11));
    assert_eq!(char_time(frame_chars::TOKEN), t(33));
    assert_eq!(char_time(frame_chars::SD1), t(66));
    assert_eq!(char_time(frame_chars::SD3), t(154));
    assert_eq!(char_time(frame_chars::sd2(0)), t(99));
    assert_eq!(char_time(frame_chars::sd2(246)), t(11 * 255));
}
