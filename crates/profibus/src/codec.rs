//! Exact binary encoding/decoding of FDL frames.
//!
//! The encoder writes the on-wire octet sequence (excluding UART framing
//! bits, which [`crate::chartime`] accounts for in time); the decoder
//! validates delimiters, SD2 length consistency, and the FCS, returning
//! typed [`FrameError`]s.

use bytes::{BufMut, BytesMut};

use crate::fcs::fcs;
use crate::frame::{delim, Frame, FrameError, FunctionCode, MAX_SD2_DATA};

/// Encodes a frame into `out`, returning the number of octets written.
///
/// # Errors
/// [`FrameError::PayloadTooLarge`] for SD2 payloads over [`MAX_SD2_DATA`].
pub fn encode(frame: &Frame, out: &mut BytesMut) -> Result<usize, FrameError> {
    let start = out.len();
    match frame {
        Frame::Token { da, sa } => {
            out.put_u8(delim::SD4);
            out.put_u8(*da);
            out.put_u8(*sa);
        }
        Frame::ShortAck => {
            out.put_u8(delim::SC);
        }
        Frame::Fixed { da, sa, fc } => {
            out.put_u8(delim::SD1);
            out.put_u8(*da);
            out.put_u8(*sa);
            out.put_u8(fc.0);
            out.put_u8(fcs(&[*da, *sa, fc.0]));
            out.put_u8(delim::ED);
        }
        Frame::FixedData { da, sa, fc, data } => {
            out.put_u8(delim::SD3);
            out.put_u8(*da);
            out.put_u8(*sa);
            out.put_u8(fc.0);
            out.put_slice(data);
            let mut covered = vec![*da, *sa, fc.0];
            covered.extend_from_slice(data);
            out.put_u8(fcs(&covered));
            out.put_u8(delim::ED);
        }
        Frame::Variable { da, sa, fc, data } => {
            if data.len() > MAX_SD2_DATA {
                return Err(FrameError::PayloadTooLarge { size: data.len() });
            }
            let le = (data.len() + 3) as u8; // DA + SA + FC + DU
            out.put_u8(delim::SD2);
            out.put_u8(le);
            out.put_u8(le);
            out.put_u8(delim::SD2);
            out.put_u8(*da);
            out.put_u8(*sa);
            out.put_u8(fc.0);
            out.put_slice(data);
            let mut covered = vec![*da, *sa, fc.0];
            covered.extend_from_slice(data);
            out.put_u8(fcs(&covered));
            out.put_u8(delim::ED);
        }
    }
    Ok(out.len() - start)
}

/// Decodes one frame from the start of `input`, returning the frame and the
/// number of octets consumed.
pub fn decode(input: &[u8]) -> Result<(Frame, usize), FrameError> {
    let first = *input
        .first()
        .ok_or(FrameError::Truncated { needed: 1, got: 0 })?;
    match first {
        delim::SC => Ok((Frame::ShortAck, 1)),
        delim::SD4 => {
            need(input, 3)?;
            Ok((
                Frame::Token {
                    da: input[1],
                    sa: input[2],
                },
                3,
            ))
        }
        delim::SD1 => {
            need(input, 6)?;
            let (da, sa, fc) = (input[1], input[2], input[3]);
            let expected = fcs(&[da, sa, fc]);
            if expected != input[4] {
                return Err(FrameError::BadChecksum {
                    expected,
                    got: input[4],
                });
            }
            if input[5] != delim::ED {
                return Err(FrameError::BadEndDelimiter(input[5]));
            }
            Ok((
                Frame::Fixed {
                    da,
                    sa,
                    fc: FunctionCode(fc),
                },
                6,
            ))
        }
        delim::SD3 => {
            need(input, 14)?;
            let (da, sa, fc) = (input[1], input[2], input[3]);
            let mut data = [0u8; 8];
            data.copy_from_slice(&input[4..12]);
            let mut covered = vec![da, sa, fc];
            covered.extend_from_slice(&data);
            let expected = fcs(&covered);
            if expected != input[12] {
                return Err(FrameError::BadChecksum {
                    expected,
                    got: input[12],
                });
            }
            if input[13] != delim::ED {
                return Err(FrameError::BadEndDelimiter(input[13]));
            }
            Ok((
                Frame::FixedData {
                    da,
                    sa,
                    fc: FunctionCode(fc),
                    data,
                },
                14,
            ))
        }
        delim::SD2 => {
            need(input, 4)?;
            let (le, ler) = (input[1], input[2]);
            if le != ler || (le as usize) < 3 {
                return Err(FrameError::BadLength { le, ler });
            }
            if input[3] != delim::SD2 {
                return Err(FrameError::BadSd2Repeat(input[3]));
            }
            let total = 4 + le as usize + 2; // header + LE octets + FCS + ED
            need(input, total)?;
            let da = input[4];
            let sa = input[5];
            let fc = input[6];
            let data = input[7..4 + le as usize].to_vec();
            let mut covered = vec![da, sa, fc];
            covered.extend_from_slice(&data);
            let expected = fcs(&covered);
            let fcs_pos = 4 + le as usize;
            if expected != input[fcs_pos] {
                return Err(FrameError::BadChecksum {
                    expected,
                    got: input[fcs_pos],
                });
            }
            if input[fcs_pos + 1] != delim::ED {
                return Err(FrameError::BadEndDelimiter(input[fcs_pos + 1]));
            }
            Ok((
                Frame::Variable {
                    da,
                    sa,
                    fc: FunctionCode(fc),
                    data,
                },
                total,
            ))
        }
        other => Err(FrameError::BadStartDelimiter(other)),
    }
}

fn need(input: &[u8], n: usize) -> Result<(), FrameError> {
    if input.len() < n {
        Err(FrameError::Truncated {
            needed: n,
            got: input.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut buf = BytesMut::new();
        let written = encode(&frame, &mut buf).unwrap();
        assert_eq!(written, buf.len());
        assert_eq!(written, frame.char_len(), "char_len must match encoding");
        let (decoded, consumed) = decode(&buf).unwrap();
        assert_eq!(consumed, written);
        assert_eq!(decoded, frame);
    }

    #[test]
    fn round_trips_all_formats() {
        round_trip(Frame::Token { da: 5, sa: 3 });
        round_trip(Frame::ShortAck);
        round_trip(Frame::Fixed {
            da: 2,
            sa: 1,
            fc: FunctionCode::REQUEST_FDL_STATUS,
        });
        round_trip(Frame::FixedData {
            da: 9,
            sa: 1,
            fc: FunctionCode::SRD_HIGH,
            data: [1, 2, 3, 4, 5, 6, 7, 8],
        });
        round_trip(Frame::Variable {
            da: 17,
            sa: 2,
            fc: FunctionCode::SRD_LOW,
            data: vec![],
        });
        round_trip(Frame::Variable {
            da: 17,
            sa: 2,
            fc: FunctionCode::SDA_HIGH,
            data: (0..100).collect(),
        });
    }

    #[test]
    fn known_encoding_sd1() {
        // SD1 to DA=2 from SA=1 with FC=0x49: FCS = 2+1+0x49 = 0x4C.
        let mut buf = BytesMut::new();
        encode(
            &Frame::Fixed {
                da: 2,
                sa: 1,
                fc: FunctionCode(0x49),
            },
            &mut buf,
        )
        .unwrap();
        assert_eq!(&buf[..], &[0x10, 0x02, 0x01, 0x49, 0x4C, 0x16]);
    }

    #[test]
    fn known_encoding_token() {
        let mut buf = BytesMut::new();
        encode(&Frame::Token { da: 3, sa: 1 }, &mut buf).unwrap();
        assert_eq!(&buf[..], &[0xDC, 0x03, 0x01]);
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let mut buf = BytesMut::new();
        encode(
            &Frame::Fixed {
                da: 2,
                sa: 1,
                fc: FunctionCode(0x49),
            },
            &mut buf,
        )
        .unwrap();
        let mut bytes = buf.to_vec();
        bytes[4] ^= 0xFF;
        assert!(matches!(
            decode(&bytes),
            Err(FrameError::BadChecksum { .. })
        ));
    }

    #[test]
    fn corrupted_end_delimiter_rejected() {
        let mut buf = BytesMut::new();
        encode(
            &Frame::Fixed {
                da: 2,
                sa: 1,
                fc: FunctionCode(0x49),
            },
            &mut buf,
        )
        .unwrap();
        let mut bytes = buf.to_vec();
        *bytes.last_mut().unwrap() = 0x00;
        assert!(matches!(
            decode(&bytes),
            Err(FrameError::BadEndDelimiter(0x00))
        ));
    }

    #[test]
    fn sd2_length_mismatch_rejected() {
        let mut buf = BytesMut::new();
        encode(
            &Frame::Variable {
                da: 1,
                sa: 2,
                fc: FunctionCode::SRD_LOW,
                data: vec![9, 9],
            },
            &mut buf,
        )
        .unwrap();
        let mut bytes = buf.to_vec();
        bytes[2] = bytes[2].wrapping_add(1); // LEr != LE
        assert!(matches!(decode(&bytes), Err(FrameError::BadLength { .. })));
    }

    #[test]
    fn truncation_detected() {
        let mut buf = BytesMut::new();
        encode(
            &Frame::FixedData {
                da: 1,
                sa: 2,
                fc: FunctionCode::SRD_HIGH,
                data: [0; 8],
            },
            &mut buf,
        )
        .unwrap();
        for cut in 0..buf.len() {
            let r = decode(&buf[..cut]);
            if cut == 0 {
                assert!(matches!(r, Err(FrameError::Truncated { .. })));
            } else {
                assert!(r.is_err(), "decode of {cut}-byte prefix must fail");
            }
        }
    }

    #[test]
    fn unknown_delimiter_rejected() {
        assert!(matches!(
            decode(&[0x99, 0, 0]),
            Err(FrameError::BadStartDelimiter(0x99))
        ));
    }

    #[test]
    fn oversized_payload_rejected_at_encode() {
        let mut buf = BytesMut::new();
        let err = encode(
            &Frame::Variable {
                da: 1,
                sa: 2,
                fc: FunctionCode::SRD_LOW,
                data: vec![0; 247],
            },
            &mut buf,
        )
        .unwrap_err();
        assert!(matches!(err, FrameError::PayloadTooLarge { size: 247 }));
    }

    #[test]
    fn decode_consumes_exactly_one_frame() {
        let mut buf = BytesMut::new();
        encode(&Frame::ShortAck, &mut buf).unwrap();
        encode(&Frame::Token { da: 1, sa: 2 }, &mut buf).unwrap();
        let (f1, n1) = decode(&buf).unwrap();
        assert_eq!(f1, Frame::ShortAck);
        let (f2, n2) = decode(&buf[n1..]).unwrap();
        assert_eq!(f2, Frame::Token { da: 1, sa: 2 });
        assert_eq!(n1 + n2, buf.len());
    }
}
