//! The timed-token state machine of the paper's §3.1.
//!
//! Each master measures the *real token rotation time* `TRR` (from one token
//! arrival to the next) and, on arrival, loads the token-holding timer
//! `TTH := TTR − TRR`:
//!
//! * **Late token** (`TTH ≤ 0`): the master may execute *at most one*
//!   high-priority message cycle and no low-priority cycles.
//! * **Early token** (`TTH > 0`): high-priority cycles run while `TTH > 0`;
//!   low-priority cycles run afterwards while `TTH > 0`. The timer is tested
//!   only at the **start** of each cycle — a started cycle always completes,
//!   including retries, even if `TTH` expires meanwhile (a *TTH overrun*,
//!   the root cause of token lateness analysed in §3.3).
//!
//! [`TokenTimer`] keeps per-master rotation state; [`TokenHold`] answers the
//! dispatch questions for one token visit. Both are pure (no I/O, no
//! wall-clock) so the analysis crate and the simulator share them.

use profirt_base::Time;
use serde::{Deserialize, Serialize};

/// Per-master token rotation timer (`TRR` measurement + `TTR` target).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TokenTimer {
    ttr: Time,
    /// Instant at which the current TRR measurement started (= last token
    /// arrival; protocol initialisation starts the count-up at time 0).
    trr_started_at: Time,
}

impl TokenTimer {
    /// Creates a timer with target rotation time `ttr`; the initial `TRR`
    /// count-up starts at time 0 (the paper's initialisation procedure).
    pub fn new(ttr: Time) -> TokenTimer {
        TokenTimer {
            ttr,
            trr_started_at: Time::ZERO,
        }
    }

    /// The configured target token rotation time.
    pub fn ttr(&self) -> Time {
        self.ttr
    }

    /// Handles a token arrival at `now`: returns the hold state for this
    /// visit and restarts the `TRR` measurement.
    pub fn on_token_arrival(&mut self, now: Time) -> TokenHold {
        let trr = now - self.trr_started_at;
        self.trr_started_at = now;
        let tth = self.ttr - trr;
        TokenHold {
            arrived_at: now,
            tth_at_arrival: tth,
        }
    }

    /// The most recent measured rotation start (for diagnostics).
    pub fn trr_started_at(&self) -> Time {
        self.trr_started_at
    }
}

/// The token-holding state for a single token visit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TokenHold {
    /// Token arrival instant.
    pub arrived_at: Time,
    /// `TTH = TTR − TRR` computed at arrival (may be negative: late token).
    pub tth_at_arrival: Time,
}

impl TokenHold {
    /// `true` iff the token arrived late (`TTH ≤ 0`): only the single
    /// guaranteed high-priority message cycle may run.
    pub fn is_late(&self) -> bool {
        !self.tth_at_arrival.is_positive()
    }

    /// The instant at which `TTH` reaches zero (equals `arrived_at` for a
    /// late token).
    pub fn expires_at(&self) -> Time {
        self.arrived_at + self.tth_at_arrival.max_zero()
    }

    /// Whether a *further* high-priority cycle may start at `now` (the first
    /// one is always allowed — use [`TokenHold::first_high_allowed`]).
    ///
    /// Per §3.1 the timer is tested at the start of the cycle: the test is
    /// `TTH > 0`, i.e. `now < expires_at`. The cycle then runs to
    /// completion regardless (TTH overrun).
    pub fn may_start_additional_high(&self, now: Time) -> bool {
        now < self.expires_at()
    }

    /// The first pending high-priority cycle is allowed unconditionally —
    /// even on a late token (the property that makes `Tcycle`-based response
    /// bounds possible at all).
    pub fn first_high_allowed(&self) -> bool {
        true
    }

    /// Whether a low-priority cycle may start at `now`: requires a
    /// non-late token and remaining `TTH`.
    pub fn may_start_low(&self, now: Time) -> bool {
        !self.is_late() && now < self.expires_at()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    #[test]
    fn early_token_gets_residual_tth() {
        let mut timer = TokenTimer::new(t(1000));
        // First arrival at 400: TRR = 400, TTH = 600.
        let hold = timer.on_token_arrival(t(400));
        assert_eq!(hold.tth_at_arrival, t(600));
        assert!(!hold.is_late());
        assert_eq!(hold.expires_at(), t(1000));
        assert!(hold.may_start_additional_high(t(999)));
        assert!(!hold.may_start_additional_high(t(1000)));
        assert!(hold.may_start_low(t(999)));
        assert!(!hold.may_start_low(t(1000)));
    }

    #[test]
    fn late_token_allows_only_first_high() {
        let mut timer = TokenTimer::new(t(500));
        let _ = timer.on_token_arrival(t(100)); // TRR restarts at 100
        let hold = timer.on_token_arrival(t(900)); // TRR = 800 > TTR
        assert_eq!(hold.tth_at_arrival, t(-300));
        assert!(hold.is_late());
        assert!(hold.first_high_allowed());
        assert!(!hold.may_start_additional_high(t(900)));
        assert!(!hold.may_start_low(t(900)));
        assert_eq!(hold.expires_at(), t(900));
    }

    #[test]
    fn exactly_on_time_token_is_late() {
        // TTH = 0 means "IF TTH > 0" fails: treated as late.
        let mut timer = TokenTimer::new(t(500));
        let _ = timer.on_token_arrival(t(0));
        let hold = timer.on_token_arrival(t(500));
        assert_eq!(hold.tth_at_arrival, t(0));
        assert!(hold.is_late());
    }

    #[test]
    fn trr_measurement_restarts_each_arrival() {
        let mut timer = TokenTimer::new(t(1000));
        let _ = timer.on_token_arrival(t(100));
        assert_eq!(timer.trr_started_at(), t(100));
        let hold = timer.on_token_arrival(t(350));
        assert_eq!(hold.tth_at_arrival, t(750)); // TRR = 250
        assert_eq!(timer.trr_started_at(), t(350));
    }

    #[test]
    fn initialisation_counts_from_zero() {
        // Paper's init: TRR starts counting at startup, so the first
        // arrival at `now` sees TRR = now.
        let mut timer = TokenTimer::new(t(300));
        let hold = timer.on_token_arrival(t(120));
        assert_eq!(hold.tth_at_arrival, t(180));
    }

    #[test]
    fn overrun_semantics_cycle_started_before_expiry_runs() {
        // A cycle that starts one tick before expiry is permitted; the hold
        // gives no completion bound (the caller lets it run to completion).
        let mut timer = TokenTimer::new(t(100));
        let hold = timer.on_token_arrival(t(40)); // TTH = 60, expires 100
        assert!(hold.may_start_additional_high(t(99)));
        // Even a very long cycle is not interrupted — nothing to assert on
        // the hold itself; the simulator owns completion. Document by
        // checking expires_at stays fixed.
        assert_eq!(hold.expires_at(), t(100));
    }
}
