//! Bus timing parameters.
//!
//! All durations are expressed in **bit times** (ticks): at baud rate `b`,
//! one bit time is `1/b` seconds, so every DIN 19245 parameter (slot time,
//! station delay, idle time) — specified by the standard in bit times — is
//! exactly representable. Conversions to microseconds are provided for
//! reporting.

use profirt_base::Time;
use serde::{Deserialize, Serialize};

/// PROFIBUS bus parameter set (per-network, common to all masters).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BusParams {
    /// Baud rate in bit/s (defines the tick duration `1/baud`).
    pub baud_rate: u32,
    /// Slot time `TSL`: how long an initiator waits for the first response
    /// character before a retry (bit times).
    pub slot_time: Time,
    /// Minimum station delay of responders `min TSDR` (bit times).
    pub min_tsdr: Time,
    /// Maximum station delay of responders `max TSDR` (bit times) — the
    /// worst-case turnaround between request and response.
    pub max_tsdr: Time,
    /// Idle time `TID1`: inserted by the initiator after receiving an
    /// acknowledgement/response before its next transmission (bit times).
    pub tid1: Time,
    /// Idle time `TID2`: inserted after an unacknowledged transmission
    /// (e.g. token pass or SDN broadcast) (bit times).
    pub tid2: Time,
    /// Synchronisation period `TSYN` preceding each frame: 33 idle bit
    /// times per DIN 19245.
    pub tsyn: Time,
    /// Maximum number of retries after a missing/garbled response
    /// (`max_retry_limit`).
    pub max_retry: u8,
    /// Target token rotation time `TTR` (bit times) — the paper's key
    /// tunable, set via eq. (15).
    pub ttr: Time,
}

impl BusParams {
    /// Typical profile at 500 kbit/s (DIN 19245 defaults).
    pub fn profile_500k() -> BusParams {
        BusParams {
            baud_rate: 500_000,
            slot_time: Time::new(200),
            min_tsdr: Time::new(11),
            max_tsdr: Time::new(100),
            tid1: Time::new(37),
            tid2: Time::new(100),
            tsyn: Time::new(33),
            max_retry: 1,
            ttr: Time::new(20_000),
        }
    }

    /// Typical profile at 1.5 Mbit/s.
    pub fn profile_1m5() -> BusParams {
        BusParams {
            baud_rate: 1_500_000,
            slot_time: Time::new(300),
            min_tsdr: Time::new(11),
            max_tsdr: Time::new(150),
            tid1: Time::new(37),
            tid2: Time::new(150),
            tsyn: Time::new(33),
            max_retry: 1,
            ttr: Time::new(50_000),
        }
    }

    /// Typical profile at 93.75 kbit/s (long segments).
    pub fn profile_93_75k() -> BusParams {
        BusParams {
            baud_rate: 93_750,
            slot_time: Time::new(125),
            min_tsdr: Time::new(11),
            max_tsdr: Time::new(60),
            tid1: Time::new(37),
            tid2: Time::new(60),
            tsyn: Time::new(33),
            max_retry: 1,
            ttr: Time::new(4_000),
        }
    }

    /// Returns a copy with a different `TTR` (the analysis sweeps this).
    pub fn with_ttr(mut self, ttr: Time) -> BusParams {
        self.ttr = ttr;
        self
    }

    /// Returns a copy with a different slot time `TSL` (the simulators
    /// carry `TSL` in their run config and route it through here for the
    /// token-recovery timeout).
    pub fn with_slot_time(mut self, slot_time: Time) -> BusParams {
        self.slot_time = slot_time;
        self
    }

    /// Returns a copy with a different retry limit.
    pub fn with_max_retry(mut self, max_retry: u8) -> BusParams {
        self.max_retry = max_retry;
        self
    }

    /// Duration of one bit time in nanoseconds (rounded down).
    pub fn bit_time_ns(&self) -> u64 {
        1_000_000_000u64 / self.baud_rate as u64
    }

    /// Converts ticks (bit times) to microseconds as `f64`, for reporting
    /// only.
    pub fn ticks_to_micros(&self, t: Time) -> f64 {
        t.ticks() as f64 * 1e6 / self.baud_rate as f64
    }

    /// Converts a microsecond duration to ticks, rounding up (conservative
    /// for worst-case budgets).
    pub fn micros_to_ticks(&self, micros: f64) -> Time {
        Time::new((micros * self.baud_rate as f64 / 1e6).ceil() as i64)
    }

    /// Basic sanity validation of the parameter set.
    pub fn validate(&self) -> Result<(), String> {
        if self.baud_rate == 0 {
            return Err("baud rate must be positive".into());
        }
        if !self.slot_time.is_positive() {
            return Err("slot time must be positive".into());
        }
        if self.min_tsdr > self.max_tsdr {
            return Err("min TSDR exceeds max TSDR".into());
        }
        if self.max_tsdr >= self.slot_time {
            return Err("slot time must exceed max TSDR (or every cycle retries)".into());
        }
        if !self.ttr.is_positive() {
            return Err("TTR must be positive".into());
        }
        Ok(())
    }
}

impl Default for BusParams {
    fn default() -> Self {
        BusParams::profile_500k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    #[test]
    fn profiles_are_valid() {
        for p in [
            BusParams::profile_500k(),
            BusParams::profile_1m5(),
            BusParams::profile_93_75k(),
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn bit_time_values() {
        assert_eq!(BusParams::profile_500k().bit_time_ns(), 2_000);
        assert_eq!(BusParams::profile_1m5().bit_time_ns(), 666);
    }

    #[test]
    fn micros_round_trip() {
        let p = BusParams::profile_500k();
        // 2 us per bit: 100 us = 50 bits.
        assert_eq!(p.micros_to_ticks(100.0), t(50));
        assert!((p.ticks_to_micros(t(50)) - 100.0).abs() < 1e-9);
        // Rounding up: 1 us = 0.5 bits -> 1 tick.
        assert_eq!(p.micros_to_ticks(1.0), t(1));
    }

    #[test]
    fn with_builders() {
        let p = BusParams::profile_500k()
            .with_ttr(t(9_999))
            .with_max_retry(3);
        assert_eq!(p.ttr, t(9_999));
        assert_eq!(p.max_retry, 3);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = BusParams::profile_500k();
        p.min_tsdr = t(500);
        assert!(p.validate().is_err());

        let mut p2 = BusParams::profile_500k();
        p2.slot_time = t(50); // below max_tsdr = 100
        assert!(p2.validate().is_err());

        let mut p3 = BusParams::profile_500k();
        p3.ttr = t(0);
        assert!(p3.validate().is_err());
    }
}
