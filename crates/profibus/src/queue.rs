//! Outgoing message queues.
//!
//! Stock PROFIBUS implementations keep two FCFS outgoing queues (high and
//! low priority). The paper's §4 architecture adds a **priority-ordered
//! queue at the application-process level** — keyed by static (DM) priority
//! or by absolute deadline (EDF) — and throttles the communication-stack
//! FCFS queue to a single pending request so that the stack can never
//! reorder more than one message behind the AP queue's back.
//!
//! [`ApQueue`] implements all three dispatching policies behind one type so
//! simulators and experiments can swap policies without code changes;
//! [`StackQueue`] models the depth-limited stack queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use profirt_base::{Priority, StreamId, Time};
use serde::{Deserialize, Serialize};

/// A queued message request (one message cycle to execute).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Request {
    /// Originating stream.
    pub stream: StreamId,
    /// Instant the request was placed in the AP queue.
    pub release: Time,
    /// Absolute deadline (`release + D`) — the EDF key.
    pub abs_deadline: Time,
    /// Static priority — the DM key (smaller = more urgent).
    pub priority: Priority,
    /// Worst-case message-cycle time `Ch` for this request.
    pub cycle_time: Time,
}

/// Dispatching policy of the application-process queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum QueuePolicy {
    /// First-come-first-served — the stock PROFIBUS behaviour (§3).
    #[default]
    Fcfs,
    /// Fixed priorities, deadline-monotonic by construction (§4, eq. (16)).
    DeadlineMonotonic,
    /// Earliest absolute deadline first (§4, eqs. (17)–(18)).
    Edf,
}

/// Priority-ordered (or FCFS) application-process queue.
///
/// Ordering is total and deterministic: the policy key first, then the
/// arrival sequence number (FIFO among equals). Per §4.2 the queue is
/// "re-ordered" only when a new request is inserted — which a heap gives us
/// for free, since keys of queued requests never change.
#[derive(Clone, Debug)]
pub struct ApQueue {
    policy: QueuePolicy,
    seq: u64,
    heap: BinaryHeap<Reverse<(i64, u64, QueuedRequest)>>,
}

/// Internal wrapper ordered only by the exposed key tuple.
#[derive(Clone, Copy, Debug)]
struct QueuedRequest(Request);

impl PartialEq for QueuedRequest {
    fn eq(&self, _: &Self) -> bool {
        true // ordering delegated entirely to the (key, seq) prefix
    }
}
impl Eq for QueuedRequest {}
impl PartialOrd for QueuedRequest {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedRequest {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl ApQueue {
    /// Creates an empty queue with the given policy.
    pub fn new(policy: QueuePolicy) -> ApQueue {
        ApQueue {
            policy,
            seq: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// The queue's policy.
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    fn key(&self, r: &Request) -> i64 {
        match self.policy {
            QueuePolicy::Fcfs => 0,
            QueuePolicy::DeadlineMonotonic => r.priority.0 as i64,
            QueuePolicy::Edf => r.abs_deadline.ticks(),
        }
    }

    /// Inserts a request (the only operation that reorders the queue).
    pub fn push(&mut self, r: Request) {
        let key = self.key(&r);
        self.heap.push(Reverse((key, self.seq, QueuedRequest(r))));
        self.seq += 1;
    }

    /// Removes and returns the most urgent request.
    pub fn pop(&mut self) -> Option<Request> {
        self.heap.pop().map(|Reverse((_, _, q))| q.0)
    }

    /// The most urgent request without removing it.
    pub fn peek(&self) -> Option<&Request> {
        self.heap.peek().map(|Reverse((_, _, q))| &q.0)
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains the queue in dispatch order (test/diagnostic helper).
    pub fn drain_ordered(&mut self) -> Vec<Request> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(r) = self.pop() {
            out.push(r);
        }
        out
    }
}

/// Capacity of a [`StackQueue`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum StackCapacity {
    /// At most this many pending requests (`>= 1`).
    Slots(usize),
    /// No limit — the stock PROFIBUS stack, which accepts every request
    /// the AP layer hands down (so FCFS reordering happens wholesale).
    Unbounded,
}

impl StackCapacity {
    /// Maps the simulator-config convention (`usize::MAX` = stock /
    /// unbounded, anything else a hard slot count) onto the explicit
    /// variant.
    pub fn from_config(capacity: usize) -> StackCapacity {
        if capacity == usize::MAX {
            StackCapacity::Unbounded
        } else {
            StackCapacity::Slots(capacity)
        }
    }
}

/// The communication-stack FCFS queue with a hard capacity.
///
/// Stock PROFIBUS: [`StackCapacity::Unbounded`]. The paper's §4
/// architecture: capacity **1**, enforced through the local management
/// service, so at most one request sits below the AP queue at any time.
#[derive(Clone, Debug)]
pub struct StackQueue {
    capacity: StackCapacity,
    items: VecDeque<Request>,
}

impl StackQueue {
    /// Creates a stack queue with the given slot count (`>= 1`).
    ///
    /// # Panics
    /// Panics if `capacity == 0` (the stack must hold the in-flight
    /// request).
    pub fn new(capacity: usize) -> StackQueue {
        StackQueue::with_capacity(StackCapacity::Slots(capacity))
    }

    /// Creates a stack queue with an explicit capacity variant.
    ///
    /// # Panics
    /// Panics on `StackCapacity::Slots(0)`.
    pub fn with_capacity(capacity: StackCapacity) -> StackQueue {
        if let StackCapacity::Slots(n) = capacity {
            assert!(n >= 1, "stack queue capacity must be at least 1");
        }
        StackQueue {
            capacity,
            items: VecDeque::new(),
        }
    }

    /// The stock unbounded configuration.
    pub fn unbounded() -> StackQueue {
        StackQueue::with_capacity(StackCapacity::Unbounded)
    }

    /// The paper's single-slot configuration.
    pub fn single_slot() -> StackQueue {
        StackQueue::new(1)
    }

    /// Attempts to enqueue; returns `false` (rejecting the request) when
    /// full — the AP layer then retains the request in its own queue.
    pub fn try_push(&mut self, r: Request) -> bool {
        if self.is_full() {
            return false;
        }
        self.items.push_back(r);
        true
    }

    /// Removes the oldest request (FCFS).
    pub fn pop(&mut self) -> Option<Request> {
        self.items.pop_front()
    }

    /// The oldest request, if any.
    pub fn peek(&self) -> Option<&Request> {
        self.items.front()
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when at capacity (never for an unbounded queue).
    pub fn is_full(&self) -> bool {
        match self.capacity {
            StackCapacity::Slots(n) => self.items.len() >= n,
            StackCapacity::Unbounded => false,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> StackCapacity {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    fn req(stream: usize, release: i64, dl: i64, prio: u32) -> Request {
        Request {
            stream: StreamId(stream),
            release: t(release),
            abs_deadline: t(dl),
            priority: Priority(prio),
            cycle_time: t(10),
        }
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut q = ApQueue::new(QueuePolicy::Fcfs);
        q.push(req(0, 0, 100, 5));
        q.push(req(1, 1, 50, 1));
        q.push(req(2, 2, 10, 9));
        let order: Vec<usize> = q.drain_ordered().iter().map(|r| r.stream.0).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn dm_orders_by_static_priority() {
        let mut q = ApQueue::new(QueuePolicy::DeadlineMonotonic);
        q.push(req(0, 0, 100, 5));
        q.push(req(1, 1, 50, 1));
        q.push(req(2, 2, 10, 9));
        let order: Vec<usize> = q.drain_ordered().iter().map(|r| r.stream.0).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn edf_orders_by_absolute_deadline() {
        let mut q = ApQueue::new(QueuePolicy::Edf);
        q.push(req(0, 0, 100, 5));
        q.push(req(1, 1, 50, 1));
        q.push(req(2, 2, 10, 9));
        let order: Vec<usize> = q.drain_ordered().iter().map(|r| r.stream.0).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = ApQueue::new(QueuePolicy::Edf);
        q.push(req(0, 0, 50, 1));
        q.push(req(1, 1, 50, 1));
        q.push(req(2, 2, 50, 1));
        let order: Vec<usize> = q.drain_ordered().iter().map(|r| r.stream.0).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = ApQueue::new(QueuePolicy::DeadlineMonotonic);
        q.push(req(0, 0, 100, 3));
        assert_eq!(q.peek().unwrap().stream.0, 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop().unwrap().stream.0, 0);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.peek().is_none());
    }

    #[test]
    fn priority_inversion_demo_fcfs_vs_dm() {
        // The paper's motivating scenario: an urgent request queued behind
        // ns-1 earlier, laxer requests. FCFS serves it last; DM first.
        let mut fcfs = ApQueue::new(QueuePolicy::Fcfs);
        let mut dm = ApQueue::new(QueuePolicy::DeadlineMonotonic);
        for (i, p) in [(0, 7u32), (1, 6), (2, 5), (3, 0)] {
            fcfs.push(req(i, i as i64, 1000, p));
            dm.push(req(i, i as i64, 1000, p));
        }
        assert_eq!(fcfs.drain_ordered().last().unwrap().stream.0, 3);
        assert_eq!(dm.drain_ordered().first().unwrap().stream.0, 3);
    }

    #[test]
    fn stack_queue_capacity_enforced() {
        let mut s = StackQueue::single_slot();
        assert_eq!(s.capacity(), StackCapacity::Slots(1));
        assert!(s.try_push(req(0, 0, 10, 0)));
        assert!(s.is_full());
        assert!(
            !s.try_push(req(1, 1, 20, 1)),
            "second push must be rejected"
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop().unwrap().stream.0, 0);
        assert!(s.is_empty());
        assert!(s.try_push(req(1, 1, 20, 1)));
    }

    #[test]
    fn stack_queue_is_fcfs() {
        let mut s = StackQueue::new(3);
        s.try_push(req(0, 0, 100, 9));
        s.try_push(req(1, 1, 5, 0));
        s.try_push(req(2, 2, 50, 4));
        assert_eq!(s.peek().unwrap().stream.0, 0);
        assert_eq!(s.pop().unwrap().stream.0, 0);
        assert_eq!(s.pop().unwrap().stream.0, 1);
        assert_eq!(s.pop().unwrap().stream.0, 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_stack_panics() {
        let _ = StackQueue::new(0);
    }

    #[test]
    fn unbounded_stack_never_fills() {
        let mut s = StackQueue::unbounded();
        assert_eq!(s.capacity(), StackCapacity::Unbounded);
        for i in 0..10_000 {
            assert!(!s.is_full());
            assert!(s.try_push(req(i, i as i64, 100, 0)));
        }
        assert_eq!(s.len(), 10_000);
        assert!(!s.is_full());
        // Still strictly FCFS.
        assert_eq!(s.pop().unwrap().stream.0, 0);
        assert_eq!(s.pop().unwrap().stream.0, 1);
    }

    #[test]
    fn capacity_from_config_maps_sentinel() {
        assert_eq!(
            StackCapacity::from_config(usize::MAX),
            StackCapacity::Unbounded
        );
        assert_eq!(StackCapacity::from_config(3), StackCapacity::Slots(3));
    }
}
