//! Station models: masters (active, in the token ring) and slaves (passive
//! responders).

use profirt_base::{MasterAddr, StreamSet, Time};
use serde::{Deserialize, Serialize};

use crate::queue::QueuePolicy;

/// Periodic low-priority background traffic at a master (parameterises the
/// `Cl^k` term of eq. (13) and loads the simulator realistically).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LowPriorityTraffic {
    /// Worst-case message-cycle time of one low-priority exchange.
    pub cycle_time: Time,
    /// Generation period.
    pub period: Time,
}

impl LowPriorityTraffic {
    /// Creates a validated low-priority traffic source.
    ///
    /// # Panics
    /// Panics on non-positive cycle time or period (configuration error).
    pub fn new(cycle_time: Time, period: Time) -> LowPriorityTraffic {
        assert!(cycle_time.is_positive(), "cycle time must be positive");
        assert!(period.is_positive(), "period must be positive");
        LowPriorityTraffic { cycle_time, period }
    }
}

/// An active (token-holding) master station.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MasterStation {
    /// Bus address.
    pub addr: MasterAddr,
    /// High-priority message streams originating here (the paper's
    /// `Sh1..Shnh`).
    pub streams: StreamSet,
    /// Low-priority background traffic sources.
    pub low_priority: Vec<LowPriorityTraffic>,
    /// Dispatching policy of the application-process queue.
    pub ap_policy: QueuePolicy,
    /// Capacity of the communication-stack FCFS queue (1 = the paper's §4
    /// architecture; `usize::MAX` = stock behaviour).
    pub stack_capacity: usize,
}

impl MasterStation {
    /// Creates a stock-configuration master (FCFS AP queue, unbounded
    /// stack).
    pub fn stock(addr: MasterAddr, streams: StreamSet) -> MasterStation {
        MasterStation {
            addr,
            streams,
            low_priority: Vec::new(),
            ap_policy: QueuePolicy::Fcfs,
            stack_capacity: usize::MAX,
        }
    }

    /// Creates a master with the paper's priority-queue architecture.
    pub fn priority_queued(
        addr: MasterAddr,
        streams: StreamSet,
        policy: QueuePolicy,
    ) -> MasterStation {
        MasterStation {
            addr,
            streams,
            low_priority: Vec::new(),
            ap_policy: policy,
            stack_capacity: 1,
        }
    }

    /// Adds a low-priority traffic source (builder style).
    pub fn with_low_priority(mut self, lp: LowPriorityTraffic) -> MasterStation {
        self.low_priority.push(lp);
        self
    }

    /// The longest high-priority message cycle `max_i Chi^k`.
    pub fn max_high_cycle(&self) -> Option<Time> {
        self.streams.max_cycle_time()
    }

    /// The longest low-priority message cycle `Cl^k`.
    pub fn max_low_cycle(&self) -> Option<Time> {
        self.low_priority.iter().map(|l| l.cycle_time).max()
    }

    /// The paper's `CM^k = max{max_i Chi^k, Cl^k}` — the longest message
    /// cycle this master can start (eq. (13) input).
    pub fn longest_cycle(&self) -> Time {
        self.max_high_cycle()
            .unwrap_or(Time::ZERO)
            .max(self.max_low_cycle().unwrap_or(Time::ZERO))
    }

    /// Number of high-priority streams (`nh^k`).
    pub fn nh(&self) -> usize {
        self.streams.len()
    }
}

/// A passive slave station (responds within `TSDR`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SlaveStation {
    /// Bus address.
    pub addr: MasterAddr,
    /// Actual responder turnaround used by the simulator (must lie within
    /// `[min_TSDR, max_TSDR]` of the bus parameters).
    pub turnaround: Time,
}

impl SlaveStation {
    /// Creates a slave with the given turnaround.
    pub fn new(addr: MasterAddr, turnaround: Time) -> SlaveStation {
        SlaveStation { addr, turnaround }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;
    use profirt_base::StreamSet;

    fn streams() -> StreamSet {
        StreamSet::from_cdt(&[(300, 30_000, 30_000), (500, 60_000, 60_000)]).unwrap()
    }

    #[test]
    fn stock_master_defaults() {
        let m = MasterStation::stock(MasterAddr(1), streams());
        assert_eq!(m.ap_policy, QueuePolicy::Fcfs);
        assert_eq!(m.stack_capacity, usize::MAX);
        assert_eq!(m.nh(), 2);
        assert_eq!(m.max_high_cycle(), Some(t(500)));
        assert_eq!(m.max_low_cycle(), None);
        assert_eq!(m.longest_cycle(), t(500));
    }

    #[test]
    fn priority_master_has_single_slot_stack() {
        let m = MasterStation::priority_queued(MasterAddr(2), streams(), QueuePolicy::Edf);
        assert_eq!(m.stack_capacity, 1);
        assert_eq!(m.ap_policy, QueuePolicy::Edf);
    }

    #[test]
    fn longest_cycle_includes_low_priority() {
        let m = MasterStation::stock(MasterAddr(1), streams())
            .with_low_priority(LowPriorityTraffic::new(t(800), t(100_000)));
        assert_eq!(m.max_low_cycle(), Some(t(800)));
        assert_eq!(m.longest_cycle(), t(800));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn invalid_low_priority_panics() {
        let _ = LowPriorityTraffic::new(t(10), t(0));
    }

    #[test]
    fn slave_station() {
        let s = SlaveStation::new(MasterAddr(9), t(60));
        assert_eq!(s.addr, MasterAddr(9));
        assert_eq!(s.turnaround, t(60));
    }
}
