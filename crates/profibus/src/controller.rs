//! The ring-membership controller: one object driving the per-station FDL
//! state machines, the shared [`LogicalRing`] (LAS), and per-master GAP
//! maintenance.
//!
//! A [`RingController`] owns one [`FdlStation`] per configured master
//! ("slot"), the logical ring keyed by station address, and — when the GAP
//! update factor `G ≥ 1` — one [`GapState`] per active master. Simulation
//! kernels talk to it in slot indices (their ring indices) and it maps to
//! FDL addresses internally. The controller is pure protocol state: it
//! advances no clocks and emits no events; timing (slot times, claim
//! timeouts, poll durations) stays with the caller.
//!
//! Lifecycle of a joining master, as the DIN 19245 GAP mechanism admits it:
//!
//! ```text
//! power_on ─► ListenToken ─(observe_wrap ×2)─► ready_to_join
//!          ─(GAP poll by the holder: MasterReady)─► admit ─► ActiveIdle
//! ```
//!
//! Departures are detected by the token holder: a pass to a powered-off
//! successor stays unanswered, and after the retry budget the holder drops
//! the station from the LAS ([`RingController::drop_member`]) and tries the
//! next member. A token that vanishes entirely (holder crash, lost frame)
//! is re-originated by [`RingController::claimant`] — the lowest-address
//! powered ring member, falling back to the lowest-address powered
//! listener when the whole ring died — after its address-staggered timeout
//! ([`crate::fdl::token_recovery_timeout`]).

use profirt_base::MasterAddr;
use serde::{Deserialize, Serialize};

use crate::fdl::{FdlEvent, FdlState, FdlStation};
use crate::gap::{GapPollResult, GapState};
use crate::ring::LogicalRing;

/// Errors configuring a [`RingController`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RingConfigError {
    /// A station address is outside the valid range `0..=126`.
    InvalidAddress {
        /// Slot (caller ring index) of the offending master.
        slot: usize,
        /// The rejected address.
        addr: MasterAddr,
    },
    /// Two masters share one FDL address.
    DuplicateAddress {
        /// The shared address.
        addr: MasterAddr,
        /// Slot of the first holder.
        first: usize,
        /// Slot of the second holder.
        second: usize,
    },
}

impl std::fmt::Display for RingConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingConfigError::InvalidAddress { slot, addr } => {
                write!(f, "master {slot} has invalid station address {addr}")
            }
            RingConfigError::DuplicateAddress {
                addr,
                first,
                second,
            } => write!(f, "masters {first} and {second} alias FDL address {addr}"),
        }
    }
}

impl std::error::Error for RingConfigError {}

/// Protocol state of a dynamic logical ring (see the module docs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RingController {
    addrs: Vec<MasterAddr>,
    stations: Vec<FdlStation>,
    ring: LogicalRing,
    /// Per-slot GAP maintenance state; `None` while the slot is not an
    /// active ring member (or GAP polling is disabled).
    gap: Vec<Option<GapState>>,
    /// Token rotations observed while listening (LAS learning).
    rotations_seen: Vec<u32>,
    gap_factor: u32,
}

/// Rotations a listening station must observe before a GAP poll may admit
/// it (DIN 19245: two identical token rotations pin the LAS).
pub const LISTEN_ROTATIONS: u32 = 2;

impl RingController {
    /// Creates a controller for the given per-slot addresses, all stations
    /// powered off and the ring empty. `gap_factor == 0` disables GAP
    /// polling entirely.
    pub fn new(addrs: Vec<MasterAddr>, gap_factor: u32) -> Result<RingController, RingConfigError> {
        for (slot, &addr) in addrs.iter().enumerate() {
            if !addr.is_valid_station() {
                return Err(RingConfigError::InvalidAddress { slot, addr });
            }
            if let Some(first) = addrs[..slot].iter().position(|&a| a == addr) {
                return Err(RingConfigError::DuplicateAddress {
                    addr,
                    first,
                    second: slot,
                });
            }
        }
        let n = addrs.len();
        let stations = addrs.iter().map(|&a| FdlStation::new(a)).collect();
        Ok(RingController {
            addrs,
            stations,
            ring: LogicalRing::default(),
            gap: vec![None; n],
            rotations_seen: vec![0; n],
            gap_factor,
        })
    }

    /// Number of configured slots.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// `true` when no slots are configured.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The FDL address of `slot`.
    pub fn addr_of(&self, slot: usize) -> MasterAddr {
        self.addrs[slot]
    }

    /// The slot owning `addr`, if any.
    pub fn slot_of(&self, addr: MasterAddr) -> Option<usize> {
        self.addrs.iter().position(|&a| a == addr)
    }

    /// Current FDL state of `slot`.
    pub fn state_of(&self, slot: usize) -> FdlState {
        self.stations[slot].state()
    }

    /// The live LAS.
    pub fn ring(&self) -> &LogicalRing {
        &self.ring
    }

    /// Number of LAS members.
    pub fn ring_size(&self) -> usize {
        self.ring.len()
    }

    /// `true` when `slot` is a LAS member (powered or not — a dead station
    /// stays listed until a failed pass removes it).
    pub fn in_ring(&self, slot: usize) -> bool {
        self.ring.contains(self.addrs[slot])
    }

    /// `true` when `slot` is powered off.
    pub fn is_offline(&self, slot: usize) -> bool {
        self.stations[slot].state() == FdlState::Offline
    }

    /// Whether `slot` would accept a token pass right now: powered and
    /// idle in the ring (or stuck claiming after a lost race — receiving
    /// the token resolves the claim).
    pub fn accepts_token(&self, slot: usize) -> bool {
        matches!(
            self.stations[slot].state(),
            FdlState::ActiveIdle | FdlState::ClaimToken
        )
    }

    /// Boots `slot` directly into the ring (simulation bootstrap for
    /// masters that are already members at time zero — the static-ring
    /// assumption of the paper's §3.1).
    pub fn boot_in_ring(&mut self, slot: usize) {
        self.apply(slot, FdlEvent::PowerOn);
        self.apply(slot, FdlEvent::RingEntryComplete);
        self.ring.join(self.addrs[slot]);
        self.arm_gap(slot);
    }

    /// Powers `slot` on: it starts listening for the LAS. Returns `false`
    /// (no-op) if the station was already powered.
    pub fn power_on(&mut self, slot: usize) -> bool {
        if !self.is_offline(slot) {
            return false;
        }
        self.apply(slot, FdlEvent::PowerOn);
        self.rotations_seen[slot] = 0;
        true
    }

    /// Powers `slot` off (crash or switch-off — the FDL cannot tell the
    /// difference; neither is announced on the bus). The station stays in
    /// the other masters' LAS until a failed token pass removes it.
    /// Returns `false` (no-op) if it was already offline.
    pub fn power_off(&mut self, slot: usize) -> bool {
        if self.is_offline(slot) {
            return false;
        }
        self.apply(slot, FdlEvent::PowerOff);
        self.gap[slot] = None;
        self.rotations_seen[slot] = 0;
        true
    }

    /// Delivers the token to `slot`: `ActiveIdle`/`ClaimToken` →
    /// `UseToken`. A station already in `UseToken` (it just claimed) is
    /// left alone.
    pub fn deliver_token(&mut self, slot: usize) {
        if self.accepts_token(slot) {
            self.apply(slot, FdlEvent::TokenReceived);
        }
    }

    /// All message cycles of this visit are done: `UseToken` → `PassToken`.
    pub fn holding_done(&mut self, slot: usize) {
        self.apply(slot, FdlEvent::HoldingDone);
    }

    /// The successor accepted the token: `PassToken` → `ActiveIdle`.
    pub fn pass_confirmed(&mut self, slot: usize) {
        self.apply(slot, FdlEvent::PassConfirmed);
    }

    /// The pass retries are exhausted and no successor took over (a lost
    /// token frame): `PassToken` → `ClaimToken`.
    pub fn pass_failed(&mut self, slot: usize) {
        self.apply(slot, FdlEvent::PassFailed);
    }

    /// The ring successor of `slot` (LAS order: next-higher address,
    /// wrapping). `None` when `slot` is not a member.
    pub fn successor(&self, slot: usize) -> Option<usize> {
        let next = self.ring.next_of(self.addrs[slot])?;
        self.slot_of(next)
    }

    /// Removes `slot` from the LAS after its departure was detected.
    /// Returns `true` if it was a member.
    pub fn drop_member(&mut self, slot: usize) -> bool {
        self.gap[slot] = None;
        self.ring.leave(self.addrs[slot])
    }

    /// `true` when `slot` holds the lowest LAS address — a token arrival
    /// there starts a new rotation, which is what listening stations count.
    pub fn is_wrap_point(&self, slot: usize) -> bool {
        self.ring.members().first() == Some(&self.addrs[slot])
    }

    /// A full token rotation completed: every listening station has
    /// observed one more rotation of the LAS.
    pub fn observe_wrap(&mut self) {
        for slot in 0..self.stations.len() {
            if self.stations[slot].state() == FdlState::ListenToken {
                self.rotations_seen[slot] = self.rotations_seen[slot].saturating_add(1);
            }
        }
    }

    /// Whether `slot` is listening and has observed enough rotations to
    /// answer a GAP poll with `MasterReady`.
    pub fn ready_to_join(&self, slot: usize) -> bool {
        self.stations[slot].state() == FdlState::ListenToken
            && self.rotations_seen[slot] >= LISTEN_ROTATIONS
    }

    /// How a GAP poll of `target` would be answered right now.
    pub fn poll_response(&self, target: MasterAddr) -> GapPollResult {
        match self.slot_of(target) {
            None => GapPollResult::NoStation,
            Some(slot) if self.is_offline(slot) => GapPollResult::NoStation,
            Some(slot) if self.ready_to_join(slot) => GapPollResult::MasterReady,
            Some(_) => GapPollResult::MasterNotReady,
        }
    }

    /// Admits `slot` into the ring after a `MasterReady` GAP poll:
    /// `ListenToken` → `ActiveIdle`, LAS join, GAP maintenance armed.
    pub fn admit(&mut self, slot: usize) {
        debug_assert!(self.ready_to_join(slot), "admit requires a ready listener");
        self.apply(slot, FdlEvent::RingEntryComplete);
        self.ring.join(self.addrs[slot]);
        self.rotations_seen[slot] = 0;
        self.arm_gap(slot);
    }

    /// Called on each token visit of `slot`: returns the GAP address to
    /// poll this visit, if the update factor `G` says one is due.
    pub fn gap_poll_due(&mut self, slot: usize) -> Option<MasterAddr> {
        let ring = &self.ring;
        self.gap[slot].as_mut()?.on_token_visit(ring)
    }

    /// Token visits of `slot` until its next GAP poll becomes due, or
    /// `None` when GAP maintenance is not armed for it (polling disabled,
    /// or not an active member). Read-only companion of
    /// [`RingController::gap_poll_due`] for the idle fast-forward's span
    /// capping.
    pub fn gap_visits_until_due(&self, slot: usize) -> Option<u32> {
        self.gap[slot].as_ref().map(GapState::visits_until_due)
    }

    /// Bulk-advances `slot`'s GAP visit counter by `n` poll-free visits
    /// (see [`GapState::advance_visits`]); a no-op when GAP maintenance is
    /// not armed.
    pub fn gap_advance_visits(&mut self, slot: usize, n: u32) {
        if let Some(gap) = self.gap[slot].as_mut() {
            gap.advance_visits(n);
        }
    }

    /// The station that re-originates a vanished token: the lowest-address
    /// powered LAS member, or — when the whole ring is dead — the
    /// lowest-address powered listener. `None` when no station is powered.
    pub fn claimant(&self) -> Option<usize> {
        let powered = |&slot: &usize| !self.is_offline(slot);
        let mut slots: Vec<usize> = (0..self.len())
            .filter(powered)
            .filter(|&s| self.in_ring(s))
            .collect();
        if slots.is_empty() {
            slots = (0..self.len()).filter(powered).collect();
        }
        slots.into_iter().min_by_key(|&s| self.addrs[s])
    }

    /// `slot` wins the claim after its recovery timeout: it ends holding
    /// the token (`UseToken`). A listener claiming an empty bus joins the
    /// LAS as its sole member; returns `true` when the claim added `slot`
    /// to the ring.
    pub fn claim(&mut self, slot: usize) -> bool {
        match self.stations[slot].state() {
            FdlState::ListenToken | FdlState::ActiveIdle => {
                self.apply(slot, FdlEvent::TimeoutTto);
                self.apply(slot, FdlEvent::ClaimSucceeded);
            }
            FdlState::ClaimToken => self.apply(slot, FdlEvent::ClaimSucceeded),
            other => panic!("claim from {other:?} (slot {slot})"),
        }
        let joined = self.ring.join(self.addrs[slot]);
        if joined {
            self.rotations_seen[slot] = 0;
            self.arm_gap(slot);
        }
        joined
    }

    fn arm_gap(&mut self, slot: usize) {
        if self.gap_factor >= 1 {
            self.gap[slot] = Some(GapState::new(self.addrs[slot], self.gap_factor));
        }
    }

    /// Applies an FDL event, panicking on an invalid transition — the
    /// controller is supposed to make those unrepresentable, so one firing
    /// is a simulator bug, not a protocol condition.
    fn apply(&mut self, slot: usize, event: FdlEvent) {
        if let Err(state) = self.stations[slot].apply(event) {
            panic!("invalid FDL transition {event:?} from {state:?} (slot {slot})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(addrs: &[u8], g: u32) -> RingController {
        RingController::new(addrs.iter().map(|&a| MasterAddr(a)).collect(), g).unwrap()
    }

    #[test]
    fn construction_validates_addresses() {
        assert!(RingController::new(vec![MasterAddr(1), MasterAddr(2)], 1).is_ok());
        assert_eq!(
            RingController::new(vec![MasterAddr(1), MasterAddr(127)], 1),
            Err(RingConfigError::InvalidAddress {
                slot: 1,
                addr: MasterAddr(127)
            })
        );
        assert_eq!(
            RingController::new(vec![MasterAddr(5), MasterAddr(3), MasterAddr(5)], 1),
            Err(RingConfigError::DuplicateAddress {
                addr: MasterAddr(5),
                first: 0,
                second: 2
            })
        );
    }

    #[test]
    fn boot_in_ring_is_active_and_member() {
        let mut c = controller(&[2, 7], 1);
        c.boot_in_ring(0);
        c.boot_in_ring(1);
        assert_eq!(c.ring_size(), 2);
        assert_eq!(c.state_of(0), FdlState::ActiveIdle);
        assert!(c.accepts_token(1));
        assert_eq!(c.successor(0), Some(1));
        assert_eq!(c.successor(1), Some(0));
    }

    #[test]
    fn join_lifecycle_needs_two_rotations_then_admission() {
        let mut c = controller(&[0, 5], 1);
        c.boot_in_ring(0);
        assert!(c.power_on(1));
        assert!(!c.power_on(1), "double power-on is a no-op");
        assert_eq!(
            c.poll_response(MasterAddr(5)),
            GapPollResult::MasterNotReady
        );
        c.observe_wrap();
        assert!(!c.ready_to_join(1));
        c.observe_wrap();
        assert!(c.ready_to_join(1));
        assert_eq!(c.poll_response(MasterAddr(5)), GapPollResult::MasterReady);
        c.admit(1);
        assert!(c.in_ring(1));
        assert_eq!(c.state_of(1), FdlState::ActiveIdle);
        // An empty GAP address reports no station.
        assert_eq!(c.poll_response(MasterAddr(9)), GapPollResult::NoStation);
    }

    #[test]
    fn token_round_trip_states() {
        let mut c = controller(&[1, 4], 1);
        c.boot_in_ring(0);
        c.boot_in_ring(1);
        c.deliver_token(0);
        assert_eq!(c.state_of(0), FdlState::UseToken);
        c.holding_done(0);
        assert_eq!(c.state_of(0), FdlState::PassToken);
        c.pass_confirmed(0);
        assert_eq!(c.state_of(0), FdlState::ActiveIdle);
    }

    #[test]
    fn dead_successor_dropped_and_skipped() {
        let mut c = controller(&[1, 4, 9], 1);
        for s in 0..3 {
            c.boot_in_ring(s);
        }
        assert!(c.power_off(1));
        assert!(!c.power_off(1), "double power-off is a no-op");
        // Still in the LAS until the holder detects the failed pass.
        assert!(c.in_ring(1));
        assert_eq!(c.successor(0), Some(1));
        assert!(c.drop_member(1));
        assert_eq!(c.successor(0), Some(2));
        assert_eq!(c.ring_size(), 2);
    }

    #[test]
    fn claimant_prefers_powered_ring_members() {
        let mut c = controller(&[3, 8, 1], 2);
        c.boot_in_ring(0); // addr 3
        c.boot_in_ring(1); // addr 8
        c.power_on(2); // addr 1, listening only
                       // The listener has the lowest address but ring members claim first.
        assert_eq!(c.claimant(), Some(0));
        c.power_off(0);
        assert_eq!(c.claimant(), Some(1));
        c.power_off(1);
        // Whole ring dead: the listener may re-originate.
        assert_eq!(c.claimant(), Some(2));
        assert!(c.claim(2), "listener claim joins the ring");
        assert_eq!(c.state_of(2), FdlState::UseToken);
        assert!(c.in_ring(2));
        c.power_off(2);
        assert_eq!(c.claimant(), None);
    }

    #[test]
    fn wrap_point_is_lowest_member_address() {
        let mut c = controller(&[6, 2], 1);
        c.boot_in_ring(0);
        c.boot_in_ring(1);
        assert!(c.is_wrap_point(1));
        assert!(!c.is_wrap_point(0));
        c.drop_member(1);
        assert!(c.is_wrap_point(0));
    }

    #[test]
    fn gap_fast_forward_counters_match_per_visit() {
        let mut per_visit = controller(&[0, 3], 4);
        per_visit.boot_in_ring(0);
        per_visit.boot_in_ring(1);
        assert_eq!(per_visit.gap_visits_until_due(0), Some(4));
        let mut bulk = per_visit.clone();
        for _ in 0..3 {
            assert_eq!(per_visit.gap_poll_due(0), None);
        }
        bulk.gap_advance_visits(0, 3);
        assert_eq!(per_visit, bulk);
        assert_eq!(bulk.gap_visits_until_due(0), Some(1));
        assert_eq!(per_visit.gap_poll_due(0), bulk.gap_poll_due(0));
        // Unarmed slots: no due counter, bulk advances are no-ops.
        let mut off = controller(&[0, 3], 0);
        off.boot_in_ring(0);
        assert_eq!(off.gap_visits_until_due(0), None);
        off.gap_advance_visits(0, 7);
    }

    #[test]
    fn gap_poll_cadence_respects_factor() {
        let mut c = controller(&[0, 3], 3);
        c.boot_in_ring(0);
        c.boot_in_ring(1);
        assert_eq!(c.gap_poll_due(0), None);
        assert_eq!(c.gap_poll_due(0), None);
        // Third visit polls the first GAP address of master 0: address 1.
        assert_eq!(c.gap_poll_due(0), Some(MasterAddr(1)));
        // GAP polling disabled: never due.
        let mut off = controller(&[0, 3], 0);
        off.boot_in_ring(0);
        for _ in 0..10 {
            assert_eq!(off.gap_poll_due(0), None);
        }
    }
}
