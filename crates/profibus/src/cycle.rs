//! Message-cycle timing.
//!
//! A PROFIBUS *message cycle* is the master's action frame plus the
//! responder's immediate acknowledgement/response (paper footnote 2). Its
//! worst-case duration — the `Chi` (high-priority) and `Cl` (low-priority)
//! inputs of the whole analysis — is assembled from the bus parameters:
//!
//! ```text
//! cycle      = TSYN + action + max_TSDR + response + TID1
//! worst-case = cycle + max_retry × (TSYN + action + TSL)
//! ```
//!
//! i.e. each allowed retry adds a timed-out attempt (the initiator waits a
//! full slot time `TSL` before retransmitting); the final attempt succeeds
//! and pays the full cycle (paper §3.1: "the message cycle time length must
//! also include the time needed to process the allowed retries").

use profirt_base::Time;
use serde::{Deserialize, Serialize};

use crate::chartime::char_time;
use crate::frame::Frame;
use crate::params::BusParams;

/// Character-level description of one request/response exchange.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MessageCycleSpec {
    /// Characters of the action (request or send/request) frame.
    pub request_chars: usize,
    /// Characters of the immediate response (acknowledge or data).
    pub response_chars: usize,
}

impl MessageCycleSpec {
    /// Builds a spec from concrete frames.
    pub fn from_frames(request: &Frame, response: &Frame) -> MessageCycleSpec {
        MessageCycleSpec {
            request_chars: request.char_len(),
            response_chars: response.char_len(),
        }
    }

    /// An SRD exchange carrying `req_data` octets out and `resp_data` octets
    /// back, both in SD2 frames — the typical DP data exchange shape.
    pub fn srd_sd2(req_data: usize, resp_data: usize) -> MessageCycleSpec {
        MessageCycleSpec {
            request_chars: crate::chartime::frame_chars::sd2(req_data),
            response_chars: crate::chartime::frame_chars::sd2(resp_data),
        }
    }

    /// An SDA exchange (SD2 request, single-character acknowledge).
    pub fn sda_sd2(req_data: usize) -> MessageCycleSpec {
        MessageCycleSpec {
            request_chars: crate::chartime::frame_chars::sd2(req_data),
            response_chars: crate::chartime::frame_chars::SHORT_ACK,
        }
    }

    /// Duration of a single error-free exchange (no retries), in bit times.
    pub fn error_free_time(&self, params: &BusParams) -> Time {
        params.tsyn
            + char_time(self.request_chars)
            + params.max_tsdr
            + char_time(self.response_chars)
            + params.tid1
    }

    /// Worst-case cycle time including the maximum allowed retries.
    pub fn worst_case_time(&self, params: &BusParams) -> Time {
        let retries = params.max_retry as i64;
        let per_retry = params.tsyn + char_time(self.request_chars) + params.slot_time;
        self.error_free_time(params) + per_retry * retries
    }
}

/// Token-pass timing: the SD4 frame plus the post-transmission idle `TID2`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct TokenPassTime;

impl TokenPassTime {
    /// Duration of one token pass in bit times.
    pub fn time(params: &BusParams) -> Time {
        params.tsyn + char_time(crate::chartime::frame_chars::TOKEN) + params.tid2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FunctionCode;
    use profirt_base::time::t;

    #[test]
    fn error_free_cycle_components() {
        let p = BusParams::profile_500k();
        // SRD with 10 out / 20 back: req = 19 chars = 209 bits,
        // resp = 29 chars = 319 bits; 33 + 209 + 100 + 319 + 37 = 698.
        let spec = MessageCycleSpec::srd_sd2(10, 20);
        assert_eq!(spec.error_free_time(&p), t(698));
    }

    #[test]
    fn retries_extend_worst_case() {
        let p = BusParams::profile_500k(); // max_retry = 1, TSL = 200
        let spec = MessageCycleSpec::sda_sd2(4);
        // req = 13 chars = 143 bits; error-free = 33+143+100+11+37 = 324.
        assert_eq!(spec.error_free_time(&p), t(324));
        // one retry adds 33+143+200 = 376 -> 700.
        assert_eq!(spec.worst_case_time(&p), t(700));
        // retry = 0 collapses to error-free.
        let p0 = p.with_max_retry(0);
        assert_eq!(spec.worst_case_time(&p0), spec.error_free_time(&p0));
        // retry = 3 adds three slots.
        let p3 = p.with_max_retry(3);
        assert_eq!(spec.worst_case_time(&p3), t(324 + 3 * 376));
    }

    #[test]
    fn from_frames_matches_char_len() {
        let req = Frame::Variable {
            da: 5,
            sa: 1,
            fc: FunctionCode::SRD_HIGH,
            data: vec![0; 12],
        };
        let resp = Frame::ShortAck;
        let spec = MessageCycleSpec::from_frames(&req, &resp);
        assert_eq!(spec.request_chars, 21);
        assert_eq!(spec.response_chars, 1);
    }

    #[test]
    fn token_pass_time() {
        let p = BusParams::profile_500k();
        // 33 (TSYN) + 33 (3 chars) + 100 (TID2) = 166.
        assert_eq!(TokenPassTime::time(&p), t(166));
    }

    #[test]
    fn worst_case_monotone_in_payload() {
        let p = BusParams::profile_1m5();
        let small = MessageCycleSpec::srd_sd2(2, 2).worst_case_time(&p);
        let large = MessageCycleSpec::srd_sd2(64, 64).worst_case_time(&p);
        assert!(large > small);
    }
}
