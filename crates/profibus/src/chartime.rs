//! UART character timing.
//!
//! PROFIBUS transmits asynchronously in NRZ with an 11-bit character frame:
//! 1 start bit, 8 data bits, 1 (even) parity bit, 1 stop bit. Every frame
//! duration is therefore `11 × chars` bit times.

use profirt_base::Time;

/// Bits per transmitted character (start + 8 data + parity + stop).
pub const BITS_PER_CHAR: i64 = 11;

/// Transmission time of `chars` characters, in bit times.
pub fn char_time(chars: usize) -> Time {
    Time::new(BITS_PER_CHAR * chars as i64)
}

/// Character count of each frame format (see [`crate::frame`]).
pub mod frame_chars {
    /// SD1 fixed-length frame, no data: SD DA SA FC FCS ED.
    pub const SD1: usize = 6;
    /// SD3 fixed-length frame with 8 data units: SD DA SA FC DU×8 FCS ED.
    pub const SD3: usize = 14;
    /// SD4 token frame: SD DA SA.
    pub const TOKEN: usize = 3;
    /// Single-character acknowledge (SC).
    pub const SHORT_ACK: usize = 1;
    /// SD2 variable-length frame with `data_len` data units:
    /// SD LE LEr SD DA SA FC DU×n FCS ED.
    pub const fn sd2(data_len: usize) -> usize {
        9 + data_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    #[test]
    fn char_times() {
        assert_eq!(char_time(1), t(11));
        assert_eq!(char_time(6), t(66));
        assert_eq!(char_time(0), t(0));
    }

    #[test]
    fn frame_char_counts() {
        assert_eq!(frame_chars::SD1, 6);
        assert_eq!(frame_chars::SD3, 14);
        assert_eq!(frame_chars::TOKEN, 3);
        assert_eq!(frame_chars::SHORT_ACK, 1);
        assert_eq!(frame_chars::sd2(0), 9);
        assert_eq!(frame_chars::sd2(32), 41);
    }

    #[test]
    fn token_frame_is_33_bits() {
        // The token is 3 chars = 33 bits — same as TSYN, a standard fact.
        assert_eq!(char_time(frame_chars::TOKEN), t(33));
    }
}
