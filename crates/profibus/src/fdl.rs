//! The FDL (MAC-layer) station state machine.
//!
//! A simplified-but-faithful model of the DIN 19245 part 1 master state
//! machine, covering the behaviour the timing analyses and the simulator
//! depend on:
//!
//! ```text
//! Offline ──PowerOn──► ListenToken ──(ring observed, in LAS gap poll)──► ActiveIdle
//!                          │ (timeout: no bus activity)
//!                          ▼
//!                      ClaimToken ──(claim succeeds)──► UseToken
//! ActiveIdle ──TokenReceived──► UseToken ──(cycles done)──► PassToken
//! UseToken ──(request sent)──► AwaitResponse ──(response/timeout)──► UseToken
//! PassToken ──(successor transmits)──► ActiveIdle
//! PassToken ──(no successor activity, retries exhausted)──► ClaimToken
//! ActiveIdle ──(token lost: timeout TTO)──► ClaimToken
//! ```
//!
//! The **token recovery timeout** is address-staggered per the standard —
//! `TTO = 6·TSL + 2·addr·TSL` — so the lowest-address master claims a lost
//! token first, making recovery deterministic and collision-free.

use profirt_base::{MasterAddr, Time};
use serde::{Deserialize, Serialize};

use crate::params::BusParams;

/// FDL master states (simplified subset of DIN 19245).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FdlState {
    /// Not on the bus.
    Offline,
    /// Listening to learn the LAS before entering the ring.
    ListenToken,
    /// In the ring, waiting for the token.
    ActiveIdle,
    /// Claiming a lost token (after `TTO` of bus silence).
    ClaimToken,
    /// Holding the token and executing message cycles.
    UseToken,
    /// Waiting for a responder's immediate reply (within the slot time).
    AwaitResponse,
    /// Transmitting the token to the successor and supervising the pass.
    PassToken,
}

/// Events driving the state machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FdlEvent {
    /// Station switched on.
    PowerOn,
    /// Station switched off / fatal error.
    PowerOff,
    /// The LAS has been learned (two identical token rotations observed)
    /// and the station was admitted through a GAP poll.
    RingEntryComplete,
    /// Token frame addressed to this station arrived.
    TokenReceived,
    /// Bus silent for the token-recovery timeout `TTO`.
    TimeoutTto,
    /// Token claim succeeded (we re-initialised the ring).
    ClaimSucceeded,
    /// A request frame of a message cycle was transmitted.
    RequestSent,
    /// The responder's reply arrived within the slot time.
    ResponseReceived,
    /// Slot time expired without a reply (retry or give up happens in
    /// `UseToken`).
    ResponseTimeout,
    /// All message cycles for this visit are done; token pass started.
    HoldingDone,
    /// The successor accepted the token (its activity was heard).
    PassConfirmed,
    /// The successor never transmitted (after the allowed pass retries).
    PassFailed,
}

/// Outcome of a transition attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transition {
    /// Moved to the new state.
    To(FdlState),
    /// The event is not meaningful in the current state (protocol error if
    /// it arrives on a real bus; simulators treat it as a bug).
    Invalid,
}

/// Applies the FDL transition function.
pub fn step(state: FdlState, event: FdlEvent) -> Transition {
    use FdlEvent as E;
    use FdlState as S;
    let next = match (state, event) {
        (_, E::PowerOff) => S::Offline,
        (S::Offline, E::PowerOn) => S::ListenToken,
        (S::ListenToken, E::RingEntryComplete) => S::ActiveIdle,
        (S::ListenToken, E::TimeoutTto) => S::ClaimToken, // alone on the bus
        (S::ActiveIdle, E::TokenReceived) => S::UseToken,
        (S::ActiveIdle, E::TimeoutTto) => S::ClaimToken,
        (S::ClaimToken, E::ClaimSucceeded) => S::UseToken,
        (S::ClaimToken, E::TokenReceived) => S::UseToken, // someone else won
        (S::UseToken, E::RequestSent) => S::AwaitResponse,
        (S::UseToken, E::HoldingDone) => S::PassToken,
        (S::AwaitResponse, E::ResponseReceived) => S::UseToken,
        (S::AwaitResponse, E::ResponseTimeout) => S::UseToken,
        (S::PassToken, E::PassConfirmed) => S::ActiveIdle,
        (S::PassToken, E::PassFailed) => S::ClaimToken,
        _ => return Transition::Invalid,
    };
    Transition::To(next)
}

/// The address-staggered token-recovery timeout
/// `TTO = 6·TSL + 2·addr·TSL`.
pub fn token_recovery_timeout(params: &BusParams, addr: MasterAddr) -> Time {
    params.slot_time * (6 + 2 * addr.0 as i64)
}

/// A station wrapper tracking its state and rejecting invalid events.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdlStation {
    /// This station's address.
    pub addr: MasterAddr,
    state: FdlState,
}

impl FdlStation {
    /// A powered-off station.
    pub fn new(addr: MasterAddr) -> FdlStation {
        FdlStation {
            addr,
            state: FdlState::Offline,
        }
    }

    /// Current state.
    pub fn state(&self) -> FdlState {
        self.state
    }

    /// Applies an event; returns the new state or `Err` on an invalid
    /// transition (leaving the state unchanged).
    pub fn apply(&mut self, event: FdlEvent) -> Result<FdlState, FdlState> {
        match step(self.state, event) {
            Transition::To(s) => {
                self.state = s;
                Ok(s)
            }
            Transition::Invalid => Err(self.state),
        }
    }

    /// `true` when the station may transmit message cycles.
    pub fn holds_token(&self) -> bool {
        matches!(
            self.state,
            FdlState::UseToken | FdlState::AwaitResponse | FdlState::PassToken
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    #[test]
    fn happy_path_ring_lifecycle() {
        let mut st = FdlStation::new(MasterAddr(3));
        assert_eq!(st.state(), FdlState::Offline);
        st.apply(FdlEvent::PowerOn).unwrap();
        st.apply(FdlEvent::RingEntryComplete).unwrap();
        assert_eq!(st.state(), FdlState::ActiveIdle);
        assert!(!st.holds_token());
        st.apply(FdlEvent::TokenReceived).unwrap();
        assert!(st.holds_token());
        st.apply(FdlEvent::RequestSent).unwrap();
        st.apply(FdlEvent::ResponseReceived).unwrap();
        st.apply(FdlEvent::HoldingDone).unwrap();
        st.apply(FdlEvent::PassConfirmed).unwrap();
        assert_eq!(st.state(), FdlState::ActiveIdle);
    }

    #[test]
    fn retry_path_response_timeout_returns_to_use_token() {
        let mut st = FdlStation::new(MasterAddr(1));
        st.apply(FdlEvent::PowerOn).unwrap();
        st.apply(FdlEvent::RingEntryComplete).unwrap();
        st.apply(FdlEvent::TokenReceived).unwrap();
        st.apply(FdlEvent::RequestSent).unwrap();
        assert_eq!(st.state(), FdlState::AwaitResponse);
        st.apply(FdlEvent::ResponseTimeout).unwrap();
        assert_eq!(st.state(), FdlState::UseToken); // retry happens here
    }

    #[test]
    fn token_loss_recovery() {
        let mut st = FdlStation::new(MasterAddr(0));
        st.apply(FdlEvent::PowerOn).unwrap();
        st.apply(FdlEvent::RingEntryComplete).unwrap();
        // Token lost somewhere: silence for TTO.
        st.apply(FdlEvent::TimeoutTto).unwrap();
        assert_eq!(st.state(), FdlState::ClaimToken);
        st.apply(FdlEvent::ClaimSucceeded).unwrap();
        assert!(st.holds_token());
    }

    #[test]
    fn claim_race_lost_still_recovers() {
        let mut st = FdlStation::new(MasterAddr(5));
        st.apply(FdlEvent::PowerOn).unwrap();
        st.apply(FdlEvent::RingEntryComplete).unwrap();
        st.apply(FdlEvent::TimeoutTto).unwrap();
        // A lower-address master claimed first and eventually passes to us.
        st.apply(FdlEvent::TokenReceived).unwrap();
        assert_eq!(st.state(), FdlState::UseToken);
    }

    #[test]
    fn failed_pass_leads_to_reclaim() {
        let mut st = FdlStation::new(MasterAddr(2));
        st.apply(FdlEvent::PowerOn).unwrap();
        st.apply(FdlEvent::RingEntryComplete).unwrap();
        st.apply(FdlEvent::TokenReceived).unwrap();
        st.apply(FdlEvent::HoldingDone).unwrap();
        st.apply(FdlEvent::PassFailed).unwrap();
        assert_eq!(st.state(), FdlState::ClaimToken);
    }

    #[test]
    fn invalid_transitions_rejected_without_state_change() {
        let mut st = FdlStation::new(MasterAddr(1));
        assert_eq!(st.apply(FdlEvent::TokenReceived), Err(FdlState::Offline));
        st.apply(FdlEvent::PowerOn).unwrap();
        assert_eq!(
            st.apply(FdlEvent::ResponseReceived),
            Err(FdlState::ListenToken)
        );
        assert_eq!(st.state(), FdlState::ListenToken);
    }

    #[test]
    fn power_off_from_anywhere() {
        for state in [
            FdlState::Offline,
            FdlState::ListenToken,
            FdlState::ActiveIdle,
            FdlState::ClaimToken,
            FdlState::UseToken,
            FdlState::AwaitResponse,
            FdlState::PassToken,
        ] {
            assert_eq!(
                step(state, FdlEvent::PowerOff),
                Transition::To(FdlState::Offline)
            );
        }
    }

    #[test]
    fn recovery_timeout_is_address_staggered() {
        let p = BusParams::profile_500k(); // TSL = 200
        assert_eq!(token_recovery_timeout(&p, MasterAddr(0)), t(1_200));
        assert_eq!(token_recovery_timeout(&p, MasterAddr(1)), t(1_600));
        assert_eq!(token_recovery_timeout(&p, MasterAddr(10)), t(5_200));
        // Strictly increasing in address: the lowest address always wins
        // the claim race.
        for a in 0..=125u8 {
            assert!(
                token_recovery_timeout(&p, MasterAddr(a))
                    < token_recovery_timeout(&p, MasterAddr(a + 1))
            );
        }
    }

    #[test]
    fn lone_station_claims_from_listen() {
        let mut st = FdlStation::new(MasterAddr(0));
        st.apply(FdlEvent::PowerOn).unwrap();
        st.apply(FdlEvent::TimeoutTto).unwrap();
        assert_eq!(st.state(), FdlState::ClaimToken);
    }
}
