//! # profirt-profibus — PROFIBUS FDL substrate
//!
//! A faithful model of the PROFIBUS (DIN 19245 / EN 50170 volume 2) fieldbus
//! data-link layer, at the level of detail the timing analyses and the
//! discrete-event simulator need:
//!
//! * [`params`] — bus timing parameters (baud rate, slot time `TSL`, station
//!   delays `TSDR`, idle times `TID1/TID2`, retry limit, target rotation time
//!   `TTR`) with standard profiles. One tick = one **bit time**.
//! * [`chartime`] — UART character timing (11 bits/char) and frame lengths.
//! * [`fcs`] — the PROFIBUS frame check sequence (mod-256 running sum).
//! * [`frame`] / [`codec`] — the four FDL frame formats (SD1 fixed, SD2
//!   variable, SD3 fixed-with-data, SD4 token) plus the single-character
//!   acknowledge, with exact binary encode/decode.
//! * [`cycle`] — message-cycle timing: action frame + responder turnaround +
//!   response + idle time, with worst-case retry expansion. This produces
//!   the `Chi` / `Cl` inputs of the paper's analysis from payload sizes.
//! * [`token`] — the timed-token state machine of the paper's §3.1: `TRR`
//!   measurement, `TTH = TTR − TRR`, the late-token rule (at most one
//!   high-priority message cycle), and the `TTH`-overrun semantics (timer
//!   tested only at cycle start).
//! * [`queue`] — outgoing queues: the stock FCFS queue, the paper's §4
//!   priority-ordered application-process queue (DM or EDF keyed), and the
//!   depth-limited communication-stack queue.
//! * [`station`] / [`ring`] / [`gap`] — master/slave station models, the
//!   logical token ring (LAS, next-station), and the GAP update mechanism.
//! * [`controller`] — the ring-membership controller tying [`fdl`],
//!   [`ring`] and [`gap`] together: per-station state machines, live LAS,
//!   GAP-driven admission and failed-pass departure detection, as driven
//!   by the dynamic-membership simulation kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chartime;
pub mod codec;
pub mod controller;
pub mod cycle;
pub mod fcs;
pub mod fdl;
pub mod frame;
pub mod gap;
pub mod params;
pub mod queue;
pub mod ring;
pub mod station;
pub mod token;

pub use controller::{RingConfigError, RingController};
pub use cycle::{MessageCycleSpec, TokenPassTime};
pub use fdl::{token_recovery_timeout, FdlEvent, FdlState, FdlStation};
pub use frame::{Frame, FrameError, FunctionCode};
pub use gap::{GapPollResult, GapState};
pub use params::BusParams;
pub use queue::{ApQueue, QueuePolicy, Request, StackCapacity, StackQueue};
pub use ring::LogicalRing;
pub use station::{LowPriorityTraffic, MasterStation, SlaveStation};
pub use token::{TokenHold, TokenTimer};
