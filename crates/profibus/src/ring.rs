//! The logical token ring.
//!
//! Masters are ordered by ascending station address; the token travels from
//! each master to the next-higher address, wrapping from the highest to the
//! lowest (paper §3.1: "pass the token to station (k+1) modulo n"). The
//! *list of active stations* (LAS) is what each master learns from observing
//! token frames.

use profirt_base::MasterAddr;
use serde::{Deserialize, Serialize};

/// The logical ring: the sorted set of active master addresses.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct LogicalRing {
    members: Vec<MasterAddr>,
}

impl LogicalRing {
    /// Builds a ring from arbitrary-order addresses (sorted, deduplicated).
    ///
    /// # Panics
    /// Panics if any address is not a valid station address.
    pub fn new(mut members: Vec<MasterAddr>) -> LogicalRing {
        for m in &members {
            assert!(m.is_valid_station(), "invalid station address {m}");
        }
        members.sort();
        members.dedup();
        LogicalRing { members }
    }

    /// Number of masters in the ring.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Sorted member addresses (the LAS).
    pub fn members(&self) -> &[MasterAddr] {
        &self.members
    }

    /// `true` if `addr` is in the ring.
    pub fn contains(&self, addr: MasterAddr) -> bool {
        self.members.binary_search(&addr).is_ok()
    }

    /// The successor of `addr` in token order (next-higher address, wrapping
    /// to the lowest). `None` if `addr` is not a member or the ring is
    /// empty.
    pub fn next_of(&self, addr: MasterAddr) -> Option<MasterAddr> {
        let pos = self.members.binary_search(&addr).ok()?;
        Some(self.members[(pos + 1) % self.members.len()])
    }

    /// Ring position (0-based, in address order) of `addr`.
    pub fn position(&self, addr: MasterAddr) -> Option<usize> {
        self.members.binary_search(&addr).ok()
    }

    /// Adds a master (e.g. after a successful GAP poll); keeps order.
    pub fn join(&mut self, addr: MasterAddr) -> bool {
        assert!(addr.is_valid_station(), "invalid station address {addr}");
        match self.members.binary_search(&addr) {
            Ok(_) => false,
            Err(pos) => {
                self.members.insert(pos, addr);
                true
            }
        }
    }

    /// Removes a master (station failure / leave); returns `true` if it was
    /// present.
    pub fn leave(&mut self, addr: MasterAddr) -> bool {
        match self.members.binary_search(&addr) {
            Ok(pos) => {
                self.members.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The address range `(addr, next_of(addr))` exclusive — this master's
    /// GAP, i.e. the addresses it is responsible for polling.
    pub fn gap_range(&self, addr: MasterAddr) -> Option<Vec<MasterAddr>> {
        let next = self.next_of(addr)?;
        let mut out = Vec::new();
        let mut a = addr.0;
        loop {
            a = if a >= MasterAddr::MAX_ADDRESS {
                0
            } else {
                a + 1
            };
            if a == next.0 {
                break;
            }
            if a == addr.0 {
                break; // single-member ring: full wrap
            }
            out.push(MasterAddr(a));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(addrs: &[u8]) -> LogicalRing {
        LogicalRing::new(addrs.iter().map(|&a| MasterAddr(a)).collect())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let r = ring(&[5, 1, 9, 5]);
        assert_eq!(r.members(), &[MasterAddr(1), MasterAddr(5), MasterAddr(9)]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn token_order_wraps() {
        let r = ring(&[1, 5, 9]);
        assert_eq!(r.next_of(MasterAddr(1)), Some(MasterAddr(5)));
        assert_eq!(r.next_of(MasterAddr(5)), Some(MasterAddr(9)));
        assert_eq!(r.next_of(MasterAddr(9)), Some(MasterAddr(1)));
        assert_eq!(r.next_of(MasterAddr(7)), None);
    }

    #[test]
    fn single_member_ring_points_to_itself() {
        let r = ring(&[3]);
        assert_eq!(r.next_of(MasterAddr(3)), Some(MasterAddr(3)));
    }

    #[test]
    fn join_and_leave() {
        let mut r = ring(&[1, 9]);
        assert!(r.join(MasterAddr(5)));
        assert!(!r.join(MasterAddr(5)));
        assert_eq!(r.next_of(MasterAddr(1)), Some(MasterAddr(5)));
        assert!(r.leave(MasterAddr(5)));
        assert!(!r.leave(MasterAddr(5)));
        assert_eq!(r.next_of(MasterAddr(1)), Some(MasterAddr(9)));
    }

    #[test]
    fn positions() {
        let r = ring(&[2, 4, 8]);
        assert_eq!(r.position(MasterAddr(2)), Some(0));
        assert_eq!(r.position(MasterAddr(8)), Some(2));
        assert_eq!(r.position(MasterAddr(3)), None);
    }

    #[test]
    fn gap_ranges() {
        let r = ring(&[1, 5]);
        // GAP of 1: addresses 2,3,4 (up to but excluding 5).
        assert_eq!(
            r.gap_range(MasterAddr(1)).unwrap(),
            vec![MasterAddr(2), MasterAddr(3), MasterAddr(4)]
        );
        // GAP of 5: wraps 6..126, 0 (excluding 1).
        let gap5 = r.gap_range(MasterAddr(5)).unwrap();
        assert_eq!(gap5.first(), Some(&MasterAddr(6)));
        assert_eq!(gap5.last(), Some(&MasterAddr(0)));
        assert!(gap5.contains(&MasterAddr(126)));
        assert!(!gap5.contains(&MasterAddr(1)));
        assert!(!gap5.contains(&MasterAddr(5)));
    }

    #[test]
    #[should_panic(expected = "invalid station address")]
    fn broadcast_address_rejected() {
        let _ = ring(&[127]);
    }

    #[test]
    fn empty_ring() {
        let r = LogicalRing::default();
        assert!(r.is_empty());
        assert_eq!(r.next_of(MasterAddr(1)), None);
    }
}
