//! The GAP update mechanism.
//!
//! Each master periodically polls the address range between itself and its
//! successor (its *GAP*) with `Request FDL Status` telegrams, one address
//! per update cycle, to discover stations that want to join the logical
//! ring. The poll cadence is controlled by the GAP update factor `G`: one
//! GAP address is examined every `G` token receptions.
//!
//! This is a simplified-but-functional model: it tracks the rotation
//! counter, yields the next address to poll when due, and folds poll
//! results back into ring membership knowledge.

use profirt_base::{MasterAddr, Time};
use serde::{Deserialize, Serialize};

use crate::chartime::{char_time, frame_chars};
use crate::params::BusParams;
use crate::ring::LogicalRing;

/// Bus time consumed by one `Request FDL Status` GAP poll.
///
/// The poll is an SD1 request (6 characters, preceded by the `TSYN`
/// synchronisation gap). An addressed station answers with an SD1 status
/// frame after its station delay (worst case `max TSDR`), followed by the
/// initiator idle time `TID1`; an empty address stays silent for the full
/// slot time `TSL` before the initiator gives up.
pub fn poll_time(params: &BusParams, answered: bool) -> Time {
    let request = params.tsyn + char_time(frame_chars::SD1);
    if answered {
        request + params.max_tsdr + char_time(frame_chars::SD1) + params.tid1
    } else {
        request + params.slot_time
    }
}

/// Result of polling one GAP address.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GapPollResult {
    /// No station answered within the slot time.
    NoStation,
    /// A slave answered (never joins the ring).
    Slave,
    /// A master answered and is ready to enter the ring.
    MasterReady,
    /// A master answered but is not ready yet.
    MasterNotReady,
}

/// Per-master GAP maintenance state.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct GapState {
    /// This master's address.
    pub addr: MasterAddr,
    /// GAP update factor `G` (poll one address every `G` token visits).
    pub update_factor: u32,
    visits_since_poll: u32,
    next_index: usize,
}

impl GapState {
    /// Creates GAP state with update factor `g >= 1`.
    ///
    /// # Panics
    /// Panics if `g == 0`.
    pub fn new(addr: MasterAddr, g: u32) -> GapState {
        assert!(g >= 1, "GAP update factor must be at least 1");
        GapState {
            addr,
            update_factor: g,
            visits_since_poll: 0,
            next_index: 0,
        }
    }

    /// Called on each token visit; returns the address to poll this visit,
    /// if the update factor says one is due and the GAP is non-empty.
    pub fn on_token_visit(&mut self, ring: &LogicalRing) -> Option<MasterAddr> {
        self.visits_since_poll += 1;
        if self.visits_since_poll < self.update_factor {
            return None;
        }
        self.visits_since_poll = 0;
        let gap = ring.gap_range(self.addr)?;
        if gap.is_empty() {
            return None;
        }
        let target = gap[self.next_index % gap.len()];
        self.next_index = (self.next_index + 1) % gap.len();
        Some(target)
    }

    /// Token visits by this master until its next poll becomes due
    /// (always ≥ 1: a poll-due visit resets the counter first). The idle
    /// fast-forward uses this to cap a skipped span strictly before any
    /// holder's poll boundary.
    pub fn visits_until_due(&self) -> u32 {
        self.update_factor - self.visits_since_poll
    }

    /// Advances the visit counter by `n` poll-free visits in O(1) — the
    /// bulk form of `n` calls to [`GapState::on_token_visit`] that all
    /// return before the due check fires.
    ///
    /// # Panics
    /// Panics (debug) when the span would cross the poll boundary
    /// (`n >= visits_until_due()`); callers must cap spans first.
    pub fn advance_visits(&mut self, n: u32) {
        debug_assert!(
            n < self.visits_until_due(),
            "bulk GAP advance of {n} visits crosses the poll boundary \
             ({} visits until due)",
            self.visits_until_due()
        );
        self.visits_since_poll += n;
    }

    /// Folds a poll result into the ring: a ready master joins.
    ///
    /// Returns `true` if the ring changed.
    pub fn apply_result(ring: &mut LogicalRing, target: MasterAddr, result: GapPollResult) -> bool {
        match result {
            GapPollResult::MasterReady => ring.join(target),
            GapPollResult::NoStation | GapPollResult::Slave | GapPollResult::MasterNotReady => {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(addrs: &[u8]) -> LogicalRing {
        LogicalRing::new(addrs.iter().map(|&a| MasterAddr(a)).collect())
    }

    #[test]
    fn polls_every_g_visits() {
        let r = ring(&[1, 5]);
        let mut gap = GapState::new(MasterAddr(1), 3);
        assert_eq!(gap.on_token_visit(&r), None);
        assert_eq!(gap.on_token_visit(&r), None);
        assert_eq!(gap.on_token_visit(&r), Some(MasterAddr(2)));
        assert_eq!(gap.on_token_visit(&r), None);
        assert_eq!(gap.on_token_visit(&r), None);
        assert_eq!(gap.on_token_visit(&r), Some(MasterAddr(3)));
    }

    #[test]
    fn cycles_through_gap_addresses() {
        let r = ring(&[1, 4]);
        let mut gap = GapState::new(MasterAddr(1), 1);
        assert_eq!(gap.on_token_visit(&r), Some(MasterAddr(2)));
        assert_eq!(gap.on_token_visit(&r), Some(MasterAddr(3)));
        assert_eq!(gap.on_token_visit(&r), Some(MasterAddr(2)));
    }

    #[test]
    fn bulk_advance_matches_per_visit_counting() {
        let r = ring(&[1, 5]);
        let mut per_visit = GapState::new(MasterAddr(1), 5);
        let mut bulk = GapState::new(MasterAddr(1), 5);
        assert_eq!(per_visit.visits_until_due(), 5);
        for _ in 0..3 {
            assert_eq!(per_visit.on_token_visit(&r), None);
        }
        bulk.advance_visits(3);
        assert_eq!(per_visit, bulk);
        assert_eq!(per_visit.visits_until_due(), 2);
        // Both reach the due poll on the same visit with the same target.
        assert_eq!(per_visit.on_token_visit(&r), None);
        assert_eq!(bulk.on_token_visit(&r), None);
        assert_eq!(per_visit.on_token_visit(&r), Some(MasterAddr(2)));
        assert_eq!(bulk.on_token_visit(&r), Some(MasterAddr(2)));
    }

    #[test]
    fn ready_master_joins_ring() {
        let mut r = ring(&[1, 5]);
        let changed = GapState::apply_result(&mut r, MasterAddr(3), GapPollResult::MasterReady);
        assert!(changed);
        assert!(r.contains(MasterAddr(3)));
        // Idempotent: joining again changes nothing.
        assert!(!GapState::apply_result(
            &mut r,
            MasterAddr(3),
            GapPollResult::MasterReady
        ));
    }

    #[test]
    fn non_masters_do_not_join() {
        let mut r = ring(&[1, 5]);
        for res in [
            GapPollResult::NoStation,
            GapPollResult::Slave,
            GapPollResult::MasterNotReady,
        ] {
            assert!(!GapState::apply_result(&mut r, MasterAddr(2), res));
        }
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_update_factor_panics() {
        let _ = GapState::new(MasterAddr(1), 0);
    }

    #[test]
    fn empty_gap_yields_none() {
        // Adjacent addresses: GAP of 1 before 2 is empty.
        let r = ring(&[1, 2]);
        let mut gap = GapState::new(MasterAddr(1), 1);
        assert_eq!(gap.on_token_visit(&r), None);
    }

    #[test]
    fn poll_time_is_chartime_derived() {
        use profirt_base::time::t;
        let p = BusParams::profile_500k();
        // Silent address: TSYN + SD1 request + slot time = 33 + 66 + 200.
        assert_eq!(poll_time(&p, false), t(299));
        // Answered: TSYN + SD1 + max TSDR + SD1 reply + TID1
        //         = 33 + 66 + 100 + 66 + 37.
        assert_eq!(poll_time(&p, true), t(302));
        // An answered poll costs slightly more than a silent slot-time
        // wait at this profile (302 vs 299 bit times).
        assert!(poll_time(&p, true) > poll_time(&p, false));
    }
}
