//! FDL frame formats (DIN 19245 part 1).
//!
//! PROFIBUS defines four telegram formats plus a single-character
//! acknowledge:
//!
//! | Format | SD byte | Layout |
//! |--------|---------|--------|
//! | SD1 (fixed, no data)   | `0x10` | `SD DA SA FC FCS ED` |
//! | SD2 (variable data)    | `0x68` | `SD LE LEr SD DA SA FC DU… FCS ED` |
//! | SD3 (fixed, 8 data)    | `0xA2` | `SD DA SA FC DU×8 FCS ED` |
//! | SD4 (token)            | `0xDC` | `SD DA SA` |
//! | SC  (short ack)        | `0xE5` | `SC` |
//!
//! `ED` is always `0x16`; `FCS` covers `DA SA FC DU…` (see [`crate::fcs`]).
//! The frame-control octet `FC` carries the request/response discriminator,
//! the frame-count bit (FCB/FCV) used for duplicate suppression, and the
//! function code.

use profirt_base::Time;
use serde::{Deserialize, Serialize};

use crate::chartime::{char_time, frame_chars};

/// Start-delimiter constants.
pub mod delim {
    /// SD1 — fixed length, no data units.
    pub const SD1: u8 = 0x10;
    /// SD2 — variable length.
    pub const SD2: u8 = 0x68;
    /// SD3 — fixed length, eight data units.
    pub const SD3: u8 = 0xA2;
    /// SD4 — token.
    pub const SD4: u8 = 0xDC;
    /// Single-character acknowledge.
    pub const SC: u8 = 0xE5;
    /// End delimiter.
    pub const ED: u8 = 0x16;
}

/// The frame-control octet.
///
/// Bit 6 distinguishes request (`1`) from response (`0`) telegrams; in
/// request telegrams bits 5/4 are FCB/FCV (frame count bit / valid); bits
/// 3–0 are the function code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FunctionCode(pub u8);

impl FunctionCode {
    /// Send Data with Acknowledge (SDA), low priority.
    pub const SDA_LOW: FunctionCode = FunctionCode(0x43); // req + FCV + fn 3
    /// Send Data with Acknowledge (SDA), high priority.
    pub const SDA_HIGH: FunctionCode = FunctionCode(0x45);
    /// Send and Request Data (SRD), low priority.
    pub const SRD_LOW: FunctionCode = FunctionCode(0x4C);
    /// Send and Request Data (SRD), high priority.
    pub const SRD_HIGH: FunctionCode = FunctionCode(0x4D);
    /// FDL status request (used by the GAP update mechanism).
    pub const REQUEST_FDL_STATUS: FunctionCode = FunctionCode(0x49);
    /// Response: FDL status — master ready to enter ring.
    pub const STATUS_READY: FunctionCode = FunctionCode(0x20);
    /// Response: data low (DL).
    pub const RESPONSE_DATA_LOW: FunctionCode = FunctionCode(0x08);
    /// Response: data high (DH).
    pub const RESPONSE_DATA_HIGH: FunctionCode = FunctionCode(0x0A);

    /// `true` if this is a request telegram (bit 6 set).
    pub fn is_request(self) -> bool {
        self.0 & 0x40 != 0
    }

    /// The 4-bit function number.
    pub fn function(self) -> u8 {
        self.0 & 0x0F
    }

    /// Returns a copy with the frame-count bit set/cleared (requests only).
    pub fn with_fcb(self, fcb: bool) -> FunctionCode {
        if fcb {
            FunctionCode(self.0 | 0x20)
        } else {
            FunctionCode(self.0 & !0x20)
        }
    }

    /// The frame-count bit.
    pub fn fcb(self) -> bool {
        self.0 & 0x20 != 0
    }
}

/// A decoded FDL frame.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Frame {
    /// SD4 token pass from `sa` to `da`.
    Token {
        /// Destination (next master in the logical ring).
        da: u8,
        /// Source.
        sa: u8,
    },
    /// Single-character acknowledge.
    ShortAck,
    /// SD1 fixed-length frame without data units.
    Fixed {
        /// Destination address.
        da: u8,
        /// Source address.
        sa: u8,
        /// Frame control.
        fc: FunctionCode,
    },
    /// SD3 fixed-length frame with exactly eight data units.
    FixedData {
        /// Destination address.
        da: u8,
        /// Source address.
        sa: u8,
        /// Frame control.
        fc: FunctionCode,
        /// The eight data units.
        data: [u8; 8],
    },
    /// SD2 variable-length frame.
    Variable {
        /// Destination address.
        da: u8,
        /// Source address.
        sa: u8,
        /// Frame control.
        fc: FunctionCode,
        /// Data units (0..=246 - 3 octets per DIN 19245; we enforce the
        /// 243-octet limit at encode time).
        data: Vec<u8>,
    },
}

/// Maximum SD2 data-unit payload (`LE ≤ 249`, minus DA/SA/FC).
pub const MAX_SD2_DATA: usize = 246;

impl Frame {
    /// Number of transmitted characters.
    pub fn char_len(&self) -> usize {
        match self {
            Frame::Token { .. } => frame_chars::TOKEN,
            Frame::ShortAck => frame_chars::SHORT_ACK,
            Frame::Fixed { .. } => frame_chars::SD1,
            Frame::FixedData { .. } => frame_chars::SD3,
            Frame::Variable { data, .. } => frame_chars::sd2(data.len()),
        }
    }

    /// On-wire transmission time in bit times.
    pub fn transmission_time(&self) -> Time {
        char_time(self.char_len())
    }
}

/// Decode errors (see [`crate::codec`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// Input shorter than the minimum for its start delimiter.
    Truncated {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The first byte is not a known start delimiter.
    BadStartDelimiter(u8),
    /// SD2 length bytes disagree (`LE != LEr`) or are out of range.
    BadLength {
        /// First length byte.
        le: u8,
        /// Repeated length byte.
        ler: u8,
    },
    /// The second SD byte of an SD2 frame does not repeat `0x68`.
    BadSd2Repeat(u8),
    /// Checksum mismatch.
    BadChecksum {
        /// Expected (computed) FCS.
        expected: u8,
        /// Received FCS.
        got: u8,
    },
    /// End delimiter is not `0x16`.
    BadEndDelimiter(u8),
    /// Payload too large to encode in SD2.
    PayloadTooLarge {
        /// Attempted size.
        size: usize,
    },
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            FrameError::BadStartDelimiter(b) => {
                write!(f, "unknown start delimiter 0x{b:02X}")
            }
            FrameError::BadLength { le, ler } => {
                write!(f, "SD2 length mismatch: LE=0x{le:02X} LEr=0x{ler:02X}")
            }
            FrameError::BadSd2Repeat(b) => {
                write!(f, "SD2 repeat delimiter is 0x{b:02X}, expected 0x68")
            }
            FrameError::BadChecksum { expected, got } => {
                write!(
                    f,
                    "FCS mismatch: expected 0x{expected:02X}, got 0x{got:02X}"
                )
            }
            FrameError::BadEndDelimiter(b) => {
                write!(f, "end delimiter is 0x{b:02X}, expected 0x16")
            }
            FrameError::PayloadTooLarge { size } => {
                write!(f, "SD2 payload of {size} bytes exceeds {MAX_SD2_DATA}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    #[test]
    fn function_code_fields() {
        assert!(FunctionCode::SRD_HIGH.is_request());
        assert!(!FunctionCode::RESPONSE_DATA_LOW.is_request());
        assert_eq!(FunctionCode::SRD_HIGH.function(), 0x0D);
        let with = FunctionCode::SDA_LOW.with_fcb(true);
        assert!(with.fcb());
        assert!(!with.with_fcb(false).fcb());
    }

    #[test]
    fn char_lengths() {
        assert_eq!(Frame::Token { da: 1, sa: 2 }.char_len(), 3);
        assert_eq!(Frame::ShortAck.char_len(), 1);
        assert_eq!(
            Frame::Fixed {
                da: 1,
                sa: 2,
                fc: FunctionCode::SDA_HIGH
            }
            .char_len(),
            6
        );
        assert_eq!(
            Frame::FixedData {
                da: 1,
                sa: 2,
                fc: FunctionCode::SRD_HIGH,
                data: [0; 8]
            }
            .char_len(),
            14
        );
        assert_eq!(
            Frame::Variable {
                da: 1,
                sa: 2,
                fc: FunctionCode::SRD_HIGH,
                data: vec![0; 10]
            }
            .char_len(),
            19
        );
    }

    #[test]
    fn transmission_times() {
        assert_eq!(Frame::Token { da: 1, sa: 2 }.transmission_time(), t(33));
        assert_eq!(Frame::ShortAck.transmission_time(), t(11));
    }

    #[test]
    fn error_display() {
        let e = FrameError::BadChecksum {
            expected: 0xAB,
            got: 0xCD,
        };
        assert!(e.to_string().contains("0xAB"));
        assert!(e.to_string().contains("0xCD"));
    }
}
