//! The PROFIBUS frame check sequence.
//!
//! DIN 19245 uses an arithmetic checksum: the FCS octet is the sum of the
//! covered octets (DA, SA, FC and all data units) modulo 256, transmitted
//! without carry.

/// Computes the FCS over the covered octets.
pub fn fcs(covered: &[u8]) -> u8 {
    covered.iter().fold(0u8, |acc, &b| acc.wrapping_add(b))
}

/// Verifies a received FCS.
pub fn check(covered: &[u8], received: u8) -> bool {
    fcs(covered) == received
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sums() {
        assert_eq!(fcs(&[]), 0);
        assert_eq!(fcs(&[1, 2, 3]), 6);
        assert_eq!(fcs(&[0x10, 0x20]), 0x30);
    }

    #[test]
    fn wraps_modulo_256() {
        assert_eq!(fcs(&[0xFF, 0x01]), 0x00);
        assert_eq!(fcs(&[0xFF, 0xFF]), 0xFE);
        assert_eq!(fcs(&[0x80, 0x80, 0x01]), 0x01);
    }

    #[test]
    fn check_accepts_and_rejects() {
        let data = [0x02, 0x01, 0x49];
        let sum = fcs(&data);
        assert!(check(&data, sum));
        assert!(!check(&data, sum.wrapping_add(1)));
    }
}
