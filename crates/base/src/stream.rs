//! The PROFIBUS message-stream model of the paper's §3.2.
//!
//! A *message stream* `Shi^k` at master `k` is a temporal sequence of message
//! cycles (e.g. periodic reads of a sensor). It is characterised by:
//!
//! * `Chi` — the maximum *message-cycle* length: request frame + responder's
//!   immediate response + turnaround time + the maximum allowed retries
//!   (footnote 2 and §3.2 of the paper);
//! * `Dhi` — the relative deadline of each message in the stream;
//! * `Thi` — the period (minimum inter-arrival time of requests);
//! * `Ji`  — the release jitter inherited from the generating task (§4.1).
//!
//! The structural identity with [`crate::Task`] is the whole point of the
//! paper — the same `(C, D, T, J)` quadruple flows into transposed analyses —
//! but the semantic difference (non-preemptable bus cycles, `Tcycle`-grained
//! service) warrants a distinct type so the two cannot be confused.

use serde::{Deserialize, Serialize};

use crate::error::{AnalysisError, AnalysisResult, ModelError};
use crate::num::Frac;
use crate::time::Time;

/// A high-priority PROFIBUS message stream `(Ch, Dh, Th, J)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MessageStream {
    /// Worst-case message-cycle time `Chi` (request + response + turnaround +
    /// retries), in ticks; strictly positive.
    pub ch: Time,
    /// Relative deadline `Dhi`, strictly positive.
    pub d: Time,
    /// Period / minimum inter-arrival time `Thi`, strictly positive.
    pub t: Time,
    /// Release jitter `Ji` inherited from the generating task; non-negative.
    pub j: Time,
}

impl MessageStream {
    /// Creates a validated stream with no jitter.
    pub fn new(
        ch: impl Into<Time>,
        d: impl Into<Time>,
        t: impl Into<Time>,
    ) -> AnalysisResult<MessageStream> {
        MessageStream::with_jitter(ch, d, t, Time::ZERO)
    }

    /// Creates a validated stream `(Ch, D, T, J)`.
    pub fn with_jitter(
        ch: impl Into<Time>,
        d: impl Into<Time>,
        t: impl Into<Time>,
        j: impl Into<Time>,
    ) -> AnalysisResult<MessageStream> {
        let s = MessageStream {
            ch: ch.into(),
            d: d.into(),
            t: t.into(),
            j: j.into(),
        };
        s.validate()?;
        Ok(s)
    }

    /// Validates parameter ranges. Unlike tasks, `Ch > D` is allowed here
    /// only as far as `Ch <= D` is *not* required: the message response time
    /// is dominated by token cycles, and the analyses themselves decide
    /// schedulability. We still require positive `Ch`, `D`, `T` and
    /// non-negative `J`.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.ch.is_positive() {
            return Err(ModelError::NonPositiveCost {
                value: self.ch.ticks(),
            });
        }
        if !self.t.is_positive() {
            return Err(ModelError::NonPositivePeriod {
                value: self.t.ticks(),
            });
        }
        if !self.d.is_positive() {
            return Err(ModelError::NonPositiveDeadline {
                value: self.d.ticks(),
            });
        }
        if self.j.is_negative() {
            return Err(ModelError::NegativeJitter {
                value: self.j.ticks(),
            });
        }
        Ok(())
    }

    /// Bus utilisation of this stream, `Chi / Thi`.
    pub fn utilization(&self) -> Frac {
        Frac::new(self.ch.ticks() as i128, self.t.ticks() as i128)
    }
}

/// The set of high-priority message streams of one master.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct StreamSet {
    streams: Vec<MessageStream>,
}

impl StreamSet {
    /// Creates a stream set, validating every stream.
    pub fn new(streams: Vec<MessageStream>) -> AnalysisResult<StreamSet> {
        for s in &streams {
            s.validate()?;
        }
        Ok(StreamSet { streams })
    }

    /// Builds a set from `(Ch, D, T)` triples.
    pub fn from_cdt(triples: &[(i64, i64, i64)]) -> AnalysisResult<StreamSet> {
        let streams = triples
            .iter()
            .map(|&(c, d, t)| MessageStream::new(c, d, t))
            .collect::<AnalysisResult<Vec<_>>>()?;
        StreamSet::new(streams)
    }

    /// Builds a set from `(Ch, D, T, J)` quadruples.
    pub fn from_cdtj(quads: &[(i64, i64, i64, i64)]) -> AnalysisResult<StreamSet> {
        let streams = quads
            .iter()
            .map(|&(c, d, t, j)| MessageStream::with_jitter(c, d, t, j))
            .collect::<AnalysisResult<Vec<_>>>()?;
        StreamSet::new(streams)
    }

    /// The number of streams — the paper's `nh^k`.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// `true` if the master has no high-priority streams.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Immutable view of the streams.
    pub fn streams(&self) -> &[MessageStream] {
        &self.streams
    }

    /// The stream at `index`, or a typed error.
    pub fn get(&self, index: usize) -> AnalysisResult<&MessageStream> {
        self.streams
            .get(index)
            .ok_or(AnalysisError::IndexOutOfRange {
                index,
                len: self.streams.len(),
            })
    }

    /// Iterator over `(index, &MessageStream)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &MessageStream)> {
        self.streams.iter().enumerate()
    }

    /// The longest message-cycle time `max_i Chi^k` — feeds the token
    /// lateness bound `CM^k` (eq. (13)).
    pub fn max_cycle_time(&self) -> Option<Time> {
        self.streams.iter().map(|s| s.ch).max()
    }

    /// Total bus utilisation of the set, `Σ Chi/Thi`.
    pub fn total_utilization(&self) -> Frac {
        self.streams.iter().map(|s| s.utilization()).sum()
    }

    /// Indices sorted by ascending relative deadline (deadline-monotonic
    /// priority order; ties broken by index).
    pub fn indices_by_deadline(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.streams.len()).collect();
        idx.sort_by_key(|&i| (self.streams[i].d, i));
        idx
    }

    /// The smallest relative deadline in the set.
    pub fn min_deadline(&self) -> Option<Time> {
        self.streams.iter().map(|s| s.d).min()
    }
}

impl From<StreamSet> for Vec<MessageStream> {
    fn from(set: StreamSet) -> Vec<MessageStream> {
        set.streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::t;

    #[test]
    fn stream_construction_and_validation() {
        let s = MessageStream::new(5, 100, 200).unwrap();
        assert_eq!(s.ch, t(5));
        assert_eq!(s.j, t(0));
        assert!(MessageStream::new(0, 100, 200).is_err());
        assert!(MessageStream::new(5, 0, 200).is_err());
        assert!(MessageStream::new(5, 100, 0).is_err());
        assert!(MessageStream::with_jitter(5, 100, 200, -1).is_err());
        // Ch > D is allowed at the model level (analysis decides).
        assert!(MessageStream::new(500, 100, 200).is_ok());
    }

    #[test]
    fn set_statistics() {
        let set = StreamSet::from_cdt(&[(5, 100, 200), (3, 50, 60), (8, 400, 400)]).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.max_cycle_time(), Some(t(8)));
        assert_eq!(set.min_deadline(), Some(t(50)));
        assert_eq!(set.indices_by_deadline(), vec![1, 0, 2]);
    }

    #[test]
    fn utilization() {
        let set = StreamSet::from_cdt(&[(1, 10, 10), (1, 5, 5)]).unwrap();
        assert_eq!(set.total_utilization(), Frac::new(3, 10));
    }

    #[test]
    fn jitter_quads() {
        let set = StreamSet::from_cdtj(&[(5, 100, 200, 10), (3, 50, 60, 0)]).unwrap();
        assert_eq!(set.get(0).unwrap().j, t(10));
        assert_eq!(set.get(1).unwrap().j, t(0));
        assert!(set.get(2).is_err());
    }

    #[test]
    fn empty_set() {
        let set = StreamSet::new(vec![]).unwrap();
        assert!(set.is_empty());
        assert_eq!(set.max_cycle_time(), None);
        assert_eq!(set.total_utilization(), Frac::ZERO);
    }
}
