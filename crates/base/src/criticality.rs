//! Criticality levels for mixed-criticality scheduling.
//!
//! Following Novak et al.'s match-up scheduling model, every stream and
//! task carries a criticality level. `Hi` traffic must meet its bounds
//! through *any* disturbance (ring churn, overload); `Lo` traffic is shed
//! in degraded mode and only re-admitted after a completed match-up
//! phase; `Mid` sits between the two in the three-level variant (shed
//! after `Lo`, re-admitted before it — this workspace sheds both together
//! but keeps the level distinct for analysis and reporting).
//!
//! The default is [`Criticality::Hi`]: a workload that never mentions
//! criticality is an all-HI workload, which keeps every pre-existing
//! config, preset and artifact byte-identical.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A criticality level; `Hi` must survive any overload, `Lo` is shed first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Criticality {
    /// Best-effort traffic: shed in degraded mode, re-admitted at match-up.
    Lo,
    /// Intermediate level of the three-level model (shed with `Lo`, but
    /// tracked separately).
    Mid,
    /// Safety-critical traffic: never shed; bounds must hold through churn.
    Hi,
}

impl Criticality {
    /// Short lowercase name (`"lo"` / `"mid"` / `"hi"`), the config-file
    /// and wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            Criticality::Lo => "lo",
            Criticality::Mid => "mid",
            Criticality::Hi => "hi",
        }
    }

    /// Parses the config-file spelling produced by [`Criticality::name`].
    pub fn parse(s: &str) -> Option<Criticality> {
        match s {
            "lo" => Some(Criticality::Lo),
            "mid" => Some(Criticality::Mid),
            "hi" => Some(Criticality::Hi),
            _ => None,
        }
    }

    /// Whether traffic of this level is shed in degraded (HI) mode.
    #[inline]
    pub fn shed_in_hi_mode(self) -> bool {
        !matches!(self, Criticality::Hi)
    }
}

impl Default for Criticality {
    /// Absent criticality means HI — the backward-compatible reading under
    /// which every pre-existing workload is unchanged.
    fn default() -> Self {
        Criticality::Hi
    }
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_parse_roundtrip() {
        for c in [Criticality::Lo, Criticality::Mid, Criticality::Hi] {
            assert_eq!(Criticality::parse(c.name()), Some(c));
            assert_eq!(c.to_string(), c.name());
        }
        assert_eq!(Criticality::parse("HI"), None);
        assert_eq!(Criticality::parse(""), None);
    }

    #[test]
    fn default_is_hi_and_only_hi_survives_shedding() {
        assert_eq!(Criticality::default(), Criticality::Hi);
        assert!(Criticality::Lo.shed_in_hi_mode());
        assert!(Criticality::Mid.shed_in_hi_mode());
        assert!(!Criticality::Hi.shed_in_hi_mode());
    }

    #[test]
    fn ordering_ranks_hi_above_mid_above_lo() {
        assert!(Criticality::Hi > Criticality::Mid);
        assert!(Criticality::Mid > Criticality::Lo);
    }
}
