//! # profirt-base
//!
//! Foundational types shared by every `profirt` crate:
//!
//! * [`Time`] — an exact, signed, integer *tick* count. All schedulability
//!   analyses in this workspace are integer fixpoints; floating point is
//!   banned from every feasibility decision. A tick is an abstract unit; the
//!   PROFIBUS crates conventionally map one tick to one *bit time*
//!   (`1 / baud_rate` seconds), which keeps every DIN 19245 timing parameter
//!   exactly representable.
//! * [`Frac`] — an exact rational built on `i128`, used for utilisation
//!   comparisons (`Σ Ci/Ti` vs. a bound) without rounding.
//! * [`Task`] / [`TaskSet`] — the single-processor task model of the paper's
//!   §2 (`Ci`, `Di`, `Ti`, plus release jitter `Ji` for the §4.1 extension).
//! * [`MessageStream`] / [`StreamSet`] — the PROFIBUS message-stream model of
//!   §3.2 (`Chi`, `Dhi`, `Thi`, `Ji`).
//! * [`Criticality`] — LO/MID/HI levels for the mixed-criticality overload
//!   modes (absent ⇒ HI, so plain workloads are unchanged).
//! * Error types for every analysis (divergent fixpoints, invalid models,
//!   arithmetic overflow) — analyses return `Result`, they never panic on
//!   user input.
//! * [`json`] — a dependency-free JSON parser / pretty printer shared by
//!   the CLI config files and the campaign engine (this build environment
//!   has no crates.io access, so serde_json is not an option).
//!
//! The crate is `#![forbid(unsafe_code)]` and dependency-light by design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bignat;
pub mod criticality;
pub mod error;
pub mod ids;
pub mod json;
pub mod num;
pub mod priority;
pub mod release;
pub mod rng;
pub mod stream;
pub mod task;
pub mod time;

pub use bignat::BigNat;
pub use criticality::Criticality;
pub use error::{AnalysisError, AnalysisResult, ModelError};
pub use ids::{MasterAddr, StreamId, TaskId};
pub use num::{ceil_div, floor_div, gcd, lcm, Frac};
pub use priority::Priority;
pub use release::{JitterMode, MergedReleases, OffsetMode, PeriodicReleases, ReleaseGen};
pub use rng::Prng;
pub use stream::{MessageStream, StreamSet};
pub use task::{Task, TaskSet};
pub use time::Time;
