//! Minimal JSON support shared by the CLI, the campaign engine, and the
//! admission-control server.
//!
//! The build environment cannot fetch serde_json, and every on-disk schema
//! in this workspace is a handful of small structs, so the workspace
//! carries its own parser and pretty printer. Supported: objects, arrays,
//! strings (with the standard escapes), integers, floats, booleans, and
//! null — the full JSON grammar minus exotic number forms (`1e99` parses
//! via `f64`; numbers that overflow to a non-finite `f64`, like `1e999`,
//! are rejected with a typed error rather than smuggling `inf` into a
//! feasibility decision).
//!
//! Parse failures are typed ([`ParseError`]: a [`ParseErrorKind`] plus the
//! byte offset), so wire-facing consumers such as `profirt serve` can
//! answer structured errors instead of pattern-matching message strings.
//!
//! ```
//! use profirt_base::json::{parse, Value};
//!
//! let doc = parse(r#"{"ttr": 2000, "masters": [1, 2]}"#).unwrap();
//! assert_eq!(doc.get("ttr").and_then(Value::as_i64), Some(2000));
//! let again = parse(&doc.pretty()).unwrap();
//! assert_eq!(doc, again);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integral numbers (the config schemas are mostly ticks).
    Int(i64),
    /// Non-integral numbers.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// Key order is normalised; no workspace schema relies on it.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Integer view (accepts exactly-integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// Floating-point view (accepts integers).
    ///
    /// Parsed documents never carry non-finite floats (the parser rejects
    /// them with [`ParseErrorKind::NumberNotFinite`]), so on any `Value`
    /// built by [`parse`] this is always finite.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation (serde_json style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Renders on a single line with no insignificant whitespace — the
    /// canonical form for line-delimited wire protocols and cache keys
    /// (object keys are already sorted by the `BTreeMap` representation,
    /// so equal values render to equal bytes).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                let _ = write!(out, "{f}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                let _ = write!(out, "{f}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) if items.is_empty() => out.push_str("[]"),
            Value::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) if map.is_empty() => out.push_str("{}"),
            Value::Object(map) => {
                out.push_str("{\n");
                for (i, (key, value)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: builds an object from key/value pairs.
pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// What went wrong while parsing, independent of position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended inside a value.
    UnexpectedEnd,
    /// A character that cannot start or continue the expected construct.
    UnexpectedChar(char),
    /// Non-whitespace after the complete document.
    TrailingChars,
    /// Nesting exceeded the recursion guard.
    TooDeep {
        /// The enforced depth limit.
        limit: usize,
    },
    /// A `true`/`false`/`null` keyword was misspelt.
    InvalidLiteral,
    /// A number literal that overflows `f64` to `inf` (e.g. `1e999`) or
    /// parses to `NaN`: finite arithmetic only, by construction.
    NumberNotFinite,
    /// An integer literal outside the `i64` range.
    IntegerOutOfRange,
    /// A malformed number literal (e.g. `1.2.3`, `--5`, a bare `-`).
    InvalidNumber,
    /// A string missing its closing quote.
    UnterminatedString,
    /// A malformed `\` escape sequence.
    BadEscape,
    /// A `\u` escape naming an invalid code point.
    BadCodePoint,
    /// Raw bytes that are not valid UTF-8 inside a string.
    InvalidUtf8,
    /// An object member did not start with a string key.
    ExpectedKey,
    /// The `:` between an object key and its value is missing.
    ExpectedColon,
    /// Expected `,` or the closing bracket of the current container.
    ExpectedCommaOrClose {
        /// `]` or `}` depending on the container.
        close: char,
    },
}

/// A typed parse failure: the error class plus the byte offset at which it
/// was detected. Renders to the human-readable message via [`Display`];
/// `String` error contexts convert losslessly through `From`.
///
/// [`Display`]: std::fmt::Display
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// The failure class.
    pub kind: ParseErrorKind,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let at = self.at;
        match self.kind {
            ParseErrorKind::UnexpectedEnd => write!(f, "unexpected end of input"),
            ParseErrorKind::UnexpectedChar(c) => {
                write!(f, "unexpected character {c:?} at byte {at}")
            }
            ParseErrorKind::TrailingChars => write!(f, "trailing characters at byte {at}"),
            ParseErrorKind::TooDeep { limit } => {
                write!(f, "nesting deeper than {limit} levels")
            }
            ParseErrorKind::InvalidLiteral => write!(f, "invalid literal at byte {at}"),
            ParseErrorKind::NumberNotFinite => {
                write!(f, "number at byte {at} is not a finite f64")
            }
            ParseErrorKind::IntegerOutOfRange => {
                write!(f, "integer out of i64 range at byte {at}")
            }
            ParseErrorKind::InvalidNumber => write!(f, "invalid number at byte {at}"),
            ParseErrorKind::UnterminatedString => write!(f, "unterminated string"),
            ParseErrorKind::BadEscape => write!(f, "bad escape at byte {at}"),
            ParseErrorKind::BadCodePoint => write!(f, "bad \\u code point at byte {at}"),
            ParseErrorKind::InvalidUtf8 => write!(f, "invalid UTF-8 in string at byte {at}"),
            ParseErrorKind::ExpectedKey => write!(f, "expected object key at byte {at}"),
            ParseErrorKind::ExpectedColon => write!(f, "expected ':' at byte {at}"),
            ParseErrorKind::ExpectedCommaOrClose { close } => {
                write!(f, "expected ',' or {close:?} at byte {at}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for String {
    fn from(e: ParseError) -> String {
        e.to_string()
    }
}

fn err(kind: ParseErrorKind, at: usize) -> ParseError {
    ParseError { kind, at }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(ParseErrorKind::TrailingChars, pos));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Recursion guard: adversarially deep documents must error, not blow the
/// stack. 128 is far beyond any real config (which nests 3 levels).
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, ParseError> {
    if depth > MAX_DEPTH {
        return Err(err(ParseErrorKind::TooDeep { limit: MAX_DEPTH }, *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(ParseErrorKind::UnexpectedEnd, *pos)),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(err(ParseErrorKind::UnexpectedChar(*c as char), *pos)),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(ParseErrorKind::InvalidLiteral, *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    // The scanned bytes are all from the ASCII number alphabet, so this
    // conversion cannot fail; keep it typed rather than asserting.
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| err(ParseErrorKind::InvalidNumber, start))?;
    if is_float {
        match text.parse::<f64>() {
            // `1e999` overflows to `inf` without a parse error; NaN cannot
            // be produced by the grammar but is rejected for completeness.
            Ok(f) if f.is_finite() => Ok(Value::Float(f)),
            Ok(_) => Err(err(ParseErrorKind::NumberNotFinite, start)),
            Err(_) => Err(err(ParseErrorKind::InvalidNumber, start)),
        }
    } else {
        match text.parse::<i64>() {
            Ok(n) => Ok(Value::Int(n)),
            // Distinguish an in-grammar integer that merely overflows i64
            // from junk like a bare `-`.
            Err(_) => {
                let digits = text.strip_prefix('-').unwrap_or(text);
                if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                    Err(err(ParseErrorKind::IntegerOutOfRange, start))
                } else {
                    Err(err(ParseErrorKind::InvalidNumber, start))
                }
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    let open = *pos;
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(ParseErrorKind::UnterminatedString, open)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or(err(ParseErrorKind::BadEscape, *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(ParseErrorKind::BadEscape, *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(ParseErrorKind::BadEscape, *pos))?;
                        // Surrogate pairs are not needed by any schema here.
                        out.push(
                            char::from_u32(code).ok_or(err(ParseErrorKind::BadCodePoint, *pos))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(err(ParseErrorKind::BadEscape, *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the maximal run of plain characters in one go.
                // '"' (0x22) and '\\' (0x5C) never occur inside multi-byte
                // UTF-8 sequences, so scanning raw bytes is sound, and
                // validating only this chunk keeps parsing linear.
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| err(ParseErrorKind::InvalidUtf8, start))?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, ParseError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => {
                return Err(err(
                    ParseErrorKind::ExpectedCommaOrClose { close: ']' },
                    *pos,
                ))
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, ParseError> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(ParseErrorKind::ExpectedKey, *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(ParseErrorKind::ExpectedColon, *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => {
                return Err(err(
                    ParseErrorKind::ExpectedCommaOrClose { close: '}' },
                    *pos,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#;
        let v = parse(text).unwrap();
        let again = parse(&v.pretty()).unwrap();
        assert_eq!(v, again);
        let compact = parse(&v.compact()).unwrap();
        assert_eq!(v, compact);
    }

    #[test]
    fn compact_is_single_line_and_sorted() {
        let v = parse(r#"{"b": 2, "a": [1, "x", {"k": null}]}"#).unwrap();
        assert_eq!(v.compact(), r#"{"a":[1,"x",{"k":null}],"b":2}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{ not json").is_err());
        assert!(parse("").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"unclosed": "#).is_err());
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(parse("").unwrap_err().kind, ParseErrorKind::UnexpectedEnd);
        assert_eq!(
            parse("{} x").unwrap_err(),
            ParseError {
                kind: ParseErrorKind::TrailingChars,
                at: 3
            }
        );
        assert_eq!(
            parse("[1 2]").unwrap_err().kind,
            ParseErrorKind::ExpectedCommaOrClose { close: ']' }
        );
        assert_eq!(
            parse("{\"a\" 1}").unwrap_err().kind,
            ParseErrorKind::ExpectedColon
        );
        assert_eq!(
            parse("tru").unwrap_err().kind,
            ParseErrorKind::InvalidLiteral
        );
        assert_eq!(
            parse("\"ab").unwrap_err().kind,
            ParseErrorKind::UnterminatedString
        );
    }

    #[test]
    fn typed_views() {
        let v = parse(r#"{"i": 3, "f": 1.5, "s": "x", "b": true, "a": []}"#).unwrap();
        assert_eq!(v.get("i").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("f").unwrap().as_i64(), None);
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array(), Some(&[][..]));
        assert_eq!(v.as_object().unwrap().len(), 5);
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        for text in ["1e999", "-1e999", "1e309", "[1, 2e99999]"] {
            let e = parse(text).unwrap_err();
            assert_eq!(e.kind, ParseErrorKind::NumberNotFinite, "{text}: {e}");
        }
        // Large but finite exponents still parse.
        assert_eq!(parse("1e99").unwrap().as_f64(), Some(1e99));
    }

    #[test]
    fn negative_zero_parses_as_integer_zero() {
        assert_eq!(parse("-0").unwrap(), Value::Int(0));
        assert_eq!(parse("-0").unwrap().as_i64(), Some(0));
        // The float spelling stays a float but still views as 0.
        assert_eq!(parse("-0.0").unwrap().as_i64(), Some(0));
        assert_eq!(parse("-0.0").unwrap().as_f64(), Some(-0.0));
    }

    #[test]
    fn i64_boundaries() {
        assert_eq!(parse("-9223372036854775808").unwrap(), Value::Int(i64::MIN));
        assert_eq!(parse("9223372036854775807").unwrap(), Value::Int(i64::MAX));
        assert_eq!(
            parse("9223372036854775808").unwrap_err().kind,
            ParseErrorKind::IntegerOutOfRange
        );
        assert_eq!(
            parse("-9223372036854775809").unwrap_err().kind,
            ParseErrorKind::IntegerOutOfRange
        );
        // i64::MIN survives the f64 view (exactly representable).
        assert_eq!(
            parse("-9223372036854775808").unwrap().as_f64(),
            Some(i64::MIN as f64)
        );
        // ... but is outside as_i64's exact-integral float window when
        // spelt as a float.
        assert_eq!(parse("-9.223372036854776e18").unwrap().as_i64(), None);
    }

    #[test]
    fn malformed_numbers_are_invalid_not_overflow() {
        for text in ["-", "1.2.3", "1e", "--5", "1e+-2"] {
            let e = parse(text).unwrap_err();
            assert_eq!(e.kind, ParseErrorKind::InvalidNumber, "{text}: {e}");
        }
    }

    #[test]
    fn rejects_adversarial_nesting_without_stack_overflow() {
        let deep = "[".repeat(200_000) + &"]".repeat(200_000);
        let err = parse(&deep).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::TooDeep { limit: 128 });
        assert!(err.to_string().contains("nesting deeper"), "{err}");
    }
}
