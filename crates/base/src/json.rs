//! Minimal JSON support shared by the CLI and the campaign engine.
//!
//! The build environment cannot fetch serde_json, and every on-disk schema
//! in this workspace is a handful of small structs, so the workspace
//! carries its own parser and pretty printer. Supported: objects, arrays,
//! strings (with the standard escapes), integers, floats, booleans, and
//! null — the full JSON grammar minus exotic number forms (`1e99` parses
//! via `f64`).
//!
//! ```
//! use profirt_base::json::{parse, Value};
//!
//! let doc = parse(r#"{"ttr": 2000, "masters": [1, 2]}"#).unwrap();
//! assert_eq!(doc.get("ttr").and_then(Value::as_i64), Some(2000));
//! let again = parse(&doc.pretty()).unwrap();
//! assert_eq!(doc, again);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integral numbers (the config schemas are mostly ticks).
    Int(i64),
    /// Non-integral numbers.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// Key order is normalised; no workspace schema relies on it.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Integer view (accepts exactly-integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// Floating-point view (accepts integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation (serde_json style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                let _ = write!(out, "{f}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) if items.is_empty() => out.push_str("[]"),
            Value::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) if map.is_empty() => out.push_str("{}"),
            Value::Object(map) => {
                out.push_str("{\n");
                for (i, (key, value)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: builds an object from key/value pairs.
pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Recursion guard: adversarially deep documents must error, not blow the
/// stack. 128 is far beyond any real config (which nests 3 levels).
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!(
            "unexpected character {:?} at byte {}",
            *c as char, *pos
        )),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    } else {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("integer out of range {text:?} at byte {start}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by any schema here.
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the maximal run of plain characters in one go.
                // '"' (0x22) and '\\' (0x5C) never occur inside multi-byte
                // UTF-8 sequences, so scanning raw bytes is sound, and
                // validating only this chunk keeps parsing linear.
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| "invalid UTF-8 in string")?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#;
        let v = parse(text).unwrap();
        let again = parse(&v.pretty()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{ not json").is_err());
        assert!(parse("").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"unclosed": "#).is_err());
    }

    #[test]
    fn typed_views() {
        let v = parse(r#"{"i": 3, "f": 1.5, "s": "x", "b": true, "a": []}"#).unwrap();
        assert_eq!(v.get("i").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("f").unwrap().as_i64(), None);
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array(), Some(&[][..]));
        assert_eq!(v.as_object().unwrap().len(), 5);
    }

    #[test]
    fn rejects_adversarial_nesting_without_stack_overflow() {
        let deep = "[".repeat(200_000) + &"]".repeat(200_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
    }
}
