//! Seeded random number generation for reproducible simulations.
//!
//! `Prng` embeds its own xoshiro256++ generator (seeded via SplitMix64)
//! instead of delegating to the `rand` crate: simulation traces are part of
//! the recorded experiment outputs (EXPERIMENTS.md), so the stream must be
//! stable across dependency upgrades and platforms. The generator is the
//! public-domain reference algorithm by Blackman & Vigna.

use crate::time::Time;

/// A seeded, cloneable pseudo-random generator with time-domain helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Prng {
        let mut s = seed;
        Prng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let s3n = s3 ^ s1;
        let s1n = s1 ^ s2;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        self.state = [s0n, s1n, s2n, s3n.rotate_left(45)];
        result
    }

    /// Uniform `u64` in `[0, n)` via Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        // Rejection sampling on the widening multiply.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform time in `[0, upper]` (inclusive). Returns zero for a
    /// non-positive upper bound.
    pub fn time_in(&mut self, upper: Time) -> Time {
        if !upper.is_positive() {
            return Time::ZERO;
        }
        Time::new(self.below(upper.ticks() as u64 + 1) as i64)
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` (53-bit resolution).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A fresh independent stream derived from this one.
    pub fn fork(&mut self) -> Prng {
        Prng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::t;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
            assert_eq!(a.time_in(t(1000)), b.time_in(t(1000)));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn bounds_respected() {
        let mut r = Prng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = r.time_in(t(10));
            assert!(v >= t(0) && v <= t(10));
            let i = r.index(3);
            assert!(i < 3);
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
        assert_eq!(r.time_in(t(0)), t(0));
        assert_eq!(r.time_in(t(-5)), t(0));
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Prng::seed_from_u64(123);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[r.below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn fork_is_independent_but_deterministic() {
        let mut a = Prng::seed_from_u64(9);
        let mut b = Prng::seed_from_u64(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..10 {
            assert_eq!(fa.next_u64(), fb.next_u64());
        }
        // Fork and parent produce different streams.
        assert_ne!(a.next_u64(), fa.next_u64());
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        let mut r = Prng::seed_from_u64(1);
        let _ = r.below(0);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = Prng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
