//! Error types shared by all analyses.

use core::fmt;

/// Convenient alias used by every analysis entry point.
pub type AnalysisResult<T> = Result<T, AnalysisError>;

/// Errors surfaced by schedulability analyses.
///
/// Analyses never panic on user input: divergent fixpoints, unschedulable
/// intermediate states that prevent a bound from existing, and arithmetic
/// overflow are all reported through this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A response-time / busy-period fixpoint exceeded its divergence bound
    /// (for a schedulable task the iteration converges at or below the bound;
    /// exceeding it proves unschedulability for bounded tests, and is an
    /// abort condition for unbounded ones).
    DivergentIteration {
        /// Which fixpoint diverged (e.g. `"rta"` or `"busy-period"`).
        what: &'static str,
        /// The bound that was exceeded, in ticks.
        bound: i64,
    },
    /// The iteration performed more steps than the configured hard cap.
    IterationLimit {
        /// Which fixpoint hit the cap.
        what: &'static str,
        /// The cap.
        limit: u64,
    },
    /// Integer overflow in an exact computation.
    Overflow {
        /// Description of the computation site.
        context: &'static str,
    },
    /// The model itself is invalid (delegates to [`ModelError`]).
    Model(ModelError),
    /// Total utilisation is at least 1, so length-based bounds (synchronous
    /// busy period, `tmax`) do not exist.
    UtilizationAtLeastOne,
    /// The analysed index is out of range for the task/stream set.
    IndexOutOfRange {
        /// Requested index.
        index: usize,
        /// Set size.
        len: usize,
    },
    /// The operation requires a non-empty task/stream set.
    EmptySet,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::DivergentIteration { what, bound } => {
                write!(f, "{what} fixpoint exceeded its bound of {bound} ticks")
            }
            AnalysisError::IterationLimit { what, limit } => {
                write!(f, "{what} fixpoint exceeded the iteration cap of {limit}")
            }
            AnalysisError::Overflow { context } => {
                write!(f, "integer overflow during {context}")
            }
            AnalysisError::Model(e) => write!(f, "invalid model: {e}"),
            AnalysisError::UtilizationAtLeastOne => {
                write!(
                    f,
                    "total utilisation is >= 1; busy-period bounds do not exist"
                )
            }
            AnalysisError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for set of size {len}")
            }
            AnalysisError::EmptySet => write!(f, "operation requires a non-empty set"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<ModelError> for AnalysisError {
    fn from(e: ModelError) -> Self {
        AnalysisError::Model(e)
    }
}

/// Validation errors for task and message-stream models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Execution / transmission time must be strictly positive.
    NonPositiveCost {
        /// Offending value in ticks.
        value: i64,
    },
    /// Period / minimum inter-arrival time must be strictly positive.
    NonPositivePeriod {
        /// Offending value in ticks.
        value: i64,
    },
    /// Relative deadline must be strictly positive.
    NonPositiveDeadline {
        /// Offending value in ticks.
        value: i64,
    },
    /// Release jitter must be non-negative.
    NegativeJitter {
        /// Offending value in ticks.
        value: i64,
    },
    /// Cost exceeds deadline: the task can never meet it even alone.
    CostExceedsDeadline {
        /// Cost in ticks.
        cost: i64,
        /// Deadline in ticks.
        deadline: i64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonPositiveCost { value } => {
                write!(f, "cost must be > 0 (got {value})")
            }
            ModelError::NonPositivePeriod { value } => {
                write!(f, "period must be > 0 (got {value})")
            }
            ModelError::NonPositiveDeadline { value } => {
                write!(f, "deadline must be > 0 (got {value})")
            }
            ModelError::NegativeJitter { value } => {
                write!(f, "jitter must be >= 0 (got {value})")
            }
            ModelError::CostExceedsDeadline { cost, deadline } => {
                write!(f, "cost {cost} exceeds deadline {deadline}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = AnalysisError::DivergentIteration {
            what: "rta",
            bound: 100,
        };
        assert!(e.to_string().contains("rta"));
        assert!(e.to_string().contains("100"));

        let m = ModelError::CostExceedsDeadline {
            cost: 10,
            deadline: 5,
        };
        assert!(m.to_string().contains("10"));
        let wrapped: AnalysisError = m.into();
        assert!(wrapped.to_string().contains("invalid model"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&AnalysisError::EmptySet);
        takes_err(&ModelError::NegativeJitter { value: -1 });
    }
}
