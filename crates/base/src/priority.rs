//! Fixed-priority levels.
//!
//! Convention used throughout the workspace: **numerically smaller value =
//! higher priority** (priority 0 is the most urgent). This matches the usual
//! presentation of rate/deadline-monotonic orderings where tasks are sorted
//! by period/deadline and indexed from the most urgent.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A fixed priority level; smaller is more urgent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Priority(pub u32);

impl Priority {
    /// The most urgent priority.
    pub const HIGHEST: Priority = Priority(0);

    /// Returns `true` if `self` is strictly more urgent than `other`.
    #[inline]
    pub fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }

    /// Returns `true` if `self` is strictly less urgent than `other`.
    #[inline]
    pub fn is_lower_than(self, other: Priority) -> bool {
        self.0 > other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_value_is_higher_priority() {
        assert!(Priority(0).is_higher_than(Priority(1)));
        assert!(Priority(2).is_lower_than(Priority(1)));
        assert!(!Priority(1).is_higher_than(Priority(1)));
        assert_eq!(Priority::HIGHEST, Priority(0));
    }

    #[test]
    fn display() {
        assert_eq!(Priority(4).to_string(), "P4");
    }
}
