//! Integer math utilities: exact ceiling/floor division, gcd/lcm, and the
//! exact rational type [`Frac`] used for utilisation tests.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::error::AnalysisError;

/// `⌈n / d⌉` for signed `n` and strictly positive `d`.
///
/// # Panics
/// Panics if `d <= 0`.
#[inline]
pub fn ceil_div(n: i64, d: i64) -> i64 {
    assert!(d > 0, "ceil_div requires a strictly positive divisor");
    n.div_euclid(d) + i64::from(n.rem_euclid(d) != 0)
}

/// `⌊n / d⌋` for signed `n` and strictly positive `d`.
///
/// # Panics
/// Panics if `d <= 0`.
#[inline]
pub fn floor_div(n: i64, d: i64) -> i64 {
    assert!(d > 0, "floor_div requires a strictly positive divisor");
    n.div_euclid(d)
}

/// Greatest common divisor (non-negative result; `gcd(0, 0) == 0`).
pub fn gcd(mut a: i64, mut b: i64) -> i64 {
    a = a.saturating_abs();
    b = b.saturating_abs();
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple, or an [`AnalysisError::Overflow`] if it exceeds
/// `i64` (hyperperiods of random period sets overflow routinely; callers must
/// handle this).
pub fn lcm(a: i64, b: i64) -> Result<i64, AnalysisError> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let g = gcd(a, b);
    (a / g)
        .checked_mul(b)
        .map(i64::abs)
        .ok_or(AnalysisError::Overflow { context: "lcm" })
}

/// An exact rational number over `i128`, always stored normalised
/// (`den > 0`, `gcd(|num|, den) == 1`).
///
/// Used for utilisation arithmetic: `Σ Ci/Ti < n(2^{1/n}−1)` style bounds are
/// evaluated without floating point wherever algebraically possible, and the
/// comparison `Σ Ci/Ti < 1` (EDF, eq. (3) precondition) is always exact.
///
/// **Range note.** Sums keep the denominator at the lcm of the operands'
/// denominators. With the workspace's conventional inputs (periods on a
/// common granularity — the workload generators round to 100-tick
/// multiples) the lcm stays far below `i128` range; summing dozens of
/// fractions with large *pairwise-coprime* denominators can overflow,
/// which panics in debug builds. Keep set sizes or the period granularity
/// sensible (as the generators do) when using `Frac` directly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frac {
    num: i128,
    den: i128,
}

impl Frac {
    /// Exact zero.
    pub const ZERO: Frac = Frac { num: 0, den: 1 };
    /// Exact one.
    pub const ONE: Frac = Frac { num: 1, den: 1 };

    /// Creates `num/den`, normalising sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Frac {
        assert!(den != 0, "Frac denominator must be non-zero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd128(num.unsigned_abs(), den.unsigned_abs()) as i128;
        Frac {
            num: sign * num / g,
            den: den.abs() / g,
        }
    }

    /// Creates the integer fraction `n/1`.
    pub const fn from_int(n: i128) -> Frac {
        Frac { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub const fn num(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub const fn den(self) -> i128 {
        self.den
    }

    /// Exact comparison against another fraction.
    pub fn cmp_frac(self, other: Frac) -> Ordering {
        // num/den vs num'/den'  <=>  num*den' vs num'*den   (dens positive)
        (self.num * other.den).cmp(&(other.num * self.den))
    }

    /// `true` iff `self < 1` exactly.
    pub fn lt_one(self) -> bool {
        self.num < self.den
    }

    /// `true` iff `self <= 1` exactly.
    pub fn le_one(self) -> bool {
        self.num <= self.den
    }

    /// Lossy conversion for reporting only (never used in decisions).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

fn gcd128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 && b == 0 {
        return 1;
    }
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    if a == 0 {
        1
    } else {
        a
    }
}

impl Add for Frac {
    type Output = Frac;
    fn add(self, rhs: Frac) -> Frac {
        Frac::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Frac {
    type Output = Frac;
    fn sub(self, rhs: Frac) -> Frac {
        Frac::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Frac {
    type Output = Frac;
    fn mul(self, rhs: Frac) -> Frac {
        Frac::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Sum for Frac {
    fn sum<I: Iterator<Item = Frac>>(iter: I) -> Frac {
        iter.fold(Frac::ZERO, Add::add)
    }
}

impl PartialOrd for Frac {
    fn partial_cmp(&self, other: &Frac) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Frac {
    fn cmp(&self, other: &Frac) -> Ordering {
        self.cmp_frac(*other)
    }
}

impl fmt::Debug for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_matches_mathematical_ceiling() {
        assert_eq!(ceil_div(0, 3), 0);
        assert_eq!(ceil_div(1, 3), 1);
        assert_eq!(ceil_div(3, 3), 1);
        assert_eq!(ceil_div(4, 3), 2);
        assert_eq!(ceil_div(-1, 3), 0);
        assert_eq!(ceil_div(-3, 3), -1);
        assert_eq!(ceil_div(-4, 3), -1);
    }

    #[test]
    fn floor_div_matches_mathematical_floor() {
        assert_eq!(floor_div(0, 3), 0);
        assert_eq!(floor_div(2, 3), 0);
        assert_eq!(floor_div(3, 3), 1);
        assert_eq!(floor_div(-1, 3), -1);
        assert_eq!(floor_div(-3, 3), -1);
        assert_eq!(floor_div(-4, 3), -2);
    }

    #[test]
    #[should_panic(expected = "strictly positive divisor")]
    fn ceil_div_rejects_zero_divisor() {
        let _ = ceil_div(1, 0);
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(lcm(4, 6).unwrap(), 12);
        assert_eq!(lcm(0, 6).unwrap(), 0);
        assert_eq!(lcm(7, 13).unwrap(), 91);
    }

    #[test]
    fn lcm_overflow_is_reported() {
        assert!(lcm(i64::MAX, i64::MAX - 1).is_err());
    }

    #[test]
    fn frac_normalisation() {
        let f = Frac::new(4, 8);
        assert_eq!(f.num(), 1);
        assert_eq!(f.den(), 2);
        let g = Frac::new(3, -6);
        assert_eq!(g.num(), -1);
        assert_eq!(g.den(), 2);
        assert_eq!(Frac::new(0, 7), Frac::ZERO);
    }

    #[test]
    fn frac_arithmetic_and_order() {
        let a = Frac::new(1, 3);
        let b = Frac::new(1, 6);
        assert_eq!(a + b, Frac::new(1, 2));
        assert_eq!(a - b, Frac::new(1, 6));
        assert_eq!(a * b, Frac::new(1, 18));
        assert!(b < a);
        assert!(a < Frac::ONE);
        assert!(a.lt_one());
        assert!(Frac::ONE.le_one());
        assert!(!Frac::ONE.lt_one());
        assert!(!Frac::new(7, 6).le_one());
    }

    #[test]
    fn frac_sum_is_exact() {
        // 1/3 + 1/3 + 1/3 == 1 exactly (would not hold in f64 chains).
        let u: Frac = (0..3).map(|_| Frac::new(1, 3)).sum();
        assert_eq!(u, Frac::ONE);
    }

    #[test]
    fn frac_display() {
        assert_eq!(format!("{}", Frac::new(1, 2)), "1/2");
        assert_eq!(format!("{}", Frac::from_int(3)), "3");
    }
}
