//! Lazy release generation for the streaming simulation kernel.
//!
//! The simulators used to pre-materialize every request release over the
//! whole horizon into sorted `Vec`s, so memory grew with
//! `horizon × sources`. This module provides the lazy counterpart: a
//! [`ReleaseGen`] yields `(ready, item)` pairs **on demand** in
//! nondecreasing `ready` order, so a simulation holds only O(sources)
//! state at any horizon.
//!
//! * [`PeriodicReleases`] — one periodic source (first release at
//!   `offset`, then every `period` until `horizon`), with optional release
//!   jitter injection ([`JitterMode`]). Jitter can reorder raw arrivals
//!   (`J > T`); an internal look-ahead buffer of at most `⌈J/T⌉ + 1`
//!   entries re-establishes sorted emission, which keeps per-source memory
//!   a constant independent of the horizon.
//! * [`MergedReleases`] — a deterministic k-way merge of several
//!   generators: items pop ordered by `(ready, source index)`, with each
//!   source's internal order preserved. This reproduces exactly the order
//!   a stable sort over source-major materialized vectors would produce,
//!   which is what makes the streaming simulators byte-identical to the
//!   materialized reference.
//!
//! The enums [`OffsetMode`] and [`JitterMode`] describe how first releases
//! are placed and how per-request jitter is drawn; they live here (rather
//! than in the simulator crate) so workload-level generator constructors
//! can be built without depending on the simulators.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::rng::Prng;
use crate::time::Time;

/// How first releases are placed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum OffsetMode {
    /// All sources release synchronously at time zero.
    #[default]
    Synchronous,
    /// Uniformly random first offsets in `[0, T)` per source (seeded).
    Random,
}

/// How per-release jitter is injected (releases become *ready* at
/// `arrival + jitter`, with `jitter ∈ [0, J]`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum JitterMode {
    /// No jitter (all releases ready at arrival).
    #[default]
    None,
    /// Adversarial: the first release of each source is maximally late
    /// (`+J`), subsequent ones on time — the pattern that realises the
    /// back-to-back interference the analyses charge for.
    FirstLate,
    /// Uniformly random in `[0, J]` per release (seeded).
    Random,
}

/// A lazy source of timed releases, emitted in nondecreasing `ready`
/// order.
///
/// Implementations must be *exhaustive iterators*: once `next_release`
/// returns `None` it keeps returning `None`.
pub trait ReleaseGen {
    /// The payload attached to each release.
    type Item;

    /// Ready time of the next release without consuming it.
    ///
    /// Takes `&self` — the same shape as [`MergedReleases::peek_ready`] —
    /// so callers can probe "when is the next release?" on any generator,
    /// single source or merge, without mutable access (the idle fast-
    /// forward computes skip bounds from exactly this probe). In exchange,
    /// implementations must keep their look-ahead *primed*: generate
    /// enough at construction and after each `next_release` that peeking
    /// is a pure read.
    fn peek_ready(&self) -> Option<Time>;

    /// Consumes and returns the next `(ready, item)` release.
    fn next_release(&mut self) -> Option<(Time, Self::Item)>;

    /// Number of releases currently buffered inside the generator (the
    /// look-ahead needed to emit in sorted order). Used by the kernel's
    /// memory instrumentation; O(1) for jitter-free sources.
    fn buffered(&self) -> usize {
        0
    }
}

/// One periodic release source: arrivals at `offset, offset + T, …`
/// strictly before `horizon`, each made ready at `arrival + jitter`.
///
/// Yields the zero-based arrival index as its item so wrappers can attach
/// their own payloads.
#[derive(Clone, Debug)]
pub struct PeriodicReleases {
    next_arrival: Time,
    period: Time,
    horizon: Time,
    jitter: Time,
    mode: JitterMode,
    rng: Option<Prng>,
    next_index: u64,
    /// Look-ahead buffer ordered by `(ready, arrival index)`.
    buffer: BinaryHeap<Reverse<(Time, u64)>>,
}

impl PeriodicReleases {
    /// A jitter-free periodic source.
    ///
    /// # Panics
    /// Panics on a non-positive period (the source would never advance).
    pub fn new(offset: Time, period: Time, horizon: Time) -> PeriodicReleases {
        PeriodicReleases::with_jitter(offset, period, horizon, Time::ZERO, JitterMode::None, None)
    }

    /// A periodic source with jitter injection.
    ///
    /// `rng` is consulted only for [`JitterMode::Random`] with a positive
    /// `jitter` bound; it may be `None` otherwise.
    ///
    /// # Panics
    /// Panics on a non-positive period, a negative jitter bound, or a
    /// missing RNG when random jitter is requested.
    pub fn with_jitter(
        offset: Time,
        period: Time,
        horizon: Time,
        jitter: Time,
        mode: JitterMode,
        rng: Option<Prng>,
    ) -> PeriodicReleases {
        assert!(period.is_positive(), "release period must be positive");
        assert!(!jitter.is_negative(), "jitter bound must be non-negative");
        assert!(
            !(mode == JitterMode::Random && jitter.is_positive() && rng.is_none()),
            "random jitter requires a seeded RNG"
        );
        let mut gen = PeriodicReleases {
            next_arrival: offset,
            period,
            horizon,
            jitter,
            mode,
            rng,
            next_index: 0,
            buffer: BinaryHeap::new(),
        };
        // Prime the look-ahead so `peek_ready` is a pure read (the
        // `ReleaseGen::peek_ready` contract). Jitter draws stay in
        // arrival-index order, so the per-source RNG stream is unchanged —
        // draws just happen at construction instead of first peek.
        gen.fill();
        gen
    }

    /// Draws the jitter for arrival `index` (consuming RNG state for
    /// random mode only).
    fn draw_jitter(&mut self, index: u64) -> Time {
        match self.mode {
            JitterMode::None => Time::ZERO,
            JitterMode::FirstLate => {
                if index == 0 {
                    self.jitter
                } else {
                    Time::ZERO
                }
            }
            JitterMode::Random => match &mut self.rng {
                Some(rng) => rng.time_in(self.jitter),
                None => Time::ZERO,
            },
        }
    }

    /// Generates raw arrivals into the buffer until the earliest buffered
    /// ready time is safe to emit: every future arrival `a` satisfies
    /// `ready(a) >= a >= next_arrival`, so once `next_arrival` reaches the
    /// buffer minimum no earlier release can appear.
    fn fill(&mut self) {
        loop {
            if self.next_arrival >= self.horizon {
                return;
            }
            if let Some(&Reverse((ready, _))) = self.buffer.peek() {
                if self.next_arrival >= ready {
                    return;
                }
            }
            let index = self.next_index;
            let jitter = self.draw_jitter(index);
            let ready = self.next_arrival + jitter;
            self.buffer.push(Reverse((ready, index)));
            self.next_index += 1;
            self.next_arrival += self.period;
        }
    }
}

impl ReleaseGen for PeriodicReleases {
    type Item = u64;

    fn peek_ready(&self) -> Option<Time> {
        // The buffer is primed at construction and after every pop, so
        // its minimum is always the true next ready time.
        self.buffer.peek().map(|&Reverse((ready, _))| ready)
    }

    fn next_release(&mut self) -> Option<(Time, u64)> {
        let popped = self
            .buffer
            .pop()
            .map(|Reverse((ready, index))| (ready, index));
        self.fill(); // re-prime the look-ahead for the next peek
        popped
    }

    fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

/// A deterministic k-way merge of release generators.
///
/// Pops globally ordered by `(ready, source index)` — one head per
/// source, so the `(ready, source)` heap key is unique and totally
/// ordered. Each source's own emission order is preserved. Memory is
/// O(sources) plus whatever the sources buffer internally.
#[derive(Debug)]
pub struct MergedReleases<G: ReleaseGen> {
    sources: Vec<G>,
    heads: Vec<Option<(Time, G::Item)>>,
    order: BinaryHeap<Reverse<(Time, usize)>>,
}

impl<G: ReleaseGen> MergedReleases<G> {
    /// Merges `sources` (source index = position in the vector).
    pub fn new(sources: Vec<G>) -> MergedReleases<G> {
        let mut merged = MergedReleases {
            heads: sources.iter().map(|_| None).collect(),
            sources,
            order: BinaryHeap::new(),
        };
        for i in 0..merged.sources.len() {
            merged.refill(i);
        }
        merged
    }

    /// Pulls the next release of source `i` into its head slot.
    fn refill(&mut self, i: usize) {
        debug_assert!(self.heads[i].is_none());
        if let Some((ready, item)) = self.sources[i].next_release() {
            self.order.push(Reverse((ready, i)));
            self.heads[i] = Some((ready, item));
        }
    }

    /// Ready time of the next release across all sources.
    pub fn peek_ready(&self) -> Option<Time> {
        self.order.peek().map(|&Reverse((ready, _))| ready)
    }

    /// Consumes and returns the next `(ready, item)` release.
    pub fn next_release(&mut self) -> Option<(Time, G::Item)> {
        let Reverse((ready, i)) = self.order.pop()?;
        let (_, item) = self.heads[i].take().expect("head present for popped slot");
        self.refill(i);
        Some((ready, item))
    }

    /// Total releases buffered across the merge: one head per live source
    /// plus the sources' internal look-ahead buffers. This is the number
    /// the long-horizon memory contract bounds by O(sources).
    pub fn buffered(&self) -> usize {
        self.order.len() + self.sources.iter().map(|s| s.buffered()).sum::<usize>()
    }

    /// Drains the remaining releases into a vector (the materialized
    /// view; used by the reference simulators and tests).
    pub fn drain_to_vec(&mut self) -> Vec<(Time, G::Item)> {
        let mut out = Vec::new();
        while let Some(r) = self.next_release() {
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::t;

    fn drain(mut g: impl ReleaseGen<Item = u64>) -> Vec<(Time, u64)> {
        let mut out = Vec::new();
        while let Some(r) = g.next_release() {
            let peeked = out.len(); // peek consistency checked below
            let _ = peeked;
            out.push(r);
        }
        out
    }

    #[test]
    fn periodic_without_jitter() {
        let g = PeriodicReleases::new(t(5), t(10), t(40));
        assert_eq!(
            drain(g),
            vec![(t(5), 0), (t(15), 1), (t(25), 2), (t(35), 3)]
        );
    }

    #[test]
    fn horizon_excludes_boundary_arrival() {
        let g = PeriodicReleases::new(t(0), t(10), t(30));
        // Arrivals strictly before the horizon: 0, 10, 20.
        assert_eq!(drain(g).len(), 3);
    }

    #[test]
    fn first_late_jitter_delays_only_first() {
        let g =
            PeriodicReleases::with_jitter(t(0), t(10), t(40), t(3), JitterMode::FirstLate, None);
        assert_eq!(
            drain(g),
            vec![(t(3), 0), (t(10), 1), (t(20), 2), (t(30), 3)]
        );
    }

    #[test]
    fn random_jitter_emits_sorted_even_when_j_exceeds_t() {
        // J = 50 over T = 10: raw ready times invert; emission must not.
        let rng = Prng::seed_from_u64(7);
        let g = PeriodicReleases::with_jitter(
            t(0),
            t(10),
            t(500),
            t(50),
            JitterMode::Random,
            Some(rng),
        );
        let out = drain(g);
        assert_eq!(out.len(), 50);
        for w in out.windows(2) {
            assert!(w[0].0 <= w[1].0, "out of order: {w:?}");
        }
        // Equal ready times keep arrival order.
        for w in out.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1);
            }
        }
    }

    #[test]
    fn random_jitter_matches_eager_stable_sort() {
        // The lazy emission must equal materialize-then-stable-sort.
        let mk = || {
            PeriodicReleases::with_jitter(
                t(2),
                t(7),
                t(300),
                t(20),
                JitterMode::Random,
                Some(Prng::seed_from_u64(99)),
            )
        };
        let lazy = drain(mk());
        let mut eager: Vec<(Time, u64)> = Vec::new();
        let mut rng = Prng::seed_from_u64(99);
        let mut arrival = t(2);
        let mut idx = 0u64;
        while arrival < t(300) {
            eager.push((arrival + rng.time_in(t(20)), idx));
            arrival += t(7);
            idx += 1;
        }
        eager.sort_by_key(|&(ready, _)| ready); // stable: ties keep arrival order
        assert_eq!(lazy, eager);
    }

    #[test]
    fn buffer_stays_bounded_by_jitter_over_period() {
        let rng = Prng::seed_from_u64(3);
        let mut g = PeriodicReleases::with_jitter(
            t(0),
            t(10),
            t(100_000),
            t(45),
            JitterMode::Random,
            Some(rng),
        );
        let mut peak = 0usize;
        while g.next_release().is_some() {
            peak = peak.max(g.buffered());
        }
        // ⌈J/T⌉ + 1 = 6 plus the re-primed slot the `peek_ready`
        // invariant keeps filled after each pop, plus one of slack.
        assert!(peak <= 8, "peak buffer {peak} not O(J/T)");
    }

    #[test]
    fn peek_agrees_with_next() {
        let mut g = PeriodicReleases::new(t(1), t(4), t(20));
        while let Some(ready) = g.peek_ready() {
            let (r, _) = g.next_release().unwrap();
            assert_eq!(r, ready);
        }
        assert!(g.next_release().is_none());
        assert!(g.next_release().is_none(), "stays exhausted");
    }

    #[test]
    fn merge_orders_by_ready_then_source() {
        let a = PeriodicReleases::new(t(0), t(10), t(30)); // 0, 10, 20
        let b = PeriodicReleases::new(t(0), t(5), t(21)); // 0, 5, 10, 15, 20
        let mut m = MergedReleases::new(vec![a, b]);
        let order: Vec<(i64, usize)> = std::iter::from_fn(|| m.next_release())
            .map(|(ready, _)| (ready.ticks(), 0))
            .collect();
        let readys: Vec<i64> = order.iter().map(|&(r, _)| r).collect();
        assert_eq!(readys, vec![0, 0, 5, 10, 10, 15, 20, 20]);
    }

    /// Test adaptor attaching the source identity to every release.
    struct Tagged {
        source: usize,
        inner: PeriodicReleases,
    }

    impl ReleaseGen for Tagged {
        type Item = (usize, u64);

        fn peek_ready(&self) -> Option<Time> {
            self.inner.peek_ready()
        }

        fn next_release(&mut self) -> Option<(Time, (usize, u64))> {
            self.inner
                .next_release()
                .map(|(ready, idx)| (ready, (self.source, idx)))
        }

        fn buffered(&self) -> usize {
            self.inner.buffered()
        }
    }

    #[test]
    fn merge_tie_break_prefers_lower_source_index() {
        let mk = |source| Tagged {
            source,
            inner: PeriodicReleases::new(t(0), t(10), t(30)),
        };
        let mut m = MergedReleases::new(vec![mk(0), mk(1)]);
        let order: Vec<(Time, usize)> = std::iter::from_fn(|| m.next_release())
            .map(|(ready, (source, _))| (ready, source))
            .collect();
        assert_eq!(
            order,
            vec![
                (t(0), 0),
                (t(0), 1),
                (t(10), 0),
                (t(10), 1),
                (t(20), 0),
                (t(20), 1),
            ]
        );
    }

    #[test]
    fn merge_matches_materialized_stable_sort() {
        // Source-major materialization + stable sort by ready must equal
        // the merged stream (the byte-identity argument the simulators
        // rely on): the stable sort keeps ties in push order, which is
        // (source, arrival) — exactly the merge's (ready, source) order.
        let mk = |source: usize, seed: u64, offset: i64, period: i64| Tagged {
            source,
            inner: PeriodicReleases::with_jitter(
                t(offset),
                t(period),
                t(2_000),
                t(30),
                JitterMode::Random,
                Some(Prng::seed_from_u64(seed)),
            ),
        };
        let mut merged =
            MergedReleases::new(vec![mk(0, 1, 0, 13), mk(1, 2, 4, 7), mk(2, 3, 9, 25)]);
        let lazy = merged.drain_to_vec();

        let mut eager: Vec<(Time, (usize, u64))> = Vec::new();
        for mut g in [mk(0, 1, 0, 13), mk(1, 2, 4, 7), mk(2, 3, 9, 25)] {
            while let Some(r) = g.next_release() {
                eager.push(r);
            }
        }
        eager.sort_by_key(|&(ready, _)| ready); // stable
        assert_eq!(lazy, eager);
    }

    #[test]
    fn merge_buffered_counts_heads_and_lookahead() {
        let a = PeriodicReleases::new(t(0), t(10), t(100));
        let b = PeriodicReleases::new(t(0), t(10), t(100));
        let m = MergedReleases::new(vec![a, b]);
        // One head each, plus the one-slot look-ahead each source keeps
        // primed for `peek_ready`.
        assert_eq!(m.buffered(), 4);
    }

    #[test]
    fn drain_to_vec_empties_the_merge() {
        let a = PeriodicReleases::new(t(0), t(10), t(50));
        let mut m = MergedReleases::new(vec![a]);
        assert_eq!(m.drain_to_vec().len(), 5);
        assert!(m.next_release().is_none());
        assert_eq!(m.buffered(), 0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = PeriodicReleases::new(t(0), t(0), t(100));
    }

    #[test]
    #[should_panic(expected = "requires a seeded RNG")]
    fn random_jitter_without_rng_panics() {
        let _ = PeriodicReleases::with_jitter(t(0), t(10), t(100), t(5), JitterMode::Random, None);
    }
}
