//! Lightweight identifier newtypes.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Index of a task within a [`crate::TaskSet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// Index of a message stream within a [`crate::StreamSet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct StreamId(pub usize);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// PROFIBUS station address (0..=126 per DIN 19245; 127 is broadcast).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MasterAddr(pub u8);

impl MasterAddr {
    /// Highest valid point-to-point station address.
    pub const MAX_ADDRESS: u8 = 126;
    /// The broadcast address.
    pub const BROADCAST: MasterAddr = MasterAddr(127);

    /// Whether this address is valid for an addressable station.
    pub fn is_valid_station(self) -> bool {
        self.0 <= Self::MAX_ADDRESS
    }
}

impl fmt::Display for MasterAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TaskId(3).to_string(), "τ3");
        assert_eq!(StreamId(2).to_string(), "S2");
        assert_eq!(MasterAddr(5).to_string(), "M5");
    }

    #[test]
    fn address_validity() {
        assert!(MasterAddr(0).is_valid_station());
        assert!(MasterAddr(126).is_valid_station());
        assert!(!MasterAddr::BROADCAST.is_valid_station());
    }

    #[test]
    fn ids_are_ordered() {
        assert!(TaskId(1) < TaskId(2));
        assert!(StreamId(0) < StreamId(1));
        assert!(MasterAddr(3) < MasterAddr(4));
    }
}
