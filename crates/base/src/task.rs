//! The single-processor task model of the paper's §2.
//!
//! A task `τi` is characterised by its worst-case execution time `Ci`, its
//! relative deadline `Di` and its period (or minimum inter-arrival time for
//! sporadic tasks) `Ti`. The §4.1 extension adds a release jitter `Ji`: a
//! job that "arrives" at `a` may only become *ready* up to `Ji` later.

use serde::{Deserialize, Serialize};

use crate::error::{AnalysisError, AnalysisResult, ModelError};
use crate::num::{lcm, Frac};
use crate::time::Time;

/// A periodic or sporadic task: `(Ci, Di, Ti, Ji)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Task {
    /// Worst-case execution time `Ci` (ticks, > 0).
    pub c: Time,
    /// Relative deadline `Di` (ticks, > 0).
    pub d: Time,
    /// Period / minimum inter-arrival time `Ti` (ticks, > 0).
    pub t: Time,
    /// Release jitter `Ji` (ticks, >= 0). Zero in the classical model.
    pub j: Time,
}

impl Task {
    /// Creates a validated task with implicit deadline `Di = Ti` and no
    /// jitter.
    pub fn implicit(c: impl Into<Time>, t: impl Into<Time>) -> AnalysisResult<Task> {
        let t = t.into();
        Task::new(c, t, t)
    }

    /// Creates a validated task `(C, D, T)` with no jitter.
    pub fn new(c: impl Into<Time>, d: impl Into<Time>, t: impl Into<Time>) -> AnalysisResult<Task> {
        Task::with_jitter(c, d, t, Time::ZERO)
    }

    /// Creates a validated task `(C, D, T, J)`.
    pub fn with_jitter(
        c: impl Into<Time>,
        d: impl Into<Time>,
        t: impl Into<Time>,
        j: impl Into<Time>,
    ) -> AnalysisResult<Task> {
        let task = Task {
            c: c.into(),
            d: d.into(),
            t: t.into(),
            j: j.into(),
        };
        task.validate()?;
        Ok(task)
    }

    /// Validates the parameter ranges (`C > 0`, `D > 0`, `T > 0`, `J >= 0`,
    /// `C <= D`).
    pub fn validate(&self) -> Result<(), ModelError> {
        if !self.c.is_positive() {
            return Err(ModelError::NonPositiveCost {
                value: self.c.ticks(),
            });
        }
        if !self.t.is_positive() {
            return Err(ModelError::NonPositivePeriod {
                value: self.t.ticks(),
            });
        }
        if !self.d.is_positive() {
            return Err(ModelError::NonPositiveDeadline {
                value: self.d.ticks(),
            });
        }
        if self.j.is_negative() {
            return Err(ModelError::NegativeJitter {
                value: self.j.ticks(),
            });
        }
        if self.c > self.d {
            return Err(ModelError::CostExceedsDeadline {
                cost: self.c.ticks(),
                deadline: self.d.ticks(),
            });
        }
        Ok(())
    }

    /// The exact utilisation `Ci / Ti`.
    pub fn utilization(&self) -> Frac {
        Frac::new(self.c.ticks() as i128, self.t.ticks() as i128)
    }

    /// `true` if `Di == Ti` (implicit deadline).
    pub fn has_implicit_deadline(&self) -> bool {
        self.d == self.t
    }

    /// `true` if `Di <= Ti` (constrained deadline).
    pub fn has_constrained_deadline(&self) -> bool {
        self.d <= self.t
    }
}

/// An immutable, validated collection of tasks.
///
/// Index order is the identity of the tasks; analyses refer to tasks by
/// index. No priority order is implied — priority assignments are explicit
/// (see `profirt-sched`).
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates a task set, validating every task.
    pub fn new(tasks: Vec<Task>) -> AnalysisResult<TaskSet> {
        for t in &tasks {
            t.validate()?;
        }
        Ok(TaskSet { tasks })
    }

    /// Builds a set from `(C, D, T)` triples — the common test-fixture form.
    pub fn from_cdt(triples: &[(i64, i64, i64)]) -> AnalysisResult<TaskSet> {
        let tasks = triples
            .iter()
            .map(|&(c, d, t)| Task::new(c, d, t))
            .collect::<AnalysisResult<Vec<_>>>()?;
        TaskSet::new(tasks)
    }

    /// Builds an implicit-deadline set from `(C, T)` pairs.
    pub fn from_ct(pairs: &[(i64, i64)]) -> AnalysisResult<TaskSet> {
        let tasks = pairs
            .iter()
            .map(|&(c, t)| Task::implicit(c, t))
            .collect::<AnalysisResult<Vec<_>>>()?;
        TaskSet::new(tasks)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the set has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Immutable view of the tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The task at `index`, or a typed error.
    pub fn get(&self, index: usize) -> AnalysisResult<&Task> {
        self.tasks.get(index).ok_or(AnalysisError::IndexOutOfRange {
            index,
            len: self.tasks.len(),
        })
    }

    /// Iterator over `(index, &Task)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Task)> {
        self.tasks.iter().enumerate()
    }

    /// Exact total utilisation `Σ Ci/Ti`.
    pub fn total_utilization(&self) -> Frac {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Sum of all execution times `Σ Ci`.
    pub fn total_cost(&self) -> Time {
        self.tasks.iter().map(|t| t.c).sum()
    }

    /// The largest execution time, or `None` for an empty set.
    pub fn max_cost(&self) -> Option<Time> {
        self.tasks.iter().map(|t| t.c).max()
    }

    /// The smallest relative deadline, or `None` for an empty set.
    pub fn min_deadline(&self) -> Option<Time> {
        self.tasks.iter().map(|t| t.d).min()
    }

    /// The largest relative deadline, or `None` for an empty set.
    pub fn max_deadline(&self) -> Option<Time> {
        self.tasks.iter().map(|t| t.d).max()
    }

    /// The hyperperiod `lcm(T1, …, Tn)`, or an overflow error (random period
    /// sets overflow easily; length-bounded analyses avoid relying on it).
    pub fn hyperperiod(&self) -> AnalysisResult<Time> {
        let mut h: i64 = 1;
        for task in &self.tasks {
            h = lcm(h, task.t.ticks())?;
        }
        Ok(Time::new(h))
    }

    /// `true` if every task has `Di == Ti`.
    pub fn all_implicit_deadlines(&self) -> bool {
        self.tasks.iter().all(Task::has_implicit_deadline)
    }

    /// `true` if every task has `Di <= Ti`.
    pub fn all_constrained_deadlines(&self) -> bool {
        self.tasks.iter().all(Task::has_constrained_deadline)
    }

    /// Indices sorted by ascending period (rate-monotonic order; ties by
    /// index for determinism).
    pub fn indices_by_period(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.tasks.len()).collect();
        idx.sort_by_key(|&i| (self.tasks[i].t, i));
        idx
    }

    /// Indices sorted by ascending relative deadline (deadline-monotonic
    /// order; ties by index for determinism).
    pub fn indices_by_deadline(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.tasks.len()).collect();
        idx.sort_by_key(|&i| (self.tasks[i].d, i));
        idx
    }
}

impl From<TaskSet> for Vec<Task> {
    fn from(set: TaskSet) -> Vec<Task> {
        set.tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::t;

    #[test]
    fn valid_task_construction() {
        let task = Task::new(2, 7, 10).unwrap();
        assert_eq!(task.c, t(2));
        assert_eq!(task.d, t(7));
        assert_eq!(task.t, t(10));
        assert_eq!(task.j, t(0));
        assert!(task.has_constrained_deadline());
        assert!(!task.has_implicit_deadline());

        let imp = Task::implicit(2, 10).unwrap();
        assert!(imp.has_implicit_deadline());
    }

    #[test]
    fn invalid_tasks_are_rejected() {
        assert!(Task::new(0, 5, 5).is_err());
        assert!(Task::new(-1, 5, 5).is_err());
        assert!(Task::new(1, 0, 5).is_err());
        assert!(Task::new(1, 5, 0).is_err());
        assert!(Task::new(6, 5, 5).is_err()); // C > D
        assert!(Task::with_jitter(1, 5, 5, -1).is_err());
        assert!(Task::with_jitter(1, 5, 5, 2).is_ok());
    }

    #[test]
    fn utilization_is_exact() {
        let task = Task::implicit(1, 3).unwrap();
        assert_eq!(task.utilization(), Frac::new(1, 3));
        let set = TaskSet::from_ct(&[(1, 3), (1, 3), (1, 3)]).unwrap();
        assert_eq!(set.total_utilization(), Frac::ONE);
    }

    #[test]
    fn set_accessors() {
        let set = TaskSet::from_cdt(&[(1, 4, 5), (2, 9, 10), (3, 20, 20)]).unwrap();
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert_eq!(set.total_cost(), t(6));
        assert_eq!(set.max_cost(), Some(t(3)));
        assert_eq!(set.min_deadline(), Some(t(4)));
        assert_eq!(set.max_deadline(), Some(t(20)));
        assert!(set.get(2).is_ok());
        assert!(matches!(
            set.get(3),
            Err(AnalysisError::IndexOutOfRange { index: 3, len: 3 })
        ));
    }

    #[test]
    fn hyperperiod_and_orders() {
        let set = TaskSet::from_ct(&[(1, 4), (1, 6), (1, 10)]).unwrap();
        assert_eq!(set.hyperperiod().unwrap(), t(60));
        assert_eq!(set.indices_by_period(), vec![0, 1, 2]);

        let set2 = TaskSet::from_cdt(&[(1, 9, 10), (1, 3, 12), (1, 5, 8)]).unwrap();
        assert_eq!(set2.indices_by_deadline(), vec![1, 2, 0]);
        assert_eq!(set2.indices_by_period(), vec![2, 0, 1]);
    }

    #[test]
    fn deadline_classes() {
        let implicit = TaskSet::from_ct(&[(1, 5), (2, 8)]).unwrap();
        assert!(implicit.all_implicit_deadlines());
        assert!(implicit.all_constrained_deadlines());

        let constrained = TaskSet::from_cdt(&[(1, 4, 5)]).unwrap();
        assert!(!constrained.all_implicit_deadlines());
        assert!(constrained.all_constrained_deadlines());

        let arbitrary = TaskSet::from_cdt(&[(1, 9, 5)]).unwrap();
        assert!(!arbitrary.all_constrained_deadlines());
    }

    #[test]
    fn empty_set_edge_cases() {
        let set = TaskSet::new(vec![]).unwrap();
        assert!(set.is_empty());
        assert_eq!(set.total_utilization(), Frac::ZERO);
        assert_eq!(set.max_cost(), None);
        assert_eq!(set.hyperperiod().unwrap(), t(1));
    }
}
