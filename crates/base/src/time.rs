//! Exact integer time.
//!
//! [`Time`] wraps a signed 64-bit *tick* count. Every schedulability
//! computation in the workspace (response-time fixpoints, demand bounds,
//! busy periods, token-cycle bounds) is carried out on `Time` values, so the
//! results are exact and platform-independent.
//!
//! The unit of a tick is chosen by the caller. The PROFIBUS crates map one
//! tick to one **bit time** (the duration of a single bit on the bus,
//! `1/baud` seconds), which makes all DIN 19245 protocol overheads integers.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::error::AnalysisError;

/// A signed, exact time value measured in abstract ticks.
///
/// `Time` is `Copy`, totally ordered and supports exact arithmetic. The
/// arithmetic operators panic on overflow in debug builds (like primitive
/// integers); analyses that may legitimately overflow use the `checked_*`
/// methods and surface [`AnalysisError::Overflow`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Time(i64);

impl Time {
    /// The zero time.
    pub const ZERO: Time = Time(0);
    /// One tick.
    pub const ONE: Time = Time(1);
    /// The largest representable time.
    pub const MAX: Time = Time(i64::MAX);
    /// The smallest representable time.
    pub const MIN: Time = Time(i64::MIN);

    /// Creates a time from a raw tick count.
    #[inline]
    pub const fn new(ticks: i64) -> Self {
        Time(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> i64 {
        self.0
    }

    /// Returns `true` if this time is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if this time is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Returns `true` if this time is strictly negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Checked subtraction; `None` on overflow.
    #[inline]
    pub fn checked_sub(self, rhs: Time) -> Option<Time> {
        self.0.checked_sub(rhs.0).map(Time)
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    #[inline]
    pub fn checked_mul(self, k: i64) -> Option<Time> {
        self.0.checked_mul(k).map(Time)
    }

    /// Addition that surfaces overflow as a typed analysis error.
    #[inline]
    pub fn try_add(self, rhs: Time) -> Result<Time, AnalysisError> {
        self.checked_add(rhs).ok_or(AnalysisError::Overflow {
            context: "time addition",
        })
    }

    /// Multiplication that surfaces overflow as a typed analysis error.
    #[inline]
    pub fn try_mul(self, k: i64) -> Result<Time, AnalysisError> {
        self.checked_mul(k).ok_or(AnalysisError::Overflow {
            context: "time multiplication",
        })
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// `⌈self / d⌉` for a strictly positive divisor `d`.
    ///
    /// This is the ceiling used by every response-time recurrence (e.g. the
    /// interference term `⌈w/Tj⌉·Cj` of Joseph & Pandya). Exact for negative
    /// numerators as well: `(-1).ceil_div(4) == 0`.
    ///
    /// # Panics
    /// Panics if `d` is not strictly positive.
    #[inline]
    pub fn ceil_div(self, d: Time) -> i64 {
        crate::num::ceil_div(self.0, d.0)
    }

    /// `⌊self / d⌋` for a strictly positive divisor `d`.
    ///
    /// Exact for negative numerators: `(-1).floor_div(4) == -1`.
    ///
    /// # Panics
    /// Panics if `d` is not strictly positive.
    #[inline]
    pub fn floor_div(self, d: Time) -> i64 {
        crate::num::floor_div(self.0, d.0)
    }

    /// `max(⌈self / d⌉, 0)` — the `⌈x⌉⁺` operator of the paper's eq. (3),
    /// where `⌈x⌉⁺ = 0` if `x < 0`.
    #[inline]
    pub fn ceil_div_pos(self, d: Time) -> i64 {
        self.ceil_div(d).max(0)
    }

    /// `max(⌊self / d⌋ + 1, 0)` — the standard demand-bound job count
    /// `(⌊(t−D)/T⌋ + 1)⁺` of Baruah et al.
    #[inline]
    pub fn floor_div_plus_one_pos(self, d: Time) -> i64 {
        (self.floor_div(d) + 1).max(0)
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Absolute value (saturating at `Time::MAX`).
    #[inline]
    pub fn abs(self) -> Time {
        Time(self.0.saturating_abs())
    }

    /// Clamps a possibly negative value to zero.
    #[inline]
    pub fn max_zero(self) -> Time {
        Time(self.0.max(0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: i64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for i64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<Time> for Time {
    /// Truncating division of two times (a pure ratio).
    type Output = i64;
    #[inline]
    fn div(self, rhs: Time) -> i64 {
        self.0 / rhs.0
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Time> for Time {
    fn sum<I: Iterator<Item = &'a Time>>(iter: I) -> Time {
        iter.copied().sum()
    }
}

impl From<i64> for Time {
    #[inline]
    fn from(v: i64) -> Time {
        Time(v)
    }
}

impl From<u32> for Time {
    #[inline]
    fn from(v: u32) -> Time {
        Time(v as i64)
    }
}

impl From<i32> for Time {
    #[inline]
    fn from(v: i32) -> Time {
        Time(v as i64)
    }
}

/// Shorthand constructor used pervasively in tests and examples.
#[inline]
pub const fn t(ticks: i64) -> Time {
    Time::new(ticks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        assert_eq!(t(3) + t(4), t(7));
        assert_eq!(t(3) - t(4), t(-1));
        assert_eq!(t(3) * 4, t(12));
        assert_eq!(4 * t(3), t(12));
        assert_eq!(-t(3), t(-3));
        let mut x = t(1);
        x += t(2);
        x -= t(1);
        assert_eq!(x, t(2));
    }

    #[test]
    fn ceil_and_floor_division() {
        assert_eq!(t(7).ceil_div(t(2)), 4);
        assert_eq!(t(8).ceil_div(t(2)), 4);
        assert_eq!(t(0).ceil_div(t(5)), 0);
        assert_eq!(t(-1).ceil_div(t(4)), 0);
        assert_eq!(t(-5).ceil_div(t(4)), -1);

        assert_eq!(t(7).floor_div(t(2)), 3);
        assert_eq!(t(-1).floor_div(t(4)), -1);
        assert_eq!(t(-4).floor_div(t(4)), -1);
        assert_eq!(t(-5).floor_div(t(4)), -2);
    }

    #[test]
    fn positive_part_operators() {
        // The ⌈x⌉⁺ of the paper's eq. (3).
        assert_eq!(t(-3).ceil_div_pos(t(4)), 0);
        assert_eq!(t(1).ceil_div_pos(t(4)), 1);
        // The standard DBF job count (⌊x⌋+1)⁺.
        assert_eq!(t(0).floor_div_plus_one_pos(t(4)), 1);
        assert_eq!(t(-1).floor_div_plus_one_pos(t(4)), 0);
        assert_eq!(t(4).floor_div_plus_one_pos(t(4)), 2);
    }

    #[test]
    fn checked_operations_detect_overflow() {
        assert_eq!(Time::MAX.checked_add(t(1)), None);
        assert_eq!(Time::MIN.checked_sub(t(1)), None);
        assert_eq!(Time::MAX.checked_mul(2), None);
        assert!(Time::MAX.try_add(t(1)).is_err());
        assert!(Time::MAX.try_mul(2).is_err());
        assert_eq!(t(2).try_mul(3).unwrap(), t(6));
    }

    #[test]
    fn saturating_operations() {
        assert_eq!(Time::MAX.saturating_add(t(1)), Time::MAX);
        assert_eq!(Time::MIN.saturating_sub(t(1)), Time::MIN);
    }

    #[test]
    fn ordering_and_helpers() {
        assert!(t(1) < t(2));
        assert_eq!(t(-5).max_zero(), Time::ZERO);
        assert_eq!(t(5).max_zero(), t(5));
        assert_eq!(t(-5).abs(), t(5));
        assert_eq!(t(3).max(t(9)), t(9));
        assert_eq!(t(3).min(t(9)), t(3));
        assert!(t(1).is_positive());
        assert!(t(-1).is_negative());
        assert!(t(0).is_zero());
    }

    #[test]
    fn sum_of_times() {
        let xs = [t(1), t(2), t(3)];
        let s: Time = xs.iter().sum();
        assert_eq!(s, t(6));
        let s2: Time = xs.into_iter().sum();
        assert_eq!(s2, t(6));
    }

    #[test]
    fn division_and_remainder() {
        assert_eq!(t(7) / t(2), 3);
        assert_eq!(t(7) % t(2), t(1));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", t(42)), "42");
        assert_eq!(format!("{:?}", t(42)), "42t");
    }
}
