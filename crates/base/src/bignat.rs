//! A minimal arbitrary-precision natural number.
//!
//! Only what exact schedulability boundary tests need: construction from
//! `u128`, multiplication, exponentiation and comparison. Used to decide the
//! Liu & Layland bound `U ≤ n(2^{1/n} − 1)` exactly via the equivalent
//! integer comparison `(n·q + p)^n ≤ 2·(n·q)^n` for `U = p/q`, where `f64`
//! would misclassify sets sitting exactly on the bound.
//!
//! Representation: little-endian base-2³² limbs stored in `u32`s (products
//! fit `u64` during schoolbook multiplication), no sign, normalised (no
//! trailing zero limbs).

use core::cmp::Ordering;

/// An arbitrary-precision natural number (unsigned).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BigNat {
    /// Little-endian base-2³² limbs; empty means zero; no trailing zeros.
    limbs: Vec<u32>,
}

impl BigNat {
    /// Zero.
    pub fn zero() -> BigNat {
        BigNat { limbs: Vec::new() }
    }

    /// Builds from a `u128`.
    pub fn from_u128(mut v: u128) -> BigNat {
        let mut limbs = Vec::new();
        while v != 0 {
            limbs.push((v & 0xFFFF_FFFF) as u32);
            v >>= 32;
        }
        BigNat { limbs }
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigNat) -> BigNat {
        if self.is_zero() || other.is_zero() {
            return BigNat::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + (a as u64) * (b as u64) + carry;
                out[i + j] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut r = BigNat { limbs: out };
        r.normalize();
        r
    }

    /// Exponentiation by squaring. `0^0 == 1` by convention.
    pub fn pow(&self, mut exp: u32) -> BigNat {
        let mut base = self.clone();
        let mut acc = BigNat::from_u128(1);
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Multiplies by a small scalar.
    pub fn mul_u32(&self, k: u32) -> BigNat {
        self.mul(&BigNat::from_u128(k as u128))
    }

    /// Total-order comparison.
    pub fn cmp_nat(&self, other: &BigNat) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                Ordering::Equal
            }
            other => other,
        }
    }
}

impl PartialOrd for BigNat {
    fn partial_cmp(&self, other: &BigNat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigNat {
    fn cmp(&self, other: &BigNat) -> Ordering {
        self.cmp_nat(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_zero() {
        assert!(BigNat::zero().is_zero());
        assert!(BigNat::from_u128(0).is_zero());
        assert!(!BigNat::from_u128(1).is_zero());
    }

    #[test]
    fn multiplication_matches_u128() {
        let cases: [(u128, u128); 6] = [
            (0, 5),
            (1, 1),
            (u64::MAX as u128, 2),
            (123_456_789, 987_654_321),
            (u64::MAX as u128, u64::MAX as u128),
            (1 << 100, 1 << 20),
        ];
        for (a, b) in cases {
            if let Some(p) = a.checked_mul(b) {
                assert_eq!(
                    BigNat::from_u128(a).mul(&BigNat::from_u128(b)),
                    BigNat::from_u128(p),
                    "{a} * {b}"
                );
            }
        }
    }

    #[test]
    fn multiplication_beyond_u128() {
        // (2^100)^2 = 2^200: check via structure (cannot fit u128).
        let x = BigNat::from_u128(1 << 100);
        let sq = x.mul(&x);
        // 2^200 has exactly 201 bits -> 7 limbs of 32 bits (6*32=192 < 201 <= 224).
        assert_eq!(sq.limbs.len(), 7);
        assert_eq!(sq.limbs[6], 1 << (200 - 6 * 32));
        assert!(sq.limbs[..6].iter().all(|&l| l == 0));
    }

    #[test]
    fn pow_matches_u128() {
        assert_eq!(BigNat::from_u128(3).pow(0), BigNat::from_u128(1));
        assert_eq!(BigNat::from_u128(3).pow(5), BigNat::from_u128(243));
        assert_eq!(BigNat::from_u128(2).pow(127), BigNat::from_u128(1 << 127));
        assert_eq!(BigNat::zero().pow(0), BigNat::from_u128(1));
        assert_eq!(BigNat::zero().pow(3), BigNat::zero());
    }

    #[test]
    fn comparison() {
        let a = BigNat::from_u128(10).pow(30);
        let b = BigNat::from_u128(10).pow(31);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp_nat(&a), Ordering::Equal);
        assert!(BigNat::zero() < BigNat::from_u128(1));
    }

    #[test]
    fn mul_u32_scalar() {
        assert_eq!(
            BigNat::from_u128(1 << 120).mul_u32(2),
            BigNat::from_u128(1 << 121)
        );
    }
}
