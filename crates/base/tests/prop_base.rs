//! Property-based tests for the foundational types.

use proptest::prelude::*;

use profirt_base::bignat::BigNat;
use profirt_base::{ceil_div, floor_div, gcd, lcm, Frac, Time};

proptest! {
    #[test]
    fn ceil_div_is_mathematical_ceiling(n in -1_000_000i64..1_000_000, d in 1i64..10_000) {
        let q = ceil_div(n, d);
        // q is the least integer with q*d >= n.
        prop_assert!(q * d >= n);
        prop_assert!((q - 1) * d < n);
    }

    #[test]
    fn floor_div_is_mathematical_floor(n in -1_000_000i64..1_000_000, d in 1i64..10_000) {
        let q = floor_div(n, d);
        prop_assert!(q * d <= n);
        prop_assert!((q + 1) * d > n);
    }

    #[test]
    fn ceil_minus_floor_at_most_one(n in -1_000_000i64..1_000_000, d in 1i64..10_000) {
        let diff = ceil_div(n, d) - floor_div(n, d);
        prop_assert!(diff == 0 || diff == 1);
        prop_assert_eq!(diff == 0, n % d == 0);
    }

    #[test]
    fn gcd_divides_both(a in 0i64..1_000_000, b in 0i64..1_000_000) {
        let g = gcd(a, b);
        if g != 0 {
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        } else {
            prop_assert_eq!((a, b), (0, 0));
        }
    }

    #[test]
    fn lcm_gcd_product_identity(a in 1i64..100_000, b in 1i64..100_000) {
        let g = gcd(a, b);
        let l = lcm(a, b).unwrap();
        prop_assert_eq!(g * l, a * b);
    }

    #[test]
    fn frac_addition_matches_integers(
        p1 in -1_000i128..1_000, q1 in 1i128..1_000,
        p2 in -1_000i128..1_000, q2 in 1i128..1_000,
    ) {
        let sum = Frac::new(p1, q1) + Frac::new(p2, q2);
        // p1/q1 + p2/q2 == (p1 q2 + p2 q1) / (q1 q2), exactly.
        prop_assert_eq!(sum, Frac::new(p1 * q2 + p2 * q1, q1 * q2));
    }

    #[test]
    fn frac_ordering_matches_cross_multiplication(
        p1 in -1_000i128..1_000, q1 in 1i128..1_000,
        p2 in -1_000i128..1_000, q2 in 1i128..1_000,
    ) {
        let a = Frac::new(p1, q1);
        let b = Frac::new(p2, q2);
        prop_assert_eq!(a < b, p1 * q2 < p2 * q1);
    }

    #[test]
    fn time_saturating_ops_never_wrap(a in any::<i64>(), b in any::<i64>()) {
        let x = Time::new(a);
        let y = Time::new(b);
        let s = x.saturating_add(y);
        prop_assert!(s >= Time::MIN && s <= Time::MAX);
        let d = x.saturating_sub(y);
        prop_assert!(d >= Time::MIN && d <= Time::MAX);
    }

    #[test]
    fn time_positive_part_ops(n in -100_000i64..100_000, d in 1i64..1_000) {
        let t = Time::new(n);
        let dt = Time::new(d);
        prop_assert!(t.ceil_div_pos(dt) >= 0);
        prop_assert!(t.floor_div_plus_one_pos(dt) >= 0);
        // The standard DBF count is >= the paper's ceiling count.
        prop_assert!(t.floor_div_plus_one_pos(dt) >= t.ceil_div_pos(dt));
        // And exceeds it by at most one job.
        prop_assert!(t.floor_div_plus_one_pos(dt) - t.ceil_div_pos(dt) <= 1);
    }

    #[test]
    fn bignat_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = BigNat::from_u128(a as u128).mul(&BigNat::from_u128(b as u128));
        prop_assert_eq!(prod, BigNat::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn bignat_mul_commutative_and_ordered(a in any::<u128>(), b in any::<u128>()) {
        let x = BigNat::from_u128(a);
        let y = BigNat::from_u128(b);
        prop_assert_eq!(x.mul(&y), y.mul(&x));
        prop_assert_eq!(x < y, a < b);
    }

    #[test]
    fn bignat_pow_adds_exponents(base in 1u128..1_000, e1 in 0u32..6, e2 in 0u32..6) {
        let b = BigNat::from_u128(base);
        prop_assert_eq!(b.pow(e1).mul(&b.pow(e2)), b.pow(e1 + e2));
    }
}
