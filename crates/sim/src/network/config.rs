//! Simulation inputs.

use profirt_base::{MasterAddr, StreamSet, Time};
use profirt_profibus::{LowPriorityTraffic, QueuePolicy};
use serde::{Deserialize, Serialize};

// The placement/jitter modes are defined next to the lazy release
// generators in `profirt_base::release` (the workload-level generator
// constructors need them without depending on this crate); re-exported
// here under their historical simulator names.
pub use profirt_base::release::{JitterMode as JitterInjection, OffsetMode};

/// One simulated master.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimMaster {
    /// High-priority streams (periods, deadlines, cycle times, jitters).
    pub streams: StreamSet,
    /// AP-queue dispatching policy.
    pub policy: QueuePolicy,
    /// Communication-stack queue capacity (1 = the §4 architecture;
    /// `usize::MAX` = stock).
    pub stack_capacity: usize,
    /// Low-priority background traffic sources.
    pub low_priority: Vec<LowPriorityTraffic>,
    /// FDL station address, used for the address-staggered token-recovery
    /// timeout. `None` (the default) means "ring index", which preserves
    /// the convention that the first master in the ring claims lost
    /// tokens.
    pub addr: Option<MasterAddr>,
}

impl SimMaster {
    /// Stock FCFS master.
    pub fn stock(streams: StreamSet) -> SimMaster {
        SimMaster {
            streams,
            policy: QueuePolicy::Fcfs,
            stack_capacity: usize::MAX,
            low_priority: Vec::new(),
            addr: None,
        }
    }

    /// §4-architecture master with the given AP policy.
    pub fn priority_queued(streams: StreamSet, policy: QueuePolicy) -> SimMaster {
        SimMaster {
            streams,
            policy,
            stack_capacity: 1,
            low_priority: Vec::new(),
            addr: None,
        }
    }

    /// Adds low-priority background traffic (builder style).
    pub fn with_low_priority(mut self, lp: LowPriorityTraffic) -> SimMaster {
        self.low_priority.push(lp);
        self
    }

    /// Sets an explicit FDL station address (builder style).
    pub fn with_addr(mut self, addr: MasterAddr) -> SimMaster {
        self.addr = Some(addr);
        self
    }

    /// The effective FDL address: the explicit one, or the ring index.
    pub fn addr_or_ring(&self, ring_index: usize) -> MasterAddr {
        self.addr.unwrap_or(MasterAddr(
            ring_index.min(MasterAddr::MAX_ADDRESS as usize) as u8
        ))
    }
}

/// The simulated network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimNetwork {
    /// Masters in logical-ring order.
    pub masters: Vec<SimMaster>,
    /// Target token rotation time `TTR`.
    pub ttr: Time,
    /// Token pass duration (SD4 frame + idle time); must be positive so
    /// simulated time always advances.
    pub token_pass: Time,
}

/// Simulation run parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetworkSimConfig {
    /// Simulated horizon (ticks of bus time).
    pub horizon: Time,
    /// RNG seed (offsets, jitter, fault injection).
    pub seed: u64,
    /// First-release placement.
    pub offsets: OffsetMode,
    /// Jitter injection mode.
    pub jitter: JitterInjection,
    /// Fault injection: probability that any given token pass is lost
    /// (the frame corrupted / not accepted). A lost token is recovered via
    /// the address-staggered claim timeout (`TTO = (6 + 2·addr)·TSL`, see
    /// [`profirt_profibus::fdl`]); the lowest-address master (ring index 0)
    /// wins the claim and re-originates the token. `0.0` disables losses.
    pub token_loss_prob: f64,
    /// Fault injection: per-execution undershoot of message-cycle
    /// durations. Each executed cycle takes a uniform duration in
    /// `[⌈(1 − v)·Ch⌉, Ch]` — the worst case `Ch` is an upper bound, as in
    /// reality (fewer retries, faster turnaround). `0.0` = always worst
    /// case.
    pub cycle_undershoot: f64,
    /// Slot time `TSL` used for the token-recovery timeout.
    pub slot_time: Time,
}

impl Default for NetworkSimConfig {
    fn default() -> Self {
        NetworkSimConfig {
            horizon: Time::new(1_000_000),
            seed: 0xC0FFEE,
            offsets: OffsetMode::Synchronous,
            jitter: JitterInjection::None,
            token_loss_prob: 0.0,
            cycle_undershoot: 0.0,
            slot_time: Time::new(200),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    #[test]
    fn builders() {
        let streams = StreamSet::from_cdt(&[(100, 5_000, 10_000)]).unwrap();
        let stock = SimMaster::stock(streams.clone());
        assert_eq!(stock.policy, QueuePolicy::Fcfs);
        assert_eq!(stock.stack_capacity, usize::MAX);

        let pq = SimMaster::priority_queued(streams, QueuePolicy::Edf)
            .with_low_priority(LowPriorityTraffic::new(t(200), t(50_000)));
        assert_eq!(pq.stack_capacity, 1);
        assert_eq!(pq.low_priority.len(), 1);
    }

    #[test]
    fn addresses_default_to_ring_index() {
        use profirt_base::MasterAddr;
        let streams = StreamSet::new(vec![]).unwrap();
        let m = SimMaster::stock(streams.clone());
        assert_eq!(m.addr_or_ring(0), MasterAddr(0));
        assert_eq!(m.addr_or_ring(3), MasterAddr(3));
        let m = SimMaster::stock(streams).with_addr(MasterAddr(42));
        assert_eq!(m.addr_or_ring(3), MasterAddr(42));
    }

    #[test]
    fn default_config() {
        let c = NetworkSimConfig::default();
        assert_eq!(c.offsets, OffsetMode::Synchronous);
        assert_eq!(c.jitter, JitterInjection::None);
        assert!(c.horizon.is_positive());
    }
}
