//! Simulation inputs.

use profirt_base::{MasterAddr, StreamSet, Time};
use profirt_profibus::{LowPriorityTraffic, QueuePolicy};
use serde::{Deserialize, Serialize};

// The placement/jitter modes are defined next to the lazy release
// generators in `profirt_base::release` (the workload-level generator
// constructors need them without depending on this crate); re-exported
// here under their historical simulator names.
pub use profirt_base::release::{JitterMode as JitterInjection, OffsetMode};

pub use crate::network::membership::{MembershipAction, MembershipPlan};
pub use crate::network::mode::ModeSimConfig;
use profirt_base::Criticality;

/// One simulated master.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimMaster {
    /// High-priority streams (periods, deadlines, cycle times, jitters).
    pub streams: StreamSet,
    /// AP-queue dispatching policy.
    pub policy: QueuePolicy,
    /// Communication-stack queue capacity (1 = the §4 architecture;
    /// `usize::MAX` = stock).
    pub stack_capacity: usize,
    /// Low-priority background traffic sources.
    pub low_priority: Vec<LowPriorityTraffic>,
    /// FDL station address, used for the address-staggered token-recovery
    /// timeout and the logical-ring order under dynamic membership.
    /// `None` (the default) means "ring index", which preserves the
    /// convention that the first master in the ring claims lost tokens.
    pub addr: Option<MasterAddr>,
    /// Per-stream criticality, parallel to `streams`. Empty (the default)
    /// means every stream is HI; the vector only matters when the run's
    /// [`ModeSimConfig`] is enabled — sub-HI releases are shed at
    /// admission while the mode controller is degraded.
    pub criticality: Vec<Criticality>,
}

impl SimMaster {
    /// Stock FCFS master.
    pub fn stock(streams: StreamSet) -> SimMaster {
        SimMaster {
            streams,
            policy: QueuePolicy::Fcfs,
            stack_capacity: usize::MAX,
            low_priority: Vec::new(),
            addr: None,
            criticality: Vec::new(),
        }
    }

    /// §4-architecture master with the given AP policy.
    pub fn priority_queued(streams: StreamSet, policy: QueuePolicy) -> SimMaster {
        SimMaster {
            streams,
            policy,
            stack_capacity: 1,
            low_priority: Vec::new(),
            addr: None,
            criticality: Vec::new(),
        }
    }

    /// Adds low-priority background traffic (builder style).
    pub fn with_low_priority(mut self, lp: LowPriorityTraffic) -> SimMaster {
        self.low_priority.push(lp);
        self
    }

    /// Sets an explicit FDL station address (builder style).
    pub fn with_addr(mut self, addr: MasterAddr) -> SimMaster {
        self.addr = Some(addr);
        self
    }

    /// Sets per-stream criticalities (builder style); the vector must be
    /// parallel to `streams` (or empty for all-HI).
    pub fn with_criticality(mut self, criticality: Vec<Criticality>) -> SimMaster {
        self.criticality = criticality;
        self
    }

    /// The criticality of stream `i` (HI when unspecified).
    pub fn criticality_of(&self, i: usize) -> Criticality {
        self.criticality.get(i).copied().unwrap_or(Criticality::Hi)
    }

    /// The effective FDL address: the explicit one, or the ring index.
    ///
    /// # Panics
    /// Panics when the default addressing runs out of address space
    /// (ring index above [`MasterAddr::MAX_ADDRESS`]); silently clamping
    /// used to alias two masters onto one FDL address. Networks are
    /// checked up front by [`SimNetwork::validate`], so simulations report
    /// the structured [`SimNetworkError`] first.
    pub fn addr_or_ring(&self, ring_index: usize) -> MasterAddr {
        self.addr.unwrap_or_else(|| {
            assert!(
                ring_index <= MasterAddr::MAX_ADDRESS as usize,
                "ring index {ring_index} exceeds the FDL address space \
                 (0..={}); assign explicit addresses",
                MasterAddr::MAX_ADDRESS
            );
            MasterAddr(ring_index as u8)
        })
    }
}

/// What is wrong with a [`SimNetwork`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimNetworkError {
    /// The master list is empty.
    NoMasters,
    /// The token pass time is zero or negative (time could stall).
    NonPositiveTokenPass,
    /// A master's FDL address is outside `0..=126` (or its ring index is,
    /// under default addressing).
    InvalidAddress {
        /// Ring index of the offending master.
        master: usize,
    },
    /// Two masters resolve to the same FDL address.
    DuplicateAddress {
        /// The shared address.
        addr: MasterAddr,
        /// Ring index of the first holder.
        first: usize,
        /// Ring index of the second holder.
        second: usize,
    },
}

impl std::fmt::Display for SimNetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SimNetworkError::NoMasters => write!(f, "network needs at least one master"),
            SimNetworkError::NonPositiveTokenPass => {
                write!(f, "token pass time must be positive")
            }
            SimNetworkError::InvalidAddress { master } => write!(
                f,
                "master {master} has no valid FDL address (stations are 0..={})",
                MasterAddr::MAX_ADDRESS
            ),
            SimNetworkError::DuplicateAddress {
                addr,
                first,
                second,
            } => write!(f, "masters {first} and {second} alias FDL address {addr}"),
        }
    }
}

impl std::error::Error for SimNetworkError {}

/// The simulated network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimNetwork {
    /// Masters in logical-ring order.
    pub masters: Vec<SimMaster>,
    /// Target token rotation time `TTR`.
    pub ttr: Time,
    /// Token pass duration (SD4 frame + idle time); must be positive so
    /// simulated time always advances.
    pub token_pass: Time,
}

impl SimNetwork {
    /// Builds a validated network: at least one master, a positive token
    /// pass time, and per-master FDL addresses that are unique and in
    /// range (explicit or ring-index defaulted).
    pub fn new(
        masters: Vec<SimMaster>,
        ttr: Time,
        token_pass: Time,
    ) -> Result<SimNetwork, SimNetworkError> {
        let net = SimNetwork {
            masters,
            ttr,
            token_pass,
        };
        net.validate()?;
        Ok(net)
    }

    /// Validates the network (see [`SimNetwork::new`]); the simulators run
    /// this before touching any state, so address aliasing is an error up
    /// front instead of a silently-merged claim timeout.
    pub fn validate(&self) -> Result<(), SimNetworkError> {
        if self.masters.is_empty() {
            return Err(SimNetworkError::NoMasters);
        }
        if !self.token_pass.is_positive() {
            return Err(SimNetworkError::NonPositiveTokenPass);
        }
        let mut addrs: Vec<MasterAddr> = Vec::with_capacity(self.masters.len());
        for (k, m) in self.masters.iter().enumerate() {
            let explicit_ok = m.addr.is_none_or(|a| a.is_valid_station());
            let default_ok = m.addr.is_some() || k <= MasterAddr::MAX_ADDRESS as usize;
            if !explicit_ok || !default_ok {
                return Err(SimNetworkError::InvalidAddress { master: k });
            }
            let addr = m.addr_or_ring(k);
            if let Some(first) = addrs.iter().position(|&a| a == addr) {
                return Err(SimNetworkError::DuplicateAddress {
                    addr,
                    first,
                    second: k,
                });
            }
            addrs.push(addr);
        }
        Ok(())
    }

    /// The effective per-master FDL addresses, in ring order. Call
    /// [`SimNetwork::validate`] first — this panics where validation
    /// returns an error.
    pub fn addresses(&self) -> Vec<MasterAddr> {
        self.masters
            .iter()
            .enumerate()
            .map(|(k, m)| m.addr_or_ring(k))
            .collect()
    }
}

/// Simulation run parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetworkSimConfig {
    /// Simulated horizon (ticks of bus time).
    pub horizon: Time,
    /// RNG seed (offsets, jitter, fault injection).
    pub seed: u64,
    /// First-release placement.
    pub offsets: OffsetMode,
    /// Jitter injection mode.
    pub jitter: JitterInjection,
    /// Fault injection: probability that any given token pass is lost
    /// (the frame corrupted / not accepted). A lost token is recovered via
    /// the address-staggered claim timeout (`TTO = (6 + 2·addr)·TSL`, see
    /// [`profirt_profibus::fdl`]); the lowest-address powered master wins
    /// the claim and re-originates the token. `0.0` disables losses.
    pub token_loss_prob: f64,
    /// Fault injection: per-execution undershoot of message-cycle
    /// durations. Each executed cycle takes a uniform duration in
    /// `[⌈(1 − v)·Ch⌉, Ch]` — the worst case `Ch` is an upper bound, as in
    /// reality (fewer retries, faster turnaround). `0.0` = always worst
    /// case.
    pub cycle_undershoot: f64,
    /// Slot time `TSL` used for the token-recovery timeout, GAP-poll
    /// silence windows, and failed-pass detection.
    pub slot_time: Time,
    /// GAP update factor `G`: the token holder transmits one `Request FDL
    /// Status` poll every `G` token visits, consuming real token-holding
    /// time ([`profirt_profibus::gap::poll_time`]). `0` (the default)
    /// disables GAP polling.
    pub gap_factor: u32,
    /// Scripted ring-membership churn. Empty (the default) keeps the ring
    /// static.
    pub membership: MembershipPlan,
    /// Mixed-criticality mode controller (see
    /// [`crate::network::mode::ModeController`]). Disabled by default.
    pub mode: ModeSimConfig,
    /// Enables the idle-span fast-forward (see the module docs of
    /// [`crate::network::kernel`]'s source): runs of idle token rotations
    /// are skipped arithmetically and handed to observers as compressed
    /// [`crate::engine::IdleSpan`]s, with an event stream byte-identical
    /// to the unskipped loop. On by default; the differential tests and
    /// the speedup benchmark disable it to run the per-visit loop as the
    /// reference.
    pub fast_forward: bool,
}

impl NetworkSimConfig {
    /// `true` when this run uses the static logical ring of the paper's
    /// §3.1 — no scripted churn, no GAP polling, and no mode controller
    /// (overload detection needs the dynamic loop's live TRR feed). Static
    /// runs take the fast path whose event stream is byte-identical to the
    /// materialized reference simulator.
    pub fn is_static_ring(&self) -> bool {
        self.gap_factor == 0 && self.membership.is_empty() && !self.mode.enabled
    }
}

impl Default for NetworkSimConfig {
    fn default() -> Self {
        NetworkSimConfig {
            horizon: Time::new(1_000_000),
            seed: 0xC0FFEE,
            offsets: OffsetMode::Synchronous,
            jitter: JitterInjection::None,
            token_loss_prob: 0.0,
            cycle_undershoot: 0.0,
            slot_time: Time::new(200),
            gap_factor: 0,
            membership: MembershipPlan::new(),
            mode: ModeSimConfig::default(),
            fast_forward: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    #[test]
    fn builders() {
        let streams = StreamSet::from_cdt(&[(100, 5_000, 10_000)]).unwrap();
        let stock = SimMaster::stock(streams.clone());
        assert_eq!(stock.policy, QueuePolicy::Fcfs);
        assert_eq!(stock.stack_capacity, usize::MAX);

        let pq = SimMaster::priority_queued(streams, QueuePolicy::Edf)
            .with_low_priority(LowPriorityTraffic::new(t(200), t(50_000)));
        assert_eq!(pq.stack_capacity, 1);
        assert_eq!(pq.low_priority.len(), 1);
    }

    #[test]
    fn addresses_default_to_ring_index() {
        use profirt_base::MasterAddr;
        let streams = StreamSet::new(vec![]).unwrap();
        let m = SimMaster::stock(streams.clone());
        assert_eq!(m.addr_or_ring(0), MasterAddr(0));
        assert_eq!(m.addr_or_ring(3), MasterAddr(3));
        let m = SimMaster::stock(streams).with_addr(MasterAddr(42));
        assert_eq!(m.addr_or_ring(3), MasterAddr(42));
    }

    #[test]
    #[should_panic(expected = "exceeds the FDL address space")]
    fn ring_index_overflow_no_longer_clamps() {
        let streams = StreamSet::new(vec![]).unwrap();
        let _ = SimMaster::stock(streams).addr_or_ring(127);
    }

    #[test]
    fn network_validation_catches_address_problems() {
        let streams = StreamSet::new(vec![]).unwrap();
        let mk = |addr: Option<u8>| {
            let mut m = SimMaster::stock(streams.clone());
            m.addr = addr.map(MasterAddr);
            m
        };
        // Two masters aliasing address 5: an error, not a silent merge.
        let aliased = SimNetwork {
            masters: vec![mk(Some(5)), mk(None), mk(Some(5))],
            ttr: t(1_000),
            token_pass: t(100),
        };
        assert_eq!(
            aliased.validate(),
            Err(SimNetworkError::DuplicateAddress {
                addr: MasterAddr(5),
                first: 0,
                second: 2
            })
        );
        // An explicit address colliding with another master's ring-index
        // default is caught too.
        let mixed = SimNetwork {
            masters: vec![mk(None), mk(Some(0))],
            ttr: t(1_000),
            token_pass: t(100),
        };
        assert!(matches!(
            mixed.validate(),
            Err(SimNetworkError::DuplicateAddress { .. })
        ));
        // Out-of-range explicit address.
        let broadcast = SimNetwork {
            masters: vec![mk(Some(127))],
            ttr: t(1_000),
            token_pass: t(100),
        };
        assert_eq!(
            broadcast.validate(),
            Err(SimNetworkError::InvalidAddress { master: 0 })
        );
        // The checked constructor surfaces the same errors.
        assert!(SimNetwork::new(vec![], t(1_000), t(100)).is_err());
        assert!(SimNetwork::new(vec![mk(None)], t(1_000), t(0)).is_err());
        let ok = SimNetwork::new(vec![mk(None), mk(Some(9))], t(1_000), t(100)).unwrap();
        assert_eq!(ok.addresses(), vec![MasterAddr(0), MasterAddr(9)]);
    }

    #[test]
    fn default_config() {
        let c = NetworkSimConfig::default();
        assert_eq!(c.offsets, OffsetMode::Synchronous);
        assert_eq!(c.jitter, JitterInjection::None);
        assert!(c.horizon.is_positive());
        // The defaults select the static-ring fast path.
        assert_eq!(c.gap_factor, 0);
        assert!(c.membership.is_empty());
        assert!(c.is_static_ring());
        let churned = NetworkSimConfig {
            membership: MembershipPlan::new().power_cycle(1, t(10), t(20)),
            ..Default::default()
        };
        assert!(!churned.is_static_ring());
        let polling = NetworkSimConfig {
            gap_factor: 4,
            ..Default::default()
        };
        assert!(!polling.is_static_ring());
        let moded = NetworkSimConfig {
            mode: ModeSimConfig::enabled(),
            ..Default::default()
        };
        assert!(!moded.is_static_ring());
    }

    #[test]
    fn criticality_defaults_to_hi() {
        let streams = StreamSet::from_cdt(&[(100, 5_000, 10_000), (100, 5_000, 10_000)]).unwrap();
        let m = SimMaster::stock(streams).with_criticality(vec![profirt_base::Criticality::Lo]);
        assert_eq!(m.criticality_of(0), profirt_base::Criticality::Lo);
        assert_eq!(m.criticality_of(1), profirt_base::Criticality::Hi);
    }
}
