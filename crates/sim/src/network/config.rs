//! Simulation inputs.

use profirt_base::{StreamSet, Time};
use profirt_profibus::{LowPriorityTraffic, QueuePolicy};
use serde::{Deserialize, Serialize};

/// One simulated master.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimMaster {
    /// High-priority streams (periods, deadlines, cycle times, jitters).
    pub streams: StreamSet,
    /// AP-queue dispatching policy.
    pub policy: QueuePolicy,
    /// Communication-stack queue capacity (1 = the §4 architecture;
    /// `usize::MAX` = stock).
    pub stack_capacity: usize,
    /// Low-priority background traffic sources.
    pub low_priority: Vec<LowPriorityTraffic>,
}

impl SimMaster {
    /// Stock FCFS master.
    pub fn stock(streams: StreamSet) -> SimMaster {
        SimMaster {
            streams,
            policy: QueuePolicy::Fcfs,
            stack_capacity: usize::MAX,
            low_priority: Vec::new(),
        }
    }

    /// §4-architecture master with the given AP policy.
    pub fn priority_queued(streams: StreamSet, policy: QueuePolicy) -> SimMaster {
        SimMaster {
            streams,
            policy,
            stack_capacity: 1,
            low_priority: Vec::new(),
        }
    }

    /// Adds low-priority background traffic (builder style).
    pub fn with_low_priority(mut self, lp: LowPriorityTraffic) -> SimMaster {
        self.low_priority.push(lp);
        self
    }
}

/// The simulated network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimNetwork {
    /// Masters in logical-ring order.
    pub masters: Vec<SimMaster>,
    /// Target token rotation time `TTR`.
    pub ttr: Time,
    /// Token pass duration (SD4 frame + idle time); must be positive so
    /// simulated time always advances.
    pub token_pass: Time,
}

/// How first releases are placed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum OffsetMode {
    /// All streams release synchronously at time zero.
    #[default]
    Synchronous,
    /// Uniformly random first offsets in `[0, T)` per stream (seeded).
    Random,
}

/// How per-request release jitter is injected (requests become *ready* at
/// `arrival + jitter`, with `jitter ∈ [0, J]`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum JitterInjection {
    /// No jitter (all requests ready at arrival).
    #[default]
    None,
    /// Adversarial: the first request of each stream is maximally late
    /// (`+J`), subsequent ones on time — the pattern that realises the
    /// back-to-back interference the analyses charge for.
    FirstLate,
    /// Uniformly random in `[0, J]` per request (seeded).
    Random,
}

/// Simulation run parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetworkSimConfig {
    /// Simulated horizon (ticks of bus time).
    pub horizon: Time,
    /// RNG seed (offsets, jitter, fault injection).
    pub seed: u64,
    /// First-release placement.
    pub offsets: OffsetMode,
    /// Jitter injection mode.
    pub jitter: JitterInjection,
    /// Fault injection: probability that any given token pass is lost
    /// (the frame corrupted / not accepted). A lost token is recovered via
    /// the address-staggered claim timeout (`TTO = (6 + 2·addr)·TSL`, see
    /// [`profirt_profibus::fdl`]); the lowest-address master (ring index 0)
    /// wins the claim and re-originates the token. `0.0` disables losses.
    pub token_loss_prob: f64,
    /// Fault injection: per-execution undershoot of message-cycle
    /// durations. Each executed cycle takes a uniform duration in
    /// `[⌈(1 − v)·Ch⌉, Ch]` — the worst case `Ch` is an upper bound, as in
    /// reality (fewer retries, faster turnaround). `0.0` = always worst
    /// case.
    pub cycle_undershoot: f64,
    /// Slot time `TSL` used for the token-recovery timeout.
    pub slot_time: Time,
}

impl Default for NetworkSimConfig {
    fn default() -> Self {
        NetworkSimConfig {
            horizon: Time::new(1_000_000),
            seed: 0xC0FFEE,
            offsets: OffsetMode::Synchronous,
            jitter: JitterInjection::None,
            token_loss_prob: 0.0,
            cycle_undershoot: 0.0,
            slot_time: Time::new(200),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    #[test]
    fn builders() {
        let streams = StreamSet::from_cdt(&[(100, 5_000, 10_000)]).unwrap();
        let stock = SimMaster::stock(streams.clone());
        assert_eq!(stock.policy, QueuePolicy::Fcfs);
        assert_eq!(stock.stack_capacity, usize::MAX);

        let pq = SimMaster::priority_queued(streams, QueuePolicy::Edf)
            .with_low_priority(LowPriorityTraffic::new(t(200), t(50_000)));
        assert_eq!(pq.stack_capacity, 1);
        assert_eq!(pq.low_priority.len(), 1);
    }

    #[test]
    fn default_config() {
        let c = NetworkSimConfig::default();
        assert_eq!(c.offsets, OffsetMode::Synchronous);
        assert_eq!(c.jitter, JitterInjection::None);
        assert!(c.horizon.is_positive());
    }
}
