//! Event tracing for the network simulator.
//!
//! A [`Trace`] is a bounded, time-ordered record of bus-level events
//! (token arrivals, message-cycle executions, token passes, recoveries).
//! Traces explain *why* an observation happened — which master held the
//! token when a deadline slipped, where a TTH overrun stretched a rotation
//! — and render as a compact text timeline for docs and debugging.

use profirt_base::{MasterAddr, StreamId, Time};
use serde::{Deserialize, Serialize};

/// One traced bus event.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Token arrived at a master.
    TokenArrival {
        /// Ring index of the master.
        master: usize,
        /// `TTH` loaded at arrival (negative = late token).
        tth: Time,
    },
    /// A high-priority message cycle executed.
    HighCycle {
        /// Ring index of the master.
        master: usize,
        /// Originating stream.
        stream: StreamId,
        /// Transmission start.
        start: Time,
        /// Transmission end.
        end: Time,
    },
    /// A low-priority message cycle executed.
    LowCycle {
        /// Ring index of the master.
        master: usize,
        /// Transmission start.
        start: Time,
        /// Transmission end.
        end: Time,
    },
    /// The token was passed to the successor.
    TokenPass {
        /// Sender ring index.
        from: usize,
        /// Receiver ring index.
        to: usize,
    },
    /// A lost token was recovered by the claim timeout.
    Recovery {
        /// The master that re-originated the token (lowest address).
        claimant: usize,
    },
    /// The token holder polled one GAP address (`Request FDL Status`).
    GapPoll {
        /// Ring index of the polling master.
        master: usize,
        /// The polled FDL address.
        target: MasterAddr,
    },
    /// A master entered the logical ring.
    MasterJoin {
        /// Ring index of the joining master.
        master: usize,
    },
    /// A master was dropped from the logical ring (departure detected).
    MasterLeave {
        /// Ring index of the departed master.
        master: usize,
    },
    /// A powered station claimed a vanished token (membership recovery).
    Claim {
        /// Ring index of the claiming master.
        master: usize,
    },
    /// The mixed-criticality mode controller switched modes.
    ModeSwitch {
        /// `true`: entering HI (degraded) mode; `false`: back to LO.
        degraded: bool,
    },
    /// A sub-HI request was shed at admission (HI mode).
    Shed {
        /// Ring index of the shedding master.
        master: usize,
        /// The shed request's stream.
        stream: StreamId,
    },
    /// The match-up phase completed: LO traffic re-admitted.
    Matchup {
        /// Span from the degradation instant to the completed match-up.
        waited: Time,
    },
}

/// A bounded event trace.
///
/// Recording stops silently once `capacity` events are stored (the bound
/// keeps long simulations cheap); [`Trace::truncated`] reports whether
/// events were dropped.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    capacity: usize,
    events: Vec<(Time, TraceEvent)>,
    dropped: u64,
}

impl Trace {
    /// Creates a trace storing at most `capacity` events.
    pub fn new(capacity: usize) -> Trace {
        Trace {
            capacity,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Records an event at `at`.
    pub fn record(&mut self, at: Time, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push((at, event));
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[(Time, TraceEvent)] {
        &self.events
    }

    /// `true` if the capacity bound dropped events.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    /// Number of dropped events.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders a compact text timeline, one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for &(at, ev) in &self.events {
            let line = match ev {
                TraceEvent::TokenArrival { master, tth } => {
                    format!(
                        "{at:>10}  M{master} ◀ token (TTH = {}{})",
                        tth,
                        if tth.is_positive() { "" } else { " LATE" }
                    )
                }
                TraceEvent::HighCycle {
                    master,
                    stream,
                    start,
                    end,
                } => format!(
                    "{start:>10}  M{master} ▶ high {stream} [{start}..{end}] ({} ticks)",
                    end - start
                ),
                TraceEvent::LowCycle { master, start, end } => format!(
                    "{start:>10}  M{master} ▷ low  [{start}..{end}] ({} ticks)",
                    end - start
                ),
                TraceEvent::TokenPass { from, to } => {
                    format!("{at:>10}  M{from} → M{to} token pass")
                }
                TraceEvent::Recovery { claimant } => {
                    format!("{at:>10}  !! token lost, reclaimed by M{claimant}")
                }
                TraceEvent::GapPoll { master, target } => {
                    format!("{at:>10}  M{master} ? gap poll {target}")
                }
                TraceEvent::MasterJoin { master } => {
                    format!("{at:>10}  ++ M{master} joined the ring")
                }
                TraceEvent::MasterLeave { master } => {
                    format!("{at:>10}  -- M{master} left the ring")
                }
                TraceEvent::Claim { master } => {
                    format!("{at:>10}  !! token claimed by M{master}")
                }
                TraceEvent::ModeSwitch { degraded } => {
                    if degraded {
                        format!("{at:>10}  !! mode switch: HI (shedding sub-HI traffic)")
                    } else {
                        format!("{at:>10}  !! mode switch: LO (all traffic admitted)")
                    }
                }
                TraceEvent::Shed { master, stream } => {
                    format!("{at:>10}  M{master} ×× shed {stream} (HI mode)")
                }
                TraceEvent::Matchup { waited } => {
                    format!("{at:>10}  == match-up complete after {waited} ticks")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        if self.truncated() {
            out.push_str(&format!("… {} further events dropped\n", self.dropped));
        }
        out
    }

    /// The rotation spans of one master: `(arrival, next_arrival)` pairs.
    pub fn rotations(&self, master: usize) -> Vec<(Time, Time)> {
        let arrivals: Vec<Time> = self
            .events
            .iter()
            .filter_map(|&(at, ev)| match ev {
                TraceEvent::TokenArrival { master: m, .. } if m == master => Some(at),
                _ => None,
            })
            .collect();
        arrivals.windows(2).map(|w| (w[0], w[1])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    fn sample() -> Trace {
        let mut tr = Trace::new(16);
        tr.record(
            t(0),
            TraceEvent::TokenArrival {
                master: 0,
                tth: t(1000),
            },
        );
        tr.record(
            t(0),
            TraceEvent::HighCycle {
                master: 0,
                stream: StreamId(2),
                start: t(0),
                end: t(400),
            },
        );
        tr.record(t(400), TraceEvent::TokenPass { from: 0, to: 1 });
        tr.record(
            t(500),
            TraceEvent::TokenArrival {
                master: 1,
                tth: t(-20),
            },
        );
        tr.record(t(900), TraceEvent::Recovery { claimant: 0 });
        tr.record(
            t(2000),
            TraceEvent::TokenArrival {
                master: 0,
                tth: t(100),
            },
        );
        tr
    }

    #[test]
    fn records_in_order() {
        let tr = sample();
        assert_eq!(tr.events().len(), 6);
        assert!(!tr.truncated());
        for w in tr.events().windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn capacity_bound_drops_and_reports() {
        let mut tr = Trace::new(2);
        for i in 0..5 {
            tr.record(t(i), TraceEvent::TokenPass { from: 0, to: 1 });
        }
        assert_eq!(tr.events().len(), 2);
        assert!(tr.truncated());
        assert_eq!(tr.dropped(), 3);
        assert!(tr.render().contains("3 further events dropped"));
    }

    #[test]
    fn render_contains_key_markers() {
        let s = sample().render();
        assert!(s.contains("M0 ◀ token"));
        assert!(s.contains("LATE"));
        assert!(s.contains("high S2"));
        assert!(s.contains("M0 → M1 token pass"));
        assert!(s.contains("reclaimed by M0"));
    }

    #[test]
    fn membership_events_render() {
        let mut tr = Trace::new(8);
        tr.record(
            t(10),
            TraceEvent::GapPoll {
                master: 0,
                target: MasterAddr(3),
            },
        );
        tr.record(t(10), TraceEvent::MasterJoin { master: 2 });
        tr.record(t(40), TraceEvent::MasterLeave { master: 1 });
        tr.record(t(90), TraceEvent::Claim { master: 0 });
        let s = tr.render();
        assert!(s.contains("M0 ? gap poll M3"));
        assert!(s.contains("++ M2 joined the ring"));
        assert!(s.contains("-- M1 left the ring"));
        assert!(s.contains("token claimed by M0"));
    }

    #[test]
    fn mode_events_render() {
        let mut tr = Trace::new(8);
        tr.record(t(10), TraceEvent::ModeSwitch { degraded: true });
        tr.record(
            t(20),
            TraceEvent::Shed {
                master: 1,
                stream: StreamId(3),
            },
        );
        tr.record(t(90), TraceEvent::Matchup { waited: t(80) });
        tr.record(t(90), TraceEvent::ModeSwitch { degraded: false });
        let s = tr.render();
        assert!(s.contains("mode switch: HI"));
        assert!(s.contains("M1 ×× shed S3"));
        assert!(s.contains("match-up complete after 80 ticks"));
        assert!(s.contains("mode switch: LO"));
    }

    #[test]
    fn rotations_extracted_per_master() {
        let tr = sample();
        let rot = tr.rotations(0);
        assert_eq!(rot, vec![(t(0), t(2000))]);
        assert!(tr.rotations(1).is_empty()); // only one arrival at M1
        assert!(tr.rotations(7).is_empty());
    }
}
