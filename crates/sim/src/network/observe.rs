//! Network-simulation events and the built-in observers.
//!
//! The streaming kernel ([`crate::network::kernel`]) emits a [`NetEvent`]
//! stream; everything that used to be hand-threaded through the
//! simulation loop — result assembly, bounded event tracing, response
//! statistics — is an [`Observer`] over that stream. Custom observers
//! compose freely with the built-ins via
//! [`crate::network::simulate_network_observed`].

use profirt_base::Time;
use profirt_profibus::Request;

use crate::engine::observer::{Observer, TickHistogram};
use crate::network::config::SimNetwork;
use crate::network::sim::{NetworkSimResult, StreamObservation};
use crate::network::trace::{Trace, TraceEvent};

/// One bus-level event of the network kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetEvent {
    /// Token arrived at a master (`tth` as loaded at arrival; negative =
    /// late token).
    TokenArrival {
        /// Ring index of the master.
        master: usize,
        /// `TTH = TTR − TRR` at arrival.
        tth: Time,
        /// The real rotation just completed (arrival-to-arrival span);
        /// `None` on the master's first arrival.
        trr: Option<Time>,
    },
    /// A high-priority message cycle executed to completion.
    HighCycle {
        /// Ring index of the executing master.
        master: usize,
        /// The served request (release, deadline, cycle time attached).
        request: Request,
        /// Transmission start.
        start: Time,
        /// Transmission end (completion instant).
        end: Time,
    },
    /// A low-priority message cycle executed to completion.
    LowCycle {
        /// Ring index of the executing master.
        master: usize,
        /// Transmission start.
        start: Time,
        /// Transmission end.
        end: Time,
    },
    /// The token was passed to the successor.
    TokenPass {
        /// Sender ring index.
        from: usize,
        /// Receiver ring index.
        to: usize,
    },
    /// A lost token was recovered by the claim timeout.
    Recovery {
        /// Ring index of the claiming (lowest-address) master.
        claimant: usize,
    },
}

/// Assembles the [`NetworkSimResult`] from the event stream — result
/// computation is itself just an observer, so the kernel has a single
/// output path.
#[derive(Clone, Debug)]
pub struct ResultObserver {
    streams: Vec<Vec<StreamObservation>>,
    max_trr: Vec<Time>,
    visits: Vec<u64>,
    low_completed: Vec<u64>,
    recoveries: u64,
}

impl ResultObserver {
    /// An observer shaped for `net`.
    pub fn new(net: &SimNetwork) -> ResultObserver {
        ResultObserver {
            streams: net
                .masters
                .iter()
                .map(|m| vec![StreamObservation::default(); m.streams.len()])
                .collect(),
            max_trr: vec![Time::ZERO; net.masters.len()],
            visits: vec![0; net.masters.len()],
            low_completed: vec![0; net.masters.len()],
            recoveries: 0,
        }
    }

    /// Finalises into the run result.
    pub fn into_result(self) -> NetworkSimResult {
        NetworkSimResult {
            streams: self.streams,
            max_trr: self.max_trr,
            token_visits: self.visits,
            low_completed: self.low_completed,
            token_recoveries: self.recoveries,
        }
    }
}

impl Observer<NetEvent> for ResultObserver {
    fn observe(&mut self, _at: Time, event: &NetEvent) {
        match *event {
            NetEvent::TokenArrival { master, trr, .. } => {
                self.visits[master] += 1;
                if let Some(trr) = trr {
                    self.max_trr[master] = self.max_trr[master].max(trr);
                }
            }
            NetEvent::HighCycle {
                master,
                ref request,
                end,
                ..
            } => {
                let obs = &mut self.streams[master][request.stream.0];
                obs.max_response = obs.max_response.max(end - request.release);
                obs.completed += 1;
                if end > request.abs_deadline {
                    obs.misses += 1;
                }
            }
            NetEvent::LowCycle { master, .. } => self.low_completed[master] += 1,
            NetEvent::Recovery { .. } => self.recoveries += 1,
            NetEvent::TokenPass { .. } => {}
        }
    }
}

/// Histogram of high-priority response times, pooled over all masters and
/// streams (constant memory at any horizon).
#[derive(Clone, Debug, Default)]
pub struct ResponseStats {
    /// The underlying histogram.
    pub hist: TickHistogram,
}

impl ResponseStats {
    /// An empty observer.
    pub fn new() -> ResponseStats {
        ResponseStats::default()
    }
}

impl Observer<NetEvent> for ResponseStats {
    fn observe(&mut self, _at: Time, event: &NetEvent) {
        if let NetEvent::HighCycle { request, end, .. } = event {
            self.hist.record(*end - request.release);
        }
    }
}

/// Histogram of measured token rotation times, pooled over all masters.
#[derive(Clone, Debug, Default)]
pub struct TrrStats {
    /// The underlying histogram.
    pub hist: TickHistogram,
}

impl TrrStats {
    /// An empty observer.
    pub fn new() -> TrrStats {
        TrrStats::default()
    }
}

impl Observer<NetEvent> for TrrStats {
    fn observe(&mut self, _at: Time, event: &NetEvent) {
        if let NetEvent::TokenArrival { trr: Some(trr), .. } = event {
            self.hist.record(*trr);
        }
    }
}

/// Bounded event tracing as an observer: the former hand-threaded
/// `Option<&mut Trace>` plumbing, now just another pipeline stage.
#[derive(Clone, Debug)]
pub struct TraceObserver {
    /// The recorded trace.
    pub trace: Trace,
}

impl TraceObserver {
    /// Records up to `capacity` events.
    pub fn new(capacity: usize) -> TraceObserver {
        TraceObserver {
            trace: Trace::new(capacity),
        }
    }
}

impl Observer<NetEvent> for TraceObserver {
    fn observe(&mut self, at: Time, event: &NetEvent) {
        let mapped = match *event {
            NetEvent::TokenArrival { master, tth, .. } => TraceEvent::TokenArrival { master, tth },
            NetEvent::HighCycle {
                master,
                ref request,
                start,
                end,
            } => TraceEvent::HighCycle {
                master,
                stream: request.stream,
                start,
                end,
            },
            NetEvent::LowCycle { master, start, end } => {
                TraceEvent::LowCycle { master, start, end }
            }
            NetEvent::TokenPass { from, to } => TraceEvent::TokenPass { from, to },
            NetEvent::Recovery { claimant } => TraceEvent::Recovery { claimant },
        };
        self.trace.record(at, mapped);
    }
}
