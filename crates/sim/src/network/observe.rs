//! Network-simulation events and the built-in observers.
//!
//! The streaming kernel ([`crate::network::kernel`]) emits a [`NetEvent`]
//! stream; everything that used to be hand-threaded through the
//! simulation loop — result assembly, bounded event tracing, response
//! statistics — is an [`Observer`] over that stream. Custom observers
//! compose freely with the built-ins via
//! [`crate::network::simulate_network_observed`].
//!
//! Under dynamic membership the kernel additionally emits ring-lifecycle
//! events — [`NetEvent::GapPoll`], [`NetEvent::MasterJoin`],
//! [`NetEvent::MasterLeave`], [`NetEvent::Claim`] — consumed by
//! [`RingStats`] (ring-size timeline), the per-ring-size rotation
//! histograms of [`TrrStats`], and [`StableResponseObserver`]
//! (stable-phase `observed ≤ analytical` contract checking).
//!
//! With the mixed-criticality mode controller enabled the kernel also
//! emits [`NetEvent::ModeSwitch`], [`NetEvent::Shed`] and
//! [`NetEvent::Matchup`], consumed by [`ModeStats`] (switch/shed/match-up
//! accounting) and by [`StableResponseObserver`] (which then checks HI
//! responses in degraded phases against the HI-projection bound).

use profirt_base::{Criticality, MasterAddr, StreamId, Time};
use profirt_profibus::Request;

use crate::engine::observer::{replay_span, HistSummary, IdleSpan, Observer, TickHistogram};
use crate::network::config::SimNetwork;
use crate::network::sim::{NetworkSimResult, StreamObservation};
use crate::network::trace::{Trace, TraceEvent};

/// One bus-level event of the network kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetEvent {
    /// Token arrived at a master (`tth` as loaded at arrival; negative =
    /// late token).
    TokenArrival {
        /// Ring index of the master.
        master: usize,
        /// `TTH = TTR − TRR` at arrival.
        tth: Time,
        /// The real rotation just completed (arrival-to-arrival span);
        /// `None` on the master's first arrival.
        trr: Option<Time>,
    },
    /// A high-priority message cycle executed to completion.
    HighCycle {
        /// Ring index of the executing master.
        master: usize,
        /// The served request (release, deadline, cycle time attached).
        request: Request,
        /// Transmission start.
        start: Time,
        /// Transmission end (completion instant).
        end: Time,
    },
    /// A low-priority message cycle executed to completion.
    LowCycle {
        /// Ring index of the executing master.
        master: usize,
        /// Transmission start.
        start: Time,
        /// Transmission end.
        end: Time,
    },
    /// The token was passed to the successor.
    TokenPass {
        /// Sender ring index.
        from: usize,
        /// Receiver ring index.
        to: usize,
    },
    /// A lost token was recovered by the claim timeout (fault injection).
    Recovery {
        /// Ring index of the claiming (lowest-address) master.
        claimant: usize,
    },
    /// The token holder polled one GAP address with `Request FDL Status`
    /// (dynamic membership only; consumes real token-holding time).
    GapPoll {
        /// Ring index of the polling token holder.
        master: usize,
        /// The polled FDL address (may be empty — no master there).
        target: MasterAddr,
        /// Ring index of the master this poll admits into the ring, if
        /// the target answered `MasterReady` (the kernel emits the
        /// matching [`NetEvent::MasterJoin`] right after).
        admitted: Option<usize>,
    },
    /// A master entered the logical ring (GAP admission, or a listener's
    /// claim on a dead bus).
    MasterJoin {
        /// Ring index of the joining master.
        master: usize,
    },
    /// A master was dropped from the logical ring after the token holder
    /// detected its departure through a failed pass.
    MasterLeave {
        /// Ring index of the departed master.
        master: usize,
    },
    /// A powered station re-originated a vanished token after its
    /// address-staggered claim timeout (dynamic membership: holder crash
    /// or dead-bus cold start).
    Claim {
        /// Ring index of the claiming master.
        master: usize,
    },
    /// The mixed-criticality mode controller switched modes (see
    /// [`crate::network::mode::ModeController`]).
    ModeSwitch {
        /// `true`: entering HI (degraded) mode — sub-HI admissions are
        /// shed from here on. `false`: match-up complete, back to LO.
        degraded: bool,
    },
    /// A sub-HI request was shed at admission while the controller was
    /// degraded (it never reached the AP queue).
    Shed {
        /// Ring index of the shedding master.
        master: usize,
        /// The shed request's stream.
        stream: StreamId,
        /// The shed request's release instant.
        release: Time,
    },
    /// The match-up phase completed (full ring plus a clean-rotation
    /// span); the kernel emits the LO-ward [`NetEvent::ModeSwitch`]
    /// right after.
    Matchup {
        /// Span from the degradation instant to the completed match-up —
        /// the `time_to_matchup` statistic.
        waited: Time,
    },
}

/// Assembles the [`NetworkSimResult`] from the event stream — result
/// computation is itself just an observer, so the kernel has a single
/// output path.
#[derive(Clone, Debug)]
pub struct ResultObserver {
    streams: Vec<Vec<StreamObservation>>,
    max_trr: Vec<Time>,
    visits: Vec<u64>,
    low_completed: Vec<u64>,
    recoveries: u64,
}

impl ResultObserver {
    /// An observer shaped for `net`.
    pub fn new(net: &SimNetwork) -> ResultObserver {
        ResultObserver {
            streams: net
                .masters
                .iter()
                .map(|m| vec![StreamObservation::default(); m.streams.len()])
                .collect(),
            max_trr: vec![Time::ZERO; net.masters.len()],
            visits: vec![0; net.masters.len()],
            low_completed: vec![0; net.masters.len()],
            recoveries: 0,
        }
    }

    /// Finalises into the run result.
    pub fn into_result(self) -> NetworkSimResult {
        NetworkSimResult {
            streams: self.streams,
            max_trr: self.max_trr,
            token_visits: self.visits,
            low_completed: self.low_completed,
            token_recoveries: self.recoveries,
        }
    }
}

impl Observer<NetEvent> for ResultObserver {
    fn observe(&mut self, _at: Time, event: &NetEvent) {
        match *event {
            NetEvent::TokenArrival { master, trr, .. } => {
                self.visits[master] += 1;
                if let Some(trr) = trr {
                    self.max_trr[master] = self.max_trr[master].max(trr);
                }
            }
            NetEvent::HighCycle {
                master,
                ref request,
                end,
                ..
            } => {
                let obs = &mut self.streams[master][request.stream.0];
                obs.max_response = obs.max_response.max(end - request.release);
                obs.completed += 1;
                if end > request.abs_deadline {
                    obs.misses += 1;
                }
            }
            NetEvent::LowCycle { master, .. } => self.low_completed[master] += 1,
            NetEvent::Recovery { .. } => self.recoveries += 1,
            NetEvent::TokenPass { .. }
            | NetEvent::GapPoll { .. }
            | NetEvent::MasterJoin { .. }
            | NetEvent::MasterLeave { .. }
            | NetEvent::Claim { .. }
            | NetEvent::ModeSwitch { .. }
            | NetEvent::Shed { .. }
            | NetEvent::Matchup { .. } => {}
        }
    }

    /// O(pattern) batched ingestion: every counter a rotation bumps is
    /// bumped `rotations` times at once; maxima are idempotent under
    /// repetition, so one pass over the pattern is exact.
    fn on_idle_span(&mut self, span: &IdleSpan<'_, NetEvent>) {
        for (_, ev) in span.pattern {
            match *ev {
                NetEvent::TokenArrival { master, trr, .. } => {
                    self.visits[master] += span.rotations;
                    if let Some(trr) = trr {
                        self.max_trr[master] = self.max_trr[master].max(trr);
                    }
                }
                NetEvent::HighCycle {
                    master,
                    ref request,
                    end,
                    ..
                } => {
                    let obs = &mut self.streams[master][request.stream.0];
                    obs.max_response = obs.max_response.max(end - request.release);
                    obs.completed += span.rotations;
                    if end > request.abs_deadline {
                        obs.misses += span.rotations;
                    }
                }
                NetEvent::LowCycle { master, .. } => self.low_completed[master] += span.rotations,
                NetEvent::Recovery { .. } => self.recoveries += span.rotations,
                _ => {}
            }
        }
    }
}

/// Histogram of high-priority response times, pooled over all masters and
/// streams (constant memory at any horizon).
#[derive(Clone, Debug, Default)]
pub struct ResponseStats {
    /// The underlying histogram.
    pub hist: TickHistogram,
}

impl ResponseStats {
    /// An empty observer.
    pub fn new() -> ResponseStats {
        ResponseStats::default()
    }
}

impl Observer<NetEvent> for ResponseStats {
    fn observe(&mut self, _at: Time, event: &NetEvent) {
        if let NetEvent::HighCycle { request, end, .. } = event {
            self.hist.record(*end - request.release);
        }
    }

    /// O(pattern): each rotation would record the identical response
    /// value, so the histogram ingests it as one run-length increment.
    fn on_idle_span(&mut self, span: &IdleSpan<'_, NetEvent>) {
        for (_, ev) in span.pattern {
            if let NetEvent::HighCycle { request, end, .. } = ev {
                self.hist.record_n(*end - request.release, span.rotations);
            }
        }
    }
}

/// Histogram of measured token rotation times, pooled over all masters —
/// optionally segmented by the live ring size, so the rotation cost of
/// GAP polls, claims and shrunken rings is measurable per phase.
#[derive(Clone, Debug, Default)]
pub struct TrrStats {
    /// The pooled histogram (all rotations, any ring size).
    pub hist: TickHistogram,
    /// Current ring size (tracked from join/leave events); `None` when
    /// size segmentation is disabled.
    size: Option<usize>,
    /// `(ring size, histogram)` per observed size, ascending.
    by_size: Vec<(usize, TickHistogram)>,
}

impl TrrStats {
    /// A pooled-only observer (no per-ring-size segmentation).
    pub fn new() -> TrrStats {
        TrrStats::default()
    }

    /// An observer that additionally buckets rotations by the ring size
    /// at the moment the rotation completed. `initial` is the ring size
    /// at time zero (masters powered on and in the ring).
    pub fn with_ring_size(initial: usize) -> TrrStats {
        TrrStats {
            size: Some(initial),
            ..TrrStats::default()
        }
    }

    /// Per-ring-size rotation summaries, ascending by size. Empty when
    /// segmentation is disabled or no rotation completed.
    pub fn per_size(&self) -> Vec<(usize, HistSummary)> {
        self.by_size
            .iter()
            .map(|(size, hist)| (*size, hist.summary()))
            .collect()
    }
}

impl Observer<NetEvent> for TrrStats {
    fn observe(&mut self, _at: Time, event: &NetEvent) {
        match *event {
            NetEvent::TokenArrival { trr: Some(trr), .. } => {
                self.hist.record(trr);
                if let Some(size) = self.size {
                    let hist = match self.by_size.binary_search_by_key(&size, |e| e.0) {
                        Ok(i) => &mut self.by_size[i].1,
                        Err(i) => {
                            self.by_size.insert(i, (size, TickHistogram::default()));
                            &mut self.by_size[i].1
                        }
                    };
                    hist.record(trr);
                }
            }
            NetEvent::MasterJoin { .. } => {
                if let Some(size) = &mut self.size {
                    *size += 1;
                }
            }
            NetEvent::MasterLeave { .. } => {
                if let Some(size) = &mut self.size {
                    *size = size.saturating_sub(1);
                }
            }
            _ => {}
        }
    }

    /// O(pattern) run-length ingestion of the span's rotation samples.
    /// A pattern carrying membership events would change the ring size
    /// mid-span, so that (never kernel-emitted) case replays instead.
    fn on_idle_span(&mut self, span: &IdleSpan<'_, NetEvent>) {
        let churns = span.pattern.iter().any(|(_, ev)| {
            matches!(
                ev,
                NetEvent::MasterJoin { .. } | NetEvent::MasterLeave { .. }
            )
        });
        if churns {
            replay_span(self, span);
            return;
        }
        for (_, ev) in span.pattern {
            if let NetEvent::TokenArrival { trr: Some(trr), .. } = *ev {
                self.hist.record_n(trr, span.rotations);
                if let Some(size) = self.size {
                    let hist = match self.by_size.binary_search_by_key(&size, |e| e.0) {
                        Ok(i) => &mut self.by_size[i].1,
                        Err(i) => {
                            self.by_size.insert(i, (size, TickHistogram::default()));
                            &mut self.by_size[i].1
                        }
                    };
                    hist.record_n(trr, span.rotations);
                }
            }
        }
    }
}

/// Summary of one run's ring-membership dynamics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RingSummary {
    /// Smallest live ring size observed.
    pub min_size: usize,
    /// Largest live ring size observed.
    pub max_size: usize,
    /// Ring size at the end of the run.
    pub final_size: usize,
    /// Membership events observed (joins + leaves).
    pub events: u64,
    /// GAP polls transmitted.
    pub gap_polls: u64,
    /// Token claims (membership recovery; fault-injection recoveries are
    /// counted separately in
    /// [`NetworkSimResult::token_recoveries`](crate::network::NetworkSimResult::token_recoveries)).
    pub claims: u64,
}

/// Tracks the ring-size timeline: min/max/final size plus membership
/// event counts. On a static run it reports the configured size and zero
/// events.
#[derive(Clone, Debug)]
pub struct RingStats {
    size: usize,
    summary: RingSummary,
}

impl RingStats {
    /// An observer starting from `initial` ring members.
    pub fn new(initial: usize) -> RingStats {
        RingStats {
            size: initial,
            summary: RingSummary {
                min_size: initial,
                max_size: initial,
                final_size: initial,
                events: 0,
                gap_polls: 0,
                claims: 0,
            },
        }
    }

    /// The run summary.
    pub fn summary(&self) -> RingSummary {
        RingSummary {
            final_size: self.size,
            ..self.summary
        }
    }
}

impl Observer<NetEvent> for RingStats {
    fn observe(&mut self, _at: Time, event: &NetEvent) {
        match *event {
            NetEvent::MasterJoin { .. } => {
                self.size += 1;
                self.summary.events += 1;
                self.summary.max_size = self.summary.max_size.max(self.size);
            }
            NetEvent::MasterLeave { .. } => {
                self.size = self.size.saturating_sub(1);
                self.summary.events += 1;
                self.summary.min_size = self.summary.min_size.min(self.size);
            }
            NetEvent::GapPoll { .. } => self.summary.gap_polls += 1,
            NetEvent::Claim { .. } => self.summary.claims += 1,
            _ => {}
        }
    }

    /// O(pattern): pure counter bumps multiply by the rotation count.
    /// Membership events would move the size timeline mid-span, so that
    /// (never kernel-emitted) case replays instead.
    fn on_idle_span(&mut self, span: &IdleSpan<'_, NetEvent>) {
        let churns = span.pattern.iter().any(|(_, ev)| {
            matches!(
                ev,
                NetEvent::MasterJoin { .. } | NetEvent::MasterLeave { .. }
            )
        });
        if churns {
            replay_span(self, span);
            return;
        }
        for (_, ev) in span.pattern {
            match ev {
                NetEvent::GapPoll { .. } => self.summary.gap_polls += span.rotations,
                NetEvent::Claim { .. } => self.summary.claims += span.rotations,
                _ => {}
            }
        }
    }
}

/// Per-master/per-stream maximum responses restricted to **stable
/// phases**: the ring at full configured membership, with no membership
/// disturbance (join, leave, claim, fault recovery) *and no mode switch*
/// within `guard` ticks before the request's release. The `observed ≤
/// analytical` contract assumes the §3.1 static ring, so under churn it
/// is enforced on these samples only; transition windows are excluded.
///
/// With the mode controller enabled, responses split into two buckets by
/// the mode at completion: `max_responses` holds LO-mode (nominal)
/// samples, checked against the full-set bounds, and `hi_max_responses`
/// holds HI-mode (degraded) samples — HI streams competing only against
/// HI traffic — checked against the HI-projection bounds of
/// [`profirt_core::ModeAnalysis`](../../../profirt_core/mode/struct.ModeAnalysis.html).
/// The HI bucket does **not** require full ring membership (the HI bound
/// is monotone in membership, so it holds on every subring), only the
/// guard of calm since the last disturbance. A mode switch disturbs both
/// buckets, so no sample straddles a shedding transition.
#[derive(Clone, Debug)]
pub struct StableResponseObserver {
    full_size: usize,
    size: usize,
    guard: Time,
    stable_since: Time,
    degraded: bool,
    /// Stable-phase (LO-mode) maximum responses, `[master][stream]`.
    pub max_responses: Vec<Vec<Time>>,
    /// High-priority cycles that counted as stable LO-mode samples.
    pub samples: u64,
    /// Degraded-phase maximum responses, `[master][stream]`; only HI
    /// streams complete in HI mode (plus a pre-switch sub-HI backlog,
    /// excluded by the guard).
    pub hi_max_responses: Vec<Vec<Time>>,
    /// High-priority cycles that counted as degraded-phase samples.
    pub hi_samples: u64,
}

impl StableResponseObserver {
    /// An observer for `net`, treating `initial` masters as in-ring at
    /// time zero and requiring `guard` ticks of calm before a release
    /// counts as stable.
    pub fn new(net: &SimNetwork, initial: usize, guard: Time) -> StableResponseObserver {
        let zeros: Vec<Vec<Time>> = net
            .masters
            .iter()
            .map(|m| vec![Time::ZERO; m.streams.len()])
            .collect();
        StableResponseObserver {
            full_size: net.masters.len(),
            size: initial,
            guard,
            stable_since: Time::ZERO,
            degraded: false,
            max_responses: zeros.clone(),
            samples: 0,
            hi_max_responses: zeros,
            hi_samples: 0,
        }
    }

    fn disturb(&mut self, at: Time) {
        self.stable_since = self.stable_since.max(at);
    }
}

impl Observer<NetEvent> for StableResponseObserver {
    fn observe(&mut self, at: Time, event: &NetEvent) {
        match *event {
            NetEvent::MasterJoin { .. } => {
                self.size += 1;
                self.disturb(at);
            }
            NetEvent::MasterLeave { .. } => {
                self.size = self.size.saturating_sub(1);
                self.disturb(at);
            }
            NetEvent::Claim { .. } | NetEvent::Recovery { .. } => self.disturb(at),
            // A mode switch ends the current stable phase in *both*
            // directions: samples released around the shedding transition
            // belong to neither bound's regime.
            NetEvent::ModeSwitch { degraded } => {
                self.degraded = degraded;
                self.disturb(at);
            }
            // Any disturbance between the release and this completion was
            // already observed (events arrive in time order) and pushed
            // `stable_since` past the release.
            NetEvent::HighCycle {
                master,
                ref request,
                end,
                ..
            } if request.release >= self.stable_since + self.guard => {
                if self.degraded {
                    let slot = &mut self.hi_max_responses[master][request.stream.0];
                    *slot = (*slot).max(end - request.release);
                    self.hi_samples += 1;
                } else if self.size == self.full_size {
                    let slot = &mut self.max_responses[master][request.stream.0];
                    *slot = (*slot).max(end - request.release);
                    self.samples += 1;
                }
            }
            _ => {}
        }
    }

    /// O(1) for kernel-emitted idle spans: token arrivals and passes
    /// neither disturb a stable phase nor produce samples, so the span is
    /// a no-op. Any state-affecting event in the pattern (samples,
    /// disturbances — never emitted by the kernel inside a span) replays.
    fn on_idle_span(&mut self, span: &IdleSpan<'_, NetEvent>) {
        let affecting = span.pattern.iter().any(|(_, ev)| {
            matches!(
                ev,
                NetEvent::HighCycle { .. }
                    | NetEvent::MasterJoin { .. }
                    | NetEvent::MasterLeave { .. }
                    | NetEvent::Claim { .. }
                    | NetEvent::Recovery { .. }
                    | NetEvent::ModeSwitch { .. }
            )
        });
        if affecting {
            replay_span(self, span);
        }
    }
}

/// Summary of one run's mixed-criticality mode dynamics. All zeros when
/// the mode controller is disabled (or never triggered).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ModeSummary {
    /// Mode switches, both directions (degrades + match-up returns).
    pub switches: u64,
    /// Sub-HI requests shed at admission.
    pub sheds: u64,
    /// Completed match-up phases.
    pub matchups: u64,
    /// Largest degradation-to-match-up span (`Time::ZERO` when no
    /// match-up completed).
    pub max_time_to_matchup: Time,
}

/// Counts mode switches, sheds and match-ups, and tracks how much sub-HI
/// traffic still completed — the denominators and numerators of the
/// campaign's `lo_shed_ratio` and `time_to_matchup` columns.
#[derive(Clone, Debug)]
pub struct ModeStats {
    /// Per-master criticality maps (empty inner vec = all HI).
    criticality: Vec<Vec<Criticality>>,
    summary: ModeSummary,
    waits: Vec<Time>,
    sub_hi_completed: u64,
}

impl ModeStats {
    /// An observer shaped for `net` (copies its criticality maps).
    pub fn new(net: &SimNetwork) -> ModeStats {
        ModeStats {
            criticality: net.masters.iter().map(|m| m.criticality.clone()).collect(),
            summary: ModeSummary::default(),
            waits: Vec::new(),
            sub_hi_completed: 0,
        }
    }

    /// The run summary.
    pub fn summary(&self) -> ModeSummary {
        self.summary
    }

    /// Every completed match-up's degradation-to-recovery span, in
    /// completion order (for pooled percentiles across runs).
    pub fn matchup_waits(&self) -> &[Time] {
        &self.waits
    }

    /// Sub-HI high-priority cycles that executed to completion.
    pub fn sub_hi_completed(&self) -> u64 {
        self.sub_hi_completed
    }

    /// Fraction of sub-HI demand shed at admission:
    /// `sheds / (sheds + completed sub-HI cycles)`, `0.0` when the run
    /// carried no sub-HI traffic at all.
    pub fn lo_shed_ratio(&self) -> f64 {
        let total = self.summary.sheds + self.sub_hi_completed;
        if total == 0 {
            0.0
        } else {
            self.summary.sheds as f64 / total as f64
        }
    }
}

impl Observer<NetEvent> for ModeStats {
    fn observe(&mut self, _at: Time, event: &NetEvent) {
        match *event {
            NetEvent::ModeSwitch { .. } => self.summary.switches += 1,
            NetEvent::Shed { .. } => self.summary.sheds += 1,
            NetEvent::Matchup { waited } => {
                self.summary.matchups += 1;
                self.summary.max_time_to_matchup = self.summary.max_time_to_matchup.max(waited);
                self.waits.push(waited);
            }
            NetEvent::HighCycle {
                master,
                ref request,
                ..
            } => {
                let crit = self.criticality[master]
                    .get(request.stream.0)
                    .copied()
                    .unwrap_or(Criticality::Hi);
                if crit != Criticality::Hi {
                    self.sub_hi_completed += 1;
                }
            }
            _ => {}
        }
    }

    /// O(pattern) counter multiplication. Match-ups append to the wait
    /// list per occurrence, so that (never kernel-emitted) case replays.
    fn on_idle_span(&mut self, span: &IdleSpan<'_, NetEvent>) {
        if span
            .pattern
            .iter()
            .any(|(_, ev)| matches!(ev, NetEvent::Matchup { .. }))
        {
            replay_span(self, span);
            return;
        }
        for (_, ev) in span.pattern {
            match *ev {
                NetEvent::ModeSwitch { .. } => self.summary.switches += span.rotations,
                NetEvent::Shed { .. } => self.summary.sheds += span.rotations,
                NetEvent::HighCycle {
                    master,
                    ref request,
                    ..
                } => {
                    let crit = self.criticality[master]
                        .get(request.stream.0)
                        .copied()
                        .unwrap_or(Criticality::Hi);
                    if crit != Criticality::Hi {
                        self.sub_hi_completed += span.rotations;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Bounded event tracing as an observer: the former hand-threaded
/// `Option<&mut Trace>` plumbing, now just another pipeline stage.
#[derive(Clone, Debug)]
pub struct TraceObserver {
    /// The recorded trace.
    pub trace: Trace,
}

impl TraceObserver {
    /// Records up to `capacity` events.
    pub fn new(capacity: usize) -> TraceObserver {
        TraceObserver {
            trace: Trace::new(capacity),
        }
    }
}

impl Observer<NetEvent> for TraceObserver {
    // `on_idle_span` deliberately keeps the default replay: a trace
    // materializes every event (and counts drops past its capacity), so
    // a compressed span must be expanded rotation by rotation.
    fn observe(&mut self, at: Time, event: &NetEvent) {
        let mapped = match *event {
            NetEvent::TokenArrival { master, tth, .. } => TraceEvent::TokenArrival { master, tth },
            NetEvent::HighCycle {
                master,
                ref request,
                start,
                end,
            } => TraceEvent::HighCycle {
                master,
                stream: request.stream,
                start,
                end,
            },
            NetEvent::LowCycle { master, start, end } => {
                TraceEvent::LowCycle { master, start, end }
            }
            NetEvent::TokenPass { from, to } => TraceEvent::TokenPass { from, to },
            NetEvent::Recovery { claimant } => TraceEvent::Recovery { claimant },
            NetEvent::GapPoll { master, target, .. } => TraceEvent::GapPoll { master, target },
            NetEvent::MasterJoin { master } => TraceEvent::MasterJoin { master },
            NetEvent::MasterLeave { master } => TraceEvent::MasterLeave { master },
            NetEvent::Claim { master } => TraceEvent::Claim { master },
            NetEvent::ModeSwitch { degraded } => TraceEvent::ModeSwitch { degraded },
            NetEvent::Shed { master, stream, .. } => TraceEvent::Shed { master, stream },
            NetEvent::Matchup { waited } => TraceEvent::Matchup { waited },
        };
        self.trace.record(at, mapped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::config::SimMaster;
    use profirt_base::time::t;
    use profirt_base::{Priority, StreamSet};

    fn two_master_net() -> SimNetwork {
        SimNetwork {
            masters: vec![
                SimMaster::stock(StreamSet::from_cdt(&[(100, 5_000, 10_000)]).unwrap())
                    .with_criticality(vec![Criticality::Lo]),
                SimMaster::stock(StreamSet::from_cdt(&[(100, 5_000, 10_000)]).unwrap()),
            ],
            ttr: t(2_000),
            token_pass: t(100),
        }
    }

    fn request() -> Request {
        Request {
            stream: StreamId(0),
            release: t(10),
            abs_deadline: t(5_000),
            priority: Priority(1),
            cycle_time: t(100),
        }
    }

    /// A kitchen-sink pattern exercising every batched ingestion arm (no
    /// membership events or match-ups — those take the replay fallback,
    /// covered below).
    fn batched_pattern() -> Vec<(Time, NetEvent)> {
        vec![
            (
                t(0),
                NetEvent::TokenArrival {
                    master: 0,
                    tth: t(1_800),
                    trr: Some(t(200)),
                },
            ),
            (
                t(0),
                NetEvent::HighCycle {
                    master: 0,
                    request: request(),
                    start: t(0),
                    end: t(100),
                },
            ),
            (
                t(100),
                NetEvent::LowCycle {
                    master: 0,
                    start: t(100),
                    end: t(130),
                },
            ),
            (
                t(130),
                NetEvent::GapPoll {
                    master: 0,
                    target: MasterAddr(5),
                    admitted: None,
                },
            ),
            (
                t(140),
                NetEvent::Shed {
                    master: 0,
                    stream: StreamId(0),
                    release: t(35),
                },
            ),
            (t(150), NetEvent::ModeSwitch { degraded: true }),
            (t(160), NetEvent::TokenPass { from: 0, to: 1 }),
            (
                t(160),
                NetEvent::TokenArrival {
                    master: 1,
                    tth: t(1_800),
                    trr: Some(t(200)),
                },
            ),
            (t(170), NetEvent::Recovery { claimant: 0 }),
            (t(180), NetEvent::Claim { master: 0 }),
            (t(200), NetEvent::TokenPass { from: 1, to: 0 }),
        ]
    }

    /// Spans whose replay crosses observer state (membership churn, a
    /// match-up) — the overrides must detect them and fall back.
    fn fallback_pattern() -> Vec<(Time, NetEvent)> {
        vec![
            (t(0), NetEvent::MasterLeave { master: 1 }),
            (t(10), NetEvent::Matchup { waited: t(900) }),
            (
                t(20),
                NetEvent::TokenArrival {
                    master: 0,
                    tth: t(1_700),
                    trr: Some(t(300)),
                },
            ),
            (t(30), NetEvent::MasterJoin { master: 1 }),
        ]
    }

    #[test]
    fn batched_idle_span_ingestion_equals_replay() {
        let net = two_master_net();
        for pattern in [batched_pattern(), fallback_pattern()] {
            let span = IdleSpan {
                start: t(1_000),
                period: t(200),
                rotations: 5,
                pattern: &pattern,
            };

            let mut batched = ResultObserver::new(&net);
            let mut replayed = batched.clone();
            batched.on_idle_span(&span);
            replay_span(&mut replayed, &span);
            assert_eq!(batched.into_result(), replayed.into_result());

            let mut batched = ResponseStats::new();
            let mut replayed = batched.clone();
            batched.on_idle_span(&span);
            replay_span(&mut replayed, &span);
            assert_eq!(batched.hist.summary(), replayed.hist.summary());

            let mut batched = TrrStats::with_ring_size(2);
            let mut replayed = batched.clone();
            batched.on_idle_span(&span);
            replay_span(&mut replayed, &span);
            assert_eq!(batched.hist.summary(), replayed.hist.summary());
            assert_eq!(batched.per_size(), replayed.per_size());

            let mut batched = RingStats::new(2);
            let mut replayed = batched.clone();
            batched.on_idle_span(&span);
            replay_span(&mut replayed, &span);
            assert_eq!(batched.summary(), replayed.summary());

            let mut batched = StableResponseObserver::new(&net, 2, t(0));
            let mut replayed = batched.clone();
            batched.on_idle_span(&span);
            replay_span(&mut replayed, &span);
            assert_eq!(batched.max_responses, replayed.max_responses);
            assert_eq!(batched.samples, replayed.samples);
            assert_eq!(batched.hi_max_responses, replayed.hi_max_responses);
            assert_eq!(batched.hi_samples, replayed.hi_samples);

            let mut batched = ModeStats::new(&net);
            let mut replayed = batched.clone();
            batched.on_idle_span(&span);
            replay_span(&mut replayed, &span);
            assert_eq!(batched.summary(), replayed.summary());
            assert_eq!(batched.matchup_waits(), replayed.matchup_waits());
            assert_eq!(batched.sub_hi_completed(), replayed.sub_hi_completed());
        }
    }
}
