//! Scripted ring-membership scenarios.
//!
//! A [`MembershipPlan`] drives joins and leaves through the simulation: it
//! names the masters that start powered off and schedules power-on /
//! power-off / crash events at absolute instants. The kernel applies due
//! events at token-visit boundaries — PROFIBUS has no mid-frame
//! preemption, so a finer grain would model nothing real.
//!
//! An empty plan (the default) combined with a GAP update factor of `0`
//! selects the **static-ring fast path**: the kernel runs the exact
//! pre-churn token loop and its event stream stays byte-identical to the
//! materialized reference simulator.

use profirt_base::{Prng, Time};
use serde::{Deserialize, Serialize};

/// What happens to a master at a scheduled instant.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MembershipAction {
    /// The station is switched on: it starts listening for the LAS and is
    /// admitted through a GAP poll once it has observed two rotations.
    PowerOn,
    /// The station is switched off. DIN 19245 has no leave announcement:
    /// the departure is detected by the first failed token pass.
    PowerOff,
    /// The station fails hard. On the bus this is indistinguishable from
    /// [`MembershipAction::PowerOff`] — the variant exists so scenario
    /// scripts can state intent (and future models can differ, e.g. a
    /// babbling idiot).
    Crash,
}

/// One scripted membership event.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MembershipEvent {
    /// Absolute instant the event fires (applied at the next token-visit
    /// boundary at or after `at`).
    pub at: Time,
    /// Ring index of the affected master (position in
    /// [`SimNetwork::masters`](crate::network::SimNetwork::masters)).
    pub master: usize,
    /// What happens.
    pub action: MembershipAction,
}

/// A scripted membership scenario: initial power states plus a time-sorted
/// event list. Construct with the builder methods (which keep the list
/// sorted) or [`MembershipPlan::random_churn`].
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct MembershipPlan {
    initially_off: Vec<usize>,
    events: Vec<MembershipEvent>,
}

impl MembershipPlan {
    /// The empty plan: every master powered on and in the ring from time
    /// zero, no events — the static ring of the paper's §3.1.
    pub fn new() -> MembershipPlan {
        MembershipPlan::default()
    }

    /// `true` when nothing is scripted (the static-ring condition).
    pub fn is_empty(&self) -> bool {
        self.initially_off.is_empty() && self.events.is_empty()
    }

    /// Builder: `master` starts powered off (it is *not* a ring member at
    /// time zero and must join through GAP polling).
    pub fn starts_off(mut self, master: usize) -> MembershipPlan {
        if !self.initially_off.contains(&master) {
            self.initially_off.push(master);
            self.initially_off.sort_unstable();
        }
        self
    }

    /// Builder: schedules one event, keeping the list sorted by time
    /// (stable: same-instant events fire in insertion order).
    pub fn at(mut self, at: Time, master: usize, action: MembershipAction) -> MembershipPlan {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events
            .insert(pos, MembershipEvent { at, master, action });
        self
    }

    /// Builder: one off/on power cycle of `master`.
    pub fn power_cycle(self, master: usize, off_at: Time, on_at: Time) -> MembershipPlan {
        self.at(off_at, master, MembershipAction::PowerOff).at(
            on_at,
            master,
            MembershipAction::PowerOn,
        )
    }

    /// A stochastic churn scenario: each master except master 0 (kept
    /// stable so the ring never fully dies) power-cycles `cycles` times at
    /// instants drawn uniformly from the first 70 % of the horizon. Same
    /// seed ⇒ same plan.
    pub fn random_churn(seed: u64, n_masters: usize, horizon: Time, cycles: u32) -> MembershipPlan {
        let mut rng = Prng::seed_from_u64(seed ^ 0xC4_17_2B_5D);
        let mut plan = MembershipPlan::new();
        let window = (horizon.ticks() * 7 / 10).max(2);
        for master in 1..n_masters {
            for _ in 0..cycles {
                let a = 1 + rng.below(window as u64 - 1) as i64;
                let b = 1 + rng.below(window as u64 - 1) as i64;
                let (off_at, on_at) = (a.min(b), a.max(b).max(a.min(b) + 1));
                plan = plan.power_cycle(master, Time::new(off_at), Time::new(on_at));
            }
        }
        plan
    }

    /// The scheduled events, sorted ascending by time.
    pub fn events(&self) -> &[MembershipEvent] {
        &self.events
    }

    /// Masters powered off at time zero, sorted ascending.
    pub fn initially_off(&self) -> &[usize] {
        &self.initially_off
    }

    /// Whether `master` starts powered off.
    pub fn is_initially_off(&self, master: usize) -> bool {
        self.initially_off.binary_search(&master).is_ok()
    }

    /// Validates the plan against a network of `n_masters` masters: every
    /// referenced index must exist, and at least one master must start
    /// powered on (an all-dead bus at time zero has nothing to simulate).
    pub fn validate(&self, n_masters: usize) -> Result<(), String> {
        if let Some(m) = self
            .initially_off
            .iter()
            .chain(self.events.iter().map(|e| &e.master))
            .find(|&&m| m >= n_masters)
        {
            return Err(format!(
                "membership plan references master {m}, but the network has {n_masters}"
            ));
        }
        if self.initially_off.len() >= n_masters && n_masters > 0 {
            return Err("membership plan powers every master off at time zero".into());
        }
        for e in &self.events {
            if !e.at.is_positive() && e.at != Time::ZERO {
                return Err(format!("membership event at negative time {}", e.at));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    #[test]
    fn builders_keep_events_sorted() {
        let plan = MembershipPlan::new()
            .at(t(500), 1, MembershipAction::PowerOn)
            .at(t(100), 2, MembershipAction::Crash)
            .power_cycle(1, t(300), t(400));
        let ats: Vec<i64> = plan.events().iter().map(|e| e.at.ticks()).collect();
        assert_eq!(ats, vec![100, 300, 400, 500]);
        assert!(!plan.is_empty());
        assert!(MembershipPlan::new().is_empty());
    }

    #[test]
    fn same_instant_events_keep_insertion_order() {
        let plan = MembershipPlan::new()
            .at(t(100), 1, MembershipAction::PowerOff)
            .at(t(100), 2, MembershipAction::PowerOff);
        assert_eq!(plan.events()[0].master, 1);
        assert_eq!(plan.events()[1].master, 2);
    }

    #[test]
    fn initially_off_dedups_and_sorts() {
        let plan = MembershipPlan::new()
            .starts_off(3)
            .starts_off(1)
            .starts_off(3);
        assert_eq!(plan.initially_off(), &[1, 3]);
        assert!(plan.is_initially_off(3));
        assert!(!plan.is_initially_off(2));
    }

    #[test]
    fn validation_rejects_out_of_range_and_all_dead() {
        let plan = MembershipPlan::new().at(t(10), 5, MembershipAction::PowerOff);
        assert!(plan.validate(3).is_err());
        assert!(plan.validate(6).is_ok());
        let dead = MembershipPlan::new().starts_off(0).starts_off(1);
        assert!(dead.validate(2).is_err());
        assert!(dead.validate(3).is_ok());
    }

    #[test]
    fn random_churn_is_deterministic_and_spares_master_zero() {
        let a = MembershipPlan::random_churn(7, 4, t(1_000_000), 2);
        let b = MembershipPlan::random_churn(7, 4, t(1_000_000), 2);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.events().iter().all(|e| e.master != 0));
        assert!(a
            .events()
            .iter()
            .all(|e| e.at.ticks() <= 700_000 + 1 && e.at.is_positive()));
        let c = MembershipPlan::random_churn(8, 4, t(1_000_000), 2);
        assert_ne!(a, c, "different seeds should give different plans");
        assert!(a.validate(4).is_ok());
    }
}
