//! The network simulation core.
//!
//! ## Execution rules (paper §3.1, implemented literally)
//!
//! On token arrival at master `k` at time `t`:
//!
//! 1. `TTH ← TTR − TRR`; restart `TRR` ([`profirt_profibus::TokenTimer`]).
//! 2. If high-priority requests are pending, execute **one** high-priority
//!    message cycle unconditionally (even on a late token).
//! 3. While `TTH > 0` *at cycle start* and high-priority requests pend,
//!    execute further high-priority cycles (each runs to completion —
//!    TTH overrun).
//! 4. While `TTH > 0` at cycle start and low-priority requests pend,
//!    execute low-priority cycles (same overrun rule).
//! 5. Pass the token to the next master (`token_pass` ticks).
//!
//! ## Queue semantics (paper §4)
//!
//! Requests are *released* into the AP queue (ordered per the master's
//! policy) and trickle into the communication-stack FCFS queue **in real
//! time**: whenever the stack has a free slot, the most urgent AP request
//! drops in immediately. The stack slot frees when a transmission starts.
//! This real-time transfer is exactly what creates the one-cycle priority
//! inversion ("blocking") the analyses charge: an urgent request released
//! a moment after a lax one finds the stack slot already taken. With
//! `stack_capacity = usize::MAX` and an FCFS AP queue this degrades to the
//! stock single-FCFS-queue behaviour of §3.

use profirt_base::{StreamId, Time};
use profirt_profibus::{ApQueue, Request, StackQueue, TokenTimer};
use serde::{Deserialize, Serialize};

use crate::engine::SimRng;
use crate::network::config::{JitterInjection, NetworkSimConfig, OffsetMode, SimNetwork};

/// Observations for one stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct StreamObservation {
    /// Largest observed response time (ready instant → cycle completion).
    pub max_response: Time,
    /// Completed message cycles.
    pub completed: u64,
    /// Deadline misses (response > D).
    pub misses: u64,
}

/// Whole-run result.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct NetworkSimResult {
    /// Per-master, per-stream observations.
    pub streams: Vec<Vec<StreamObservation>>,
    /// Largest observed real token rotation time per master.
    pub max_trr: Vec<Time>,
    /// Token visits per master.
    pub token_visits: Vec<u64>,
    /// Completed low-priority cycles per master.
    pub low_completed: Vec<u64>,
    /// Number of token losses recovered via the claim timeout (fault
    /// injection; zero when `token_loss_prob == 0`).
    pub token_recoveries: u64,
}

impl NetworkSimResult {
    /// `true` iff no stream missed a deadline.
    pub fn no_misses(&self) -> bool {
        self.streams.iter().flatten().all(|o| o.misses == 0)
    }

    /// The largest observed TRR across all masters.
    pub fn max_trr_overall(&self) -> Time {
        self.max_trr.iter().copied().max().unwrap_or(Time::ZERO)
    }
}

/// Pending release of a high-priority request.
#[derive(Clone, Copy, Debug)]
struct PendingRelease {
    ready_at: Time,
    request: Request,
}

struct MasterState {
    timer: TokenTimer,
    ap: ApQueue,
    stack: StackQueue,
    /// Future high-priority releases, kept sorted ascending by ready time
    /// (consumed from the front).
    releases: Vec<PendingRelease>,
    next_release_index: usize,
    /// Low-priority pending queue: ready instants of generated requests.
    lp_pending: Vec<(Time, Time)>, // (ready, cycle_time)
    lp_next_index: usize,
    lp_releases: Vec<(Time, Time)>,
    observations: Vec<StreamObservation>,
    deadlines: Vec<Time>,
    max_trr: Time,
    visits: u64,
    lp_completed: u64,
    first_arrival_seen: bool,
}

impl MasterState {
    /// Moves releases that became ready by `now` into the AP queue, doing
    /// the real-time AP→stack transfer at each release instant.
    fn sync(&mut self, now: Time) {
        while self.next_release_index < self.releases.len()
            && self.releases[self.next_release_index].ready_at <= now
        {
            let r = self.releases[self.next_release_index];
            self.next_release_index += 1;
            self.ap.push(r.request);
            self.transfer();
        }
        while self.lp_next_index < self.lp_releases.len()
            && self.lp_releases[self.lp_next_index].0 <= now
        {
            self.lp_pending.push(self.lp_releases[self.lp_next_index]);
            self.lp_next_index += 1;
        }
    }

    /// AP → stack transfer: fill free stack slots with the most urgent AP
    /// requests.
    fn transfer(&mut self) {
        while !self.stack.is_full() {
            match self.ap.pop() {
                Some(r) => {
                    let ok = self.stack.try_push(r);
                    debug_assert!(ok);
                }
                None => break,
            }
        }
    }

    fn record(&mut self, req: &Request, completion: Time) {
        let obs = &mut self.observations[req.stream.0];
        let resp = completion - req.release;
        obs.max_response = obs.max_response.max(resp);
        obs.completed += 1;
        if resp > self.deadlines[req.stream.0] {
            obs.misses += 1;
        }
    }
}

/// Runs the simulation.
///
/// # Panics
/// Panics if the network has no masters or a non-positive token-pass time
/// (time could stall).
pub fn simulate_network(net: &SimNetwork, config: &NetworkSimConfig) -> NetworkSimResult {
    simulate_inner(net, config, None)
}

/// Runs the simulation while recording up to `trace_capacity` bus events.
///
/// Tracing does not perturb the simulation: the result equals
/// [`simulate_network`]'s for the same inputs.
pub fn simulate_network_traced(
    net: &SimNetwork,
    config: &NetworkSimConfig,
    trace_capacity: usize,
) -> (NetworkSimResult, crate::network::trace::Trace) {
    let mut trace = crate::network::trace::Trace::new(trace_capacity);
    let result = simulate_inner(net, config, Some(&mut trace));
    (result, trace)
}

fn simulate_inner(
    net: &SimNetwork,
    config: &NetworkSimConfig,
    mut trace: Option<&mut crate::network::trace::Trace>,
) -> NetworkSimResult {
    use crate::network::trace::TraceEvent;
    assert!(!net.masters.is_empty(), "network needs at least one master");
    assert!(
        net.token_pass.is_positive(),
        "token pass time must be positive"
    );
    let mut rng = SimRng::seed_from_u64(config.seed);
    let mut masters: Vec<MasterState> = net
        .masters
        .iter()
        .map(|m| build_master(m, net.ttr, config, &mut rng))
        .collect();
    let mut fault_rng = rng.fork();
    // Uniform duration in [⌈(1-v)·Ch⌉, Ch] under cycle-undershoot
    // injection; always Ch otherwise.
    let mut sample_duration = move |ch: Time| -> Time {
        if config.cycle_undershoot <= 0.0 {
            return ch;
        }
        let v = config.cycle_undershoot.min(1.0);
        let lo = Time::new(((ch.ticks() as f64) * (1.0 - v)).ceil().max(1.0) as i64);
        lo + fault_rng.time_in(ch - lo)
    };
    let mut loss_rng = SimRng::seed_from_u64(config.seed ^ 0x70CE_55E5);
    let mut recoveries: u64 = 0;

    let mut now = Time::ZERO;
    let mut holder = 0usize;
    while now < config.horizon {
        let m = &mut masters[holder];
        m.visits += 1;
        // TRR measurement: the timer records arrival-to-arrival spans.
        let prev_start = m.timer.trr_started_at();
        let hold = m.timer.on_token_arrival(now);
        if m.first_arrival_seen {
            m.max_trr = m.max_trr.max(now - prev_start);
        }
        m.first_arrival_seen = true;
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(
                now,
                TraceEvent::TokenArrival {
                    master: holder,
                    tth: hold.tth_at_arrival,
                },
            );
        }

        m.sync(now);

        // Step 2: one guaranteed high-priority cycle.
        if let Some(req) = m.stack.pop() {
            m.sync(now); // releases strictly before start already synced
            m.transfer(); // slot freed at transmission start
            let start = now;
            now += sample_duration(req.cycle_time);
            m.sync(now);
            m.record(&req, now);
            if let Some(tr) = trace.as_deref_mut() {
                tr.record(
                    start,
                    TraceEvent::HighCycle {
                        master: holder,
                        stream: req.stream,
                        start,
                        end: now,
                    },
                );
            }

            // Step 3: more high-priority cycles while TTH > 0 at start.
            while hold.may_start_additional_high(now) && !m.stack.is_empty() {
                let req = m.stack.pop().expect("non-empty");
                m.transfer();
                let start = now;
                now += sample_duration(req.cycle_time);
                m.sync(now);
                m.record(&req, now);
                if let Some(tr) = trace.as_deref_mut() {
                    tr.record(
                        start,
                        TraceEvent::HighCycle {
                            master: holder,
                            stream: req.stream,
                            start,
                            end: now,
                        },
                    );
                }
            }
        }

        // Step 4: low-priority cycles while TTH > 0 at start and no
        // high-priority request pends (checked at each cycle start).
        while hold.may_start_low(now) && m.stack.is_empty() {
            // Oldest ready low-priority request.
            let pos = m
                .lp_pending
                .iter()
                .enumerate()
                .min_by_key(|(_, &(ready, _))| ready)
                .map(|(i, _)| i);
            let Some(pos) = pos else { break };
            let (_, cycle) = m.lp_pending.remove(pos);
            let start = now;
            now += sample_duration(cycle);
            m.lp_completed += 1;
            m.sync(now);
            if let Some(tr) = trace.as_deref_mut() {
                tr.record(
                    start,
                    TraceEvent::LowCycle {
                        master: holder,
                        start,
                        end: now,
                    },
                );
            }
        }

        // Step 5: pass the token (possibly losing it).
        now += net.token_pass;
        if config.token_loss_prob > 0.0 && loss_rng.unit() < config.token_loss_prob {
            // Lost token: the bus goes silent until the lowest-address
            // master's claim timeout fires; it then re-originates the
            // token (see profirt_profibus::fdl::token_recovery_timeout).
            now += config.slot_time * 6;
            recoveries += 1;
            holder = 0;
            if let Some(tr) = trace.as_deref_mut() {
                tr.record(now, TraceEvent::Recovery { claimant: 0 });
            }
        } else {
            let next = (holder + 1) % masters.len();
            if let Some(tr) = trace.as_deref_mut() {
                tr.record(
                    now,
                    TraceEvent::TokenPass {
                        from: holder,
                        to: next,
                    },
                );
            }
            holder = next;
        }
    }

    NetworkSimResult {
        streams: masters.iter().map(|m| m.observations.clone()).collect(),
        max_trr: masters.iter().map(|m| m.max_trr).collect(),
        token_visits: masters.iter().map(|m| m.visits).collect(),
        low_completed: masters.iter().map(|m| m.lp_completed).collect(),
        token_recoveries: recoveries,
    }
}

fn build_master(
    cfg: &crate::network::config::SimMaster,
    ttr: Time,
    run: &NetworkSimConfig,
    rng: &mut SimRng,
) -> MasterState {
    // Deadline-monotonic static priorities for the DM policy (§4
    // inheritance), assigned by deadline order with index tiebreak.
    let dm_order = cfg.streams.indices_by_deadline();
    let mut priority_of = vec![0u32; cfg.streams.len()];
    for (rank, &idx) in dm_order.iter().enumerate() {
        priority_of[idx] = rank as u32;
    }

    let mut releases: Vec<PendingRelease> = Vec::new();
    for (i, s) in cfg.streams.iter() {
        let offset = match run.offsets {
            OffsetMode::Synchronous => Time::ZERO,
            OffsetMode::Random => rng.time_in(s.t - Time::ONE),
        };
        let mut arrival = offset;
        let mut first = true;
        while arrival < run.horizon {
            let jitter = match run.jitter {
                JitterInjection::None => Time::ZERO,
                JitterInjection::FirstLate => {
                    if first {
                        s.j
                    } else {
                        Time::ZERO
                    }
                }
                JitterInjection::Random => rng.time_in(s.j),
            };
            let ready = arrival + jitter;
            releases.push(PendingRelease {
                ready_at: ready,
                request: Request {
                    stream: StreamId(i),
                    release: ready,
                    abs_deadline: ready + s.d,
                    priority: profirt_base::Priority(priority_of[i]),
                    cycle_time: s.ch,
                },
            });
            arrival += s.t;
            first = false;
        }
    }
    releases.sort_by_key(|r| r.ready_at);

    let mut lp_releases: Vec<(Time, Time)> = Vec::new();
    for lp in &cfg.low_priority {
        let mut t0 = Time::ZERO;
        while t0 < run.horizon {
            lp_releases.push((t0, lp.cycle_time));
            t0 += lp.period;
        }
    }
    lp_releases.sort_by_key(|&(r, _)| r);

    MasterState {
        timer: TokenTimer::new(ttr),
        ap: ApQueue::new(cfg.policy),
        stack: if cfg.stack_capacity == usize::MAX {
            StackQueue::new(usize::MAX - 1)
        } else {
            StackQueue::new(cfg.stack_capacity)
        },
        releases,
        next_release_index: 0,
        lp_pending: Vec::new(),
        lp_next_index: 0,
        lp_releases,
        deadlines: cfg.streams.streams().iter().map(|s| s.d).collect(),
        observations: vec![StreamObservation::default(); cfg.streams.len()],
        max_trr: Time::ZERO,
        visits: 0,
        lp_completed: 0,
        first_arrival_seen: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::config::SimMaster;
    use profirt_base::time::t;
    use profirt_base::StreamSet;
    use profirt_profibus::{LowPriorityTraffic, QueuePolicy};

    fn one_master_net(streams: &[(i64, i64, i64)], policy: QueuePolicy) -> SimNetwork {
        let s = StreamSet::from_cdt(streams).unwrap();
        let m = match policy {
            QueuePolicy::Fcfs => SimMaster::stock(s),
            p => SimMaster::priority_queued(s, p),
        };
        SimNetwork {
            masters: vec![m],
            ttr: t(2_000),
            token_pass: t(100),
        }
    }

    fn run(net: &SimNetwork, horizon: i64) -> NetworkSimResult {
        simulate_network(
            net,
            &NetworkSimConfig {
                horizon: t(horizon),
                ..Default::default()
            },
        )
    }

    #[test]
    fn single_stream_served_every_rotation() {
        let net = one_master_net(&[(100, 5_000, 10_000)], QueuePolicy::Fcfs);
        let r = run(&net, 100_000);
        let obs = r.streams[0][0];
        assert!(obs.completed >= 9, "completed {}", obs.completed);
        assert_eq!(obs.misses, 0);
        // Single master alone: the request waits at most one rotation
        // (token_pass) + own cycle.
        assert!(obs.max_response <= t(100 + 100));
    }

    #[test]
    fn token_rotation_measured() {
        let net = one_master_net(&[(100, 5_000, 10_000)], QueuePolicy::Fcfs);
        let r = run(&net, 100_000);
        assert!(r.token_visits[0] > 100);
        // Rotation of a single idle-ish master: token_pass (+cycle when
        // serving). Max TRR bounded by pass + cycle.
        assert!(r.max_trr[0] <= t(200));
        assert!(r.max_trr_overall() >= t(100));
    }

    #[test]
    fn fcfs_priority_inversion_observed_dm_queue_removes_it() {
        // Three streams, same period; the lax ones flood first. Under FCFS
        // the tight stream waits behind both; under DM it jumps the AP
        // queue and pays at most the single stack-slot blocking cycle.
        let streams = [
            (400, 100_000, 10_000), // lax: index 0 (queued first on ties)
            (400, 100_000, 10_000), // lax: index 1
            (400, 2_500, 10_000),   // tight: index 2
        ];
        let fcfs = run(&one_master_net(&streams, QueuePolicy::Fcfs), 1_000_000);
        let dm = run(
            &one_master_net(&streams, QueuePolicy::DeadlineMonotonic),
            1_000_000,
        );
        let tight_fcfs = fcfs.streams[0][2].max_response;
        let tight_dm = dm.streams[0][2].max_response;
        assert!(
            tight_dm < tight_fcfs,
            "DM {tight_dm:?} should beat FCFS {tight_fcfs:?} for the tight stream"
        );
    }

    #[test]
    fn edf_queue_orders_by_absolute_deadline() {
        let streams = [(400, 50_000, 10_000), (400, 2_000, 10_000)];
        let edf = run(&one_master_net(&streams, QueuePolicy::Edf), 1_000_000);
        let fcfs = run(&one_master_net(&streams, QueuePolicy::Fcfs), 1_000_000);
        assert!(edf.streams[0][1].max_response <= fcfs.streams[0][1].max_response);
    }

    #[test]
    fn late_token_still_serves_one_high_priority_cycle() {
        // Master 0 has a long low-priority cycle that overruns TTH; master 1
        // then receives a late token but must still get one high cycle out.
        let m0 = SimMaster::stock(StreamSet::new(vec![]).unwrap())
            .with_low_priority(LowPriorityTraffic::new(t(3_000), t(4_000)));
        let m1 = SimMaster::stock(StreamSet::from_cdt(&[(200, 8_000, 4_000)]).unwrap());
        let net = SimNetwork {
            masters: vec![m0, m1],
            ttr: t(1_000),
            token_pass: t(100),
        };
        let r = run(&net, 500_000);
        let obs = r.streams[1][0];
        assert!(obs.completed > 50, "high traffic starved: {obs:?}");
        assert_eq!(obs.misses, 0, "one-per-visit guarantee violated");
        // Token genuinely runs late: TRR exceeds TTR somewhere.
        assert!(r.max_trr_overall() > t(1_000));
    }

    #[test]
    fn tth_overrun_low_priority_cycle_completes() {
        // A single master whose low-priority cycle is longer than TTR: the
        // cycle starts with TTH > 0 and always overruns; it must still
        // complete (counted), and the rotation stretches accordingly.
        let m = SimMaster::stock(StreamSet::new(vec![]).unwrap())
            .with_low_priority(LowPriorityTraffic::new(t(5_000), t(6_000)));
        let net = SimNetwork {
            masters: vec![m],
            ttr: t(1_000),
            token_pass: t(100),
        };
        let r = run(&net, 200_000);
        assert!(r.low_completed[0] > 10);
        assert!(r.max_trr[0] >= t(5_000));
    }

    #[test]
    fn low_priority_starved_on_late_token() {
        // Heavy high-priority load keeps TTH at zero: low priority barely
        // runs (only when TTH > 0 and no high pending).
        let m = SimMaster::stock(StreamSet::from_cdt(&[(900, 50_000, 1_000)]).unwrap())
            .with_low_priority(LowPriorityTraffic::new(t(500), t(1_000)));
        let net = SimNetwork {
            masters: vec![m],
            ttr: t(500), // rotation always exceeds TTR with the high cycle
            token_pass: t(100),
        };
        let r = run(&net, 300_000);
        let high = r.streams[0][0];
        assert!(high.completed > 100);
        // Low priority: essentially starved.
        assert!(
            r.low_completed[0] <= 2,
            "low-priority cycles ran on a late token: {}",
            r.low_completed[0]
        );
    }

    #[test]
    fn stack_slot_blocking_matches_architecture() {
        // §4 architecture: urgent request released just after a lax one has
        // dropped into the single stack slot suffers exactly one cycle of
        // blocking. With an unbounded stack + FCFS it waits behind ALL of
        // them.
        let streams = [
            (500, 100_000, 20_000), // lax 0
            (500, 100_000, 20_000), // lax 1
            (500, 100_000, 20_000), // lax 2
            (500, 1_500, 20_000),   // tight (released last on ties)
        ];
        let pq = run(
            &one_master_net(&streams, QueuePolicy::DeadlineMonotonic),
            1_000_000,
        );
        let stock = run(&one_master_net(&streams, QueuePolicy::Fcfs), 1_000_000);
        let tight_pq = pq.streams[0][3].max_response;
        let tight_stock = stock.streams[0][3].max_response;
        // Stock: waits behind 3 lax cycles; PQ: at most 1 blocking cycle.
        assert!(tight_pq < tight_stock);
        assert_eq!(pq.streams[0][3].misses, 0);
        assert!(stock.streams[0][3].misses > 0);
    }

    #[test]
    fn random_offsets_and_jitter_reproducible() {
        let s = StreamSet::from_cdtj(&[(200, 8_000, 10_000, 2_000)]).unwrap();
        let net = SimNetwork {
            masters: vec![SimMaster::priority_queued(s, QueuePolicy::Edf)],
            ttr: t(2_000),
            token_pass: t(100),
        };
        let cfg = NetworkSimConfig {
            horizon: t(200_000),
            seed: 99,
            offsets: OffsetMode::Random,
            jitter: JitterInjection::Random,
            ..Default::default()
        };
        let a = simulate_network(&net, &cfg);
        let b = simulate_network(&net, &cfg);
        assert_eq!(a, b, "same seed must reproduce identical results");
        let c = simulate_network(&net, &NetworkSimConfig { seed: 100, ..cfg });
        // Different seed may (and here does) change observations.
        assert!(
            a.streams != c.streams || a.max_trr != c.max_trr || a == c,
            "sanity"
        );
    }

    #[test]
    fn first_late_jitter_mode() {
        let s = StreamSet::from_cdtj(&[(200, 8_000, 10_000, 3_000)]).unwrap();
        let net = SimNetwork {
            masters: vec![SimMaster::priority_queued(s, QueuePolicy::Edf)],
            ttr: t(2_000),
            token_pass: t(100),
        };
        let r = simulate_network(
            &net,
            &NetworkSimConfig {
                horizon: t(100_000),
                jitter: JitterInjection::FirstLate,
                ..Default::default()
            },
        );
        // Still completes everything on a quiet bus.
        assert!(r.streams[0][0].completed > 5);
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        let net = one_master_net(&[(200, 8_000, 10_000)], QueuePolicy::Fcfs);
        let cfg = NetworkSimConfig {
            horizon: t(300_000),
            ..Default::default()
        };
        let plain = simulate_network(&net, &cfg);
        let (traced, trace) = simulate_network_traced(&net, &cfg, 10_000);
        assert_eq!(plain, traced);
        assert!(!trace.events().is_empty());
        // Every rotation extracted from the trace matches the measured
        // max TRR.
        let worst_rotation = trace
            .rotations(0)
            .iter()
            .map(|&(a, b)| b - a)
            .max()
            .unwrap();
        assert_eq!(worst_rotation, traced.max_trr[0]);
        // The render contains cycles and passes.
        let text = trace.render();
        assert!(text.contains("token pass"));
        assert!(text.contains("high S0"));
    }

    #[test]
    fn trace_records_recoveries() {
        let net = one_master_net(&[(200, 20_000, 10_000)], QueuePolicy::Fcfs);
        let (result, trace) = simulate_network_traced(
            &net,
            &NetworkSimConfig {
                horizon: t(400_000),
                token_loss_prob: 0.1,
                ..Default::default()
            },
            50_000,
        );
        let traced_recoveries = trace
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, crate::network::trace::TraceEvent::Recovery { .. }))
            .count() as u64;
        assert_eq!(traced_recoveries, result.token_recoveries);
        assert!(traced_recoveries > 0);
    }

    #[test]
    fn zero_fault_config_matches_baseline() {
        let net = one_master_net(&[(200, 8_000, 10_000)], QueuePolicy::Fcfs);
        let base = run(&net, 300_000);
        let faulty_off = simulate_network(
            &net,
            &NetworkSimConfig {
                horizon: t(300_000),
                token_loss_prob: 0.0,
                cycle_undershoot: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(base, faulty_off);
        assert_eq!(base.token_recoveries, 0);
    }

    #[test]
    fn token_loss_recovers_and_traffic_continues() {
        let net = one_master_net(&[(200, 20_000, 10_000)], QueuePolicy::Fcfs);
        let obs = simulate_network(
            &net,
            &NetworkSimConfig {
                horizon: t(1_000_000),
                token_loss_prob: 0.05,
                ..Default::default()
            },
        );
        assert!(
            obs.token_recoveries > 10,
            "losses injected but not observed"
        );
        // Traffic still flows: the claim timeout recovers every loss.
        assert!(obs.streams[0][0].completed > 50);
        // Recovery stretches rotations past the loss-free TRR.
        let clean = run(&net, 1_000_000);
        assert!(obs.max_trr_overall() > clean.max_trr_overall());
    }

    #[test]
    fn token_loss_is_deterministic_per_seed() {
        let net = one_master_net(&[(200, 20_000, 10_000)], QueuePolicy::Edf);
        let cfg = NetworkSimConfig {
            horizon: t(500_000),
            token_loss_prob: 0.1,
            cycle_undershoot: 0.3,
            seed: 42,
            ..Default::default()
        };
        assert_eq!(simulate_network(&net, &cfg), simulate_network(&net, &cfg));
    }

    #[test]
    fn cycle_undershoot_stays_within_worst_case_bound() {
        // Shorter actual cycles do NOT imply shorter observed responses
        // (a request can *just miss* a token visit it would have caught
        // under worst-case durations — a classic timing anomaly), but the
        // analytical worst-case bound, computed from the full `Ch`, must
        // still dominate. Single master, single stream: one rotation
        // (TTR + CM + pass) plus the own cycle is a safe manual bound.
        let streams = [(400, 20_000, 10_000)];
        let net = one_master_net(&streams, QueuePolicy::Fcfs);
        let bound = net.ttr + t(400) + net.token_pass + t(400);
        for undershoot in [0.0, 0.25, 0.5, 0.9] {
            let obs = simulate_network(
                &net,
                &NetworkSimConfig {
                    horizon: t(1_000_000),
                    cycle_undershoot: undershoot,
                    ..Default::default()
                },
            );
            assert!(
                obs.streams[0][0].max_response <= bound,
                "undershoot {undershoot}: {:?} > bound {:?}",
                obs.streams[0][0].max_response,
                bound
            );
            assert_eq!(obs.token_recoveries, 0);
            assert!(obs.streams[0][0].completed > 50);
        }
    }

    #[test]
    #[should_panic(expected = "at least one master")]
    fn empty_network_panics() {
        let net = SimNetwork {
            masters: vec![],
            ttr: t(1_000),
            token_pass: t(100),
        };
        let _ = run(&net, 1_000);
    }
}
