//! The network simulation API.
//!
//! ## Execution rules (paper §3.1, implemented literally)
//!
//! On token arrival at master `k` at time `t`:
//!
//! 1. `TTH ← TTR − TRR`; restart `TRR` ([`profirt_profibus::TokenTimer`]).
//! 2. If high-priority requests are pending, execute **one** high-priority
//!    message cycle unconditionally (even on a late token).
//! 3. While `TTH > 0` *at cycle start* and high-priority requests pend,
//!    execute further high-priority cycles (each runs to completion —
//!    TTH overrun).
//! 4. While `TTH > 0` at cycle start and low-priority requests pend,
//!    execute low-priority cycles (same overrun rule).
//! 5. Pass the token to the next master (`token_pass` ticks).
//!
//! ## Queue semantics (paper §4)
//!
//! Requests are *released* into the AP queue (ordered per the master's
//! policy) and trickle into the communication-stack FCFS queue **in real
//! time**: whenever the stack has a free slot, the most urgent AP request
//! drops in immediately. The stack slot frees when a transmission starts.
//! This real-time transfer is exactly what creates the one-cycle priority
//! inversion ("blocking") the analyses charge: an urgent request released
//! a moment after a lax one finds the stack slot already taken. With
//! `stack_capacity = usize::MAX` and an FCFS AP queue this degrades to the
//! stock single-FCFS-queue behaviour of §3.
//!
//! ## Architecture
//!
//! The execution itself lives in the streaming
//! [`kernel`](crate::network::kernel): lazy per-stream release generators
//! merged on demand (O(streams) memory at any horizon) feeding the token
//! loop, which emits a [`NetEvent`] stream. The functions here are thin
//! observer assemblies over that kernel — results, traces, and percentile
//! statistics are all [`Observer`]s. The pre-streaming implementation is
//! retained as [`crate::network::reference`] for differential testing and
//! benchmarking.

use profirt_base::Time;
use serde::{Deserialize, Serialize};

use crate::engine::observer::{HistSummary, Observer};
use crate::network::config::{NetworkSimConfig, SimNetwork};
use crate::network::kernel::{run_network, KernelMemStats};
use crate::network::observe::{
    ModeStats, ModeSummary, NetEvent, ResponseStats, ResultObserver, RingStats, RingSummary,
    TraceObserver, TrrStats,
};

/// Observations for one stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct StreamObservation {
    /// Largest observed response time (ready instant → cycle completion).
    pub max_response: Time,
    /// Completed message cycles.
    pub completed: u64,
    /// Deadline misses (response > D).
    pub misses: u64,
}

/// Whole-run result.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct NetworkSimResult {
    /// Per-master, per-stream observations.
    pub streams: Vec<Vec<StreamObservation>>,
    /// Largest observed real token rotation time per master.
    pub max_trr: Vec<Time>,
    /// Token visits per master.
    pub token_visits: Vec<u64>,
    /// Completed low-priority cycles per master.
    pub low_completed: Vec<u64>,
    /// Number of token losses recovered via the claim timeout (fault
    /// injection; zero when `token_loss_prob == 0`).
    pub token_recoveries: u64,
}

impl NetworkSimResult {
    /// `true` iff no stream missed a deadline.
    pub fn no_misses(&self) -> bool {
        self.streams.iter().flatten().all(|o| o.misses == 0)
    }

    /// The largest observed TRR across all masters.
    pub fn max_trr_overall(&self) -> Time {
        self.max_trr.iter().copied().max().unwrap_or(Time::ZERO)
    }
}

/// Constant-memory distribution statistics of one simulation run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NetworkSimStats {
    /// Response-time distribution of every completed high-priority cycle,
    /// pooled over all masters and streams.
    pub response: HistSummary,
    /// Distribution of measured token rotation times, pooled over all
    /// masters.
    pub trr: HistSummary,
    /// Rotation-time distributions segmented by live ring size (ascending
    /// by size) — one entry per size the ring actually held while a
    /// rotation completed. A static run has a single entry.
    pub trr_by_ring_size: Vec<(usize, HistSummary)>,
    /// Ring-membership timeline summary (min/max/final size, event
    /// counts). Static runs report the configured size and zero events.
    pub ring: RingSummary,
    /// Mixed-criticality mode summary (switches, sheds, match-ups). All
    /// zeros when the mode controller is disabled.
    pub mode: ModeSummary,
    /// Peak memory indicators of the kernel run.
    pub mem: KernelMemStats,
}

/// Runs the simulation.
///
/// # Panics
/// Panics if the network has no masters or a non-positive token-pass time
/// (time could stall).
pub fn simulate_network(net: &SimNetwork, config: &NetworkSimConfig) -> NetworkSimResult {
    simulate_network_observed(net, config, &mut [])
}

/// Runs the simulation with additional custom observers attached.
///
/// Observers are passive: the result equals [`simulate_network`]'s for
/// the same inputs, whatever the observer set.
pub fn simulate_network_observed(
    net: &SimNetwork,
    config: &NetworkSimConfig,
    observers: &mut [&mut dyn Observer<NetEvent>],
) -> NetworkSimResult {
    let mut result = ResultObserver::new(net);
    {
        let mut all: Vec<&mut dyn Observer<NetEvent>> = Vec::with_capacity(observers.len() + 1);
        all.push(&mut result);
        for obs in observers.iter_mut() {
            all.push(&mut **obs);
        }
        run_network(net, config, &mut all);
    }
    result.into_result()
}

/// Runs the simulation while recording up to `trace_capacity` bus events.
///
/// Tracing does not perturb the simulation: the result equals
/// [`simulate_network`]'s for the same inputs.
pub fn simulate_network_traced(
    net: &SimNetwork,
    config: &NetworkSimConfig,
    trace_capacity: usize,
) -> (NetworkSimResult, crate::network::trace::Trace) {
    let mut tracer = TraceObserver::new(trace_capacity);
    let result = simulate_network_observed(net, config, &mut [&mut tracer]);
    (result, tracer.trace)
}

/// Runs the simulation with the statistics observers attached, returning
/// the run result plus response/TRR distribution summaries and the
/// kernel's peak-memory indicators.
pub fn simulate_network_stats(
    net: &SimNetwork,
    config: &NetworkSimConfig,
) -> (NetworkSimResult, NetworkSimStats) {
    let initial_ring = net.masters.len() - config.membership.initially_off().len();
    let mut result = ResultObserver::new(net);
    let mut response = ResponseStats::new();
    let mut trr = TrrStats::with_ring_size(initial_ring);
    let mut ring = RingStats::new(initial_ring);
    let mut mode = ModeStats::new(net);
    let mem = run_network(
        net,
        config,
        &mut [&mut result, &mut response, &mut trr, &mut ring, &mut mode],
    );
    (
        result.into_result(),
        NetworkSimStats {
            response: response.hist.summary(),
            trr: trr.hist.summary(),
            trr_by_ring_size: trr.per_size(),
            ring: ring.summary(),
            mode: mode.summary(),
            mem,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::config::{JitterInjection, OffsetMode, SimMaster};
    use crate::network::reference::simulate_network_materialized;
    use profirt_base::time::t;
    use profirt_base::{MasterAddr, StreamSet};
    use profirt_profibus::{LowPriorityTraffic, QueuePolicy};

    fn one_master_net(streams: &[(i64, i64, i64)], policy: QueuePolicy) -> SimNetwork {
        let s = StreamSet::from_cdt(streams).unwrap();
        let m = match policy {
            QueuePolicy::Fcfs => SimMaster::stock(s),
            p => SimMaster::priority_queued(s, p),
        };
        SimNetwork {
            masters: vec![m],
            ttr: t(2_000),
            token_pass: t(100),
        }
    }

    fn run(net: &SimNetwork, horizon: i64) -> NetworkSimResult {
        simulate_network(
            net,
            &NetworkSimConfig {
                horizon: t(horizon),
                ..Default::default()
            },
        )
    }

    #[test]
    fn single_stream_served_every_rotation() {
        let net = one_master_net(&[(100, 5_000, 10_000)], QueuePolicy::Fcfs);
        let r = run(&net, 100_000);
        let obs = r.streams[0][0];
        assert!(obs.completed >= 9, "completed {}", obs.completed);
        assert_eq!(obs.misses, 0);
        // Single master alone: the request waits at most one rotation
        // (token_pass) + own cycle.
        assert!(obs.max_response <= t(100 + 100));
    }

    #[test]
    fn token_rotation_measured() {
        let net = one_master_net(&[(100, 5_000, 10_000)], QueuePolicy::Fcfs);
        let r = run(&net, 100_000);
        assert!(r.token_visits[0] > 100);
        // Rotation of a single idle-ish master: token_pass (+cycle when
        // serving). Max TRR bounded by pass + cycle.
        assert!(r.max_trr[0] <= t(200));
        assert!(r.max_trr_overall() >= t(100));
    }

    #[test]
    fn fcfs_priority_inversion_observed_dm_queue_removes_it() {
        // Three streams, same period; the lax ones flood first. Under FCFS
        // the tight stream waits behind both; under DM it jumps the AP
        // queue and pays at most the single stack-slot blocking cycle.
        let streams = [
            (400, 100_000, 10_000), // lax: index 0 (queued first on ties)
            (400, 100_000, 10_000), // lax: index 1
            (400, 2_500, 10_000),   // tight: index 2
        ];
        let fcfs = run(&one_master_net(&streams, QueuePolicy::Fcfs), 1_000_000);
        let dm = run(
            &one_master_net(&streams, QueuePolicy::DeadlineMonotonic),
            1_000_000,
        );
        let tight_fcfs = fcfs.streams[0][2].max_response;
        let tight_dm = dm.streams[0][2].max_response;
        assert!(
            tight_dm < tight_fcfs,
            "DM {tight_dm:?} should beat FCFS {tight_fcfs:?} for the tight stream"
        );
    }

    #[test]
    fn edf_queue_orders_by_absolute_deadline() {
        let streams = [(400, 50_000, 10_000), (400, 2_000, 10_000)];
        let edf = run(&one_master_net(&streams, QueuePolicy::Edf), 1_000_000);
        let fcfs = run(&one_master_net(&streams, QueuePolicy::Fcfs), 1_000_000);
        assert!(edf.streams[0][1].max_response <= fcfs.streams[0][1].max_response);
    }

    #[test]
    fn late_token_still_serves_one_high_priority_cycle() {
        // Master 0 has a long low-priority cycle that overruns TTH; master 1
        // then receives a late token but must still get one high cycle out.
        let m0 = SimMaster::stock(StreamSet::new(vec![]).unwrap())
            .with_low_priority(LowPriorityTraffic::new(t(3_000), t(4_000)));
        let m1 = SimMaster::stock(StreamSet::from_cdt(&[(200, 8_000, 4_000)]).unwrap());
        let net = SimNetwork {
            masters: vec![m0, m1],
            ttr: t(1_000),
            token_pass: t(100),
        };
        let r = run(&net, 500_000);
        let obs = r.streams[1][0];
        assert!(obs.completed > 50, "high traffic starved: {obs:?}");
        assert_eq!(obs.misses, 0, "one-per-visit guarantee violated");
        // Token genuinely runs late: TRR exceeds TTR somewhere.
        assert!(r.max_trr_overall() > t(1_000));
    }

    #[test]
    fn tth_overrun_low_priority_cycle_completes() {
        // A single master whose low-priority cycle is longer than TTR: the
        // cycle starts with TTH > 0 and always overruns; it must still
        // complete (counted), and the rotation stretches accordingly.
        let m = SimMaster::stock(StreamSet::new(vec![]).unwrap())
            .with_low_priority(LowPriorityTraffic::new(t(5_000), t(6_000)));
        let net = SimNetwork {
            masters: vec![m],
            ttr: t(1_000),
            token_pass: t(100),
        };
        let r = run(&net, 200_000);
        assert!(r.low_completed[0] > 10);
        assert!(r.max_trr[0] >= t(5_000));
    }

    #[test]
    fn low_priority_starved_on_late_token() {
        // Heavy high-priority load keeps TTH at zero: low priority barely
        // runs (only when TTH > 0 and no high pending).
        let m = SimMaster::stock(StreamSet::from_cdt(&[(900, 50_000, 1_000)]).unwrap())
            .with_low_priority(LowPriorityTraffic::new(t(500), t(1_000)));
        let net = SimNetwork {
            masters: vec![m],
            ttr: t(500), // rotation always exceeds TTR with the high cycle
            token_pass: t(100),
        };
        let r = run(&net, 300_000);
        let high = r.streams[0][0];
        assert!(high.completed > 100);
        // Low priority: essentially starved.
        assert!(
            r.low_completed[0] <= 2,
            "low-priority cycles ran on a late token: {}",
            r.low_completed[0]
        );
    }

    #[test]
    fn stack_slot_blocking_matches_architecture() {
        // §4 architecture: urgent request released just after a lax one has
        // dropped into the single stack slot suffers exactly one cycle of
        // blocking. With an unbounded stack + FCFS it waits behind ALL of
        // them.
        let streams = [
            (500, 100_000, 20_000), // lax 0
            (500, 100_000, 20_000), // lax 1
            (500, 100_000, 20_000), // lax 2
            (500, 1_500, 20_000),   // tight (released last on ties)
        ];
        let pq = run(
            &one_master_net(&streams, QueuePolicy::DeadlineMonotonic),
            1_000_000,
        );
        let stock = run(&one_master_net(&streams, QueuePolicy::Fcfs), 1_000_000);
        let tight_pq = pq.streams[0][3].max_response;
        let tight_stock = stock.streams[0][3].max_response;
        // Stock: waits behind 3 lax cycles; PQ: at most 1 blocking cycle.
        assert!(tight_pq < tight_stock);
        assert_eq!(pq.streams[0][3].misses, 0);
        assert!(stock.streams[0][3].misses > 0);
    }

    #[test]
    fn random_offsets_and_jitter_reproducible() {
        let s = StreamSet::from_cdtj(&[(200, 8_000, 10_000, 2_000)]).unwrap();
        let net = SimNetwork {
            masters: vec![SimMaster::priority_queued(s, QueuePolicy::Edf)],
            ttr: t(2_000),
            token_pass: t(100),
        };
        let cfg = NetworkSimConfig {
            horizon: t(200_000),
            seed: 99,
            offsets: OffsetMode::Random,
            jitter: JitterInjection::Random,
            ..Default::default()
        };
        let a = simulate_network(&net, &cfg);
        let b = simulate_network(&net, &cfg);
        assert_eq!(a, b, "same seed must reproduce identical results");
        let c = simulate_network(&net, &NetworkSimConfig { seed: 100, ..cfg });
        // Different seed may (and here does) change observations.
        assert!(
            a.streams != c.streams || a.max_trr != c.max_trr || a == c,
            "sanity"
        );
    }

    #[test]
    fn first_late_jitter_mode() {
        let s = StreamSet::from_cdtj(&[(200, 8_000, 10_000, 3_000)]).unwrap();
        let net = SimNetwork {
            masters: vec![SimMaster::priority_queued(s, QueuePolicy::Edf)],
            ttr: t(2_000),
            token_pass: t(100),
        };
        let r = simulate_network(
            &net,
            &NetworkSimConfig {
                horizon: t(100_000),
                jitter: JitterInjection::FirstLate,
                ..Default::default()
            },
        );
        // Still completes everything on a quiet bus.
        assert!(r.streams[0][0].completed > 5);
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        let net = one_master_net(&[(200, 8_000, 10_000)], QueuePolicy::Fcfs);
        let cfg = NetworkSimConfig {
            horizon: t(300_000),
            ..Default::default()
        };
        let plain = simulate_network(&net, &cfg);
        let (traced, trace) = simulate_network_traced(&net, &cfg, 10_000);
        assert_eq!(plain, traced);
        assert!(!trace.events().is_empty());
        // Every rotation extracted from the trace matches the measured
        // max TRR.
        let worst_rotation = trace
            .rotations(0)
            .iter()
            .map(|&(a, b)| b - a)
            .max()
            .unwrap();
        assert_eq!(worst_rotation, traced.max_trr[0]);
        // The render contains cycles and passes.
        let text = trace.render();
        assert!(text.contains("token pass"));
        assert!(text.contains("high S0"));
    }

    #[test]
    fn trace_records_recoveries() {
        let net = one_master_net(&[(200, 20_000, 10_000)], QueuePolicy::Fcfs);
        let (result, trace) = simulate_network_traced(
            &net,
            &NetworkSimConfig {
                horizon: t(400_000),
                token_loss_prob: 0.1,
                ..Default::default()
            },
            50_000,
        );
        let traced_recoveries = trace
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, crate::network::trace::TraceEvent::Recovery { .. }))
            .count() as u64;
        assert_eq!(traced_recoveries, result.token_recoveries);
        assert!(traced_recoveries > 0);
    }

    #[test]
    fn zero_fault_config_matches_baseline() {
        let net = one_master_net(&[(200, 8_000, 10_000)], QueuePolicy::Fcfs);
        let base = run(&net, 300_000);
        let faulty_off = simulate_network(
            &net,
            &NetworkSimConfig {
                horizon: t(300_000),
                token_loss_prob: 0.0,
                cycle_undershoot: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(base, faulty_off);
        assert_eq!(base.token_recoveries, 0);
    }

    #[test]
    fn token_loss_recovers_and_traffic_continues() {
        let net = one_master_net(&[(200, 20_000, 10_000)], QueuePolicy::Fcfs);
        let obs = simulate_network(
            &net,
            &NetworkSimConfig {
                horizon: t(1_000_000),
                token_loss_prob: 0.05,
                ..Default::default()
            },
        );
        assert!(
            obs.token_recoveries > 10,
            "losses injected but not observed"
        );
        // Traffic still flows: the claim timeout recovers every loss.
        assert!(obs.streams[0][0].completed > 50);
        // Recovery stretches rotations past the loss-free TRR.
        let clean = run(&net, 1_000_000);
        assert!(obs.max_trr_overall() > clean.max_trr_overall());
    }

    #[test]
    fn token_loss_is_deterministic_per_seed() {
        let net = one_master_net(&[(200, 20_000, 10_000)], QueuePolicy::Edf);
        let cfg = NetworkSimConfig {
            horizon: t(500_000),
            token_loss_prob: 0.1,
            cycle_undershoot: 0.3,
            seed: 42,
            ..Default::default()
        };
        assert_eq!(simulate_network(&net, &cfg), simulate_network(&net, &cfg));
    }

    #[test]
    fn recovery_delay_routes_through_fdl_timeout() {
        // The claim timeout is TTO = (6 + 2·addr)·TSL for the claimant's
        // FDL address. Default addressing (ring index) pins the historical
        // 6·TSL delay; explicit addresses stagger it. With loss
        // probability 1 every single pass is lost, so each rotation is
        // exactly serve + pass + TTO and the TTO difference shows up
        // tick-for-tick in the measured max TRR.
        let slot = t(200);
        let mk = |addr: Option<MasterAddr>| {
            let mut m = SimMaster::stock(StreamSet::from_cdt(&[(200, 50_000, 10_000)]).unwrap());
            m.addr = addr;
            SimNetwork {
                masters: vec![m],
                ttr: t(2_000),
                token_pass: t(100),
            }
        };
        let cfg = NetworkSimConfig {
            horizon: t(500_000),
            token_loss_prob: 1.0,
            slot_time: slot,
            ..Default::default()
        };
        let base = simulate_network(&mk(None), &cfg);
        assert!(base.token_recoveries > 0);
        // Address 5 claims (6 + 10)·TSL after the silence begins: every
        // rotation is exactly 10·TSL longer than under address 0.
        let staggered = simulate_network(&mk(Some(MasterAddr(5))), &cfg);
        assert_eq!(
            staggered.max_trr_overall() - base.max_trr_overall(),
            slot * 10,
            "recovery delay must follow token_recovery_timeout(params, addr)"
        );
    }

    #[test]
    fn lowest_address_master_claims_lost_tokens() {
        // Master 1 has the lower FDL address: it, not ring index 0, must
        // re-originate every lost token.
        let mk = |addr: u8| {
            SimMaster::stock(StreamSet::from_cdt(&[(200, 50_000, 10_000)]).unwrap())
                .with_addr(MasterAddr(addr))
        };
        let net = SimNetwork {
            masters: vec![mk(7), mk(2)],
            ttr: t(2_000),
            token_pass: t(100),
        };
        let (result, trace) = simulate_network_traced(
            &net,
            &NetworkSimConfig {
                horizon: t(500_000),
                token_loss_prob: 0.2,
                ..Default::default()
            },
            100_000,
        );
        assert!(result.token_recoveries > 0);
        for (_, e) in trace.events() {
            if let crate::network::trace::TraceEvent::Recovery { claimant } = e {
                assert_eq!(*claimant, 1, "claimant must be the lowest-address master");
            }
        }
    }

    #[test]
    fn cycle_undershoot_stays_within_worst_case_bound() {
        // Shorter actual cycles do NOT imply shorter observed responses
        // (a request can *just miss* a token visit it would have caught
        // under worst-case durations — a classic timing anomaly), but the
        // analytical worst-case bound, computed from the full `Ch`, must
        // still dominate. Single master, single stream: one rotation
        // (TTR + CM + pass) plus the own cycle is a safe manual bound.
        let streams = [(400, 20_000, 10_000)];
        let net = one_master_net(&streams, QueuePolicy::Fcfs);
        let bound = net.ttr + t(400) + net.token_pass + t(400);
        for undershoot in [0.0, 0.25, 0.5, 0.9] {
            let obs = simulate_network(
                &net,
                &NetworkSimConfig {
                    horizon: t(1_000_000),
                    cycle_undershoot: undershoot,
                    ..Default::default()
                },
            );
            assert!(
                obs.streams[0][0].max_response <= bound,
                "undershoot {undershoot}: {:?} > bound {:?}",
                obs.streams[0][0].max_response,
                bound
            );
            assert_eq!(obs.token_recoveries, 0);
            assert!(obs.streams[0][0].completed > 50);
        }
    }

    #[test]
    fn stats_observers_summarize_the_run() {
        let net = one_master_net(
            &[(200, 8_000, 10_000), (300, 9_000, 15_000)],
            QueuePolicy::Fcfs,
        );
        let cfg = NetworkSimConfig {
            horizon: t(500_000),
            ..Default::default()
        };
        let plain = simulate_network(&net, &cfg);
        let (result, stats) = simulate_network_stats(&net, &cfg);
        // Stats collection is passive.
        assert_eq!(plain, result);
        // Every completed cycle was sampled.
        let completed: u64 = result.streams.iter().flatten().map(|o| o.completed).sum();
        assert_eq!(stats.response.count, completed);
        // The exact max matches the result's max response.
        let max_resp = result
            .streams
            .iter()
            .flatten()
            .map(|o| o.max_response)
            .max()
            .unwrap();
        assert_eq!(stats.response.max, max_resp);
        assert!(stats.response.p95 <= stats.response.p99);
        assert!(stats.response.p99 <= stats.response.max);
        // TRR: max matches, one sample per measured rotation.
        assert_eq!(stats.trr.max, result.max_trr_overall());
        assert_eq!(stats.trr.count, result.token_visits[0] - 1);
        // O(streams) release state: 2 stream heads plus 2 primed
        // look-ahead slots (generators keep `peek_ready` answerable from
        // buffered state), no jitter look-ahead.
        assert!(stats.mem.peak_release_buffer <= 4);
        // The default config fast-forwards this mostly-idle single-master
        // run: far fewer executed visits than token visits.
        assert!(stats.mem.rotations_fast_forwarded > 0);
        assert!(stats.mem.visits_simulated < result.token_visits[0]);
        assert_eq!(
            stats.mem.visits_simulated + stats.mem.rotations_fast_forwarded,
            result.token_visits[0],
            "single master: every token visit is either executed or skipped"
        );
    }

    #[test]
    fn mode_controller_sheds_and_matches_up_under_churn() {
        use crate::network::config::{MembershipPlan, ModeSimConfig};
        use profirt_base::Criticality;

        // Two masters; master 0 carries one HI and one LO stream. Power-
        // cycling master 1 degrades the mode (ring shrinks), sheds the LO
        // stream, and matches back up after the rejoin.
        let net = SimNetwork {
            masters: vec![
                SimMaster::stock(
                    StreamSet::from_cdt(&[(100, 5_000, 10_000), (100, 5_000, 10_000)]).unwrap(),
                )
                .with_criticality(vec![Criticality::Hi, Criticality::Lo]),
                SimMaster::stock(StreamSet::from_cdt(&[(100, 5_000, 10_000)]).unwrap()),
            ],
            ttr: t(2_000),
            token_pass: t(100),
        };
        let cfg = NetworkSimConfig {
            horizon: t(400_000),
            gap_factor: 2,
            membership: MembershipPlan::new().power_cycle(1, t(50_000), t(80_000)),
            mode: ModeSimConfig::enabled(),
            ..Default::default()
        };
        let (result, stats) = simulate_network_stats(&net, &cfg);
        // Degrade on the leave, match-up after the rejoin.
        assert!(
            stats.mode.switches >= 2,
            "switches: {}",
            stats.mode.switches
        );
        assert!(stats.mode.sheds > 0, "no LO request was shed");
        assert!(stats.mode.matchups >= 1);
        assert!(stats.mode.max_time_to_matchup.is_positive());
        // The LO stream still ran outside the degraded window.
        assert!(result.streams[0][1].completed > 0);
        // The same run without the controller sheds nothing.
        let (_, blind) = simulate_network_stats(
            &net,
            &NetworkSimConfig {
                mode: ModeSimConfig::default(),
                ..cfg.clone()
            },
        );
        assert_eq!(blind.mode.switches, 0);
        assert_eq!(blind.mode.sheds, 0);
    }

    #[test]
    fn mode_disabled_run_is_untouched_by_criticality_labels() {
        // Criticality labels are inert without the controller: results
        // are identical to the unlabelled network, event for event.
        let streams = [(400, 9_000, 10_000), (250, 4_000, 7_000)];
        let labelled = {
            let mut net = one_master_net(&streams, QueuePolicy::Fcfs);
            net.masters[0].criticality =
                vec![profirt_base::Criticality::Lo, profirt_base::Criticality::Hi];
            net
        };
        let plain = one_master_net(&streams, QueuePolicy::Fcfs);
        let cfg = NetworkSimConfig {
            horizon: t(300_000),
            ..Default::default()
        };
        assert_eq!(
            simulate_network(&labelled, &cfg),
            simulate_network(&plain, &cfg)
        );
    }

    #[test]
    fn streaming_matches_materialized_reference() {
        // Smoke-level differential (the property tests sweep this space):
        // the streaming kernel and the pre-materialized baseline must
        // agree exactly, including under fault injection.
        let streams = [(400, 9_000, 10_000), (250, 4_000, 7_000)];
        for policy in [
            QueuePolicy::Fcfs,
            QueuePolicy::DeadlineMonotonic,
            QueuePolicy::Edf,
        ] {
            let mut net = one_master_net(&streams, policy);
            net.masters[0]
                .low_priority
                .push(LowPriorityTraffic::new(t(300), t(5_000)));
            let cfg = NetworkSimConfig {
                horizon: t(400_000),
                offsets: OffsetMode::Random,
                jitter: JitterInjection::FirstLate,
                token_loss_prob: 0.05,
                cycle_undershoot: 0.2,
                seed: 7,
                ..Default::default()
            };
            assert_eq!(
                simulate_network(&net, &cfg),
                simulate_network_materialized(&net, &cfg),
                "policy {policy:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one master")]
    fn empty_network_panics() {
        let net = SimNetwork {
            masters: vec![],
            ttr: t(1_000),
            token_pass: t(100),
        };
        let _ = run(&net, 1_000);
    }
}
