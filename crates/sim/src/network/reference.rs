//! The pre-materialized reference network simulator.
//!
//! This is the pre-streaming implementation kept as an executable
//! specification: it drains the same lazy release generators into sorted
//! `Vec`s up front (O(horizon × streams) memory) and runs the identical
//! §3.1 token loop with index pointers and linear-scan low-priority
//! selection. Two consumers depend on it:
//!
//! * the differential property tests, which pin the streaming kernel's
//!   results byte-for-byte against this baseline across random networks,
//!   seeds, jitter modes, and queue policies;
//! * the `sim_kernel` benchmark, which quantifies the streaming kernel's
//!   advantage over pre-materialization.
//!
//! It is **not** part of the supported simulation API and gets no
//! observer pipeline; use [`crate::network::simulate_network`].

use profirt_base::release::MergedReleases;
use profirt_base::Time;
use profirt_profibus::{ApQueue, Request, StackCapacity, StackQueue, TokenTimer};
use profirt_workload::{low_priority_release_gens, stream_release_gens};

use crate::engine::SimRng;
use crate::network::config::{NetworkSimConfig, SimMaster, SimNetwork};
use crate::network::kernel::recovery_rule;
use crate::network::sim::{NetworkSimResult, StreamObservation};

struct MasterState {
    timer: TokenTimer,
    ap: ApQueue,
    stack: StackQueue,
    /// Every high-priority release of the run, materialized and sorted
    /// ascending by ready time (consumed from the front).
    releases: Vec<(Time, Request)>,
    next_release_index: usize,
    /// Low-priority pending queue: ready instants of generated requests.
    lp_pending: Vec<(Time, Time)>, // (ready, cycle_time)
    lp_next_index: usize,
    lp_releases: Vec<(Time, Time)>,
    observations: Vec<StreamObservation>,
    max_trr: Time,
    visits: u64,
    lp_completed: u64,
    first_arrival_seen: bool,
}

impl MasterState {
    /// Moves releases that became ready by `now` into the AP queue, doing
    /// the real-time AP→stack transfer at each release instant.
    fn sync(&mut self, now: Time) {
        while self.next_release_index < self.releases.len()
            && self.releases[self.next_release_index].0 <= now
        {
            let (_, r) = self.releases[self.next_release_index];
            self.next_release_index += 1;
            self.ap.push(r);
            self.transfer();
        }
        while self.lp_next_index < self.lp_releases.len()
            && self.lp_releases[self.lp_next_index].0 <= now
        {
            self.lp_pending.push(self.lp_releases[self.lp_next_index]);
            self.lp_next_index += 1;
        }
    }

    fn transfer(&mut self) {
        while !self.stack.is_full() {
            match self.ap.pop() {
                Some(r) => {
                    let ok = self.stack.try_push(r);
                    debug_assert!(ok);
                }
                None => break,
            }
        }
    }

    fn record(&mut self, req: &Request, completion: Time) {
        let obs = &mut self.observations[req.stream.0];
        obs.max_response = obs.max_response.max(completion - req.release);
        obs.completed += 1;
        if completion > req.abs_deadline {
            obs.misses += 1;
        }
    }
}

fn build_master(
    cfg: &SimMaster,
    ttr: Time,
    run: &NetworkSimConfig,
    rng: &mut SimRng,
) -> MasterState {
    // Materialize the full horizon: the memory profile the streaming
    // kernel exists to avoid.
    let releases = MergedReleases::new(stream_release_gens(
        &cfg.streams,
        run.horizon,
        run.offsets,
        run.jitter,
        rng,
    ))
    .drain_to_vec();
    let lp_releases =
        MergedReleases::new(low_priority_release_gens(&cfg.low_priority, run.horizon))
            .drain_to_vec();

    MasterState {
        timer: TokenTimer::new(ttr),
        ap: ApQueue::new(cfg.policy),
        stack: StackQueue::with_capacity(StackCapacity::from_config(cfg.stack_capacity)),
        releases,
        next_release_index: 0,
        lp_pending: Vec::new(),
        lp_next_index: 0,
        lp_releases,
        observations: vec![StreamObservation::default(); cfg.streams.len()],
        max_trr: Time::ZERO,
        visits: 0,
        lp_completed: 0,
        first_arrival_seen: false,
    }
}

/// Runs the pre-materialized baseline simulation.
///
/// # Panics
/// Panics if the network has no masters or a non-positive token-pass time
/// (time could stall).
pub fn simulate_network_materialized(
    net: &SimNetwork,
    config: &NetworkSimConfig,
) -> NetworkSimResult {
    if let Err(e) = net.validate() {
        panic!("{e}");
    }
    assert!(
        config.is_static_ring(),
        "the materialized reference models the static §3.1 ring only; \
         membership churn and GAP polling are kernel-only features"
    );
    let mut rng = SimRng::seed_from_u64(config.seed);
    let mut masters: Vec<MasterState> = net
        .masters
        .iter()
        .map(|m| build_master(m, net.ttr, config, &mut rng))
        .collect();
    let mut fault_rng = rng.fork();
    let mut sample_duration = move |ch: Time| -> Time {
        if config.cycle_undershoot <= 0.0 {
            return ch;
        }
        let v = config.cycle_undershoot.min(1.0);
        let lo = Time::new(((ch.ticks() as f64) * (1.0 - v)).ceil().max(1.0) as i64);
        lo + fault_rng.time_in(ch - lo)
    };
    let mut loss_rng = SimRng::seed_from_u64(config.seed ^ 0x70CE_55E5);
    let (claimant, recovery_timeout) = recovery_rule(net, config);
    let mut recoveries: u64 = 0;

    let mut now = Time::ZERO;
    let mut holder = 0usize;
    while now < config.horizon {
        let m = &mut masters[holder];
        m.visits += 1;
        let prev_start = m.timer.trr_started_at();
        let hold = m.timer.on_token_arrival(now);
        if m.first_arrival_seen {
            m.max_trr = m.max_trr.max(now - prev_start);
        }
        m.first_arrival_seen = true;

        m.sync(now);

        // Step 2: one guaranteed high-priority cycle.
        if let Some(req) = m.stack.pop() {
            m.sync(now);
            m.transfer();
            now += sample_duration(req.cycle_time);
            m.sync(now);
            m.record(&req, now);

            // Step 3: more high-priority cycles while TTH > 0 at start.
            while hold.may_start_additional_high(now) && !m.stack.is_empty() {
                let req = m.stack.pop().expect("non-empty");
                m.transfer();
                now += sample_duration(req.cycle_time);
                m.sync(now);
                m.record(&req, now);
            }
        }

        // Step 4: low-priority cycles while TTH > 0 at start and no
        // high-priority request pends.
        while hold.may_start_low(now) && m.stack.is_empty() {
            // Oldest ready low-priority request, by linear scan.
            let pos = m
                .lp_pending
                .iter()
                .enumerate()
                .min_by_key(|(_, &(ready, _))| ready)
                .map(|(i, _)| i);
            let Some(pos) = pos else { break };
            let (_, cycle) = m.lp_pending.remove(pos);
            now += sample_duration(cycle);
            m.lp_completed += 1;
            m.sync(now);
        }

        // Step 5: pass the token (possibly losing it).
        now += net.token_pass;
        if config.token_loss_prob > 0.0 && loss_rng.unit() < config.token_loss_prob {
            now += recovery_timeout;
            recoveries += 1;
            holder = claimant;
        } else {
            holder = (holder + 1) % masters.len();
        }
    }

    NetworkSimResult {
        streams: masters.iter().map(|m| m.observations.clone()).collect(),
        max_trr: masters.iter().map(|m| m.max_trr).collect(),
        token_visits: masters.iter().map(|m| m.visits).collect(),
        low_completed: masters.iter().map(|m| m.lp_completed).collect(),
        token_recoveries: recoveries,
    }
}
