//! PROFIBUS network simulator.
//!
//! Executes the token-passing algorithm of the paper's §3.1 *verbatim* over
//! a configurable set of masters, measuring per-stream message response
//! times, token rotation times and deadline misses. See [`simulate_network`] for the
//! execution rules and the AP-queue/stack-queue transfer semantics that
//! realise the §4 architecture.
//!
//! Structure: [`kernel`] is the streaming execution engine (lazy release
//! generators → deterministic merge → token loop → event stream);
//! [`observe`] holds the event type and the built-in observers (results,
//! traces, percentile statistics, ring-membership timelines);
//! [`membership`] scripts ring churn (a [`MembershipPlan`] of power-on /
//! power-off / crash events driving the DIN 19245 FDL machinery through
//! [`profirt_profibus::RingController`]); [`mode`] runs the
//! mixed-criticality overload/match-up state machine over the dynamic
//! loop; [`mod@reference`] retains the pre-materialized baseline for
//! differential tests and benchmarks — it models the static §3.1 ring
//! only.

mod config;
pub mod kernel;
pub mod membership;
pub mod mode;
pub mod observe;
pub mod reference;
mod sim;
pub mod trace;

pub use config::{
    JitterInjection, NetworkSimConfig, OffsetMode, SimMaster, SimNetwork, SimNetworkError,
};
pub use kernel::{run_network, KernelMemStats};
pub use membership::{MembershipAction, MembershipEvent, MembershipPlan};
pub use mode::{ModeController, ModeSimConfig, ModeTransition};
pub use observe::{
    ModeStats, ModeSummary, NetEvent, ResponseStats, ResultObserver, RingStats, RingSummary,
    StableResponseObserver, TraceObserver, TrrStats,
};
pub use reference::simulate_network_materialized;
pub use sim::{
    simulate_network, simulate_network_observed, simulate_network_stats, simulate_network_traced,
    NetworkSimResult, NetworkSimStats, StreamObservation,
};
pub use trace::{Trace, TraceEvent};
