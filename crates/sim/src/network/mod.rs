//! PROFIBUS network simulator.
//!
//! Executes the token-passing algorithm of the paper's §3.1 *verbatim* over
//! a configurable set of masters, measuring per-stream message response
//! times, token rotation times and deadline misses. See [`simulate_network`] for the
//! execution rules and the AP-queue/stack-queue transfer semantics that
//! realise the §4 architecture.

mod config;
mod sim;
pub mod trace;

pub use config::{JitterInjection, NetworkSimConfig, OffsetMode, SimMaster, SimNetwork};
pub use sim::{simulate_network, simulate_network_traced, NetworkSimResult, StreamObservation};
pub use trace::{Trace, TraceEvent};
