//! The mixed-criticality mode controller.
//!
//! [`ModeController`] is the single owner of the run's criticality-mode
//! state (the `profirt-lint` `mode` rule bans mutating it anywhere else).
//! It implements a two-state machine over the dynamic token loop:
//!
//! ```text
//!            ring shrinks (MasterLeave), or
//!            TRR > degrade_factor·TTR on `degrade_arrivals`
//!            consecutive measured arrivals
//!   ┌────┐ ─────────────────────────────────────────────▶ ┌────┐
//!   │ LO │                                                │ HI │
//!   └────┘ ◀───────────────────────────────────────────── └────┘
//!            match-up: full ring AND ≥ matchup_factor·TTR
//!            of uninterrupted clean rotations (TRR ≤ TTR)
//! ```
//!
//! In **LO** (nominal) mode every stream is admitted. In **HI**
//! (degraded) mode the kernel sheds sub-HI releases at admission — they
//! never enter the AP queue — so HI traffic competes only against HI
//! traffic and the HI-mode bounds of
//! [`profirt_core::ModeAnalysis`](../../../profirt_core/mode/struct.ModeAnalysis.html)
//! apply. Requests already queued when the mode switches are not
//! recalled: shedding is admission control, per the match-up model
//! (aborting in-flight bus cycles is not physical).
//!
//! The *match-up* phase is the recovery contract: LO traffic is
//! re-admitted only after the controller has observed a full ring and a
//! span of clean rotations (`TRR ≤ TTR`) of at least `matchup_factor ·
//! TTR`, i.e. the nominal timeline has genuinely resumed. The span from
//! degradation to the completed match-up is the `time_to_matchup`
//! statistic.

use profirt_base::Time;
use serde::{Deserialize, Serialize};

/// Mode-controller parameters (a field of
/// [`NetworkSimConfig`](crate::network::NetworkSimConfig)).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct ModeSimConfig {
    /// Enables the controller. Disabled (the default) the simulator is
    /// criticality-blind and every pre-existing run is byte-identical;
    /// enabling it routes the run through the dynamic loop even without
    /// churn or GAP polling (overload detection needs live TRR).
    pub enabled: bool,
    /// Overload threshold: a measured rotation counts as overloaded when
    /// `TRR > degrade_factor · TTR`.
    pub degrade_factor: u32,
    /// Consecutive overloaded arrivals required before degrading (ring
    /// shrinkage degrades immediately, without this filter).
    pub degrade_arrivals: u32,
    /// Match-up span: LO traffic is re-admitted after `matchup_factor ·
    /// TTR` of uninterrupted clean rotations on a full ring.
    pub matchup_factor: u32,
}

impl ModeSimConfig {
    /// An enabled controller with the default thresholds.
    pub fn enabled() -> ModeSimConfig {
        ModeSimConfig {
            enabled: true,
            ..ModeSimConfig::default()
        }
    }
}

impl Default for ModeSimConfig {
    fn default() -> Self {
        ModeSimConfig {
            enabled: false,
            degrade_factor: 2,
            degrade_arrivals: 2,
            matchup_factor: 2,
        }
    }
}

/// A mode transition decided by the controller; the kernel turns it into
/// the matching [`NetEvent`](crate::network::observe::NetEvent)s.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModeTransition {
    /// Enter HI (degraded) mode: start shedding sub-HI traffic.
    Degrade,
    /// Match-up complete, back to LO mode; `waited` is the span from
    /// degradation (`time_to_matchup`).
    Matchup {
        /// Degradation instant → match-up completion.
        waited: Time,
    },
}

/// The run-wide criticality-mode state machine (see the module docs).
#[derive(Clone, Debug)]
pub struct ModeController {
    cfg: ModeSimConfig,
    ttr: Time,
    full_size: usize,
    size: usize,
    degraded: bool,
    degraded_at: Time,
    /// Consecutive overloaded arrivals observed in LO mode.
    over_streak: u32,
    /// Start of the current clean full-ring rotation streak (HI mode).
    clean_since: Option<Time>,
}

impl ModeController {
    /// A controller for a ring of `full_size` masters, `initial_size` of
    /// them powered at time zero. Starting below full membership starts
    /// the run degraded (LO traffic is only admitted once the ring has
    /// formed and matched up); this initial degradation is a starting
    /// state, not a transition — no event is emitted for it.
    pub fn new(
        ttr: Time,
        full_size: usize,
        initial_size: usize,
        cfg: ModeSimConfig,
    ) -> ModeController {
        ModeController {
            cfg,
            ttr,
            full_size,
            size: initial_size,
            degraded: initial_size < full_size,
            degraded_at: Time::ZERO,
            over_streak: 0,
            clean_since: None,
        }
    }

    /// `true` while sub-HI releases must be shed (HI mode).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    fn degrade(&mut self, now: Time) -> Option<ModeTransition> {
        if self.degraded {
            return None;
        }
        self.degraded = true;
        self.degraded_at = now;
        self.over_streak = 0;
        self.clean_since = None;
        Some(ModeTransition::Degrade)
    }

    /// Feeds a ring-membership change (one join or leave, mirroring the
    /// kernel's `MasterJoin` / `MasterLeave` events). Shrinking below full
    /// membership degrades immediately.
    pub fn on_membership(&mut self, now: Time, joined: bool) -> Option<ModeTransition> {
        if joined {
            self.size += 1;
        } else {
            self.size = self.size.saturating_sub(1);
            // Any shrink interrupts a clean streak even if the ring was
            // already below full (the rotation set changed under us).
            self.clean_since = None;
        }
        if self.size < self.full_size {
            self.degrade(now)
        } else {
            None
        }
    }

    /// Feeds a token arrival (`trr` as measured by the arriving master,
    /// `None` on its first arrival). In LO mode this drives overload
    /// detection; in HI mode, match-up progress.
    pub fn on_token_arrival(&mut self, now: Time, trr: Option<Time>) -> Option<ModeTransition> {
        let trr = trr?;
        if !self.degraded {
            if trr > self.ttr * self.cfg.degrade_factor as i64 {
                self.over_streak += 1;
                if self.over_streak >= self.cfg.degrade_arrivals {
                    return self.degrade(now);
                }
            } else {
                self.over_streak = 0;
            }
            return None;
        }
        // HI mode: a match-up needs a full ring and a clean streak.
        if self.size < self.full_size || trr > self.ttr {
            self.clean_since = None;
            return None;
        }
        let since = *self.clean_since.get_or_insert(now);
        if now - since >= self.ttr * self.cfg.matchup_factor as i64 {
            self.degraded = false;
            self.clean_since = None;
            self.over_streak = 0;
            return Some(ModeTransition::Matchup {
                waited: now - self.degraded_at,
            });
        }
        None
    }

    /// Batch-feeds an idle span of token arrivals — every arrival
    /// measuring the same full-ring rotation `trr`, the first at `first`,
    /// the last at `last` — in O(1). Returns `true` when the whole span
    /// was absorbed with *no transition possible at any arrival in it*
    /// (the state afterwards equals feeding each arrival through
    /// [`ModeController::on_token_arrival`]). Returns `false`, mutating
    /// nothing, when some arrival in the span could fire a transition:
    /// the kernel must then fall back to per-visit simulation so the
    /// transition is emitted at its exact instant. This is the assertion
    /// the fast-forward relies on — a skipped idle span can never trip
    /// the TRR-overload trigger or swallow a match-up.
    ///
    /// Callers must hold the span preconditions: full ring membership
    /// throughout (no shrink trigger can arise) and a constant `trr`.
    pub fn on_idle_span(&mut self, first: Time, last: Time, trr: Time) -> bool {
        debug_assert!(
            self.size == self.full_size,
            "idle spans require a full ring"
        );
        debug_assert!(first <= last);
        if !self.degraded {
            // LO mode: a clean rotation resets the overload streak at
            // every arrival. An overloaded idle rotation (TTR below the
            // ring cost) could degrade mid-span — refuse the batch.
            if trr > self.ttr * self.cfg.degrade_factor as i64 {
                return false;
            }
            self.over_streak = 0;
            return true;
        }
        // HI mode: dirty idle rotations only reset the clean streak;
        // clean ones make match-up progress, and the span must stop
        // strictly before the match-up would complete.
        if trr > self.ttr {
            self.clean_since = None;
            return true;
        }
        let since = self.clean_since.unwrap_or(first);
        if last - since >= self.ttr * self.cfg.matchup_factor as i64 {
            return false;
        }
        self.clean_since = Some(since);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    fn ctrl() -> ModeController {
        ModeController::new(t(1_000), 3, 3, ModeSimConfig::enabled())
    }

    #[test]
    fn shrinkage_degrades_immediately_and_once() {
        let mut c = ctrl();
        assert!(!c.degraded());
        assert_eq!(c.on_membership(t(50), false), Some(ModeTransition::Degrade));
        assert!(c.degraded());
        // Further shrinks while degraded are not new transitions.
        assert_eq!(c.on_membership(t(60), false), None);
    }

    #[test]
    fn overload_needs_consecutive_arrivals() {
        let mut c = ctrl();
        let over = Some(t(2_500)); // > 2 · TTR
        let clean = Some(t(900));
        assert_eq!(c.on_token_arrival(t(10), over), None); // streak 1
        assert_eq!(c.on_token_arrival(t(20), clean), None); // streak reset
        assert_eq!(c.on_token_arrival(t(30), over), None); // streak 1
        assert_eq!(
            c.on_token_arrival(t(40), over),
            Some(ModeTransition::Degrade)
        );
        assert!(c.degraded());
    }

    #[test]
    fn first_arrivals_and_boundary_rotations_do_not_degrade() {
        let mut c = ctrl();
        assert_eq!(c.on_token_arrival(t(10), None), None);
        // Exactly at the threshold is not overloaded (strict >).
        for at in [20, 30, 40, 50] {
            assert_eq!(c.on_token_arrival(t(at), Some(t(2_000))), None);
        }
        assert!(!c.degraded());
    }

    #[test]
    fn matchup_requires_full_ring_and_a_clean_span() {
        let mut c = ctrl();
        c.on_membership(t(100), false); // degrade at 100
                                        // Ring still short: clean rotations do not count.
        assert_eq!(c.on_token_arrival(t(200), Some(t(500))), None);
        c.on_membership(t(300), true); // back to full size
        assert_eq!(c.on_token_arrival(t(400), Some(t(500))), None); // streak starts
        assert_eq!(c.on_token_arrival(t(1_400), Some(t(500))), None); // 1000 < 2·TTR
                                                                      // A dirty rotation resets the streak.
        assert_eq!(c.on_token_arrival(t(2_000), Some(t(1_500))), None);
        assert_eq!(c.on_token_arrival(t(2_100), Some(t(500))), None); // new streak
        let got = c.on_token_arrival(t(4_200), Some(t(500)));
        assert_eq!(got, Some(ModeTransition::Matchup { waited: t(4_100) }));
        assert!(!c.degraded());
    }

    #[test]
    fn idle_span_batches_match_per_arrival_feeding() {
        // LO, clean rotations: batch == feeding every arrival.
        let mut batch = ctrl();
        let mut per = ctrl();
        let trr = t(600);
        assert!(batch.on_idle_span(t(100), t(1_900), trr));
        for at in (100..2_000).step_by(200) {
            assert_eq!(per.on_token_arrival(t(at), Some(trr)), None);
        }
        assert_eq!(batch.degraded(), per.degraded());

        // LO, overloaded idle rotations (TTR below the ring cost): the
        // batch refuses rather than arming the overload trigger.
        let mut c = ModeController::new(t(100), 3, 3, ModeSimConfig::enabled());
        assert!(!c.on_idle_span(t(0), t(10_000), t(600)));
        assert!(!c.degraded(), "a refused span mutates nothing");

        // HI, clean rotations short of the match-up span: absorbed.
        let mut c = ctrl();
        c.on_membership(t(0), false);
        c.on_membership(t(50), true);
        assert!(c.on_idle_span(t(100), t(1_500), t(600)));
        assert!(c.degraded());
        // Extending past matchup_factor·TTR of clean streak: refused, so
        // the per-visit path emits the Matchup at its exact arrival.
        assert!(!c.on_idle_span(t(1_600), t(2_200), t(600)));
        assert_eq!(
            c.on_token_arrival(t(2_100), Some(t(600))),
            Some(ModeTransition::Matchup { waited: t(2_100) })
        );

        // HI, dirty idle rotations (TTR below ring cost) reset the clean
        // streak, exactly like per-arrival feeding.
        let mut c = ModeController::new(t(100), 3, 2, ModeSimConfig::enabled());
        c.on_membership(t(10), true);
        assert!(c.on_idle_span(t(20), t(5_000), t(600)));
        assert!(c.degraded(), "dirty rotations never match up");
    }

    #[test]
    fn starting_below_full_membership_starts_degraded() {
        let mut c = ModeController::new(t(1_000), 3, 2, ModeSimConfig::enabled());
        assert!(c.degraded());
        // The missing master joins; match-up measures from time zero.
        c.on_membership(t(500), true);
        assert_eq!(c.on_token_arrival(t(600), Some(t(400))), None);
        assert_eq!(
            c.on_token_arrival(t(2_700), Some(t(400))),
            Some(ModeTransition::Matchup { waited: t(2_700) })
        );
    }
}
