//! The streaming network-simulation kernel.
//!
//! The kernel executes the paper-literal §3.1 token algorithm (see
//! [`simulate_network`](crate::network::simulate_network) for the rule list) against **lazy** release
//! generators: per-stream [`StreamReleases`] and per-source
//! [`LowPriorityReleases`] are merged through deterministic k-way merges,
//! so the kernel holds O(streams) release state at any horizon — no
//! release vector is ever materialized. Pending low-priority work sits in
//! a heap-backed [`EventQueue`] (ready-ordered, FIFO among equals),
//! replacing the former linear-scan `Vec`.
//!
//! The kernel aggregates nothing: it emits a [`NetEvent`] stream into the
//! observer pipeline. Results, traces, and percentile statistics are all
//! observers (see [`crate::network::observe`]).
//!
//! ## Static and dynamic rings
//!
//! With an empty [`MembershipPlan`](crate::network::MembershipPlan) and
//! GAP polling disabled (`gap_factor == 0`, the config defaults) the run
//! takes the **static-ring fast path**: the fixed master vector *is* the
//! ring, token order is ring-index order, and the event stream is
//! byte-identical to the materialized reference simulator
//! ([`crate::network::reference`]) — the differential property tests pin
//! this exactly.
//!
//! Otherwise membership is simulated state (`run_dynamic` below): every
//! master runs the DIN 19245 FDL state machine, the token travels over a
//! live [`profirt_profibus::LogicalRing`] keyed by FDL address, the
//! holder's GAP polls (one `Request FDL Status` every `G` visits,
//! consuming real token-holding time) admit listening masters after two
//! observed rotations, departures are detected through failed token
//! passes (each costing `(1 + max_retry) · (token_pass + TSL)` before the
//! successor is skipped), and a vanished token is re-originated by the
//! lowest-address powered station after its staggered claim timeout. All
//! of that protocol state lives in [`profirt_profibus::RingController`];
//! the kernel owns time and traffic. Scripted membership events apply at
//! token-visit boundaries.
//!
//! Determinism contract (both paths): for identical inputs — seed, plan,
//! and config — the kernel produces the exact same event stream, whatever
//! the observer set.

use profirt_base::release::MergedReleases;
use profirt_base::{Criticality, Time};
use profirt_profibus::fdl::token_recovery_timeout;
use profirt_profibus::{
    gap, ApQueue, BusParams, Request, RingController, StackCapacity, StackQueue, TokenTimer,
};
use profirt_workload::{
    low_priority_release_gens, stream_release_gens, LowPriorityReleases, StreamReleases,
};

use crate::engine::{EventQueue, IdleSpan, Observer, SimRng};
use crate::network::config::{MembershipAction, NetworkSimConfig, SimMaster, SimNetwork};
use crate::network::mode::{ModeController, ModeTransition};
use crate::network::observe::NetEvent;

/// Run statistics of one kernel execution: the peak memory indicators
/// that pin the O(streams) memory contract in tests (counts, not bytes —
/// both scale together), plus the executed-work counters of the idle
/// fast-forward.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KernelMemStats {
    /// Largest number of releases buffered inside any master's merged
    /// generators at a token arrival (heads + primed look-ahead slots +
    /// jitter look-ahead). Bounded by `2·streams + Σ ⌈J/T⌉` independent
    /// of the horizon.
    pub peak_release_buffer: usize,
    /// Largest number of requests pending in any master's AP + stack +
    /// low-priority queues at a token arrival (the actual backlog, which
    /// is workload-dependent).
    pub peak_pending: usize,
    /// Token visits actually executed by the per-visit loop. Visits
    /// inside fast-forwarded idle spans are *not* counted — on sparse
    /// workloads this stays sublinear in the horizon (pinned in tests).
    pub visits_simulated: u64,
    /// Whole idle token rotations skipped arithmetically by the idle
    /// fast-forward (zero when `fast_forward` is off or the run never
    /// went idle for a full rotation).
    pub rotations_fast_forwarded: u64,
}

/// The token-loss recovery rule of the static ring: the lowest-address
/// master claims the token after the FDL claim timeout
/// `TTO = (6 + 2·addr)·TSL` (DIN 19245, see
/// [`profirt_profibus::fdl::token_recovery_timeout`]). Returns the
/// claimant's ring index and the bus-silence span before its claim.
pub(crate) fn recovery_rule(net: &SimNetwork, config: &NetworkSimConfig) -> (usize, Time) {
    let claimant = (0..net.masters.len())
        .min_by_key(|&k| net.masters[k].addr_or_ring(k))
        .expect("network needs at least one master");
    let bus = BusParams::profile_500k().with_slot_time(config.slot_time);
    let timeout = token_recovery_timeout(&bus, net.masters[claimant].addr_or_ring(claimant));
    (claimant, timeout)
}

/// Per-master streaming state.
struct MasterKernel {
    timer: TokenTimer,
    ap: ApQueue,
    stack: StackQueue,
    /// Lazy high-priority releases, merged over the master's streams.
    high: MergedReleases<StreamReleases>,
    /// Lazy low-priority generations, merged over the master's sources.
    low: MergedReleases<LowPriorityReleases>,
    /// Cached `high.peek_ready()` — the idle-visit fast path is a plain
    /// compare instead of a heap peek.
    next_high: Option<Time>,
    /// Cached `low.peek_ready()`.
    next_low: Option<Time>,
    /// Ready low-priority work: heap-backed, ordered by `(ready, FIFO)`.
    /// Payload is the cycle time.
    lp_pending: EventQueue<Time>,
    first_arrival_seen: bool,
    /// Per-stream criticality (empty = all HI); drives admission-time
    /// shedding while the run's mode controller is degraded.
    criticality: Vec<Criticality>,
    /// Requests shed at admission during the current visit's syncs,
    /// buffered here so the visit can emit them as [`NetEvent::Shed`].
    shed: Vec<Request>,
}

impl MasterKernel {
    fn build(cfg: &SimMaster, ttr: Time, run: &NetworkSimConfig, rng: &mut SimRng) -> MasterKernel {
        let high = MergedReleases::new(stream_release_gens(
            &cfg.streams,
            run.horizon,
            run.offsets,
            run.jitter,
            rng,
        ));
        let low = MergedReleases::new(low_priority_release_gens(&cfg.low_priority, run.horizon));
        MasterKernel {
            timer: TokenTimer::new(ttr),
            ap: ApQueue::new(cfg.policy),
            stack: StackQueue::with_capacity(StackCapacity::from_config(cfg.stack_capacity)),
            next_high: high.peek_ready(),
            next_low: low.peek_ready(),
            high,
            low,
            lp_pending: EventQueue::new(),
            first_arrival_seen: false,
            criticality: cfg.criticality.clone(),
            shed: Vec::new(),
        }
    }

    /// Pulls releases that became ready by `now` out of the lazy
    /// generators: high-priority requests drop through the AP queue into
    /// the stack (the real-time AP→stack transfer at each release
    /// instant), low-priority generations into the pending heap. Returns
    /// `true` when anything was pulled (queue state changed).
    ///
    /// With `shed_lo` set (the run's mode controller is degraded), sub-HI
    /// requests are shed at admission: they go to the `shed` buffer
    /// instead of the AP queue. Requests admitted before the switch stay
    /// queued — shedding is admission control, not recall.
    fn sync(&mut self, now: Time, shed_lo: bool) -> bool {
        let mut pulled = false;
        while self.next_high.is_some_and(|r| r <= now) {
            let (_, request) = self.high.next_release().expect("due");
            self.next_high = self.high.peek_ready();
            let crit = self
                .criticality
                .get(request.stream.0)
                .copied()
                .unwrap_or(Criticality::Hi);
            if shed_lo && crit.shed_in_hi_mode() {
                self.shed.push(request);
            } else {
                self.ap.push(request);
                self.transfer();
            }
            pulled = true;
        }
        while self.next_low.is_some_and(|r| r <= now) {
            let (ready, cycle) = self.low.next_release().expect("due");
            self.next_low = self.low.peek_ready();
            self.lp_pending.schedule(ready, cycle);
            pulled = true;
        }
        pulled
    }

    /// AP → stack transfer: fill free stack slots with the most urgent AP
    /// requests.
    fn transfer(&mut self) {
        while !self.stack.is_full() {
            match self.ap.pop() {
                Some(r) => {
                    let ok = self.stack.try_push(r);
                    debug_assert!(ok);
                }
                None => break,
            }
        }
    }

    /// Re-initialises queue state after a power cycle: every request
    /// released while the station was off is discarded (the AP process
    /// was down), and the TRR measurement restarts on the next arrival.
    fn reboot(&mut self, now: Time) {
        self.sync(now, false);
        while self.ap.pop().is_some() {}
        while self.stack.pop().is_some() {}
        while self.lp_pending.pop().is_some() {}
        self.shed.clear();
        self.first_arrival_seen = false;
    }
}

/// Message-cycle duration sampling under the `cycle_undershoot` fault
/// model: uniform in `[⌈(1-v)·Ch⌉, Ch]` when enabled, always `Ch`
/// otherwise. One instance per run so both loop flavours consume the
/// fault RNG identically.
struct DurationSampler {
    undershoot: f64,
    rng: SimRng,
}

impl DurationSampler {
    fn sample(&mut self, ch: Time) -> Time {
        if self.undershoot <= 0.0 {
            return ch;
        }
        let v = self.undershoot.min(1.0);
        let lo = Time::new(((ch.ticks() as f64) * (1.0 - v)).ceil().max(1.0) as i64);
        lo + self.rng.time_in(ch - lo)
    }
}

fn emit(observers: &mut [&mut dyn Observer<NetEvent>], at: Time, ev: NetEvent) {
    for obs in observers.iter_mut() {
        obs.observe(at, &ev);
    }
}

/// Emits the visit's admission-shed requests (buffered by
/// [`MasterKernel::sync`]) as [`NetEvent::Shed`] at the sync instant.
fn drain_shed(
    shed: &mut Vec<Request>,
    holder: usize,
    at: Time,
    observers: &mut [&mut dyn Observer<NetEvent>],
) {
    for request in shed.drain(..) {
        emit(
            observers,
            at,
            NetEvent::Shed {
                master: holder,
                stream: request.stream,
                release: request.release,
            },
        );
    }
}

/// Turns a mode-controller transition into its event(s).
fn emit_transition(
    transition: Option<ModeTransition>,
    at: Time,
    observers: &mut [&mut dyn Observer<NetEvent>],
) {
    match transition {
        Some(ModeTransition::Degrade) => {
            emit(observers, at, NetEvent::ModeSwitch { degraded: true });
        }
        Some(ModeTransition::Matchup { waited }) => {
            emit(observers, at, NetEvent::Matchup { waited });
            emit(observers, at, NetEvent::ModeSwitch { degraded: false });
        }
        None => {}
    }
}

/// One token visit at `holder`: TRR bookkeeping and arrival emission,
/// release sync + peak tracking, then the §3.1 serve steps 2–4. Returns
/// the instant serving finished. Shared verbatim by the static and
/// dynamic loops, so the serve semantics (and RNG consumption order)
/// cannot drift apart. `shed_lo` is the run's mode-controller state for
/// this visit (always `false` on the static path): sub-HI releases synced
/// during the visit are shed at admission and emitted as
/// [`NetEvent::Shed`].
#[allow(clippy::too_many_arguments)]
fn visit(
    m: &mut MasterKernel,
    holder: usize,
    now: Time,
    durations: &mut DurationSampler,
    mem: &mut KernelMemStats,
    observers: &mut [&mut dyn Observer<NetEvent>],
    shed_lo: bool,
) -> Time {
    mem.visits_simulated += 1;

    // TRR measurement: the timer records arrival-to-arrival spans
    // (reported from the second arrival on).
    let prev_start = m.timer.trr_started_at();
    let hold = m.timer.on_token_arrival(now);
    let trr = m.first_arrival_seen.then(|| now - prev_start);
    m.first_arrival_seen = true;
    emit(
        observers,
        now,
        NetEvent::TokenArrival {
            master: holder,
            tth: hold.tth_at_arrival,
            trr,
        },
    );

    // Peak tracking only when releases were pulled: backlog and
    // look-ahead sizes only change then, so idle visits skip the
    // bookkeeping entirely.
    if m.sync(now, shed_lo) {
        mem.peak_release_buffer = mem
            .peak_release_buffer
            .max(m.high.buffered() + m.low.buffered());
        mem.peak_pending = mem
            .peak_pending
            .max(m.ap.len() + m.stack.len() + m.lp_pending.len());
        drain_shed(&mut m.shed, holder, now, observers);
    }

    let mut now = now;

    // Step 2: one guaranteed high-priority cycle.
    if let Some(request) = m.stack.pop() {
        m.sync(now, shed_lo); // releases strictly before start already synced
        m.transfer(); // slot freed at transmission start
        let start = now;
        now += durations.sample(request.cycle_time);
        m.sync(now, shed_lo);
        drain_shed(&mut m.shed, holder, now, observers);
        emit(
            observers,
            start,
            NetEvent::HighCycle {
                master: holder,
                request,
                start,
                end: now,
            },
        );

        // Step 3: more high-priority cycles while TTH > 0 at start.
        while hold.may_start_additional_high(now) && !m.stack.is_empty() {
            let request = m.stack.pop().expect("non-empty");
            m.transfer();
            let start = now;
            now += durations.sample(request.cycle_time);
            m.sync(now, shed_lo);
            drain_shed(&mut m.shed, holder, now, observers);
            emit(
                observers,
                start,
                NetEvent::HighCycle {
                    master: holder,
                    request,
                    start,
                    end: now,
                },
            );
        }
    }

    // Step 4: low-priority cycles while TTH > 0 at cycle start and no
    // high-priority request pends (checked at each cycle start).
    while hold.may_start_low(now) && m.stack.is_empty() {
        // Oldest ready low-priority request (heap pop: min ready,
        // FIFO among equals — the former linear scan's order).
        let Some((_, cycle)) = m.lp_pending.pop() else {
            break;
        };
        let start = now;
        now += durations.sample(cycle);
        m.sync(now, shed_lo);
        drain_shed(&mut m.shed, holder, now, observers);
        emit(
            observers,
            start,
            NetEvent::LowCycle {
                master: holder,
                start,
                end: now,
            },
        );
    }

    now
}

/// Runs the streaming kernel, emitting every bus event into `observers`.
///
/// Observers are passive; the event stream (and thus any result derived
/// from it) is identical for every observer set, including the empty one.
/// Returns the run's peak-memory indicators.
///
/// # Panics
/// Panics if the network fails [`SimNetwork::validate`] (no masters,
/// non-positive token pass, invalid or aliased FDL addresses) or the
/// membership plan references masters the network does not have.
pub fn run_network(
    net: &SimNetwork,
    config: &NetworkSimConfig,
    observers: &mut [&mut dyn Observer<NetEvent>],
) -> KernelMemStats {
    if let Err(e) = net.validate() {
        panic!("{e}");
    }
    if let Err(e) = config.membership.validate(net.masters.len()) {
        panic!("{e}");
    }

    let mut rng = SimRng::seed_from_u64(config.seed);
    let mut masters: Vec<MasterKernel> = net
        .masters
        .iter()
        .map(|m| MasterKernel::build(m, net.ttr, config, &mut rng))
        .collect();
    // Uniform duration in [⌈(1-v)·Ch⌉, Ch] under cycle-undershoot
    // injection; always Ch otherwise.
    let mut durations = DurationSampler {
        undershoot: config.cycle_undershoot,
        rng: rng.fork(),
    };
    let mut loss_rng = SimRng::seed_from_u64(config.seed ^ 0x70CE_55E5);
    let mut mem = KernelMemStats::default();

    if config.is_static_ring() {
        run_static(
            net,
            config,
            observers,
            &mut masters,
            &mut durations,
            &mut loss_rng,
            &mut mem,
        );
    } else {
        run_dynamic(
            net,
            config,
            observers,
            &mut masters,
            &mut durations,
            &mut loss_rng,
            &mut mem,
        );
    }
    mem
}

/// Whole idle rotations skippable from `now`, from queue state alone:
/// the horizon cap (every span visit must sit strictly before `horizon`,
/// like the per-visit loop's `now < horizon` check would place it) taken
/// to the earliest pending release across all masters (the span must pull
/// nothing, so its last visit stays strictly before every
/// `peek_ready`). Non-positive — no skip — when any master has backlog:
/// a span is pure token circulation, nothing may be queued anywhere.
///
/// Callers layer their own caps (scripted membership events, GAP-poll
/// boundaries, mode-controller arming) on top of this bound.
fn idle_rotation_cap(
    masters: &[MasterKernel],
    now: Time,
    rotation: Time,
    horizon: Time,
    token_pass: Time,
) -> i64 {
    let r = rotation.ticks();
    // Last span visit at `now + k·R − tp < horizon`.
    let mut k = ((horizon - now + token_pass).ticks() - 1) / r;
    for m in masters {
        if !(m.ap.is_empty() && m.stack.is_empty() && m.lp_pending.is_empty()) {
            return 0;
        }
        for next in [m.next_high, m.next_low].into_iter().flatten() {
            if next <= now {
                return 0;
            }
            k = k.min((next - now).ticks() / r);
        }
    }
    k
}

/// Commits one fast-forwarded span: hands the compressed rotations to
/// every observer (the default implementation replays them; hot
/// observers ingest in O(1)) and fast-forwards each visited master's
/// token timer to its **last** span arrival, so the next executed visit
/// measures the same TRR the unskipped loop would have. The visit order
/// is read back off the pattern's `TokenArrival` entries.
fn apply_idle_span(
    masters: &mut [MasterKernel],
    observers: &mut [&mut dyn Observer<NetEvent>],
    pattern: &[(Time, NetEvent)],
    start: Time,
    rotation: Time,
    k: i64,
    mem: &mut KernelMemStats,
) {
    let span = IdleSpan {
        start,
        period: rotation,
        rotations: k as u64,
        pattern,
    };
    for obs in observers.iter_mut() {
        obs.on_idle_span(&span);
    }
    let last_base = start + rotation * (k - 1);
    for (offset, ev) in pattern {
        if let NetEvent::TokenArrival { master, .. } = ev {
            let _ = masters[*master].timer.on_token_arrival(last_base + *offset);
        }
    }
    mem.rotations_fast_forwarded += k as u64;
}

/// The static-ring fast path: the pre-churn token loop, event-stream
/// byte-identical to the materialized reference.
#[allow(clippy::too_many_arguments)]
fn run_static(
    net: &SimNetwork,
    config: &NetworkSimConfig,
    observers: &mut [&mut dyn Observer<NetEvent>],
    masters: &mut [MasterKernel],
    durations: &mut DurationSampler,
    loss_rng: &mut SimRng,
    mem: &mut KernelMemStats,
) {
    let (claimant, recovery_timeout) = recovery_rule(net, config);
    let n_masters = masters.len();
    let rotation = net.token_pass * n_masters as i64;
    // The idle fast-forward needs determinism over the skipped span: with
    // token loss armed every pass draws from the loss RNG, so skipping
    // would desynchronise the fault stream. Loss-free runs (the default)
    // draw nothing on idle visits and can skip freely.
    let fast_forward = config.fast_forward && config.token_loss_prob <= 0.0;
    // Consecutive executed visits that served nothing and advanced no
    // simulation time over a clean token hop. Once every master went
    // idle in turn (`idle_streak >= n_masters`), all token timers are
    // rotation-aligned: each master's last arrival sits exactly one ring
    // cost back, so the next rotations emit the constant pattern
    // `TokenArrival { tth: TTR − R, trr: Some(R) }` / `TokenPass` until
    // a release comes due.
    let mut idle_streak = 0usize;
    let mut pattern: Vec<(Time, NetEvent)> = Vec::new();
    let mut now = Time::ZERO;
    let mut holder = 0usize;
    while now < config.horizon {
        if fast_forward && idle_streak >= n_masters {
            let k = idle_rotation_cap(masters, now, rotation, config.horizon, net.token_pass);
            if k >= 1 {
                pattern.clear();
                let tth = net.ttr - rotation;
                for j in 0..n_masters {
                    let m = (holder + j) % n_masters;
                    pattern.push((
                        net.token_pass * j as i64,
                        NetEvent::TokenArrival {
                            master: m,
                            tth,
                            trr: Some(rotation),
                        },
                    ));
                    pattern.push((
                        net.token_pass * (j + 1) as i64,
                        NetEvent::TokenPass {
                            from: m,
                            to: (m + 1) % n_masters,
                        },
                    ));
                }
                apply_idle_span(masters, observers, &pattern, now, rotation, k, mem);
                now += rotation * k;
                // After k whole rotations the token is back at `holder`,
                // and the streak (still idle) carries over.
                continue;
            }
        }

        let served_until = visit(
            &mut masters[holder],
            holder,
            now,
            durations,
            mem,
            observers,
            false,
        );
        idle_streak = if served_until == now {
            idle_streak + 1
        } else {
            0
        };
        now = served_until;

        // Step 5: pass the token (possibly losing it).
        now += net.token_pass;
        if config.token_loss_prob > 0.0 && loss_rng.unit() < config.token_loss_prob {
            // Lost token: the bus goes silent until the lowest-address
            // master's claim timeout fires; it then re-originates the
            // token.
            now += recovery_timeout;
            emit(observers, now, NetEvent::Recovery { claimant });
            holder = claimant;
            idle_streak = 0;
        } else {
            let next = (holder + 1) % n_masters;
            emit(
                observers,
                now,
                NetEvent::TokenPass {
                    from: holder,
                    to: next,
                },
            );
            holder = next;
        }
    }
}

/// The dynamic-membership loop: FDL state machines, live logical ring,
/// GAP polling, scripted churn (see the module docs for the protocol
/// summary).
#[allow(clippy::too_many_arguments)]
fn run_dynamic(
    net: &SimNetwork,
    config: &NetworkSimConfig,
    observers: &mut [&mut dyn Observer<NetEvent>],
    masters: &mut [MasterKernel],
    durations: &mut DurationSampler,
    loss_rng: &mut SimRng,
    mem: &mut KernelMemStats,
) {
    let bus = BusParams::profile_500k().with_slot_time(config.slot_time);
    let mut ctrl = RingController::new(net.addresses(), config.gap_factor)
        .expect("SimNetwork::validate checked the address plan");
    let plan = &config.membership;
    for k in 0..net.masters.len() {
        if !plan.is_initially_off(k) {
            ctrl.boot_in_ring(k);
        }
    }
    let events = plan.events();
    let mut next_event = 0usize;
    // Failed-pass detection budget: the initial attempt plus the bus
    // profile's retries, each waiting a full slot time for successor
    // activity.
    let attempts = 1 + bus.max_retry as i64;
    // The mixed-criticality mode controller (when enabled): fed from the
    // same TRR measurements and join/leave events the observers see.
    let mut mode_ctrl = config.mode.enabled.then(|| {
        let initial = (0..net.masters.len())
            .filter(|&k| !plan.is_initially_off(k))
            .count();
        ModeController::new(net.ttr, net.masters.len(), initial, config.mode)
    });

    let n_masters = masters.len();
    let rotation = net.token_pass * n_masters as i64;
    // See `run_static`: skipping is only sound when idle passes draw no
    // loss RNG, i.e. in loss-free runs.
    let fast_forward = config.fast_forward && config.token_loss_prob <= 0.0;
    // Consecutive executed visits that were pure token hops: no serving,
    // no GAP poll, no retries — each exactly one `token_pass` apart. Any
    // membership disturbance resets it.
    let mut idle_streak = 0usize;
    let mut pattern: Vec<(Time, NetEvent)> = Vec::new();

    let mut now = Time::ZERO;
    // The first holder is the first initially-on master in ring-vector
    // order (ring index 0 when it is powered — matching the static loop).
    let mut holder: Option<usize> = (0..net.masters.len()).find(|&k| ctrl.in_ring(k));

    while now < config.horizon {
        // Scripted membership events apply at token-visit boundaries.
        while events.get(next_event).is_some_and(|e| e.at <= now) {
            let e = events[next_event];
            next_event += 1;
            idle_streak = 0;
            match e.action {
                MembershipAction::PowerOn => {
                    if ctrl.power_on(e.master) {
                        masters[e.master].reboot(now);
                    }
                }
                MembershipAction::PowerOff | MembershipAction::Crash => {
                    if ctrl.power_off(e.master) && holder == Some(e.master) {
                        // The token died with its holder.
                        holder = None;
                    }
                }
            }
        }

        // No token on the bus: silence until a claim timeout fires.
        let Some(h) = holder else {
            idle_streak = 0;
            match ctrl.claimant() {
                Some(c) => {
                    now += token_recovery_timeout(&bus, ctrl.addr_of(c));
                    if now >= config.horizon {
                        break;
                    }
                    let joined = ctrl.claim(c);
                    emit(observers, now, NetEvent::Claim { master: c });
                    if joined {
                        emit(observers, now, NetEvent::MasterJoin { master: c });
                        if let Some(mc) = &mut mode_ctrl {
                            emit_transition(mc.on_membership(now, true), now, observers);
                        }
                    }
                    holder = Some(c);
                }
                None => {
                    // Every station is dead: jump to the next scripted
                    // power-on, or end the run.
                    match events.get(next_event) {
                        Some(e) => now = now.max(e.at),
                        None => break,
                    }
                }
            }
            continue;
        };

        // Idle fast-forward: inside a clean full-ring phase — every
        // station powered and a LAS member (so no listeners exist and
        // `observe_wrap` is a no-op), the last `n` visits pure token
        // hops — the next rotations are a fixed periodic pattern whose
        // per-visit FDL transitions cycle every station back to
        // `ActiveIdle`. Skip k of them in O(1), capped by the release
        // backlog/horizon bound, strictly before the next scripted
        // membership event (loop tops are one `token_pass` apart during
        // idle spans, so requiring `now + k·R ≤ event.at` preserves the
        // application instant), and strictly before every armed GAP
        // poll boundary.
        if fast_forward
            && idle_streak >= n_masters
            && ctrl.ring_size() == n_masters
            && (0..n_masters).all(|s| !ctrl.is_offline(s))
        {
            let mut k = idle_rotation_cap(masters, now, rotation, config.horizon, net.token_pass);
            if let Some(e) = events.get(next_event) {
                k = k.min((e.at - now).ticks() / rotation.ticks());
            }
            for s in 0..n_masters {
                if let Some(due) = ctrl.gap_visits_until_due(s) {
                    k = k.min(due as i64 - 1);
                }
            }
            if k >= 1 {
                // Idle rotations measure TRR = R ≤ TTR exactly, so they
                // can never trip the TRR-overload degrade trigger;
                // `on_idle_span` batches the k·n arrivals and refuses
                // the span only when a transition (a match-up deadline)
                // would fire inside it — then we fall back to per-visit
                // simulation, which fires it at the right arrival.
                let mode_ok = match &mut mode_ctrl {
                    Some(mc) => mc.on_idle_span(now, now + rotation * k - net.token_pass, rotation),
                    None => true,
                };
                if mode_ok {
                    pattern.clear();
                    let tth = net.ttr - rotation;
                    let mut cur = h;
                    for j in 0..n_masters {
                        let next = ctrl.successor(cur).expect("full ring");
                        pattern.push((
                            net.token_pass * j as i64,
                            NetEvent::TokenArrival {
                                master: cur,
                                tth,
                                trr: Some(rotation),
                            },
                        ));
                        pattern.push((
                            net.token_pass * (j + 1) as i64,
                            NetEvent::TokenPass {
                                from: cur,
                                to: next,
                            },
                        ));
                        cur = next;
                    }
                    debug_assert_eq!(cur, h, "whole rotations return the token to its holder");
                    apply_idle_span(masters, observers, &pattern, now, rotation, k, mem);
                    for s in 0..n_masters {
                        // Capped above at `due − 1`, so this never
                        // crosses a poll boundary; a no-op when GAP
                        // polling is disabled.
                        ctrl.gap_advance_visits(s, k as u32);
                    }
                    now += rotation * k;
                    continue;
                }
            }
        }

        // Token visit at `h`.
        ctrl.deliver_token(h);
        if ctrl.is_wrap_point(h) {
            // The token reached the lowest LAS address: one full rotation
            // for every listening station.
            ctrl.observe_wrap();
        }
        // Feed the holder's TRR measurement (the same span `visit` will
        // report on its TokenArrival) to the mode controller before the
        // visit, so this visit already sheds/admits under the new mode.
        let shed_lo = match &mut mode_ctrl {
            Some(mc) => {
                let m = &masters[h];
                let trr = m.first_arrival_seen.then(|| now - m.timer.trr_started_at());
                emit_transition(mc.on_token_arrival(now, trr), now, observers);
                mc.degraded()
            }
            None => false,
        };
        let served_until = visit(&mut masters[h], h, now, durations, mem, observers, shed_lo);
        let mut clean_hop = served_until == now;
        now = served_until;

        // GAP maintenance: one Request FDL Status every G visits,
        // consuming real token-holding time.
        if let Some(target) = ctrl.gap_poll_due(h) {
            clean_hop = false;
            let target_slot = ctrl.slot_of(target).filter(|&s| !ctrl.is_offline(s));
            let admitted = target_slot.filter(|&s| ctrl.ready_to_join(s));
            let start = now;
            now += gap::poll_time(&bus, target_slot.is_some());
            emit(
                observers,
                start,
                NetEvent::GapPoll {
                    master: h,
                    target,
                    admitted,
                },
            );
            if let Some(s) = admitted {
                ctrl.admit(s);
                emit(observers, now, NetEvent::MasterJoin { master: s });
                if let Some(mc) = &mut mode_ctrl {
                    emit_transition(mc.on_membership(now, true), now, observers);
                }
            }
        }

        // Pass the token over the live ring, detecting dead successors.
        ctrl.holding_done(h);
        loop {
            let succ = ctrl.successor(h).expect("holder is a ring member");
            now += net.token_pass;
            if config.token_loss_prob > 0.0 && loss_rng.unit() < config.token_loss_prob {
                // The pass frame was lost on the wire: bus silence until
                // the recovery claimant's timeout fires.
                ctrl.pass_failed(h);
                let c = ctrl
                    .claimant()
                    .expect("the holder itself is powered and claim-eligible");
                now += token_recovery_timeout(&bus, ctrl.addr_of(c));
                ctrl.claim(c);
                emit(observers, now, NetEvent::Recovery { claimant: c });
                holder = Some(c);
                clean_hop = false;
                break;
            }
            if succ == h || ctrl.accepts_token(succ) {
                // A sole member passes to itself (`succ == h`); either
                // way the next visit's `deliver_token` moves the receiver
                // from ActiveIdle to UseToken.
                ctrl.pass_confirmed(h);
                emit(observers, now, NetEvent::TokenPass { from: h, to: succ });
                holder = Some(succ);
                break;
            }
            // Dead successor: retries exhaust, then it is dropped from
            // the LAS and the next member is tried. Each attempt is one
            // pass frame plus a slot time of silence; the first pass
            // frame was already spent above.
            now += bus.slot_time + (net.token_pass + bus.slot_time) * (attempts - 1);
            ctrl.drop_member(succ);
            clean_hop = false;
            emit(observers, now, NetEvent::MasterLeave { master: succ });
            if let Some(mc) = &mut mode_ctrl {
                emit_transition(mc.on_membership(now, false), now, observers);
            }
        }
        idle_streak = if clean_hop { idle_streak + 1 } else { 0 };
    }
}
