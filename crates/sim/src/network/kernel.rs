//! The streaming network-simulation kernel.
//!
//! The kernel executes the paper-literal §3.1 token algorithm (see
//! [`simulate_network`](crate::network::simulate_network) for the rule list) against **lazy** release
//! generators: per-stream [`StreamReleases`] and per-source
//! [`LowPriorityReleases`] are merged through deterministic k-way merges,
//! so the kernel holds O(streams) release state at any horizon — no
//! release vector is ever materialized. Pending low-priority work sits in
//! a heap-backed [`EventQueue`] (ready-ordered, FIFO among equals),
//! replacing the former linear-scan `Vec`.
//!
//! The kernel aggregates nothing: it emits a [`NetEvent`] stream into the
//! observer pipeline. Results, traces, and percentile statistics are all
//! observers (see [`crate::network::observe`]).
//!
//! Determinism contract: for identical inputs the kernel produces the
//! exact event stream of the materialized reference simulator
//! ([`crate::network::reference`]); the differential property tests pin
//! this byte-for-byte.

use profirt_base::release::MergedReleases;
use profirt_base::Time;
use profirt_profibus::fdl::token_recovery_timeout;
use profirt_profibus::{ApQueue, BusParams, StackCapacity, StackQueue, TokenTimer};
use profirt_workload::{
    low_priority_release_gens, stream_release_gens, LowPriorityReleases, StreamReleases,
};

use crate::engine::{EventQueue, Observer, SimRng};
use crate::network::config::{NetworkSimConfig, SimMaster, SimNetwork};
use crate::network::observe::NetEvent;

/// Peak memory indicators of one kernel run, used to pin the O(streams)
/// memory contract in tests (counts, not bytes — both scale together).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KernelMemStats {
    /// Largest number of releases buffered inside any master's merged
    /// generators at a token arrival (heads + jitter look-ahead). Bounded
    /// by `streams + Σ ⌈J/T⌉` independent of the horizon.
    pub peak_release_buffer: usize,
    /// Largest number of requests pending in any master's AP + stack +
    /// low-priority queues at a token arrival (the actual backlog, which
    /// is workload-dependent).
    pub peak_pending: usize,
}

/// The token-loss recovery rule: the lowest-address master claims the
/// token after the FDL claim timeout `TTO = (6 + 2·addr)·TSL` (DIN 19245,
/// see [`profirt_profibus::fdl::token_recovery_timeout`]). Returns the
/// claimant's ring index and the bus-silence span before its claim.
pub(crate) fn recovery_rule(net: &SimNetwork, config: &NetworkSimConfig) -> (usize, Time) {
    let claimant = (0..net.masters.len())
        .min_by_key(|&k| net.masters[k].addr_or_ring(k))
        .expect("network needs at least one master");
    let bus = BusParams::profile_500k().with_slot_time(config.slot_time);
    let timeout = token_recovery_timeout(&bus, net.masters[claimant].addr_or_ring(claimant));
    (claimant, timeout)
}

/// Per-master streaming state.
struct MasterKernel {
    timer: TokenTimer,
    ap: ApQueue,
    stack: StackQueue,
    /// Lazy high-priority releases, merged over the master's streams.
    high: MergedReleases<StreamReleases>,
    /// Lazy low-priority generations, merged over the master's sources.
    low: MergedReleases<LowPriorityReleases>,
    /// Cached `high.peek_ready()` — the idle-visit fast path is a plain
    /// compare instead of a heap peek.
    next_high: Option<Time>,
    /// Cached `low.peek_ready()`.
    next_low: Option<Time>,
    /// Ready low-priority work: heap-backed, ordered by `(ready, FIFO)`.
    /// Payload is the cycle time.
    lp_pending: EventQueue<Time>,
    first_arrival_seen: bool,
}

impl MasterKernel {
    fn build(cfg: &SimMaster, ttr: Time, run: &NetworkSimConfig, rng: &mut SimRng) -> MasterKernel {
        let high = MergedReleases::new(stream_release_gens(
            &cfg.streams,
            run.horizon,
            run.offsets,
            run.jitter,
            rng,
        ));
        let low = MergedReleases::new(low_priority_release_gens(&cfg.low_priority, run.horizon));
        MasterKernel {
            timer: TokenTimer::new(ttr),
            ap: ApQueue::new(cfg.policy),
            stack: StackQueue::with_capacity(StackCapacity::from_config(cfg.stack_capacity)),
            next_high: high.peek_ready(),
            next_low: low.peek_ready(),
            high,
            low,
            lp_pending: EventQueue::new(),
            first_arrival_seen: false,
        }
    }

    /// Pulls releases that became ready by `now` out of the lazy
    /// generators: high-priority requests drop through the AP queue into
    /// the stack (the real-time AP→stack transfer at each release
    /// instant), low-priority generations into the pending heap. Returns
    /// `true` when anything was pulled (queue state changed).
    fn sync(&mut self, now: Time) -> bool {
        let mut pulled = false;
        while self.next_high.is_some_and(|r| r <= now) {
            let (_, request) = self.high.next_release().expect("due");
            self.next_high = self.high.peek_ready();
            self.ap.push(request);
            self.transfer();
            pulled = true;
        }
        while self.next_low.is_some_and(|r| r <= now) {
            let (ready, cycle) = self.low.next_release().expect("due");
            self.next_low = self.low.peek_ready();
            self.lp_pending.schedule(ready, cycle);
            pulled = true;
        }
        pulled
    }

    /// AP → stack transfer: fill free stack slots with the most urgent AP
    /// requests.
    fn transfer(&mut self) {
        while !self.stack.is_full() {
            match self.ap.pop() {
                Some(r) => {
                    let ok = self.stack.try_push(r);
                    debug_assert!(ok);
                }
                None => break,
            }
        }
    }
}

/// Runs the streaming kernel, emitting every bus event into `observers`.
///
/// Observers are passive; the event stream (and thus any result derived
/// from it) is identical for every observer set, including the empty one.
/// Returns the run's peak-memory indicators.
///
/// # Panics
/// Panics if the network has no masters or a non-positive token-pass time
/// (time could stall).
pub fn run_network(
    net: &SimNetwork,
    config: &NetworkSimConfig,
    observers: &mut [&mut dyn Observer<NetEvent>],
) -> KernelMemStats {
    assert!(!net.masters.is_empty(), "network needs at least one master");
    assert!(
        net.token_pass.is_positive(),
        "token pass time must be positive"
    );
    let emit = |observers: &mut [&mut dyn Observer<NetEvent>], at: Time, ev: NetEvent| {
        for obs in observers.iter_mut() {
            obs.observe(at, &ev);
        }
    };

    let mut rng = SimRng::seed_from_u64(config.seed);
    let mut masters: Vec<MasterKernel> = net
        .masters
        .iter()
        .map(|m| MasterKernel::build(m, net.ttr, config, &mut rng))
        .collect();
    let mut fault_rng = rng.fork();
    // Uniform duration in [⌈(1-v)·Ch⌉, Ch] under cycle-undershoot
    // injection; always Ch otherwise.
    let mut sample_duration = move |ch: Time| -> Time {
        if config.cycle_undershoot <= 0.0 {
            return ch;
        }
        let v = config.cycle_undershoot.min(1.0);
        let lo = Time::new(((ch.ticks() as f64) * (1.0 - v)).ceil().max(1.0) as i64);
        lo + fault_rng.time_in(ch - lo)
    };
    let mut loss_rng = SimRng::seed_from_u64(config.seed ^ 0x70CE_55E5);
    let (claimant, recovery_timeout) = recovery_rule(net, config);
    let mut mem = KernelMemStats::default();

    let mut now = Time::ZERO;
    let mut holder = 0usize;
    while now < config.horizon {
        let n_masters = masters.len();
        let m = &mut masters[holder];
        // TRR measurement: the timer records arrival-to-arrival spans
        // (reported from the second arrival on).
        let prev_start = m.timer.trr_started_at();
        let hold = m.timer.on_token_arrival(now);
        let trr = m.first_arrival_seen.then(|| now - prev_start);
        m.first_arrival_seen = true;
        emit(
            observers,
            now,
            NetEvent::TokenArrival {
                master: holder,
                tth: hold.tth_at_arrival,
                trr,
            },
        );

        // Peak tracking only when releases were pulled: backlog and
        // look-ahead sizes only change then, so idle visits skip the
        // bookkeeping entirely.
        if m.sync(now) {
            mem.peak_release_buffer = mem
                .peak_release_buffer
                .max(m.high.buffered() + m.low.buffered());
            mem.peak_pending = mem
                .peak_pending
                .max(m.ap.len() + m.stack.len() + m.lp_pending.len());
        }

        // Step 2: one guaranteed high-priority cycle.
        if let Some(request) = m.stack.pop() {
            m.sync(now); // releases strictly before start already synced
            m.transfer(); // slot freed at transmission start
            let start = now;
            now += sample_duration(request.cycle_time);
            m.sync(now);
            emit(
                observers,
                start,
                NetEvent::HighCycle {
                    master: holder,
                    request,
                    start,
                    end: now,
                },
            );

            // Step 3: more high-priority cycles while TTH > 0 at start.
            while hold.may_start_additional_high(now) && !m.stack.is_empty() {
                let request = m.stack.pop().expect("non-empty");
                m.transfer();
                let start = now;
                now += sample_duration(request.cycle_time);
                m.sync(now);
                emit(
                    observers,
                    start,
                    NetEvent::HighCycle {
                        master: holder,
                        request,
                        start,
                        end: now,
                    },
                );
            }
        }

        // Step 4: low-priority cycles while TTH > 0 at cycle start and no
        // high-priority request pends (checked at each cycle start).
        while hold.may_start_low(now) && m.stack.is_empty() {
            // Oldest ready low-priority request (heap pop: min ready,
            // FIFO among equals — the former linear scan's order).
            let Some((_, cycle)) = m.lp_pending.pop() else {
                break;
            };
            let start = now;
            now += sample_duration(cycle);
            m.sync(now);
            emit(
                observers,
                start,
                NetEvent::LowCycle {
                    master: holder,
                    start,
                    end: now,
                },
            );
        }

        // Step 5: pass the token (possibly losing it).
        now += net.token_pass;
        if config.token_loss_prob > 0.0 && loss_rng.unit() < config.token_loss_prob {
            // Lost token: the bus goes silent until the lowest-address
            // master's claim timeout fires; it then re-originates the
            // token.
            now += recovery_timeout;
            emit(observers, now, NetEvent::Recovery { claimant });
            holder = claimant;
        } else {
            let next = (holder + 1) % n_masters;
            emit(
                observers,
                now,
                NetEvent::TokenPass {
                    from: holder,
                    to: next,
                },
            );
            holder = next;
        }
    }
    mem
}
