//! A deterministic time-ordered event queue.
//!
//! Events with equal timestamps pop in insertion order (a monotonically
//! increasing sequence number breaks ties), which keeps simulations
//! reproducible across runs and platforms.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use profirt_base::Time;

/// A time-ordered queue of events of type `E`.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Time, u64, Keyed<E>)>>,
    seq: u64,
}

/// Wrapper that opts `E` out of the ordering (only `(Time, seq)` order).
#[derive(Debug, Clone, Copy)]
struct Keyed<E>(E);

impl<E> PartialEq for Keyed<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for Keyed<E> {}
impl<E> PartialOrd for Keyed<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Keyed<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: Time, event: E) {
        self.heap.push(Reverse((at, self.seq, Keyed(event))));
        self.seq += 1;
    }

    /// Pops the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse((t, _, Keyed(e)))| (t, e))
    }

    /// The timestamp of the earliest event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "b");
        q.schedule(t(1), "a");
        q.schedule(t(9), "c");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(5), "b")));
        assert_eq!(q.pop(), Some((t(9), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(3), ());
        q.schedule(t(2), ());
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.len(), 2);
    }
}
