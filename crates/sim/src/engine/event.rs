//! Deterministic priority queues: the generic `(key, sequence)` heap and
//! the time-ordered event queue built on it.
//!
//! Events with equal keys pop in sequence order (for [`EventQueue`], a
//! monotonically increasing insertion counter), which keeps simulations
//! reproducible across runs and platforms.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use profirt_base::Time;

/// Wrapper that opts the payload out of the ordering (only `(key, seq)`
/// order).
#[derive(Debug, Clone, Copy)]
struct Keyed<T>(T);

impl<T> PartialEq for Keyed<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for Keyed<T> {}
impl<T> PartialOrd for Keyed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Keyed<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// A min-heap ordered by `(key, sequence number)` with the payload opted
/// out of the ordering: smallest key first, caller-supplied sequence
/// breaking ties deterministically. The shared machinery behind
/// [`EventQueue`] and the CPU kernel's ready set (which carries each
/// job's original sequence across preemptions to keep FIFO-among-equals
/// exact).
#[derive(Debug, Clone)]
pub struct KeyedHeap<K: Ord + Copy, T> {
    heap: BinaryHeap<Reverse<(K, u64, Keyed<T>)>>,
}

impl<K: Ord + Copy, T> KeyedHeap<K, T> {
    /// Creates an empty heap.
    pub fn new() -> KeyedHeap<K, T> {
        KeyedHeap {
            heap: BinaryHeap::new(),
        }
    }

    /// Inserts `item` under `(key, seq)`.
    pub fn push(&mut self, key: K, seq: u64, item: T) {
        self.heap.push(Reverse((key, seq, Keyed(item))));
    }

    /// Pops the smallest `(key, seq)` entry.
    pub fn pop(&mut self) -> Option<(K, u64, T)> {
        self.heap.pop().map(|Reverse((k, s, Keyed(t)))| (k, s, t))
    }

    /// The smallest key without removing it.
    pub fn peek_key(&self) -> Option<K> {
        self.heap.peek().map(|Reverse((k, _, _))| *k)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<K: Ord + Copy, T> Default for KeyedHeap<K, T> {
    fn default() -> Self {
        KeyedHeap::new()
    }
}

/// A time-ordered queue of events of type `E` (FIFO among equal
/// timestamps).
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: KeyedHeap<Time, E>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: KeyedHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: Time, event: E) {
        self.heap.push(at, self.seq, event);
        self.seq += 1;
    }

    /// Pops the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|(t, _, e)| (t, e))
    }

    /// The timestamp of the earliest event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek_key()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "b");
        q.schedule(t(1), "a");
        q.schedule(t(9), "c");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(5), "b")));
        assert_eq!(q.pop(), Some((t(9), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_heap_orders_by_key_then_caller_sequence() {
        let mut h: KeyedHeap<(i64, usize), &str> = KeyedHeap::new();
        h.push((5, 0), 2, "later");
        h.push((5, 0), 1, "earlier"); // same key, smaller seq: pops first
        h.push((3, 9), 7, "urgent");
        assert_eq!(h.peek_key(), Some((3, 9)));
        assert_eq!(h.pop(), Some(((3, 9), 7, "urgent")));
        assert_eq!(h.pop(), Some(((5, 0), 1, "earlier")));
        assert_eq!(h.pop(), Some(((5, 0), 2, "later")));
        assert_eq!(h.pop(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(3), ());
        q.schedule(t(2), ());
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.len(), 2);
    }
}
