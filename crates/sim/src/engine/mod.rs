//! Shared discrete-event-simulation toolkit.

pub mod event;
pub mod rng;

pub use event::EventQueue;
pub use rng::SimRng;
