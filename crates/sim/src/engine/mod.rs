//! Shared discrete-event-simulation toolkit: the deterministic event
//! queue, the seeded RNG, and the observer pipeline the streaming kernels
//! emit into.

pub mod event;
pub mod observer;
pub mod rng;

pub use event::{EventQueue, KeyedHeap};
pub use observer::{replay_span, HistSummary, IdleSpan, Observer, TickHistogram};
pub use rng::SimRng;
