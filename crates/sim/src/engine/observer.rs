//! The observer pipeline: pluggable sinks for simulation events.
//!
//! The simulation kernels do not aggregate anything themselves — they
//! emit a typed event stream, and every consumer (result assembly, event
//! tracing, response-time statistics, TRR statistics) is an [`Observer`]
//! attached to the run. Observers are passive: they may not perturb the
//! simulation, so a run with any observer set produces the same event
//! stream as a run with none.
//!
//! [`TickHistogram`] is the O(1)-memory aggregation primitive behind the
//! percentile observers: a log-bucketed histogram of tick values
//! (64 sub-buckets per octave, ≤ 1.6 % relative quantile error) whose
//! footprint is a fixed ~30 KB regardless of how many samples a
//! long-horizon run records.

use profirt_base::Time;

/// A passive sink for simulation events of type `E`.
///
/// `at` is the simulation instant the event was emitted at (for cycle
/// events this is the transmission start, matching the trace convention).
pub trait Observer<E> {
    /// Consumes one event.
    fn observe(&mut self, at: Time, event: &E);

    /// Consumes a compressed idle span: `span.rotations` repetitions of
    /// the one-rotation event pattern in `span.pattern`, the first
    /// starting at `span.start` and each subsequent one `span.period`
    /// later. The kernel only emits spans whose replay is event-for-event
    /// identical to what the unskipped loop would have produced, so the
    /// default implementation — literally replaying every rotation via
    /// [`replay_span`] — keeps any observer byte-correct with zero
    /// changes. Hot observers override this with O(1) batched ingestion;
    /// an override must be *semantically equal to the replay* for every
    /// possible span, not just the spans a particular kernel happens to
    /// produce.
    fn on_idle_span(&mut self, span: &IdleSpan<'_, E>) {
        replay_span(self, span);
    }
}

/// A run of identical idle token rotations, compressed by the kernel's
/// idle fast-forward (see `sim::network::kernel`). The concatenation of
/// `rotations` copies of `pattern` — copy `r` shifted by `start +
/// r·period` — is exactly the event stream the unskipped loop would have
/// emitted over the span.
#[derive(Debug)]
pub struct IdleSpan<'a, E> {
    /// Start instant of the first rotation.
    pub start: Time,
    /// Duration of one rotation (the full ring cost).
    pub period: Time,
    /// Number of rotations compressed into this span (≥ 1).
    pub rotations: u64,
    /// Event pattern of one rotation as `(offset, event)` pairs, offsets
    /// relative to the rotation's start and nondecreasing.
    pub pattern: &'a [(Time, E)],
}

/// Replays `span` event by event into `obs` — the reference semantics of
/// [`Observer::on_idle_span`], and its default implementation. O(1)
/// overrides are tested against this replay for equivalence.
pub fn replay_span<E, O: Observer<E> + ?Sized>(obs: &mut O, span: &IdleSpan<'_, E>) {
    let mut base = span.start;
    for _ in 0..span.rotations {
        for (offset, event) in span.pattern {
            obs.observe(base + *offset, event);
        }
        base += span.period;
    }
}

/// Linear buckets below `2^LINEAR_BITS`.
const LINEAR_BITS: u32 = 7;
/// Sub-bucket resolution: `2^SUB_BITS` buckets per octave.
const SUB_BITS: u32 = 6;
const LINEAR_BUCKETS: usize = 1 << LINEAR_BITS; // 128
const SUB_BUCKETS: usize = 1 << SUB_BITS; // 64
/// Octaves LINEAR_BITS..=62 (i64 non-negative range).
const OCTAVES: usize = 63 - LINEAR_BITS as usize;
const BUCKETS: usize = LINEAR_BUCKETS + OCTAVES * SUB_BUCKETS;

/// A log-bucketed histogram of non-negative tick values with constant
/// memory and bounded relative quantile error.
///
/// Values below 128 are recorded exactly; larger values land in one of 64
/// sub-buckets per power-of-two octave, so any reported quantile is an
/// upper bound at most `1/64` above the true value. The exact minimum,
/// maximum, count, and sum are tracked separately (`p0`/`p100` are
/// therefore exact). Negative samples are clamped to zero.
#[derive(Clone)]
pub struct TickHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: i128,
    min: i64,
    max: i64,
}

impl std::fmt::Debug for TickHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl Default for TickHistogram {
    fn default() -> Self {
        TickHistogram::new()
    }
}

/// Bucket index of a non-negative value.
fn bucket_of(v: i64) -> usize {
    let v = v as u64;
    if v < LINEAR_BUCKETS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= LINEAR_BITS
    let sub = ((v >> (octave - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
    LINEAR_BUCKETS + (octave - LINEAR_BITS) as usize * SUB_BUCKETS + sub
}

/// Largest value mapping into bucket `index` (the reported quantile
/// representative, making every quantile an upper bound).
fn bucket_upper(index: usize) -> i64 {
    if index < LINEAR_BUCKETS {
        return index as i64;
    }
    let rel = index - LINEAR_BUCKETS;
    let octave = LINEAR_BITS + (rel / SUB_BUCKETS) as u32;
    let sub = (rel % SUB_BUCKETS) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    let base = (SUB_BUCKETS as u64 + sub) * width;
    (base + width - 1) as i64
}

impl TickHistogram {
    /// An empty histogram.
    pub fn new() -> TickHistogram {
        TickHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: 0,
        }
    }

    /// Records one sample (negative values clamp to zero).
    pub fn record(&mut self, value: Time) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples in O(1) — the run-length ingestion
    /// path of the idle fast-forward (`n` equal TRR measurements cost one
    /// bucket increment, not `n`). Exactly equivalent to calling
    /// [`TickHistogram::record`] `n` times; a no-op when `n == 0`.
    pub fn record_n(&mut self, value: Time, n: u64) {
        if n == 0 {
            return;
        }
        let v = value.ticks().max(0);
        self.counts[bucket_of(v)] += n;
        self.count += n;
        self.sum += v as i128 * n as i128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact largest recorded sample (zero when empty).
    pub fn max(&self) -> Time {
        Time::new(if self.count == 0 { 0 } else { self.max })
    }

    /// Exact smallest recorded sample (zero when empty).
    pub fn min(&self) -> Time {
        Time::new(if self.count == 0 { 0 } else { self.min })
    }

    /// Mean of the recorded samples (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`, nearest-rank) as a value upper
    /// bound, clamped to the exact recorded extremes. Zero when empty.
    pub fn quantile(&self, q: f64) -> Time {
        if self.count == 0 {
            return Time::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Time::new(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Time::new(self.max)
    }

    /// The standard summary of this histogram.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Fixed summary statistics extracted from a [`TickHistogram`].
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact minimum (zero when empty).
    pub min: Time,
    /// Exact maximum (zero when empty).
    pub max: Time,
    /// Mean (zero when empty).
    pub mean: f64,
    /// Median upper bound.
    pub p50: Time,
    /// 90th-percentile upper bound.
    pub p90: Time,
    /// 95th-percentile upper bound.
    pub p95: Time,
    /// 99th-percentile upper bound.
    pub p99: Time,
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = TickHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), t(0));
        assert_eq!(h.min(), t(0));
        assert_eq!(h.quantile(0.99), t(0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = TickHistogram::new();
        for v in 0..100 {
            h.record(t(v));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), t(0));
        assert_eq!(h.max(), t(99));
        assert_eq!(h.quantile(0.5), t(49));
        assert_eq!(h.quantile(1.0), t(99));
        assert_eq!(h.quantile(0.0), t(0));
        assert!((h.mean() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_tight_upper_bounds() {
        let mut h = TickHistogram::new();
        let values: Vec<i64> = (0..10_000).map(|i| 37 + i * 313).collect();
        for &v in &values {
            h.record(t(v));
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            let exact = sorted[rank] as f64;
            let approx = h.quantile(q).ticks() as f64;
            assert!(approx >= exact, "q{q}: {approx} < exact {exact}");
            assert!(
                approx <= exact * (1.0 + 1.0 / 64.0) + 1.0,
                "q{q}: {approx} too far above exact {exact}"
            );
        }
        // Extremes stay exact.
        assert_eq!(h.max().ticks(), *sorted.last().unwrap());
        assert_eq!(h.min().ticks(), sorted[0]);
    }

    #[test]
    fn huge_values_do_not_overflow_buckets() {
        let mut h = TickHistogram::new();
        h.record(t(i64::MAX));
        h.record(t(i64::MAX - 1));
        h.record(t(1));
        assert_eq!(h.max(), t(i64::MAX));
        assert_eq!(h.quantile(1.0), t(i64::MAX));
        assert_eq!(h.quantile(0.01), t(1));
    }

    #[test]
    fn negative_samples_clamp_to_zero() {
        let mut h = TickHistogram::new();
        h.record(t(-5));
        assert_eq!(h.min(), t(0));
        assert_eq!(h.max(), t(0));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn bucket_roundtrip_upper_bound_property() {
        // Every value must land in a bucket whose upper bound is >= the
        // value and within 1/64 relative error.
        for v in [
            0i64,
            1,
            127,
            128,
            129,
            1_000,
            65_535,
            1 << 20,
            (1 << 40) + 12345,
            i64::MAX / 2,
            i64::MAX,
        ] {
            let ub = bucket_upper(bucket_of(v));
            assert!(ub >= v, "upper {ub} < value {v}");
            assert!(
                (ub as u128) <= (v as u128) + (v as u128) / 64 + 1,
                "upper {ub} too loose for {v}"
            );
        }
    }

    #[test]
    fn record_n_equals_n_records() {
        let mut one_by_one = TickHistogram::new();
        let mut batched = TickHistogram::new();
        for &(v, n) in &[(0i64, 3u64), (127, 5), (1_000, 64), (-4, 2), (1 << 40, 7)] {
            for _ in 0..n {
                one_by_one.record(t(v));
            }
            batched.record_n(t(v), n);
        }
        batched.record_n(t(99), 0); // no-op
        assert_eq!(one_by_one.count(), batched.count());
        assert_eq!(one_by_one.min(), batched.min());
        assert_eq!(one_by_one.max(), batched.max());
        assert_eq!(one_by_one.mean(), batched.mean());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(one_by_one.quantile(q), batched.quantile(q));
        }
    }

    #[test]
    fn default_on_idle_span_replays_every_rotation() {
        struct Collect(Vec<(Time, u32)>);
        impl Observer<u32> for Collect {
            fn observe(&mut self, at: Time, event: &u32) {
                self.0.push((at, *event));
            }
        }
        let pattern = [(t(0), 7u32), (t(5), 8), (t(5), 9)];
        let mut c = Collect(Vec::new());
        c.on_idle_span(&IdleSpan {
            start: t(100),
            period: t(10),
            rotations: 3,
            pattern: &pattern,
        });
        assert_eq!(
            c.0,
            vec![
                (t(100), 7),
                (t(105), 8),
                (t(105), 9),
                (t(110), 7),
                (t(115), 8),
                (t(115), 9),
                (t(120), 7),
                (t(125), 8),
                (t(125), 9),
            ]
        );
    }

    #[test]
    fn summary_is_consistent() {
        let mut h = TickHistogram::new();
        for v in 1..=1000 {
            h.record(t(v));
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p99 <= s.max);
        assert!(s.min <= s.p50);
    }
}
