//! Re-export of the shared deterministic PRNG.
//!
//! The generator lives in `profirt-base` (see its module docs for the
//! reproducibility rationale) so the workload generators and the simulators
//! draw from the same stable stream implementation.

pub use profirt_base::rng::Prng as SimRng;
