//! # profirt-sim — streaming discrete-event simulators
//!
//! Empirical counterparts of every analytical bound in the workspace:
//!
//! * [`cpu`] — a single-processor task-scheduling simulator supporting the
//!   four dispatching disciplines of the paper's §2 (fixed-priority and EDF,
//!   preemptive and non-preemptive). Used to validate the `profirt-sched`
//!   analyses: observed response times must never exceed the analytical
//!   worst cases.
//! * [`network`] — a PROFIBUS network simulator that executes the timed-
//!   token algorithm printed in the paper's §3.1 **verbatim**: `TRR`
//!   measurement, `TTH = TTR − TRR`, one guaranteed high-priority message
//!   cycle on a late token, `TTH`-overrun (timer checked only at cycle
//!   start), low-priority traffic only on residual `TTH`, token passing in
//!   ring order. Masters can run stock FCFS queues or the §4 architecture
//!   (priority AP queue + single-slot stack queue), so the FCFS/DM/EDF
//!   bounds of `profirt-core` can all be checked against observation.
//! * [`engine`] — the shared DES toolkit: deterministic event queue,
//!   seeded RNG, and the observer pipeline ([`Observer`],
//!   [`TickHistogram`]).
//!
//! Both simulators are **streaming kernels**: releases come from lazy
//! per-source generators (`profirt_base::release` /
//! `profirt_workload::releases`) merged on demand, so memory is
//! O(sources) at any horizon, and every run emits a typed event stream
//! into pluggable observers — result assembly, bounded tracing, and
//! constant-memory response/TRR percentile statistics are all observers.
//! The pre-materialized implementations are retained under
//! `network::reference` / `cpu::reference` as differential-test and
//! benchmark baselines.
//!
//! Simulation produces **lower bounds** on true worst cases: the validation
//! contract is `observed ≤ analytical` everywhere, plus tightness ratios
//! for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod engine;
pub mod network;

pub use cpu::{
    simulate_cpu, simulate_cpu_materialized, simulate_cpu_stats, CpuEvent, CpuPolicy, CpuSimConfig,
    CpuSimResult,
};
pub use engine::{EventQueue, HistSummary, Observer, SimRng, TickHistogram};
pub use network::{
    simulate_network, simulate_network_materialized, simulate_network_observed,
    simulate_network_stats, simulate_network_traced, JitterInjection, KernelMemStats,
    MembershipAction, MembershipEvent, MembershipPlan, ModeController, ModeSimConfig, ModeStats,
    ModeSummary, ModeTransition, NetEvent, NetworkSimConfig, NetworkSimResult, NetworkSimStats,
    OffsetMode, ResponseStats, ResultObserver, RingStats, RingSummary, SimMaster, SimNetwork,
    SimNetworkError, StableResponseObserver, Trace, TraceEvent, TrrStats,
};
