//! Single-processor task-scheduling simulator.
//!
//! Simulates periodic task sets under the four dispatching disciplines of
//! the paper's §2 and records per-task maximum observed response times and
//! deadline misses. Releases are strictly periodic from per-task offsets
//! (synchronous by default — the fixed-priority critical instant; EDF worst
//! cases need offset sweeps, cf. Spuri's asap patterns, which the callers
//! drive via [`CpuSimConfig::offsets`]).
//!
//! Like the network simulator, the CPU simulator is a streaming kernel:
//! lazy per-task job-release generators feed a heap-backed ready set, and
//! completions flow through the observer pipeline ([`CpuEvent`]). The
//! pre-materialized baseline is retained in [`mod@reference`] for
//! differential tests and benchmarks.
//!
//! Observed maxima are **lower bounds** on analytical worst cases; the
//! validation contract everywhere is `observed ≤ bound`.

pub mod reference;
mod sim;

pub use reference::simulate_cpu_materialized;
pub use sim::{
    run_cpu, simulate_cpu, simulate_cpu_stats, CpuEvent, CpuPolicy, CpuResponseStats,
    CpuResultObserver, CpuSimConfig, CpuSimResult,
};
