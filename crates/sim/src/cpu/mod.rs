//! Single-processor task-scheduling simulator.
//!
//! Simulates periodic task sets under the four dispatching disciplines of
//! the paper's §2 and records per-task maximum observed response times and
//! deadline misses. Releases are strictly periodic from per-task offsets
//! (synchronous by default — the fixed-priority critical instant; EDF worst
//! cases need offset sweeps, cf. Spuri's asap patterns, which the callers
//! drive via [`CpuSimConfig::offsets`]).
//!
//! Observed maxima are **lower bounds** on analytical worst cases; the
//! validation contract everywhere is `observed ≤ bound`.

mod sim;

pub use sim::{simulate_cpu, CpuPolicy, CpuSimConfig, CpuSimResult};
