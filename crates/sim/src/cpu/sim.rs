//! The CPU simulation core: a streaming kernel over lazy job-release
//! generators.
//!
//! Job releases come from per-task [`TaskReleases`] generators merged on
//! demand (O(tasks) release state at any horizon); the ready set is a
//! heap ordered by the policy's urgency key with FIFO tie-break, and
//! every job completion is emitted as a [`CpuEvent`] into the observer
//! pipeline — results and response statistics are observers, exactly
//! like the network kernel.

use profirt_base::release::MergedReleases;
use profirt_base::{Criticality, TaskSet, Time};
use profirt_sched::fixed::PriorityMap;
use profirt_workload::{task_release_gens, TaskRelease};
use serde::{Deserialize, Serialize};

use crate::engine::event::KeyedHeap;
use crate::engine::observer::{HistSummary, Observer, TickHistogram};

/// Dispatching discipline.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CpuPolicy {
    /// Fixed priorities, preemptive (Joseph & Pandya setting).
    FixedPreemptive,
    /// Fixed priorities, non-preemptive (eqs. (1)–(2) setting).
    FixedNonPreemptive,
    /// EDF, preemptive (eqs. (3), (6)–(8) setting).
    EdfPreemptive,
    /// EDF, non-preemptive (eqs. (4)–(5), (9)–(10) setting).
    EdfNonPreemptive,
}

impl CpuPolicy {
    /// `true` for the preemptive disciplines.
    pub fn is_preemptive(self) -> bool {
        matches!(self, CpuPolicy::FixedPreemptive | CpuPolicy::EdfPreemptive)
    }
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct CpuSimConfig {
    /// Dispatching discipline.
    pub policy: CpuPolicy,
    /// Simulate releases in `[offset_i, horizon)`; jobs in flight at the
    /// horizon still run to completion.
    pub horizon: Time,
    /// Per-task first-release offsets; empty = synchronous (all zero).
    pub offsets: Vec<Time>,
    /// Per-task criticality (empty = all HI). Only consulted when
    /// `shed_lo` is set.
    pub criticality: Vec<Criticality>,
    /// Shed sub-HI releases at admission — the CPU-side analogue of the
    /// network kernel's HI (degraded) mode. The CPU simulator has no mode
    /// controller, so the flag models a whole run spent degraded: sub-HI
    /// jobs are never admitted to the ready set.
    pub shed_lo: bool,
}

/// Per-task observations.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct CpuSimResult {
    /// Maximum observed response time per task (zero if no job completed).
    pub max_response: Vec<Time>,
    /// Number of deadline misses per task.
    pub misses: Vec<u64>,
    /// Number of completed jobs per task.
    pub completed: Vec<u64>,
}

impl CpuSimResult {
    /// `true` iff no task missed a deadline.
    pub fn no_misses(&self) -> bool {
        self.misses.iter().all(|&m| m == 0)
    }
}

/// One event of the CPU kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CpuEvent {
    /// A job ran to completion.
    Completed {
        /// The releasing task's index.
        task: usize,
        /// The job's release instant.
        release: Time,
        /// The job's absolute deadline.
        abs_deadline: Time,
        /// The completion instant.
        finish: Time,
    },
}

/// Assembles the [`CpuSimResult`] from the event stream.
#[derive(Clone, Debug)]
pub struct CpuResultObserver {
    result: CpuSimResult,
}

impl CpuResultObserver {
    /// An observer shaped for `n` tasks.
    pub fn new(n: usize) -> CpuResultObserver {
        CpuResultObserver {
            result: CpuSimResult {
                max_response: vec![Time::ZERO; n],
                misses: vec![0; n],
                completed: vec![0; n],
            },
        }
    }

    /// Finalises into the run result.
    pub fn into_result(self) -> CpuSimResult {
        self.result
    }
}

impl Observer<CpuEvent> for CpuResultObserver {
    fn observe(&mut self, _at: Time, event: &CpuEvent) {
        let CpuEvent::Completed {
            task,
            release,
            abs_deadline,
            finish,
        } = *event;
        let r = &mut self.result;
        r.max_response[task] = r.max_response[task].max(finish - release);
        r.completed[task] += 1;
        if finish > abs_deadline {
            r.misses[task] += 1;
        }
    }
}

/// Histogram of job response times, pooled over all tasks.
#[derive(Clone, Debug, Default)]
pub struct CpuResponseStats {
    /// The underlying histogram.
    pub hist: TickHistogram,
}

impl Observer<CpuEvent> for CpuResponseStats {
    fn observe(&mut self, _at: Time, event: &CpuEvent) {
        let CpuEvent::Completed {
            release, finish, ..
        } = *event;
        self.hist.record(finish - release);
    }
}

/// Validates policy/priority-map/offset invariants shared by the kernel
/// and the materialized reference.
///
/// # Panics
/// Panics if a fixed-priority policy is requested without a covering
/// priority map, or if `offsets` is non-empty but of the wrong length.
pub(crate) fn validate_inputs(set: &TaskSet, prio: Option<&PriorityMap>, config: &CpuSimConfig) {
    let n = set.len();
    assert!(
        config.offsets.is_empty() || config.offsets.len() == n,
        "one offset per task required"
    );
    assert!(
        config.criticality.is_empty() || config.criticality.len() == n,
        "one criticality per task required"
    );
    let fixed = matches!(
        config.policy,
        CpuPolicy::FixedPreemptive | CpuPolicy::FixedNonPreemptive
    );
    if fixed {
        assert!(
            prio.map(|p| p.len() == n).unwrap_or(false),
            "fixed-priority simulation requires a covering priority map"
        );
    }
}

/// The policy's urgency key of a job: lower pops first. The task index
/// makes keys of different tasks distinct; same-task jobs tie and fall
/// back to release (FIFO) order via the job's release-order sequence
/// number, which is preserved across preemptions.
/// `true` when a release of `task` must be shed at admission under this
/// config (shared by the kernel and the materialized reference so the
/// differential tests cover the shed path too).
pub(crate) fn shed_at_admission(config: &CpuSimConfig, task: usize) -> bool {
    config.shed_lo
        && config
            .criticality
            .get(task)
            .copied()
            .unwrap_or(Criticality::Hi)
            .shed_in_hi_mode()
}

pub(crate) fn urgency_key(
    policy: CpuPolicy,
    prio: Option<&PriorityMap>,
    task: usize,
    abs_deadline: Time,
) -> (i64, usize) {
    match policy {
        CpuPolicy::FixedPreemptive | CpuPolicy::FixedNonPreemptive => {
            (prio.unwrap().priority(task).0 as i64, task)
        }
        CpuPolicy::EdfPreemptive | CpuPolicy::EdfNonPreemptive => (abs_deadline.ticks(), task),
    }
}

/// An in-flight job.
#[derive(Clone, Copy, Debug)]
struct Job {
    task: usize,
    release: Time,
    abs_deadline: Time,
    remaining: Time,
    /// Release-order sequence number, assigned once at release and kept
    /// across preemptions — the FIFO tie-break among equal urgency keys
    /// (same-task jobs under fixed priorities) stays release-ordered even
    /// when the running job returns to the ready set.
    seq: u64,
}

impl Job {
    fn from_release(r: TaskRelease, seq: u64) -> Job {
        Job {
            task: r.task,
            release: r.release,
            abs_deadline: r.abs_deadline,
            remaining: r.cost,
            seq,
        }
    }
}

/// Runs the streaming CPU kernel, emitting every completion into
/// `observers`.
///
/// `prio` is required for the fixed-priority policies and ignored for
/// EDF.
///
/// # Panics
/// See [`simulate_cpu`].
pub fn run_cpu(
    set: &TaskSet,
    prio: Option<&PriorityMap>,
    config: &CpuSimConfig,
    observers: &mut [&mut dyn Observer<CpuEvent>],
) {
    validate_inputs(set, prio, config);
    let emit = |observers: &mut [&mut dyn Observer<CpuEvent>], at: Time, ev: CpuEvent| {
        for obs in observers.iter_mut() {
            obs.observe(at, &ev);
        }
    };

    let mut releases = MergedReleases::new(task_release_gens(set, &config.offsets, config.horizon));
    let mut ready: KeyedHeap<(i64, usize), Job> = KeyedHeap::new();
    let mut next_seq = 0u64;
    let mut running: Option<Job> = None;
    let mut now = Time::ZERO;
    let key = |job: &Job| urgency_key(config.policy, prio, job.task, job.abs_deadline);

    loop {
        // Advance all releases due at or before `now` into the ready set
        // (sub-HI releases are shed here when the config says so).
        while releases.peek_ready().is_some_and(|r| r <= now) {
            let (_, r) = releases.next_release().expect("peeked");
            if shed_at_admission(config, r.task) {
                continue;
            }
            let job = Job::from_release(r, next_seq);
            next_seq += 1;
            ready.push(key(&job), job.seq, job);
        }
        let next_rel = releases.peek_ready();

        // Pick/maintain the running job.
        if config.policy.is_preemptive() {
            // Preempt if a ready job is more urgent than the running one
            // (the running job re-enters under its original sequence, so
            // it resumes ahead of later-released equal-key jobs).
            if let Some(run) = running.take() {
                ready.push(key(&run), run.seq, run);
            }
            running = ready.pop().map(|(_, _, job)| job);
        } else if running.is_none() {
            running = ready.pop().map(|(_, _, job)| job);
        }

        match (&mut running, next_rel) {
            (None, None) => break, // idle and nothing left to release
            (None, Some(r)) => {
                // The CPU analogue of the network kernels' idle
                // fast-forward: an idle processor has no token rotations
                // or timers to maintain, so the clock jumps straight to
                // the next release in O(1) — no events are elided because
                // an idle CPU emits none.
                now = r;
            }
            (Some(job), next) => {
                let completion = now + job.remaining;
                let run_until = match (config.policy.is_preemptive(), next) {
                    (true, Some(r)) if r < completion => r,
                    _ => completion,
                };
                job.remaining -= run_until - now;
                now = run_until;
                if job.remaining.is_zero() {
                    emit(
                        observers,
                        now,
                        CpuEvent::Completed {
                            task: job.task,
                            release: job.release,
                            abs_deadline: job.abs_deadline,
                            finish: now,
                        },
                    );
                    running = None;
                }
            }
        }
    }
}

/// Simulates the task set under `config`.
///
/// `prio` is required for the fixed-priority policies and ignored for EDF.
///
/// # Panics
/// Panics if a fixed-priority policy is requested without a priority map,
/// or if `offsets` is non-empty but of the wrong length.
pub fn simulate_cpu(
    set: &TaskSet,
    prio: Option<&PriorityMap>,
    config: &CpuSimConfig,
) -> CpuSimResult {
    let mut result = CpuResultObserver::new(set.len());
    run_cpu(set, prio, config, &mut [&mut result]);
    result.into_result()
}

/// Simulates the task set while collecting the pooled response-time
/// distribution (constant memory at any horizon).
pub fn simulate_cpu_stats(
    set: &TaskSet,
    prio: Option<&PriorityMap>,
    config: &CpuSimConfig,
) -> (CpuSimResult, HistSummary) {
    let mut result = CpuResultObserver::new(set.len());
    let mut stats = CpuResponseStats::default();
    run_cpu(set, prio, config, &mut [&mut result, &mut stats]);
    (result.into_result(), stats.hist.summary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;
    use profirt_sched::fixed::rta::{rm_response_times, RtaConfig};
    use profirt_sched::fixed::{np_response_times, NpFixedConfig};

    fn cfg(policy: CpuPolicy, horizon: i64) -> CpuSimConfig {
        CpuSimConfig {
            policy,
            horizon: t(horizon),
            offsets: vec![],
            criticality: vec![],
            shed_lo: false,
        }
    }

    #[test]
    fn single_task_runs_back_to_back() {
        let set = TaskSet::from_ct(&[(3, 10)]).unwrap();
        let pm = PriorityMap::rate_monotonic(&set);
        let r = simulate_cpu(&set, Some(&pm), &cfg(CpuPolicy::FixedPreemptive, 100));
        assert_eq!(r.max_response[0], t(3));
        assert_eq!(r.completed[0], 10);
        assert!(r.no_misses());
    }

    #[test]
    fn preemptive_fp_matches_joseph_pandya_example() {
        // Synchronous release is the FP critical instant, so the simulator
        // must observe exactly the analytical WCRTs.
        let set = TaskSet::from_ct(&[(3, 7), (3, 12), (5, 20)]).unwrap();
        let pm = PriorityMap::rate_monotonic(&set);
        let sim = simulate_cpu(&set, Some(&pm), &cfg(CpuPolicy::FixedPreemptive, 420 * 4));
        let rta = rm_response_times(&set, &RtaConfig::default()).unwrap();
        let wcrts = rta.wcrts().unwrap();
        assert_eq!(sim.max_response, wcrts);
        assert!(sim.no_misses());
    }

    #[test]
    fn preemption_actually_happens() {
        // Low-priority long job released at 0, high-priority at 0: in the
        // preemptive case τ1 finishes at C0 + C1; non-preemptively the
        // FIFO pick at t=0 is the highest priority anyway, so shift the
        // release: offset τ0 by 1 so τ1 starts first.
        let set = TaskSet::from_ct(&[(2, 10), (6, 20)]).unwrap();
        let pm = PriorityMap::rate_monotonic(&set);
        let mut c_p = cfg(CpuPolicy::FixedPreemptive, 40);
        c_p.offsets = vec![t(1), t(0)];
        let r_p = simulate_cpu(&set, Some(&pm), &c_p);
        // τ0 released at 1 preempts τ1 immediately: response 2.
        assert_eq!(r_p.max_response[0], t(2));

        let mut c_np = cfg(CpuPolicy::FixedNonPreemptive, 40);
        c_np.offsets = vec![t(1), t(0)];
        let r_np = simulate_cpu(&set, Some(&pm), &c_np);
        // τ1 runs 0..6; τ0 waits 1..6 then runs: response 7.
        assert_eq!(r_np.max_response[0], t(7));
    }

    #[test]
    fn np_observation_bounded_by_np_analysis() {
        let set = TaskSet::from_cdt(&[(2, 10, 20), (7, 50, 50)]).unwrap();
        let pm = PriorityMap::deadline_monotonic(&set);
        // Adversarial offset: long task starts just before the short one
        // arrives (the blocking worst case).
        for off in 0..5 {
            let mut c = cfg(CpuPolicy::FixedNonPreemptive, 2_000);
            c.offsets = vec![t(off), t(0)];
            let sim = simulate_cpu(&set, Some(&pm), &c);
            let an = np_response_times(&set, &pm, &NpFixedConfig::george()).unwrap();
            for (i, v) in an.verdicts.iter().enumerate() {
                if let Some(bound) = v.wcrt() {
                    assert!(
                        sim.max_response[i] <= bound,
                        "offset {off}: observed {:?} > bound {:?} for task {i}",
                        sim.max_response[i],
                        bound
                    );
                }
            }
        }
    }

    #[test]
    fn edf_preemptive_meets_deadlines_at_full_utilization() {
        // U = 1 implicit deadlines: EDF schedules it (Liu & Layland).
        let set = TaskSet::from_ct(&[(1, 2), (1, 4), (1, 4)]).unwrap();
        let r = simulate_cpu(&set, None, &cfg(CpuPolicy::EdfPreemptive, 4_000));
        assert!(r.no_misses(), "misses: {:?}", r.misses);
    }

    #[test]
    fn edf_schedules_where_rm_misses() {
        // The classic RM-infeasible / EDF-feasible pair: C=(2,4), T=(5,7),
        // U = 2/5 + 4/7 ≈ 0.97. RM: r2 = 8 > 7; EDF: fine.
        let set = TaskSet::from_ct(&[(2, 5), (4, 7)]).unwrap();
        let edf = simulate_cpu(&set, None, &cfg(CpuPolicy::EdfPreemptive, 3_500));
        assert!(edf.no_misses(), "EDF misses: {:?}", edf.misses);
        let pm = PriorityMap::rate_monotonic(&set);
        let rm = simulate_cpu(&set, Some(&pm), &cfg(CpuPolicy::FixedPreemptive, 3_500));
        assert!(!rm.no_misses(), "RM should miss on this set");
    }

    #[test]
    fn edf_nonpreemptive_blocking_observed() {
        // Tight task blocked by a long later-deadline job mid-flight.
        let set = TaskSet::from_cdt(&[(1, 4, 10), (5, 50, 50)]).unwrap();
        let mut c = cfg(CpuPolicy::EdfNonPreemptive, 1_000);
        // Long job starts at 0; tight job arrives at 1 and must wait 4.
        c.offsets = vec![t(1), t(0)];
        let r = simulate_cpu(&set, None, &c);
        assert_eq!(r.max_response[0], t(5)); // 4 blocking + 1 execution
        assert!(r.misses[0] > 0); // D = 4 < 5
    }

    #[test]
    fn overload_misses_are_counted() {
        let set = TaskSet::from_ct(&[(3, 4), (3, 4)]).unwrap();
        let r = simulate_cpu(&set, None, &cfg(CpuPolicy::EdfPreemptive, 400));
        assert!(!r.no_misses());
        assert!(r.misses.iter().sum::<u64>() > 0);
    }

    #[test]
    fn horizon_excludes_later_releases() {
        let set = TaskSet::from_ct(&[(1, 10)]).unwrap();
        let pm = PriorityMap::rate_monotonic(&set);
        let r = simulate_cpu(&set, Some(&pm), &cfg(CpuPolicy::FixedPreemptive, 25));
        // Releases at 0, 10, 20 -> 3 jobs.
        assert_eq!(r.completed[0], 3);
    }

    #[test]
    fn empty_set() {
        let set = TaskSet::new(vec![]).unwrap();
        let r = simulate_cpu(&set, None, &cfg(CpuPolicy::EdfPreemptive, 100));
        assert!(r.max_response.is_empty());
    }

    #[test]
    fn fifo_preserved_across_preemptions_under_overload() {
        // One overloaded FP task (C=3, T=2): every job shares the urgency
        // key, and the running job is re-pushed on every release. Jobs
        // must still complete strictly in release order — the preempted
        // job's original sequence number may not be lost.
        struct OrderProbe {
            completions: Vec<(Time, Time)>, // (release, finish)
        }
        impl Observer<CpuEvent> for OrderProbe {
            fn observe(&mut self, _at: Time, event: &CpuEvent) {
                let CpuEvent::Completed {
                    release, finish, ..
                } = *event;
                self.completions.push((release, finish));
            }
        }
        let set = TaskSet::from_cdt(&[(3, 6, 2)]).unwrap();
        let pm = PriorityMap::rate_monotonic(&set);
        let mut probe = OrderProbe {
            completions: Vec::new(),
        };
        run_cpu(
            &set,
            Some(&pm),
            &cfg(CpuPolicy::FixedPreemptive, 40),
            &mut [&mut probe],
        );
        assert!(probe.completions.len() >= 10);
        for (i, w) in probe.completions.windows(2).enumerate() {
            assert!(
                w[0].0 < w[1].0,
                "completion {i} out of release order: {:?}",
                probe.completions
            );
        }
        // Back-to-back service: job k (released at 2k) finishes at 3(k+1).
        for (k, &(release, finish)) in probe.completions.iter().enumerate() {
            assert_eq!(release, t(2 * k as i64));
            assert_eq!(finish, t(3 * (k as i64 + 1)));
        }
    }

    #[test]
    fn stats_are_passive_and_consistent() {
        let set = TaskSet::from_ct(&[(1, 4), (2, 9), (3, 17)]).unwrap();
        let c = cfg(CpuPolicy::EdfPreemptive, 10_000);
        let plain = simulate_cpu(&set, None, &c);
        let (result, stats) = simulate_cpu_stats(&set, None, &c);
        assert_eq!(plain, result);
        assert_eq!(stats.count, result.completed.iter().sum::<u64>());
        assert_eq!(stats.max, *result.max_response.iter().max().unwrap());
        assert!(stats.p50 <= stats.p99);
    }

    #[test]
    fn shed_lo_skips_sub_hi_admissions() {
        use crate::cpu::reference::simulate_cpu_materialized;
        use profirt_base::Criticality;

        let set = TaskSet::from_ct(&[(1, 4), (2, 9)]).unwrap();
        let mut c = cfg(CpuPolicy::EdfPreemptive, 1_000);
        c.criticality = vec![Criticality::Hi, Criticality::Lo];
        c.shed_lo = true;
        let r = simulate_cpu(&set, None, &c);
        // The LO task never runs; the HI task is undisturbed.
        assert_eq!(r.completed[1], 0);
        assert_eq!(r.max_response[1], Time::ZERO);
        assert_eq!(r.completed[0], 250);
        assert_eq!(r.max_response[0], t(1));
        // The materialized reference sheds identically.
        assert_eq!(r, simulate_cpu_materialized(&set, None, &c));
        // Labels alone (shed_lo off) change nothing.
        c.shed_lo = false;
        let labelled = simulate_cpu(&set, None, &c);
        c.criticality = vec![];
        assert_eq!(labelled, simulate_cpu(&set, None, &c));
    }

    #[test]
    #[should_panic(expected = "one criticality per task")]
    fn wrong_criticality_count_panics() {
        let set = TaskSet::from_ct(&[(1, 10), (1, 20)]).unwrap();
        let mut c = cfg(CpuPolicy::EdfPreemptive, 100);
        c.criticality = vec![profirt_base::Criticality::Lo];
        let _ = simulate_cpu(&set, None, &c);
    }

    #[test]
    #[should_panic(expected = "requires a covering priority map")]
    fn fixed_without_priorities_panics() {
        let set = TaskSet::from_ct(&[(1, 10)]).unwrap();
        let _ = simulate_cpu(&set, None, &cfg(CpuPolicy::FixedPreemptive, 100));
    }

    #[test]
    #[should_panic(expected = "one offset per task")]
    fn wrong_offset_count_panics() {
        let set = TaskSet::from_ct(&[(1, 10), (1, 20)]).unwrap();
        let mut c = cfg(CpuPolicy::EdfPreemptive, 100);
        c.offsets = vec![t(0)];
        let _ = simulate_cpu(&set, None, &c);
    }
}
