//! The CPU simulation core.

use profirt_base::{TaskSet, Time};
use profirt_sched::fixed::PriorityMap;
use serde::{Deserialize, Serialize};

/// Dispatching discipline.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CpuPolicy {
    /// Fixed priorities, preemptive (Joseph & Pandya setting).
    FixedPreemptive,
    /// Fixed priorities, non-preemptive (eqs. (1)–(2) setting).
    FixedNonPreemptive,
    /// EDF, preemptive (eqs. (3), (6)–(8) setting).
    EdfPreemptive,
    /// EDF, non-preemptive (eqs. (4)–(5), (9)–(10) setting).
    EdfNonPreemptive,
}

impl CpuPolicy {
    /// `true` for the preemptive disciplines.
    pub fn is_preemptive(self) -> bool {
        matches!(self, CpuPolicy::FixedPreemptive | CpuPolicy::EdfPreemptive)
    }
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct CpuSimConfig {
    /// Dispatching discipline.
    pub policy: CpuPolicy,
    /// Simulate releases in `[offset_i, horizon)`; jobs in flight at the
    /// horizon still run to completion.
    pub horizon: Time,
    /// Per-task first-release offsets; empty = synchronous (all zero).
    pub offsets: Vec<Time>,
}

/// Per-task observations.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct CpuSimResult {
    /// Maximum observed response time per task (zero if no job completed).
    pub max_response: Vec<Time>,
    /// Number of deadline misses per task.
    pub misses: Vec<u64>,
    /// Number of completed jobs per task.
    pub completed: Vec<u64>,
}

impl CpuSimResult {
    /// `true` iff no task missed a deadline.
    pub fn no_misses(&self) -> bool {
        self.misses.iter().all(|&m| m == 0)
    }
}

#[derive(Clone, Copy, Debug)]
struct Job {
    task: usize,
    release: Time,
    abs_deadline: Time,
    remaining: Time,
}

/// Simulates the task set under `config`.
///
/// `prio` is required for the fixed-priority policies and ignored for EDF.
///
/// # Panics
/// Panics if a fixed-priority policy is requested without a priority map,
/// or if `offsets` is non-empty but of the wrong length.
pub fn simulate_cpu(
    set: &TaskSet,
    prio: Option<&PriorityMap>,
    config: &CpuSimConfig,
) -> CpuSimResult {
    let n = set.len();
    let offsets: Vec<Time> = if config.offsets.is_empty() {
        vec![Time::ZERO; n]
    } else {
        assert_eq!(config.offsets.len(), n, "one offset per task required");
        config.offsets.clone()
    };
    let fixed = matches!(
        config.policy,
        CpuPolicy::FixedPreemptive | CpuPolicy::FixedNonPreemptive
    );
    if fixed {
        assert!(
            prio.map(|p| p.len() == n).unwrap_or(false),
            "fixed-priority simulation requires a covering priority map"
        );
    }
    let urgency_key = |job: &Job| -> (i64, usize) {
        match config.policy {
            CpuPolicy::FixedPreemptive | CpuPolicy::FixedNonPreemptive => {
                (prio.unwrap().priority(job.task).0 as i64, job.task)
            }
            CpuPolicy::EdfPreemptive | CpuPolicy::EdfNonPreemptive => {
                (job.abs_deadline.ticks(), job.task)
            }
        }
    };

    let mut result = CpuSimResult {
        max_response: vec![Time::ZERO; n],
        misses: vec![0; n],
        completed: vec![0; n],
    };
    if n == 0 {
        return result;
    }

    let mut next_release = offsets.clone();
    let mut ready: Vec<Job> = Vec::new();
    let mut running: Option<Job> = None;
    let mut now = Time::ZERO;

    // Advances all releases due at or before `t` into the ready set.
    // Returns the earliest future release after `t` (or None when all
    // tasks have passed the horizon).
    fn sync_releases(
        set: &TaskSet,
        horizon: Time,
        next_release: &mut [Time],
        ready: &mut Vec<Job>,
        t: Time,
    ) -> Option<Time> {
        let mut earliest: Option<Time> = None;
        for (i, task) in set.iter() {
            while next_release[i] <= t && next_release[i] < horizon {
                ready.push(Job {
                    task: i,
                    release: next_release[i],
                    abs_deadline: next_release[i] + task.d,
                    remaining: task.c,
                });
                next_release[i] += task.t;
            }
            if next_release[i] < horizon {
                earliest = Some(match earliest {
                    Some(e) => e.min(next_release[i]),
                    None => next_release[i],
                });
            }
        }
        earliest
    }

    loop {
        let next_rel = sync_releases(set, config.horizon, &mut next_release, &mut ready, now);

        // Pick/maintain the running job.
        if config.policy.is_preemptive() {
            // Preempt if a ready job is more urgent than the running one.
            if let Some(run) = running.take() {
                ready.push(run);
            }
            if !ready.is_empty() {
                let best = ready
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, j)| urgency_key(j))
                    .map(|(idx, _)| idx)
                    .unwrap();
                running = Some(ready.swap_remove(best));
            }
        } else if running.is_none() && !ready.is_empty() {
            let best = ready
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| urgency_key(j))
                .map(|(idx, _)| idx)
                .unwrap();
            running = Some(ready.swap_remove(best));
        }

        match (&mut running, next_rel) {
            (None, None) => break, // idle and nothing left to release
            (None, Some(r)) => {
                now = r; // idle until the next release
            }
            (Some(job), next) => {
                let completion = now + job.remaining;
                let run_until = match (config.policy.is_preemptive(), next) {
                    (true, Some(r)) if r < completion => r,
                    _ => completion,
                };
                job.remaining -= run_until - now;
                now = run_until;
                if job.remaining.is_zero() {
                    let resp = now - job.release;
                    let i = job.task;
                    result.max_response[i] = result.max_response[i].max(resp);
                    result.completed[i] += 1;
                    if now > job.abs_deadline {
                        result.misses[i] += 1;
                    }
                    running = None;
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;
    use profirt_sched::fixed::rta::{rm_response_times, RtaConfig};
    use profirt_sched::fixed::{np_response_times, NpFixedConfig};

    fn cfg(policy: CpuPolicy, horizon: i64) -> CpuSimConfig {
        CpuSimConfig {
            policy,
            horizon: t(horizon),
            offsets: vec![],
        }
    }

    #[test]
    fn single_task_runs_back_to_back() {
        let set = TaskSet::from_ct(&[(3, 10)]).unwrap();
        let pm = PriorityMap::rate_monotonic(&set);
        let r = simulate_cpu(&set, Some(&pm), &cfg(CpuPolicy::FixedPreemptive, 100));
        assert_eq!(r.max_response[0], t(3));
        assert_eq!(r.completed[0], 10);
        assert!(r.no_misses());
    }

    #[test]
    fn preemptive_fp_matches_joseph_pandya_example() {
        // Synchronous release is the FP critical instant, so the simulator
        // must observe exactly the analytical WCRTs.
        let set = TaskSet::from_ct(&[(3, 7), (3, 12), (5, 20)]).unwrap();
        let pm = PriorityMap::rate_monotonic(&set);
        let sim = simulate_cpu(&set, Some(&pm), &cfg(CpuPolicy::FixedPreemptive, 420 * 4));
        let rta = rm_response_times(&set, &RtaConfig::default()).unwrap();
        let wcrts = rta.wcrts().unwrap();
        assert_eq!(sim.max_response, wcrts);
        assert!(sim.no_misses());
    }

    #[test]
    fn preemption_actually_happens() {
        // Low-priority long job released at 0, high-priority at 0: in the
        // preemptive case τ1 finishes at C0 + C1; non-preemptively the
        // FIFO pick at t=0 is the highest priority anyway, so shift the
        // release: offset τ0 by 1 so τ1 starts first.
        let set = TaskSet::from_ct(&[(2, 10), (6, 20)]).unwrap();
        let pm = PriorityMap::rate_monotonic(&set);
        let mut c_p = cfg(CpuPolicy::FixedPreemptive, 40);
        c_p.offsets = vec![t(1), t(0)];
        let r_p = simulate_cpu(&set, Some(&pm), &c_p);
        // τ0 released at 1 preempts τ1 immediately: response 2.
        assert_eq!(r_p.max_response[0], t(2));

        let mut c_np = cfg(CpuPolicy::FixedNonPreemptive, 40);
        c_np.offsets = vec![t(1), t(0)];
        let r_np = simulate_cpu(&set, Some(&pm), &c_np);
        // τ1 runs 0..6; τ0 waits 1..6 then runs: response 7.
        assert_eq!(r_np.max_response[0], t(7));
    }

    #[test]
    fn np_observation_bounded_by_np_analysis() {
        let set = TaskSet::from_cdt(&[(2, 10, 20), (7, 50, 50)]).unwrap();
        let pm = PriorityMap::deadline_monotonic(&set);
        // Adversarial offset: long task starts just before the short one
        // arrives (the blocking worst case).
        for off in 0..5 {
            let mut c = cfg(CpuPolicy::FixedNonPreemptive, 2_000);
            c.offsets = vec![t(off), t(0)];
            let sim = simulate_cpu(&set, Some(&pm), &c);
            let an = np_response_times(&set, &pm, &NpFixedConfig::george()).unwrap();
            for (i, v) in an.verdicts.iter().enumerate() {
                if let Some(bound) = v.wcrt() {
                    assert!(
                        sim.max_response[i] <= bound,
                        "offset {off}: observed {:?} > bound {:?} for task {i}",
                        sim.max_response[i],
                        bound
                    );
                }
            }
        }
    }

    #[test]
    fn edf_preemptive_meets_deadlines_at_full_utilization() {
        // U = 1 implicit deadlines: EDF schedules it (Liu & Layland).
        let set = TaskSet::from_ct(&[(1, 2), (1, 4), (1, 4)]).unwrap();
        let r = simulate_cpu(&set, None, &cfg(CpuPolicy::EdfPreemptive, 4_000));
        assert!(r.no_misses(), "misses: {:?}", r.misses);
    }

    #[test]
    fn edf_schedules_where_rm_misses() {
        // The classic RM-infeasible / EDF-feasible pair: C=(2,4), T=(5,7),
        // U = 2/5 + 4/7 ≈ 0.97. RM: r2 = 8 > 7; EDF: fine.
        let set = TaskSet::from_ct(&[(2, 5), (4, 7)]).unwrap();
        let edf = simulate_cpu(&set, None, &cfg(CpuPolicy::EdfPreemptive, 3_500));
        assert!(edf.no_misses(), "EDF misses: {:?}", edf.misses);
        let pm = PriorityMap::rate_monotonic(&set);
        let rm = simulate_cpu(&set, Some(&pm), &cfg(CpuPolicy::FixedPreemptive, 3_500));
        assert!(!rm.no_misses(), "RM should miss on this set");
    }

    #[test]
    fn edf_nonpreemptive_blocking_observed() {
        // Tight task blocked by a long later-deadline job mid-flight.
        let set = TaskSet::from_cdt(&[(1, 4, 10), (5, 50, 50)]).unwrap();
        let mut c = cfg(CpuPolicy::EdfNonPreemptive, 1_000);
        // Long job starts at 0; tight job arrives at 1 and must wait 4.
        c.offsets = vec![t(1), t(0)];
        let r = simulate_cpu(&set, None, &c);
        assert_eq!(r.max_response[0], t(5)); // 4 blocking + 1 execution
        assert!(r.misses[0] > 0); // D = 4 < 5
    }

    #[test]
    fn overload_misses_are_counted() {
        let set = TaskSet::from_ct(&[(3, 4), (3, 4)]).unwrap();
        let r = simulate_cpu(&set, None, &cfg(CpuPolicy::EdfPreemptive, 400));
        assert!(!r.no_misses());
        assert!(r.misses.iter().sum::<u64>() > 0);
    }

    #[test]
    fn horizon_excludes_later_releases() {
        let set = TaskSet::from_ct(&[(1, 10)]).unwrap();
        let pm = PriorityMap::rate_monotonic(&set);
        let r = simulate_cpu(&set, Some(&pm), &cfg(CpuPolicy::FixedPreemptive, 25));
        // Releases at 0, 10, 20 -> 3 jobs.
        assert_eq!(r.completed[0], 3);
    }

    #[test]
    fn empty_set() {
        let set = TaskSet::new(vec![]).unwrap();
        let r = simulate_cpu(&set, None, &cfg(CpuPolicy::EdfPreemptive, 100));
        assert!(r.max_response.is_empty());
    }

    #[test]
    #[should_panic(expected = "requires a covering priority map")]
    fn fixed_without_priorities_panics() {
        let set = TaskSet::from_ct(&[(1, 10)]).unwrap();
        let _ = simulate_cpu(&set, None, &cfg(CpuPolicy::FixedPreemptive, 100));
    }

    #[test]
    #[should_panic(expected = "one offset per task")]
    fn wrong_offset_count_panics() {
        let set = TaskSet::from_ct(&[(1, 10), (1, 20)]).unwrap();
        let mut c = cfg(CpuPolicy::EdfPreemptive, 100);
        c.offsets = vec![t(0)];
        let _ = simulate_cpu(&set, None, &c);
    }
}
