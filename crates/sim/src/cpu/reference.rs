//! The pre-materialized reference CPU simulator.
//!
//! Drains the same lazy job-release generators into one sorted `Vec` up
//! front (O(horizon × tasks) memory) and dispatches with a linear-scan
//! ready list — the pre-streaming implementation, kept as the executable
//! specification the differential property tests pin
//! [`crate::cpu::simulate_cpu`] against, and the baseline the
//! `sim_kernel` benchmark measures.
//!
//! Dispatch order is defined identically to the kernel: most urgent
//! first by the policy's `(key, task)` urgency, FIFO among equal keys via
//! a release-order sequence number assigned once per job and preserved
//! across preemptions (order-preserving removal, so the scan's tie-break
//! is deterministic).

use profirt_base::release::MergedReleases;
use profirt_base::{TaskSet, Time};
use profirt_sched::fixed::PriorityMap;
use profirt_workload::task_release_gens;

use crate::cpu::sim::{
    shed_at_admission, urgency_key, validate_inputs, CpuSimConfig, CpuSimResult,
};

#[derive(Clone, Copy, Debug)]
struct Job {
    task: usize,
    release: Time,
    abs_deadline: Time,
    remaining: Time,
    /// Release-order sequence, kept across preemptions (the kernel's
    /// FIFO tie-break, mirrored here).
    seq: u64,
}

/// Simulates the task set with the pre-materialized baseline.
///
/// # Panics
/// Same contract as [`crate::cpu::simulate_cpu`].
pub fn simulate_cpu_materialized(
    set: &TaskSet,
    prio: Option<&PriorityMap>,
    config: &CpuSimConfig,
) -> CpuSimResult {
    validate_inputs(set, prio, config);
    let n = set.len();
    let mut result = CpuSimResult {
        max_response: vec![Time::ZERO; n],
        misses: vec![0; n],
        completed: vec![0; n],
    };

    // Materialize every release of the run up front (the memory profile
    // the streaming kernel avoids).
    let releases =
        MergedReleases::new(task_release_gens(set, &config.offsets, config.horizon)).drain_to_vec();
    let mut next_index = 0usize;

    let key = |job: &Job| urgency_key(config.policy, prio, job.task, job.abs_deadline);
    let mut ready: Vec<((i64, usize), u64, Job)> = Vec::new();
    let mut next_seq = 0u64;
    let mut running: Option<Job> = None;
    let mut now = Time::ZERO;

    loop {
        while next_index < releases.len() && releases[next_index].0 <= now {
            let r = releases[next_index].1;
            next_index += 1;
            if shed_at_admission(config, r.task) {
                continue;
            }
            let job = Job {
                task: r.task,
                release: r.release,
                abs_deadline: r.abs_deadline,
                remaining: r.cost,
                seq: next_seq,
            };
            next_seq += 1;
            ready.push((key(&job), job.seq, job));
        }
        let next_rel = releases.get(next_index).map(|&(ready_at, _)| ready_at);

        // Pick/maintain the running job by linear scan over the ready
        // list, most urgent `(key, seq)` first; a preempted job re-enters
        // under its original release-order sequence.
        if config.policy.is_preemptive() {
            if let Some(run) = running.take() {
                ready.push((key(&run), run.seq, run));
            }
            if !ready.is_empty() {
                let best = ready
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(k, s, _))| (k, s))
                    .map(|(idx, _)| idx)
                    .unwrap();
                running = Some(ready.remove(best).2);
            }
        } else if running.is_none() && !ready.is_empty() {
            let best = ready
                .iter()
                .enumerate()
                .min_by_key(|(_, &(k, s, _))| (k, s))
                .map(|(idx, _)| idx)
                .unwrap();
            running = Some(ready.remove(best).2);
        }

        match (&mut running, next_rel) {
            (None, None) => break,
            (None, Some(r)) => {
                now = r;
            }
            (Some(job), next) => {
                let completion = now + job.remaining;
                let run_until = match (config.policy.is_preemptive(), next) {
                    (true, Some(r)) if r < completion => r,
                    _ => completion,
                };
                job.remaining -= run_until - now;
                now = run_until;
                if job.remaining.is_zero() {
                    let i = job.task;
                    result.max_response[i] = result.max_response[i].max(now - job.release);
                    result.completed[i] += 1;
                    if now > job.abs_deadline {
                        result.misses[i] += 1;
                    }
                    running = None;
                }
            }
        }
    }
    result
}
