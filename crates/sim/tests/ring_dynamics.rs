//! Live-ring dynamics: tick-exact unit tests for GAP-driven joins and
//! failed-pass leave detection, claim recovery after a holder crash, and
//! churn property tests pinning determinism (same seed + plan ⇒ same
//! event stream) plus the ring-consistency invariants (the token holder
//! is always a ring member; every admitted master was GAP-polled or
//! claimed first).

use proptest::prelude::*;

use profirt_base::{MasterAddr, StreamSet, Time};
use profirt_profibus::QueuePolicy;
use profirt_sim::network::run_network;
use profirt_sim::{
    simulate_network, simulate_network_stats, MembershipAction, MembershipPlan, NetEvent,
    NetworkSimConfig, Observer, SimMaster, SimNetwork,
};

fn t(v: i64) -> Time {
    Time::new(v)
}

/// Collects the raw event stream.
#[derive(Default)]
struct EventLog {
    events: Vec<(Time, NetEvent)>,
}

impl Observer<NetEvent> for EventLog {
    fn observe(&mut self, at: Time, event: &NetEvent) {
        self.events.push((at, *event));
    }
}

fn run_logged(net: &SimNetwork, cfg: &NetworkSimConfig) -> Vec<(Time, NetEvent)> {
    let mut log = EventLog::default();
    run_network(net, cfg, &mut [&mut log]);
    log.events
}

fn quiet_master(addr: u8) -> SimMaster {
    SimMaster::stock(StreamSet::new(vec![]).unwrap()).with_addr(MasterAddr(addr))
}

/// GAP admission, tick for tick. Ring {0, 2}, joiner at address 1 powered
/// on at t = 0, GAP factor 1, no traffic, token_pass = 100, TSL = 200.
/// 500 kbit/s GAP poll costs: answered = TSYN + SD1 + maxTSDR + SD1 + TID1
/// = 33+66+100+66+37 = 302; silent = TSYN + SD1 + TSL = 33+66+200 = 299.
///
/// t=0    visit M0 (wrap #1 for the listener), poll addr 1 → not ready
///        (one rotation observed), +302 → pass +100
/// t=402  visit M2, poll addr 3 → silent, +299 → pass +100
/// t=801  visit M0 (wrap #2 → ready), poll addr 1 → MasterReady, +302:
///        M1 joins at 1103 → pass +100
/// t=1203 first token arrival at M1.
#[test]
fn join_latency_two_rotations_then_gap_admission() {
    let net = SimNetwork::new(
        vec![quiet_master(0), quiet_master(1), quiet_master(2)],
        t(10_000),
        t(100),
    )
    .unwrap();
    let cfg = NetworkSimConfig {
        horizon: t(3_000),
        gap_factor: 1,
        membership: MembershipPlan::new()
            .starts_off(1)
            .at(t(0), 1, MembershipAction::PowerOn),
        ..Default::default()
    };
    let events = run_logged(&net, &cfg);

    // First poll of address 1 happens on the first visit but does not
    // admit: only one rotation observed.
    let first_poll = events
        .iter()
        .find(|(_, e)| matches!(e, NetEvent::GapPoll { target, .. } if *target == MasterAddr(1)))
        .expect("address 1 polled");
    assert_eq!(first_poll.0, t(0));
    assert!(
        matches!(first_poll.1, NetEvent::GapPoll { admitted: None, .. }),
        "one observed rotation must not satisfy the LAS-learning rule"
    );

    // The admitting poll starts at t = 801 and completes at t = 1103.
    let admitting = events
        .iter()
        .find(|(_, e)| {
            matches!(
                e,
                NetEvent::GapPoll {
                    admitted: Some(1),
                    ..
                }
            )
        })
        .expect("admitting poll");
    assert_eq!(admitting.0, t(801));
    let join = events
        .iter()
        .find(|(_, e)| matches!(e, NetEvent::MasterJoin { master: 1 }))
        .expect("join event");
    assert_eq!(join.0, t(1_103));

    // The very next rotation already includes the joiner.
    let first_arrival = events
        .iter()
        .find(|(_, e)| matches!(e, NetEvent::TokenArrival { master: 1, .. }))
        .expect("token reaches the joiner");
    assert_eq!(first_arrival.0, t(1_203));
}

/// Leave detection, tick for tick. Ring {0, 1, 2}, no GAP polling, M1
/// powers off at t = 150; token_pass = 100, TSL = 200, max_retry = 1 so a
/// dead successor costs 2·(pass + TSL) = 600 before the skip.
///
/// t=0..300 rotation reaches M0 again (M1's death applied at t = 200).
/// t=300  M0 passes: attempt +100 → silence +200 → retry +300:
///        M1 dropped at t = 900, next member +100 → M2 at t = 1000.
#[test]
fn leave_detection_retries_exhaust_then_successor_skip() {
    let net = SimNetwork::new(
        vec![quiet_master(0), quiet_master(1), quiet_master(2)],
        t(10_000),
        t(100),
    )
    .unwrap();
    let cfg = NetworkSimConfig {
        horizon: t(2_000),
        membership: MembershipPlan::new().at(t(150), 1, MembershipAction::PowerOff),
        ..Default::default()
    };
    let events = run_logged(&net, &cfg);

    let leave = events
        .iter()
        .find(|(_, e)| matches!(e, NetEvent::MasterLeave { master: 1 }))
        .expect("leave detected");
    assert_eq!(leave.0, t(900));
    // The skip pass lands on M2 at t = 1000.
    assert!(events.contains(&(t(1_000), NetEvent::TokenPass { from: 0, to: 2 })));
    assert!(events
        .iter()
        .any(|(at, e)| *at == t(1_000) && matches!(e, NetEvent::TokenArrival { master: 2, .. })));
    // M1 receives no token after its last pre-death arrival at t = 100.
    let last_m1 = events
        .iter()
        .filter(|(_, e)| matches!(e, NetEvent::TokenArrival { master: 1, .. }))
        .map(|(at, _)| *at)
        .max()
        .unwrap();
    assert_eq!(last_m1, t(100));
}

/// A holder crash makes the token vanish: the surviving lowest-address
/// powered member claims it after its staggered timeout
/// `TTO = (6 + 2·addr)·TSL`.
#[test]
fn holder_crash_recovers_through_claim_timeout() {
    let net = SimNetwork::new(vec![quiet_master(0), quiet_master(1)], t(10_000), t(100)).unwrap();
    let cfg = NetworkSimConfig {
        horizon: t(5_000),
        membership: MembershipPlan::new().at(t(0), 0, MembershipAction::Crash),
        ..Default::default()
    };
    let events = run_logged(&net, &cfg);
    // M0 crashes before its first visit; M1 (addr 1) claims after
    // (6 + 2)·200 = 1600 ticks of silence.
    let claim = events
        .iter()
        .find(|(_, e)| matches!(e, NetEvent::Claim { master: 1 }))
        .expect("claim");
    assert_eq!(claim.0, t(1_600));
    assert!(events
        .iter()
        .any(|(at, e)| *at == t(1_600) && matches!(e, NetEvent::TokenArrival { master: 1, .. })));
    assert!(
        !events
            .iter()
            .any(|(_, e)| matches!(e, NetEvent::TokenArrival { master: 0, .. })),
        "the crashed master must never see the token"
    );
    // Its corpse is skipped out of the LAS on M1's first pass.
    assert!(events
        .iter()
        .any(|(_, e)| matches!(e, NetEvent::MasterLeave { master: 0 })));
}

/// Ring statistics surface the membership timeline.
#[test]
fn ring_stats_track_churn() {
    let streams = StreamSet::from_cdt(&[(200, 20_000, 10_000)]).unwrap();
    let mk = |addr: u8| SimMaster::stock(streams.clone()).with_addr(MasterAddr(addr));
    let net = SimNetwork::new(vec![mk(0), mk(1), mk(2)], t(3_000), t(100)).unwrap();
    let cfg = NetworkSimConfig {
        horizon: t(400_000),
        gap_factor: 2,
        membership: MembershipPlan::new().power_cycle(2, t(50_000), t(80_000)),
        ..Default::default()
    };
    let (result, stats) = simulate_network_stats(&net, &cfg);
    assert_eq!(stats.ring.min_size, 2, "{:?}", stats.ring);
    assert_eq!(stats.ring.max_size, 3);
    assert_eq!(stats.ring.final_size, 3, "the master must rejoin");
    assert_eq!(stats.ring.events, 2); // one leave + one rejoin
    assert!(stats.ring.gap_polls > 0);
    assert!(result.token_visits[2] > 0);
    // Rotation histograms exist for both ring sizes the run passed
    // through, and the small ring rotates strictly faster on average.
    assert_eq!(
        stats
            .trr_by_ring_size
            .iter()
            .map(|(s, _)| *s)
            .collect::<Vec<_>>(),
        vec![2, 3]
    );
    let mean = |s: &profirt_sim::HistSummary| s.mean;
    let two = &stats.trr_by_ring_size[0].1;
    let three = &stats.trr_by_ring_size[1].1;
    assert!(
        mean(two) < mean(three),
        "2-ring {:?} vs 3-ring {:?}",
        two,
        three
    );
}

/// A static-ring run through the dynamic machinery still honours the
/// defaults: `NetworkSimConfig::default()` takes the fast path.
#[test]
fn defaults_select_the_static_fast_path() {
    assert!(NetworkSimConfig::default().is_static_ring());
    // GAP polling alone (no churn) leaves the ring full but costs
    // rotation time: the poll overhead must show up in max TRR.
    let streams = StreamSet::from_cdt(&[(200, 20_000, 10_000)]).unwrap();
    let net = SimNetwork::new(
        vec![SimMaster::stock(streams.clone()), SimMaster::stock(streams)],
        t(3_000),
        t(100),
    )
    .unwrap();
    let quiet = simulate_network(&net, &NetworkSimConfig::default());
    let polled = simulate_network(
        &net,
        &NetworkSimConfig {
            gap_factor: 1,
            ..Default::default()
        },
    );
    assert!(polled.max_trr_overall() > quiet.max_trr_overall());
    // Same served traffic either way on this uncontended network.
    assert_eq!(
        quiet
            .streams
            .iter()
            .flatten()
            .map(|o| o.misses)
            .sum::<u64>(),
        0
    );
    assert_eq!(
        polled
            .streams
            .iter()
            .flatten()
            .map(|o| o.misses)
            .sum::<u64>(),
        0
    );
}

fn arb_plan() -> impl Strategy<Value = MembershipPlan> {
    (
        proptest::collection::vec((1usize..3, 1i64..90_000, 1i64..90_000), 0..=3),
        proptest::collection::vec(1usize..3, 0..=1),
    )
        .prop_map(|(cycles, off)| {
            let mut plan = MembershipPlan::new();
            for m in off {
                plan = plan.starts_off(m);
            }
            for (m, a, b) in cycles {
                plan = plan.power_cycle(m, t(a.min(b)), t(a.max(b) + 1));
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Churn determinism + ring-consistency invariants over random plans,
    /// seeds, GAP factors and fault injection.
    #[test]
    fn churn_runs_are_deterministic_and_ring_consistent(
        plan in arb_plan(),
        seed in any::<u64>(),
        gap_factor in 1u32..4,
        lossy in any::<bool>(),
    ) {
        let streams = StreamSet::from_cdt(&[(150, 6_000, 8_000), (250, 9_000, 12_000)]).unwrap();
        let mk = |addr: u8| {
            SimMaster::priority_queued(streams.clone(), QueuePolicy::DeadlineMonotonic)
                .with_addr(MasterAddr(addr))
        };
        let net = SimNetwork::new(vec![mk(0), mk(1), mk(2)], t(4_000), t(166)).unwrap();
        let cfg = NetworkSimConfig {
            horizon: t(120_000),
            seed,
            gap_factor,
            token_loss_prob: if lossy { 0.05 } else { 0.0 },
            membership: plan,
            ..Default::default()
        };

        // Same seed + plan ⇒ byte-identical event stream (and therefore
        // identical results for any observer set).
        let a = run_logged(&net, &cfg);
        let b = run_logged(&net, &cfg);
        prop_assert_eq!(&a, &b);

        // Ring-consistency invariants over the stream.
        let mut in_ring = [true; 3];
        for m in cfg.membership.initially_off() {
            in_ring[*m] = false;
        }
        let mut prev: Option<NetEvent> = None;
        for (_, ev) in &a {
            match *ev {
                NetEvent::TokenArrival { master, .. } => {
                    prop_assert!(in_ring[master], "token at non-member {master}");
                }
                NetEvent::MasterJoin { master } => {
                    prop_assert!(!in_ring[master], "double join {master}");
                    // Every admission is justified by the event before it:
                    // a GAP poll that found the master ready, or its claim
                    // of a dead bus.
                    let justified = matches!(
                        prev,
                        Some(NetEvent::GapPoll { admitted: Some(m), .. }) if m == master
                    ) || matches!(
                        prev,
                        Some(NetEvent::Claim { master: m }) if m == master
                    );
                    prop_assert!(justified, "unjustified join of {master} after {prev:?}");
                    in_ring[master] = true;
                }
                NetEvent::MasterLeave { master } => {
                    prop_assert!(in_ring[master], "leave of non-member {master}");
                    in_ring[master] = false;
                }
                NetEvent::TokenPass { from, to } => {
                    prop_assert!(in_ring[from] && in_ring[to]);
                }
                _ => {}
            }
            prev = Some(*ev);
        }
    }
}
