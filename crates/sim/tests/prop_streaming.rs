//! Differential property tests: the streaming kernels must reproduce the
//! pre-materialized reference simulators **exactly** — same
//! `NetworkSimResult` / `CpuSimResult`, field for field — across random
//! networks, seeds, offset/jitter modes, queue policies, and fault
//! injection. Plus the long-horizon memory contract: the kernel's release
//! state stays O(streams) no matter the horizon.

use proptest::prelude::*;

use profirt_base::{MessageStream, StreamSet, Task, TaskSet, Time};
use profirt_profibus::{LowPriorityTraffic, QueuePolicy};
use profirt_sched::fixed::PriorityMap;
use profirt_sim::{
    simulate_cpu, simulate_cpu_materialized, simulate_network, simulate_network_materialized,
    simulate_network_stats, CpuPolicy, CpuSimConfig, JitterInjection, NetworkSimConfig, OffsetMode,
    SimMaster, SimNetwork,
};

fn t(v: i64) -> Time {
    Time::new(v)
}

/// Streams with deliberately wild jitter (J can exceed T, so the lazy
/// generators' reorder buffering is exercised) and deadlines both tight
/// and lax.
fn arb_streams() -> impl Strategy<Value = StreamSet> {
    proptest::collection::vec((50i64..400, 1i64..12, 1i64..8, 0i64..4), 0..=4).prop_map(|raw| {
        let streams: Vec<MessageStream> = raw
            .into_iter()
            .map(|(ch, df, tf, jf)| {
                MessageStream::with_jitter(
                    Time::new(ch),
                    Time::new(1_000 * df),
                    Time::new(2_500 * tf),
                    Time::new(1_700 * jf),
                )
                .unwrap()
            })
            .collect();
        StreamSet::new(streams).unwrap()
    })
}

fn arb_master() -> impl Strategy<Value = SimMaster> {
    (
        arb_streams(),
        0u8..3,
        proptest::collection::vec((100i64..400, 1i64..6), 0..=2),
    )
        .prop_map(|(streams, policy, lp)| {
            let mut m = match policy {
                0 => SimMaster::stock(streams),
                1 => SimMaster::priority_queued(streams, QueuePolicy::DeadlineMonotonic),
                _ => SimMaster::priority_queued(streams, QueuePolicy::Edf),
            };
            for (cycle, pf) in lp {
                m.low_priority
                    .push(LowPriorityTraffic::new(t(cycle), t(1_500 * pf)));
            }
            m
        })
}

fn arb_net_config() -> impl Strategy<Value = NetworkSimConfig> {
    (
        any::<u64>(),
        0u8..2, // offset mode
        0u8..3, // jitter mode
        0u8..3, // loss level
        0u8..2, // undershoot level
    )
        .prop_map(|(seed, off, jit, loss, under)| NetworkSimConfig {
            horizon: t(250_000),
            seed,
            offsets: if off == 0 {
                OffsetMode::Synchronous
            } else {
                OffsetMode::Random
            },
            jitter: match jit {
                0 => JitterInjection::None,
                1 => JitterInjection::FirstLate,
                _ => JitterInjection::Random,
            },
            token_loss_prob: [0.0, 0.05, 0.4][loss as usize],
            cycle_undershoot: [0.0, 0.3][under as usize],
            ..Default::default()
        })
}

fn arb_task_set() -> impl Strategy<Value = TaskSet> {
    proptest::collection::vec((1i64..10, 1i64..60, 1u8..4), 0..=5).prop_map(|raw| {
        let tasks: Vec<Task> = raw
            .into_iter()
            .map(|(c, extra, df)| {
                let period = 4 * c + extra;
                // Deadlines from tight-constrained to implicit; some sets
                // overload, exercising same-task job backlogs.
                let d = ((period * df as i64) / 3).max(1);
                Task::new(c, d, period).unwrap()
            })
            .collect();
        TaskSet::new(tasks).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn network_streaming_equals_materialized(
        masters in proptest::collection::vec(arb_master(), 1..=3),
        ttr in 500i64..6_000,
        cfg in arb_net_config(),
    ) {
        let net = SimNetwork {
            masters,
            ttr: t(ttr),
            token_pass: t(166),
        };
        // The membership defaults (empty plan, GAP polling off) must
        // select the static-ring fast path — that is the mode in which
        // the byte-identical guarantee below is claimed.
        prop_assert!(cfg.is_static_ring());
        let streaming = simulate_network(&net, &cfg);
        let materialized = simulate_network_materialized(&net, &cfg);
        prop_assert_eq!(streaming, materialized);
    }

    #[test]
    fn cpu_streaming_equals_materialized(
        set in arb_task_set(),
        policy in 0u8..4,
        offset_step in 0i64..5,
        seed_horizon in 5_000i64..40_000,
    ) {
        let policy = [
            CpuPolicy::FixedPreemptive,
            CpuPolicy::FixedNonPreemptive,
            CpuPolicy::EdfPreemptive,
            CpuPolicy::EdfNonPreemptive,
        ][policy as usize];
        let pm = PriorityMap::deadline_monotonic(&set);
        let prio = match policy {
            CpuPolicy::FixedPreemptive | CpuPolicy::FixedNonPreemptive => Some(&pm),
            _ => None,
        };
        let offsets: Vec<Time> = if offset_step == 0 {
            vec![]
        } else {
            (0..set.len()).map(|i| t(offset_step * i as i64)).collect()
        };
        let cfg = CpuSimConfig {
            policy,
            horizon: t(seed_horizon),
            offsets,
            criticality: vec![],
            shed_lo: false,
        };
        let streaming = simulate_cpu(&set, prio, &cfg);
        let materialized = simulate_cpu_materialized(&set, prio, &cfg);
        prop_assert_eq!(streaming, materialized);
    }
}

/// The memory contract the streaming kernel exists for: the number of
/// releases buffered inside the generators is bounded by
/// `streams + Σ ⌈J/T⌉`-ish look-ahead and — crucially — does **not** grow
/// with the horizon. A 100×-longer run holds exactly as much release
/// state as the short one.
#[test]
fn long_horizon_release_state_is_o_streams() {
    let streams = StreamSet::from_cdtj(&[
        (200, 9_000, 10_000, 2_000),
        (150, 8_000, 9_000, 0),
        (100, 30_000, 12_000, 15_000), // J > T: forces look-ahead buffering
        (250, 20_000, 20_000, 1_000),
    ])
    .unwrap();
    let net = SimNetwork {
        masters: vec![SimMaster::priority_queued(streams, QueuePolicy::Edf)
            .with_low_priority(LowPriorityTraffic::new(t(300), t(25_000)))],
        ttr: t(3_000),
        token_pass: t(166),
    };
    let cfg = |horizon: i64| NetworkSimConfig {
        horizon: t(horizon),
        jitter: JitterInjection::Random,
        seed: 11,
        ..Default::default()
    };

    let (_, short) = simulate_network_stats(&net, &cfg(500_000));
    let (result, long) = simulate_network_stats(&net, &cfg(50_000_000)); // 100×

    // The long run really simulated 100× the traffic…
    let completed: u64 = result.streams.iter().flatten().map(|o| o.completed).sum();
    assert!(completed > 10_000, "completed {completed}");

    // …while release state stayed flat: 4 stream heads + 1 low-priority
    // head, one primed look-ahead slot each (generators keep `peek_ready`
    // answerable from buffered state), plus the J/T look-ahead of the
    // jittered streams (Σ ⌈J/T⌉ = 4 here) — nowhere near the ~20k
    // releases a materialized run holds.
    let sources = 5;
    assert!(
        long.mem.peak_release_buffer <= 2 * sources + 4,
        "peak release buffer {} not O(streams)",
        long.mem.peak_release_buffer
    );
    assert_eq!(
        long.mem.peak_release_buffer, short.mem.peak_release_buffer,
        "release state must be independent of the horizon"
    );

    // The pending backlog is workload-bound, not horizon-bound, on this
    // schedulable network.
    assert!(
        long.mem.peak_pending <= 4 * sources,
        "peak pending {} grew beyond the schedulable backlog",
        long.mem.peak_pending
    );
}

/// The time-compression contract next to the memory contract above: on a
/// sparse fixture the number of token visits the kernel actually
/// *executes* must be sublinear in the horizon — a 100×-longer idle tail
/// costs O(1) extra visits, because whole rotations are fast-forwarded
/// arithmetically. If the skip silently stopped engaging, the long run
/// would execute ~100× the visits and this pin would trip.
#[test]
fn long_horizon_executed_visits_are_sublinear() {
    // One early burst, then silence: the period exceeds even the long
    // horizon, so both runs see the same single release and everything
    // after it is pure idle rotation.
    let streams = StreamSet::from_cdt(&[(200, 50_000, 200_000_000)]).unwrap();
    let net = SimNetwork {
        masters: vec![SimMaster::stock(streams)],
        ttr: t(2_000),
        token_pass: t(166),
    };
    let cfg = |horizon: i64| NetworkSimConfig {
        horizon: t(horizon),
        ..Default::default()
    };

    let (short_result, short) = simulate_network_stats(&net, &cfg(1_000_000));
    let (long_result, long) = simulate_network_stats(&net, &cfg(100_000_000)); // 100×

    // Both runs served the burst…
    assert_eq!(short_result.streams[0][0].completed, 1);
    assert_eq!(long_result.streams[0][0].completed, 1);

    // …and the long run compressed its idle tail instead of walking it.
    assert!(long.mem.rotations_fast_forwarded > 0);
    assert!(
        long.mem.visits_simulated < 2 * short.mem.visits_simulated,
        "100× horizon must cost <2× executed visits: {} vs {}",
        long.mem.visits_simulated,
        short.mem.visits_simulated
    );
    // The accounting still closes: every skipped rotation is one visit of
    // the single master.
    assert_eq!(
        long.mem.visits_simulated + long.mem.rotations_fast_forwarded,
        long_result.token_visits[0]
    );
}

/// Percentile observers on a long run: sanity of the constant-memory
/// summaries against the exact extremes.
#[test]
fn long_horizon_percentiles_are_consistent() {
    let streams = StreamSet::from_cdt(&[(300, 15_000, 4_000), (200, 9_000, 3_000)]).unwrap();
    let net = SimNetwork {
        masters: vec![SimMaster::stock(streams)],
        ttr: t(2_000),
        token_pass: t(166),
    };
    let (result, stats) = simulate_network_stats(
        &net,
        &NetworkSimConfig {
            horizon: t(20_000_000),
            ..Default::default()
        },
    );
    let completed: u64 = result.streams.iter().flatten().map(|o| o.completed).sum();
    assert_eq!(stats.response.count, completed);
    let exact_max = result
        .streams
        .iter()
        .flatten()
        .map(|o| o.max_response)
        .max()
        .unwrap();
    assert_eq!(stats.response.max, exact_max);
    assert!(stats.response.p50 <= stats.response.p95);
    assert!(stats.response.p95 <= stats.response.p99);
    assert!(stats.response.p99 <= stats.response.max);
    assert!(stats.trr.p99 <= stats.trr.max);
    assert_eq!(stats.trr.max, result.max_trr_overall());
}
