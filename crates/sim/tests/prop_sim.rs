//! Property-based tests for the simulators: determinism and the
//! observed-below-bound contract.

use proptest::prelude::*;

use profirt_base::StreamSet;
use profirt_base::{Task, TaskSet, Time};
use profirt_profibus::QueuePolicy;
use profirt_sched::fixed::{response_times, PriorityMap, RtaConfig};
use profirt_sim::{
    simulate_cpu, simulate_network, CpuPolicy, CpuSimConfig, NetworkSimConfig, SimMaster,
    SimNetwork,
};

fn arb_task_set() -> impl Strategy<Value = TaskSet> {
    proptest::collection::vec((1i64..10, 1i64..60), 1..=4).prop_map(|raw| {
        let tasks: Vec<Task> = raw
            .into_iter()
            .map(|(c, extra)| Task::implicit(c, 5 * c + extra).unwrap())
            .collect();
        TaskSet::new(tasks).unwrap()
    })
}

fn arb_streams() -> impl Strategy<Value = StreamSet> {
    proptest::collection::vec((50i64..400, 2i64..20), 1..=4).prop_map(|raw| {
        let streams: Vec<profirt_base::MessageStream> = raw
            .into_iter()
            .map(|(ch, tf)| {
                let t = Time::new(25_000 * tf);
                profirt_base::MessageStream::new(Time::new(ch), t, t).unwrap()
            })
            .collect();
        StreamSet::new(streams).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cpu_fp_preemptive_observation_below_rta_bound(set in arb_task_set()) {
        let pm = PriorityMap::rate_monotonic(&set);
        let sim = simulate_cpu(
            &set,
            Some(&pm),
            &CpuSimConfig {
                policy: CpuPolicy::FixedPreemptive,
                horizon: Time::new(20_000),
                offsets: vec![],
                criticality: vec![],
                shed_lo: false,
            },
        );
        let rta = response_times(&set, &pm, &RtaConfig::default()).unwrap();
        for (i, v) in rta.verdicts.iter().enumerate() {
            if let Some(bound) = v.wcrt() {
                prop_assert!(
                    sim.max_response[i] <= bound,
                    "task {i}: observed {:?} > bound {:?}",
                    sim.max_response[i], bound
                );
            }
        }
    }

    #[test]
    fn cpu_simulation_deterministic(set in arb_task_set()) {
        let cfg = CpuSimConfig {
            policy: CpuPolicy::EdfPreemptive,
            horizon: Time::new(10_000),
            offsets: vec![],
            criticality: vec![],
            shed_lo: false,
        };
        let a = simulate_cpu(&set, None, &cfg);
        let b = simulate_cpu(&set, None, &cfg);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn edf_never_misses_when_u_below_one(set in arb_task_set()) {
        // Implicit deadlines, U < 1 by construction: EDF must not miss.
        prop_assume!(set.total_utilization().lt_one());
        let sim = simulate_cpu(
            &set,
            None,
            &CpuSimConfig {
                policy: CpuPolicy::EdfPreemptive,
                horizon: Time::new(30_000),
                offsets: vec![],
                criticality: vec![],
                shed_lo: false,
            },
        );
        prop_assert!(sim.no_misses(), "EDF missed with U < 1: {:?}", sim.misses);
    }

    #[test]
    fn network_simulation_deterministic(streams in arb_streams(), seed in any::<u64>()) {
        let net = SimNetwork {
            masters: vec![SimMaster::priority_queued(streams, QueuePolicy::Edf)],
            ttr: Time::new(3_000),
            token_pass: Time::new(166),
        };
        let cfg = NetworkSimConfig {
            horizon: Time::new(400_000),
            seed,
            offsets: profirt_sim::OffsetMode::Random,
            jitter: profirt_sim::JitterInjection::None,
            ..Default::default()
        };
        let a = simulate_network(&net, &cfg);
        let b = simulate_network(&net, &cfg);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn network_trr_bounded_by_tcycle_analysis(streams in arb_streams()) {
        // Single master, no low priority: Tcycle = TTR + CM.
        let cm = streams.max_cycle_time().unwrap();
        let ttr = Time::new(3_000);
        let net = SimNetwork {
            masters: vec![SimMaster::stock(streams)],
            ttr,
            token_pass: Time::new(166),
        };
        let obs = simulate_network(
            &net,
            &NetworkSimConfig {
                horizon: Time::new(2_000_000),
                ..Default::default()
            },
        );
        prop_assert!(
            obs.max_trr_overall() <= ttr + cm,
            "TRR {:?} exceeded Tcycle bound {:?}",
            obs.max_trr_overall(), ttr + cm
        );
    }

    #[test]
    fn dm_queue_no_worse_than_fcfs_for_tightest_stream(streams in arb_streams()) {
        let tightest = streams
            .indices_by_deadline()
            .first()
            .copied()
            .unwrap();
        let mk = |policy| SimNetwork {
            masters: vec![match policy {
                QueuePolicy::Fcfs => SimMaster::stock(streams.clone()),
                p => SimMaster::priority_queued(streams.clone(), p),
            }],
            ttr: Time::new(3_000),
            token_pass: Time::new(166),
        };
        let cfg = NetworkSimConfig {
            horizon: Time::new(1_000_000),
            ..Default::default()
        };
        let fcfs = simulate_network(&mk(QueuePolicy::Fcfs), &cfg);
        let dm = simulate_network(&mk(QueuePolicy::DeadlineMonotonic), &cfg);
        // Misses for the tightest stream under DM imply misses under FCFS
        // too (same release pattern, earlier service).
        let f = fcfs.streams[0][tightest];
        let d = dm.streams[0][tightest];
        prop_assert!(
            d.misses == 0 || f.misses > 0,
            "DM missed ({}) where FCFS did not ({})", d.misses, f.misses
        );
    }
}
