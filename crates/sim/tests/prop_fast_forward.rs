//! Differential property tests of the idle fast-forward: with
//! `fast_forward` on (the default) both network loops must emit an event
//! stream **byte-identical** to the unskipped per-visit loop — same
//! events, same instants, same order — across random workloads, jitter
//! and offset injection, queue policies, GAP factors, churn plans, and
//! the mode controller. The run statistics must agree on the peak-memory
//! indicators, and the executed/skipped visit accounting must close:
//! every skipped rotation is exactly one visit per ring member.

use proptest::prelude::*;

use profirt_base::{Criticality, MasterAddr, MessageStream, StreamSet, Time};
use profirt_profibus::{LowPriorityTraffic, QueuePolicy};
use profirt_sim::network::run_network;
use profirt_sim::{
    JitterInjection, KernelMemStats, MembershipPlan, ModeSimConfig, NetEvent, NetworkSimConfig,
    Observer, OffsetMode, SimMaster, SimNetwork,
};

fn t(v: i64) -> Time {
    Time::new(v)
}

/// Collects the raw event stream (instant + event) via the default
/// `on_idle_span` replay, so a fast-forwarding run materializes into
/// exactly the events an unskipped run emits.
#[derive(Default)]
struct EventLog {
    events: Vec<(Time, NetEvent)>,
}

impl Observer<NetEvent> for EventLog {
    fn observe(&mut self, at: Time, event: &NetEvent) {
        self.events.push((at, *event));
    }
}

fn run_logged(net: &SimNetwork, cfg: &NetworkSimConfig) -> (Vec<(Time, NetEvent)>, KernelMemStats) {
    let mut log = EventLog::default();
    let mem = run_network(net, cfg, &mut [&mut log]);
    (log.events, mem)
}

/// Asserts the fast-forwarded run reproduces the unskipped run exactly
/// and returns how many rotations the skipping version compressed.
fn assert_fast_forward_equivalent(net: &SimNetwork, cfg: &NetworkSimConfig) -> u64 {
    let on = NetworkSimConfig {
        fast_forward: true,
        ..cfg.clone()
    };
    let off = NetworkSimConfig {
        fast_forward: false,
        ..cfg.clone()
    };
    let (ev_on, mem_on) = run_logged(net, &on);
    let (ev_off, mem_off) = run_logged(net, &off);

    assert_eq!(
        ev_on.len(),
        ev_off.len(),
        "event counts diverge: {} fast-forwarded vs {} unskipped",
        ev_on.len(),
        ev_off.len()
    );
    for (a, b) in ev_on.iter().zip(&ev_off) {
        assert_eq!(a, b, "event streams diverge");
    }

    // Memory peaks are measured at executed syncs only, and spans pull
    // nothing — both runs see the same peaks.
    assert_eq!(mem_on.peak_release_buffer, mem_off.peak_release_buffer);
    assert_eq!(mem_on.peak_pending, mem_off.peak_pending);

    // Visit accounting closes: the unskipped loop executes every visit;
    // each skipped rotation stands for one visit of every ring member
    // (spans only ever cover full rings).
    assert_eq!(mem_off.rotations_fast_forwarded, 0);
    assert_eq!(
        mem_off.visits_simulated,
        mem_on.visits_simulated + net.masters.len() as u64 * mem_on.rotations_fast_forwarded,
        "executed + skipped visits must equal the unskipped visit count"
    );

    mem_on.rotations_fast_forwarded
}

/// Streams from sparse (long periods — deep idle spans) to dense, with
/// jitter exceeding the period on some arms.
fn arb_streams() -> impl Strategy<Value = StreamSet> {
    proptest::collection::vec((50i64..400, 1i64..12, 1i64..30, 0i64..4), 0..=3).prop_map(|raw| {
        let streams: Vec<MessageStream> = raw
            .into_iter()
            .map(|(ch, df, tf, jf)| {
                MessageStream::with_jitter(
                    Time::new(ch),
                    Time::new(1_000 * df),
                    Time::new(2_500 * tf),
                    Time::new(1_700 * jf),
                )
                .unwrap()
            })
            .collect();
        StreamSet::new(streams).unwrap()
    })
}

fn arb_master() -> impl Strategy<Value = SimMaster> {
    (
        arb_streams(),
        0u8..3,
        proptest::collection::vec((100i64..400, 4i64..40), 0..=2),
    )
        .prop_map(|(streams, policy, lp)| {
            let mut m = match policy {
                0 => SimMaster::stock(streams),
                1 => SimMaster::priority_queued(streams, QueuePolicy::DeadlineMonotonic),
                _ => SimMaster::priority_queued(streams, QueuePolicy::Edf),
            };
            for (cycle, pf) in lp {
                m.low_priority
                    .push(LowPriorityTraffic::new(t(cycle), t(2_500 * pf)));
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Static ring: loss-free runs must be byte-identical whether or not
    /// idle rotations are skipped; with loss injected the fast-forward
    /// disarms itself and the runs are trivially the same loop.
    #[test]
    fn static_fast_forward_stream_is_byte_identical(
        masters in proptest::collection::vec(arb_master(), 1..=3),
        ttr in 500i64..6_000,
        seed in any::<u64>(),
        off in 0u8..2,
        jit in 0u8..3,
        loss in 0u8..2,
        under in 0u8..2,
    ) {
        let net = SimNetwork {
            masters,
            ttr: t(ttr),
            token_pass: t(166),
        };
        let cfg = NetworkSimConfig {
            horizon: t(400_000),
            seed,
            offsets: if off == 0 { OffsetMode::Synchronous } else { OffsetMode::Random },
            jitter: match jit {
                0 => JitterInjection::None,
                1 => JitterInjection::FirstLate,
                _ => JitterInjection::Random,
            },
            token_loss_prob: [0.0, 0.05][loss as usize],
            cycle_undershoot: [0.0, 0.3][under as usize],
            ..Default::default()
        };
        prop_assert!(cfg.is_static_ring());
        let skipped = assert_fast_forward_equivalent(&net, &cfg);
        if loss > 0 {
            prop_assert_eq!(skipped, 0, "loss RNG consumption forbids skipping");
        }
    }

    /// Dynamic ring: GAP polling, scripted churn and the mode controller
    /// cap and veto spans but never change the emitted stream.
    #[test]
    fn dynamic_fast_forward_stream_is_byte_identical(
        n_masters in 2usize..=4,
        cycles in proptest::collection::vec(
            (0usize..8, 10_000i64..60_000, 5_000i64..30_000),
            0..=2,
        ),
        seed in any::<u64>(),
        gap_factor in 1u32..5,
        mode_on in any::<bool>(),
        sparse in any::<bool>(),
    ) {
        // Master 0 carries HI + LO streams, the rest one HI stream; the
        // sparse arm stretches periods so long idle spans appear between
        // releases, the dense arm keeps the bus busy.
        let period = if sparse { 40_000 } else { 5_000 };
        let mut masters = vec![SimMaster::stock(
            StreamSet::from_cdt(&[(100, period / 2, period), (100, period / 2, period)]).unwrap(),
        )
        .with_addr(MasterAddr(0))
        .with_criticality(vec![Criticality::Hi, Criticality::Lo])];
        for k in 1..n_masters {
            masters.push(
                SimMaster::stock(StreamSet::from_cdt(&[(100, period / 2, period)]).unwrap())
                    .with_addr(MasterAddr(k as u8)),
            );
        }
        let net = SimNetwork::new(masters, t(2_000), t(100)).unwrap();

        let mut plan = MembershipPlan::new();
        for &(m, off_at, span) in &cycles {
            let master = 1 + m % (n_masters - 1);
            plan = plan.power_cycle(master, t(off_at), t(off_at + span));
        }
        let cfg = NetworkSimConfig {
            horizon: t(400_000),
            seed,
            gap_factor,
            membership: plan,
            mode: if mode_on { ModeSimConfig::enabled() } else { ModeSimConfig::default() },
            ..Default::default()
        };
        prop_assert!(!cfg.is_static_ring());
        assert_fast_forward_equivalent(&net, &cfg);
    }
}

/// A quiet single-master run must actually exercise the skip (guards the
/// proptests above against vacuous equality).
#[test]
fn sparse_static_run_skips_most_rotations() {
    let net = SimNetwork {
        masters: vec![SimMaster::stock(
            StreamSet::from_cdt(&[(200, 50_000, 100_000)]).unwrap(),
        )],
        ttr: t(2_000),
        token_pass: t(100),
    };
    let cfg = NetworkSimConfig {
        horizon: t(10_000_000),
        ..Default::default()
    };
    let skipped = assert_fast_forward_equivalent(&net, &cfg);
    assert!(skipped > 90_000, "only {skipped} rotations were skipped");
}

/// Same for the dynamic loop: a calm full ring with GAP polling skips
/// between poll boundaries.
#[test]
fn sparse_dynamic_run_skips_between_poll_boundaries() {
    let masters = vec![
        SimMaster::stock(StreamSet::from_cdt(&[(200, 50_000, 100_000)]).unwrap())
            .with_addr(MasterAddr(0)),
        SimMaster::stock(StreamSet::from_cdt(&[(200, 50_000, 100_000)]).unwrap())
            .with_addr(MasterAddr(3)),
    ];
    let net = SimNetwork::new(masters, t(2_000), t(100)).unwrap();
    let cfg = NetworkSimConfig {
        horizon: t(10_000_000),
        gap_factor: 10,
        ..Default::default()
    };
    assert!(!cfg.is_static_ring());
    let skipped = assert_fast_forward_equivalent(&net, &cfg);
    assert!(skipped > 10_000, "only {skipped} rotations were skipped");
}
