//! Step-by-step verification of the §3.1 token-passing algorithm using the
//! event trace: these tests pin the *semantics* of the simulator (one
//! guaranteed high-priority cycle on a late token, TTH overrun completion,
//! low-priority gating) on tiny deterministic scenarios where the exact
//! event sequence can be hand-computed.

use profirt_base::{StreamSet, Time};
use profirt_profibus::LowPriorityTraffic;
use profirt_sim::{simulate_network_traced, NetworkSimConfig, SimMaster, SimNetwork, TraceEvent};

fn t(v: i64) -> Time {
    Time::new(v)
}

fn trace_events(net: &SimNetwork, horizon: i64) -> Vec<(Time, TraceEvent)> {
    let (_, trace) = simulate_network_traced(
        net,
        &NetworkSimConfig {
            horizon: t(horizon),
            ..Default::default()
        },
        100_000,
    );
    trace.events().to_vec()
}

/// Single master, single stream, generous TTR: the first visit serves the
/// synchronous request immediately; later requests wait for the token
/// rotation. Hand-computed first events:
///   t=0   token arrives (TRR = 0, TTH = TTR = 2000)
///   t=0   high cycle S0 [0..400]
///   t=400 token pass (to itself), arriving t=500
#[test]
fn first_rotation_hand_computed() {
    let net = SimNetwork {
        masters: vec![SimMaster::stock(
            StreamSet::from_cdt(&[(400, 20_000, 10_000)]).unwrap(),
        )],
        ttr: t(2_000),
        token_pass: t(100),
    };
    let ev = trace_events(&net, 1_500);
    // Event 0: token arrival with full TTH.
    assert!(matches!(
        ev[0],
        (at, TraceEvent::TokenArrival { master: 0, tth }) if at == t(0) && tth == t(2_000)
    ));
    // Event 1: the high cycle, exactly [0..400].
    assert!(matches!(
        ev[1],
        (_, TraceEvent::HighCycle { master: 0, start, end, .. })
            if start == t(0) && end == t(400)
    ));
    // Event 2: token pass recorded at t=500 (after 100 ticks of pass time).
    assert!(matches!(
        ev[2],
        (at, TraceEvent::TokenPass { from: 0, to: 0 }) if at == t(500)
    ));
    // Event 3: next arrival at t=500 with TRR = 500 -> TTH = 1500.
    assert!(matches!(
        ev[3],
        (at, TraceEvent::TokenArrival { master: 0, tth }) if at == t(500) && tth == t(1_500)
    ));
}

/// Late-token rule: with TTR = 1, every arrival after the first is late
/// (TRR >= pass time > TTR), yet each visit still serves exactly one
/// pending high-priority cycle — the guarantee eq. (11) builds on.
#[test]
fn late_token_serves_exactly_one_high_cycle_per_visit() {
    // Two streams with short periods (arrival rate 4/1000 vs service
    // capacity 2.5/1000) keep a backlog at every visit.
    let net = SimNetwork {
        masters: vec![SimMaster::stock(
            StreamSet::from_cdt(&[(300, 50_000, 500), (300, 50_000, 500)]).unwrap(),
        )],
        ttr: t(1),
        token_pass: t(100),
    };
    let ev = trace_events(&net, 30_000);
    // Group events between consecutive arrivals; after the first visit all
    // tokens are late -> exactly one HighCycle per visit (backlog permitting).
    let mut per_visit: Vec<usize> = Vec::new();
    let mut count = 0usize;
    let mut late = false;
    let mut seen_first_arrival = false;
    for (_, e) in &ev {
        match e {
            TraceEvent::TokenArrival { tth, .. } => {
                if seen_first_arrival {
                    per_visit.push(count);
                }
                seen_first_arrival = true;
                count = 0;
                late = !tth.is_positive();
            }
            TraceEvent::HighCycle { .. } => count += 1,
            _ => {}
        }
        let _ = late;
    }
    // Skip the first (early-token) visit; all subsequent visits are late
    // and the backlog never empties (period 2000 < service interval).
    assert!(per_visit.len() > 5);
    for (i, &c) in per_visit.iter().enumerate().skip(1) {
        assert_eq!(c, 1, "late visit {i} served {c} != 1 high cycles");
    }
}

/// TTH-overrun semantics: a low-priority cycle longer than the residual
/// TTH starts (the timer is tested only at cycle start) and runs to
/// completion, stretching the rotation — the §3.3 lateness source.
#[test]
fn tth_overrun_low_cycle_completes() {
    let net = SimNetwork {
        masters: vec![SimMaster::stock(StreamSet::new(vec![]).unwrap())
            .with_low_priority(LowPriorityTraffic::new(t(5_000), t(6_000)))],
        ttr: t(1_000),
        token_pass: t(100),
    };
    let ev = trace_events(&net, 20_000);
    // Find the first low cycle: starts while TTH > 0 and runs its full
    // 5000 ticks despite TTR being only 1000.
    let lc = ev
        .iter()
        .find_map(|(_, e)| match e {
            TraceEvent::LowCycle { start, end, .. } => Some((*start, *end)),
            _ => None,
        })
        .expect("a low cycle must run");
    assert_eq!(lc.1 - lc.0, t(5_000), "overrun cycle must complete fully");
}

/// Low-priority gating: on a late token no low-priority cycle may start,
/// even with low-priority backlog present.
#[test]
fn no_low_cycles_on_late_tokens() {
    let net = SimNetwork {
        masters: vec![
            SimMaster::stock(StreamSet::from_cdt(&[(900, 50_000, 1_000)]).unwrap())
                .with_low_priority(LowPriorityTraffic::new(t(500), t(1_000))),
        ],
        ttr: t(500), // every rotation exceeds TTR once traffic flows
        token_pass: t(100),
    };
    let ev = trace_events(&net, 40_000);
    // Track lateness at each arrival; assert no LowCycle follows a late
    // arrival before the next arrival.
    let mut late = false;
    let mut violations = 0;
    for (_, e) in &ev {
        match e {
            TraceEvent::TokenArrival { tth, .. } => late = !tth.is_positive(),
            TraceEvent::LowCycle { .. } if late => violations += 1,
            _ => {}
        }
    }
    assert_eq!(violations, 0, "low-priority cycle started on a late token");
}

/// Ring order: with three masters the token cycles 0 → 1 → 2 → 0 strictly.
#[test]
fn token_passes_in_ring_order() {
    let mk = || SimMaster::stock(StreamSet::new(vec![]).unwrap());
    let net = SimNetwork {
        masters: vec![mk(), mk(), mk()],
        ttr: t(2_000),
        token_pass: t(100),
    };
    let ev = trace_events(&net, 5_000);
    let passes: Vec<(usize, usize)> = ev
        .iter()
        .filter_map(|(_, e)| match e {
            TraceEvent::TokenPass { from, to } => Some((*from, *to)),
            _ => None,
        })
        .collect();
    assert!(passes.len() >= 9);
    for (i, &(from, to)) in passes.iter().enumerate() {
        assert_eq!(from, i % 3, "pass {i} from wrong master");
        assert_eq!(to, (i + 1) % 3, "pass {i} to wrong master");
    }
}

/// Idle-ring rotation time: with no traffic, every rotation is exactly
/// n · token_pass and TTH stabilises at TTR − n·token_pass.
#[test]
fn idle_rotation_is_pass_time_only() {
    let mk = || SimMaster::stock(StreamSet::new(vec![]).unwrap());
    let net = SimNetwork {
        masters: vec![mk(), mk(), mk(), mk()],
        ttr: t(3_000),
        token_pass: t(150),
    };
    let (result, trace) = simulate_network_traced(
        &net,
        &NetworkSimConfig {
            horizon: t(50_000),
            ..Default::default()
        },
        100_000,
    );
    assert_eq!(result.max_trr_overall(), t(4 * 150));
    // After the warm-up arrival, every TTH equals TTR - 600.
    let tths: Vec<Time> = trace
        .events()
        .iter()
        .filter_map(|(_, e)| match e {
            TraceEvent::TokenArrival { master: 0, tth } => Some(*tth),
            _ => None,
        })
        .collect();
    for &tth in &tths[1..] {
        assert_eq!(tth, t(3_000 - 600));
    }
}
