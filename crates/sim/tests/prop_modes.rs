//! Mode-machine invariants for the mixed-criticality controller, pinned
//! over random churn plans, seeds, GAP factors and ring sizes:
//!
//! * HI traffic is never shed — every [`NetEvent::Shed`] names a sub-HI
//!   stream, and sheds happen only inside a degraded window.
//! * Every LO re-admission is justified by a completed match-up: each
//!   `ModeSwitch { degraded: false }` is emitted at the same instant as a
//!   [`NetEvent::Matchup`] with a positive waited span, and the two
//!   switch directions strictly alternate starting with a degrade.
//! * `time_to_matchup` is finite whenever the churn plan ends with a
//!   full ring: once every power-cycled master is back and the horizon
//!   leaves room for the clean-rotation span, a degraded run must close
//!   with a match-up (the last switch is LO-ward).
//! * The [`profirt_sim::ModeSummary`] counters agree with the raw event
//!   stream, and the whole stream is seed-deterministic.

use proptest::prelude::*;

use profirt_base::{Criticality, MasterAddr, StreamSet, Time};
use profirt_sim::network::run_network;
use profirt_sim::{
    simulate_network_stats, MembershipPlan, ModeSimConfig, NetEvent, NetworkSimConfig, Observer,
    SimMaster, SimNetwork,
};

fn t(v: i64) -> Time {
    Time::new(v)
}

#[derive(Default)]
struct EventLog {
    events: Vec<(Time, NetEvent)>,
}

impl Observer<NetEvent> for EventLog {
    fn observe(&mut self, at: Time, event: &NetEvent) {
        self.events.push((at, *event));
    }
}

/// A mixed-criticality ring: master 0 carries one HI and one LO stream,
/// every other master one HI stream — so sheds can only ever name
/// master 0 / stream 1.
fn mixed_net(n_masters: usize) -> SimNetwork {
    let mut masters = vec![SimMaster::stock(
        StreamSet::from_cdt(&[(100, 5_000, 10_000), (100, 5_000, 10_000)]).unwrap(),
    )
    .with_addr(MasterAddr(0))
    .with_criticality(vec![Criticality::Hi, Criticality::Lo])];
    for k in 1..n_masters {
        masters.push(
            SimMaster::stock(StreamSet::from_cdt(&[(100, 5_000, 10_000)]).unwrap())
                .with_addr(MasterAddr(k as u8)),
        );
    }
    SimNetwork::new(masters, t(2_000), t(100)).unwrap()
}

/// Builds a plan of power cycles confined to masters 1.. and the first
/// quarter of the horizon, so every plan ends with a full ring and ample
/// time for the match-up span.
fn build_plan(n_masters: usize, cycles: &[(usize, i64, i64)]) -> MembershipPlan {
    let mut plan = MembershipPlan::new();
    for &(m, off_at, span) in cycles {
        let master = 1 + m % (n_masters - 1);
        plan = plan.power_cycle(master, t(off_at), t(off_at + span));
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mode_machine_invariants_hold_under_churn(
        n_masters in 2usize..=4,
        cycles in proptest::collection::vec(
            (0usize..8, 10_000i64..60_000, 5_000i64..30_000),
            0..=2,
        ),
        seed in any::<u64>(),
        gap_factor in 1u32..4,
    ) {
        let net = mixed_net(n_masters);
        let plan = build_plan(n_masters, &cycles);
        let cfg = NetworkSimConfig {
            horizon: t(400_000),
            seed,
            gap_factor,
            membership: plan,
            mode: ModeSimConfig::enabled(),
            ..Default::default()
        };

        // Seed determinism, mode events included.
        let mut log = EventLog::default();
        run_network(&net, &cfg, &mut [&mut log]);
        let events = log.events;
        let mut again = EventLog::default();
        run_network(&net, &cfg, &mut [&mut again]);
        prop_assert_eq!(&events, &again.events);

        let mut degraded = false;
        let mut switches = 0u64;
        let mut sheds = 0u64;
        let mut matchups = 0u64;
        let mut max_waited = Time::ZERO;
        let mut prev: Option<(Time, NetEvent)> = None;
        for &(at, ev) in &events {
            match ev {
                NetEvent::ModeSwitch { degraded: to } => {
                    switches += 1;
                    // Strict alternation: LO→HI→LO→…, starting degraded.
                    prop_assert_ne!(to, degraded, "switch to the current mode at {}", at);
                    if !to {
                        // Re-admission must be justified by a completed
                        // match-up at the same instant.
                        let justified = matches!(
                            prev,
                            Some((m_at, NetEvent::Matchup { .. })) if m_at == at
                        );
                        prop_assert!(justified, "LO-ward switch at {} without a match-up", at);
                    }
                    degraded = to;
                }
                NetEvent::Shed { master, stream, .. } => {
                    sheds += 1;
                    prop_assert!(degraded, "shed outside a degraded window at {}", at);
                    let crit = net.masters[master].criticality_of(stream.0);
                    prop_assert!(
                        crit.shed_in_hi_mode(),
                        "HI stream M{}/S{} shed at {}",
                        master,
                        stream.0,
                        at
                    );
                }
                NetEvent::Matchup { waited } => {
                    matchups += 1;
                    prop_assert!(degraded, "match-up while not degraded at {}", at);
                    prop_assert!(waited.is_positive(), "zero match-up span at {}", at);
                    max_waited = max_waited.max(waited);
                }
                _ => {}
            }
            prev = Some((at, ev));
        }

        // The plan ends with a full ring a quarter into the horizon: a
        // degraded run must have matched back up before the end.
        if switches > 0 {
            prop_assert!(!degraded, "run ends degraded despite a full final ring");
            prop_assert_eq!(matchups * 2, switches);
            prop_assert!(max_waited.is_positive());
        } else {
            prop_assert_eq!(sheds, 0);
        }

        // The summary observer agrees with the raw stream.
        let (_, stats) = simulate_network_stats(&net, &cfg);
        prop_assert_eq!(stats.mode.switches, switches);
        prop_assert_eq!(stats.mode.sheds, sheds);
        prop_assert_eq!(stats.mode.matchups, matchups);
        prop_assert_eq!(stats.mode.max_time_to_matchup, max_waited);
    }
}
