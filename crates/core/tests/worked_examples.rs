//! Worked numerical examples of the paper's equations, with every value
//! hand-computed in the comments — the executable version of a referee's
//! margin calculations.

use profirt_base::{StreamSet, Time};
use profirt_core::tcycle::{tcycle, token_lateness, TcycleModel};
use profirt_core::{
    max_feasible_ttr, DmAnalysis, EdfAnalysis, FcfsAnalysis, MasterConfig, NetworkConfig,
};

fn t(v: i64) -> Time {
    Time::new(v)
}

/// The running network of this file, all numbers chosen for mental
/// arithmetic. Three masters at TTR = 5000:
///   M0: Sh = {(400, 9000, 20000), (600, 24000, 30000)}, Cl = 700
///   M1: Sh = {(500, 30000, 40000)},                     Cl = 0
///   M2: Sh = {(300, 50000, 60000)},                     Cl = 900
fn example() -> NetworkConfig {
    NetworkConfig::new(
        vec![
            MasterConfig::new(
                StreamSet::from_cdt(&[(400, 9_000, 20_000), (600, 24_000, 30_000)]).unwrap(),
                t(700),
            ),
            MasterConfig::new(StreamSet::from_cdt(&[(500, 30_000, 40_000)]).unwrap(), t(0)),
            MasterConfig::new(
                StreamSet::from_cdt(&[(300, 50_000, 60_000)]).unwrap(),
                t(900),
            ),
        ],
        t(5_000),
    )
    .unwrap()
}

/// Eq. (13): Tdel = Σ CM^k.
///   CM^0 = max{max(400,600), 700} = 700
///   CM^1 = max{500, 0}           = 500
///   CM^2 = max{300, 900}         = 900
///   Tdel = 700 + 500 + 900       = 2100
/// Eq. (14): Tcycle = TTR + Tdel = 5000 + 2100 = 7100.
#[test]
fn eq13_eq14_token_cycle() {
    let net = example();
    assert_eq!(token_lateness(&net, TcycleModel::Paper), t(2_100));
    let b = tcycle(&net, TcycleModel::Paper);
    assert_eq!(b.tcycle, t(7_100));

    // Refined: overrunner charged CM, others only their longest high cycle.
    //   maxHigh = (600, 500, 300), Σ = 1400
    //   j=0: 700 + (1400-600) = 1500
    //   j=1: 500 + (1400-500) = 1400
    //   j=2: 900 + (1400-300) = 2000  <- max
    assert_eq!(token_lateness(&net, TcycleModel::Refined), t(2_000));
}

/// Eq. (11): Ri^k = nh^k · Tcycle.
///   M0 (nh=2): R = 2·7100 = 14200; M1, M2 (nh=1): R = 7100.
/// Eq. (12): schedulable iff Dh >= R.
///   M0/S0: D =  9000 < 14200  -> MISS
///   M0/S1: D = 24000 >= 14200 -> ok
///   M1/S0: D = 30000 >= 7100  -> ok
///   M2/S0: D = 50000 >= 7100  -> ok
#[test]
fn eq11_eq12_fcfs() {
    let an = FcfsAnalysis::paper().run(&example()).unwrap();
    assert_eq!(an.masters[0][0].response_time, t(14_200));
    assert_eq!(an.masters[0][1].response_time, t(14_200));
    assert_eq!(an.masters[1][0].response_time, t(7_100));
    assert_eq!(an.masters[2][0].response_time, t(7_100));
    assert!(!an.masters[0][0].schedulable);
    assert!(an.masters[0][1].schedulable);
    assert_eq!(an.schedulable_count(), 3);
    // Q = R - Ch decomposition (eq. 11): Q(M0/S0) = 14200 - 400.
    assert_eq!(an.masters[0][0].queuing_delay, t(13_800));
}

/// Eq. (15): TTR <= min over streams { Dh/nh - Tdel }.
///   M0/S0:  9000/2 - 2100 = 2400   <- binding
///   M0/S1: 24000/2 - 2100 = 9900
///   M1/S0: 30000/1 - 2100 = 27900
///   M2/S0: 50000/1 - 2100 = 47900
#[test]
fn eq15_ttr_setting() {
    let setting = max_feasible_ttr(&example(), TcycleModel::Paper);
    assert_eq!(setting.max_ttr, Some(t(2_400)));
    assert_eq!(setting.binding, (0, 0));
    // Verification loop: schedulable at 2400, not at 2401.
    let at = example().with_ttr(t(2_400)).unwrap();
    assert!(FcfsAnalysis::paper().run(&at).unwrap().all_schedulable());
    let over = example().with_ttr(t(2_401)).unwrap();
    assert!(!FcfsAnalysis::paper().run(&over).unwrap().all_schedulable());
}

/// Eq. (16) on master 0 under the paper-literal variant (Tcycle = 7100):
/// DM order: S0 (D=9000) above S1 (D=24000).
///   S0 (has lower-priority S1): R = T* = 7100          (no hp)
///   S1 (lowest, T* = 0):        R = ⌈R/20000⌉·7100, seeded 7100 -> 7100
/// Conservative variant:
///   S0: blocking + own = 2·7100 = 14200; still <= 24000? D(S0)=9000 —
///       14200 > 9000 -> S0 unschedulable under the conservative bound.
///   S1: own 7100 + ⌈R/20000⌉·7100 -> seeded 14200 -> 14200 <= 24000 ok.
#[test]
fn eq16_dm_both_variants() {
    let net = example();
    let paper = DmAnalysis::paper().analyze(&net).unwrap();
    assert_eq!(paper.masters[0][0].response_time, t(7_100));
    assert_eq!(paper.masters[0][1].response_time, t(7_100));
    assert!(paper.masters[0][0].schedulable); // 7100 <= 9000

    let cons = DmAnalysis::conservative().analyze(&net).unwrap();
    assert_eq!(cons.masters[0][1].response_time, t(14_200));
    assert!(
        !cons.masters[0][0].schedulable,
        "blocking+own = 14200 > 9000"
    );
    // The T8 finding in miniature: the two variants disagree about S0, and
    // simulation (EXPERIMENTS.md) shows the conservative verdict is the
    // trustworthy one.
}

/// Eqs. (17)-(18) on master 1 (single stream): R = Tcycle exactly.
/// On master 0: S0's bound includes one blocking cycle from the
/// later-deadline S1 (Dj = 24000 > a + 9000 for small a):
///   a = 0: L = T* (blocking 7100) + 0 own prior; W = 0 (S1 deadline
///   excluded) -> L = 7100; R = max(7100, 7100 + 7100 - 0) = 14200.
#[test]
fn eq17_eq18_edf() {
    let net = example();
    let an = EdfAnalysis::paper().analyze(&net).unwrap();
    assert_eq!(an.masters[1][0].response_time, t(7_100));
    assert_eq!(an.masters[0][0].response_time, t(14_200));
    // S1 (latest deadline on the master): no blocking possible, its worst
    // case is interference from S0 within its deadline window.
    assert!(an.masters[0][1].response_time >= t(7_100));
    assert!(an.masters[0][1].schedulable);
}

/// §3.3 worked scenario on this network: idle rotation, then master 0
/// overruns with CM^0 = 700; masters 1 and 2 each send one high-priority
/// cycle on the late token. Chain = TTR + 700 + 500 + 300 = 6500 <= 7100.
#[test]
fn section_3_3_worked_chain() {
    let net = example();
    let bound = tcycle(&net, TcycleModel::Paper).tcycle;
    let chain = net.ttr
        + net.masters[0].longest_cycle()   // 700 (overrunner, any priority)
        + net.masters[1].max_high_cycle()  // 500 (late token: high only)
        + net.masters[2].max_high_cycle(); // 300
    assert_eq!(chain, t(6_500));
    assert!(chain <= bound);
}
