//! Property-based tests for the PROFIBUS message analyses.

use proptest::prelude::*;

use profirt_base::{MessageStream, StreamSet, Time};
use profirt_core::{
    compare_policies, max_feasible_ttr, tcycle::token_lateness, DmAnalysis, EdfAnalysis,
    FcfsAnalysis, MasterConfig, NetworkConfig, TcycleModel,
};

/// Random small networks with generous periods (keeps EDF capacity < 1).
fn arb_network() -> impl Strategy<Value = NetworkConfig> {
    let master = (
        proptest::collection::vec((50i64..500, 1i64..40, 1i64..10), 1..=4),
        0i64..800,
    )
        .prop_map(|(streams, cl)| {
            let streams: Vec<MessageStream> = streams
                .into_iter()
                .map(|(ch, t_factor, d_frac)| {
                    // Periods 20k..800k ticks, deadlines a fraction of T.
                    let t = Time::new(20_000 * t_factor);
                    let d = Time::new((t.ticks() / 10) * d_frac.max(1));
                    MessageStream::new(Time::new(ch), d, t).unwrap()
                })
                .collect();
            MasterConfig::new(StreamSet::new(streams).unwrap(), Time::new(cl))
        });
    (proptest::collection::vec(master, 1..=3), 500i64..5_000)
        .prop_map(|(masters, ttr)| NetworkConfig::new(masters, Time::new(ttr)).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn refined_tdel_never_exceeds_paper(net in arb_network()) {
        prop_assert!(
            token_lateness(&net, TcycleModel::Refined)
                <= token_lateness(&net, TcycleModel::Paper)
        );
    }

    #[test]
    fn fcfs_bound_flat_within_master(net in arb_network()) {
        let an = FcfsAnalysis::analyze(&net).unwrap();
        for rows in &an.masters {
            for w in rows.windows(2) {
                prop_assert_eq!(w[0].response_time, w[1].response_time);
            }
        }
    }

    #[test]
    fn dm_conservative_dominates_paper(net in arb_network()) {
        let p = DmAnalysis::paper().analyze(&net).unwrap();
        let c = DmAnalysis::conservative().analyze(&net).unwrap();
        for (a, b) in p.iter().zip(c.iter()) {
            prop_assert!(b.response_time >= a.response_time);
        }
    }

    #[test]
    fn dm_tightest_stream_never_worse_than_fcfs(net in arb_network()) {
        let cmp = compare_policies(
            &net,
            &DmAnalysis::paper(),
            &EdfAnalysis::paper(),
        ).unwrap();
        for ok in cmp.priority_dominates_fcfs_on_tightest() {
            prop_assert!(ok);
        }
    }

    #[test]
    fn ttr_boundary_is_exact(net in arb_network()) {
        let setting = max_feasible_ttr(&net, TcycleModel::Paper);
        if let Some(ttr) = setting.max_ttr {
            let at = FcfsAnalysis::analyze(&net.with_ttr(ttr).unwrap()).unwrap();
            prop_assert!(at.all_schedulable(), "eq. (15) TTR not schedulable");
            let over = FcfsAnalysis::analyze(
                &net.with_ttr(ttr + Time::ONE).unwrap()
            ).unwrap();
            prop_assert!(!over.all_schedulable(), "TTR+1 still schedulable");
        }
    }

    #[test]
    fn ttr_monotone_response(net in arb_network(), bump in 1i64..5_000) {
        // Increasing TTR increases every response bound (Tcycle grows).
        let a = FcfsAnalysis::analyze(&net).unwrap();
        let b = FcfsAnalysis::analyze(
            &net.with_ttr(net.ttr + Time::new(bump)).unwrap()
        ).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!(y.response_time > x.response_time);
        }
    }

    #[test]
    fn edf_rta_at_least_one_tcycle(net in arb_network()) {
        if let Ok(an) = EdfAnalysis::paper().analyze(&net) {
            for r in an.iter() {
                prop_assert!(r.response_time >= an.tcycle);
            }
        }
    }

    #[test]
    fn jitter_monotone_dm(net in arb_network(), extra in 1i64..50_000) {
        // Adding jitter to every stream can only increase DM bounds.
        let bumped_masters: Vec<MasterConfig> = net.masters.iter().map(|m| {
            let streams: Vec<MessageStream> = m.streams.streams().iter().map(|s| {
                let mut s = *s;
                s.j += Time::new(extra);
                s
            }).collect();
            MasterConfig::new(StreamSet::new(streams).unwrap(), m.cl)
        }).collect();
        let bumped = NetworkConfig::new(bumped_masters, net.ttr).unwrap();
        let a = DmAnalysis::conservative().analyze(&net).unwrap();
        let b = DmAnalysis::conservative().analyze(&bumped).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            // Bounds reported for unschedulable streams are cut at the
            // deadline crossing, so compare only jointly-schedulable rows.
            if x.schedulable && y.schedulable {
                prop_assert!(y.response_time >= x.response_time);
            }
            // Schedulability can only degrade.
            prop_assert!(!(y.schedulable && !x.schedulable));
        }
    }
}
