//! Mode-aware (mixed-criticality) two-verdict analysis.
//!
//! A mixed-criticality network is analysed twice:
//!
//! * **LO-mode (nominal)** — the full workload on the full ring. These are
//!   the paper's ordinary bounds; they are only promised during *stable
//!   phases* (full ring, no recent disturbance, no degraded mode).
//! * **HI-mode (degraded)** — the HI-only projection of the workload. In
//!   degraded mode the simulator sheds every sub-HI stream, so HI traffic
//!   competes only against HI traffic. The projection is analysed on the
//!   *full* ring, which is conservative for every churn plan: removing a
//!   master can only shrink the token-lateness sum `Tdel = Σ CM^k`
//!   (eq. (13)) and the ring overhead `n · token_pass`, so the full-ring
//!   HI bound dominates the bound on any degraded subring.
//!
//! The campaign contract built on this pair is asymmetric by design:
//! HI bounds must hold through *any* disturbance (`hi_sim_violations`
//! column, no policy exemption), while LO bounds are only checked in
//! stable phases (the existing `sim_violations` column).

use profirt_base::{AnalysisResult, Time};
use serde::{Deserialize, Serialize};

use crate::config::NetworkConfig;
use crate::policy::{PolicyKind, PolicyScratch, PolicyTuning};
use crate::NetworkAnalysis;

/// The two-verdict result of analysing a mixed-criticality network.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ModeAnalysis {
    /// Nominal (LO-mode) bounds: full workload, full ring. Valid in stable
    /// phases only.
    pub lo: NetworkAnalysis,
    /// Degraded (HI-mode) bounds: HI-only workload, full ring (conservative
    /// for any subring). Valid through any churn plan.
    pub hi: NetworkAnalysis,
    /// Per master, the original stream index of each stream kept by the HI
    /// projection: `hi.masters[m][j]` bounds original stream
    /// `hi_kept[m][j]` of master `m`.
    pub hi_kept: Vec<Vec<usize>>,
}

impl ModeAnalysis {
    /// Runs the policy's analysis in both modes. On an all-HI network the
    /// two verdicts coincide (the projection is the identity).
    pub fn analyze(
        policy: PolicyKind,
        net: &NetworkConfig,
        tuning: &PolicyTuning,
    ) -> AnalysisResult<ModeAnalysis> {
        ModeAnalysis::analyze_with_scratch(policy, net, tuning, &mut PolicyScratch::default())
    }

    /// [`ModeAnalysis::analyze`] reusing caller-owned working buffers.
    pub fn analyze_with_scratch(
        policy: PolicyKind,
        net: &NetworkConfig,
        tuning: &PolicyTuning,
        scratch: &mut PolicyScratch,
    ) -> AnalysisResult<ModeAnalysis> {
        let lo = policy.analyze_with_scratch(net, tuning, scratch)?;
        let (hi_net, hi_kept) = net.hi_projection()?;
        let hi = policy.analyze_with_scratch(&hi_net, tuning, scratch)?;
        Ok(ModeAnalysis { lo, hi, hi_kept })
    }

    /// The HI-mode response-time bound of *original* stream `stream` of
    /// master `master`, or `None` when the stream is sub-HI (shed in HI
    /// mode, so no HI bound exists) or out of range.
    pub fn hi_response(&self, master: usize, stream: usize) -> Option<Time> {
        let j = self
            .hi_kept
            .get(master)?
            .iter()
            .position(|&k| k == stream)?;
        Some(self.hi.masters.get(master)?.get(j)?.response_time)
    }

    /// `true` iff every HI stream meets its deadline in degraded mode.
    pub fn hi_schedulable(&self) -> bool {
        self.hi.all_schedulable()
    }

    /// `true` iff the full workload meets its deadlines in stable phases.
    pub fn lo_schedulable(&self) -> bool {
        self.lo.all_schedulable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MasterConfig;
    use profirt_base::{Criticality, StreamSet, Time};

    fn mixed_net() -> NetworkConfig {
        let m0 = MasterConfig::new(
            StreamSet::from_cdt(&[(300, 30_000, 30_000), (240, 9_000, 60_000)]).unwrap(),
            Time::new(360),
        )
        .with_criticality(vec![Criticality::Hi, Criticality::Lo]);
        let m1 = MasterConfig::new(
            StreamSet::from_cdt(&[(200, 40_000, 40_000)]).unwrap(),
            Time::new(0),
        );
        NetworkConfig::new(vec![m0, m1], Time::new(3_000)).unwrap()
    }

    #[test]
    fn two_verdicts_and_hi_bound_lookup() {
        let an = ModeAnalysis::analyze(PolicyKind::Fcfs, &mixed_net(), &PolicyTuning::default())
            .unwrap();
        // LO side analyses the full workload.
        assert_eq!(an.lo.stream_count(), 3);
        // HI side drops the LO stream of master 0.
        assert_eq!(an.hi.stream_count(), 2);
        assert_eq!(an.hi_kept, vec![vec![0], vec![0]]);
        // HI bounds exist exactly for the HI streams, keyed by original
        // index.
        assert!(an.hi_response(0, 0).is_some());
        assert_eq!(an.hi_response(0, 1), None); // LO stream: shed, no bound
        assert!(an.hi_response(1, 0).is_some());
        assert_eq!(an.hi_response(2, 0), None);
        // Shedding can only shorten FCFS bounds (fewer streams per master).
        assert!(an.hi_response(0, 0).unwrap() <= an.lo.masters[0][0].response_time);
    }

    #[test]
    fn all_hi_network_has_coinciding_verdicts() {
        let net = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[(300, 30_000, 30_000)]).unwrap(),
                Time::new(360),
            )],
            Time::new(3_000),
        )
        .unwrap();
        for p in PolicyKind::ALL {
            let an = ModeAnalysis::analyze(p, &net, &PolicyTuning::default()).unwrap();
            assert_eq!(an.lo, an.hi, "{p}: all-HI projection must be identity");
        }
    }
}
