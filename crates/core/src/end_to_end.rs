//! End-to-end communication delay (paper §4.2): `E = g + Q + C + d`.
//!
//! * `g` — worst-case *generation* delay: the master's application task
//!   builds and queues the request (this is also the release jitter fed to
//!   the message analysis).
//! * `Q` — worst-case queuing delay until the request gains the bus.
//! * `C` — worst-case message-cycle time (request + slave turnaround +
//!   response + retries).
//! * `d` — worst-case *delivery* delay: processing the response and handing
//!   it to the destination task (on the same host as the sender in
//!   PROFIBUS).
//!
//! The message analyses report `R = Q + C` directly (their `response_time`),
//! so `E = g + R + d` with `g` and `d` obtained from host-CPU response-time
//! analysis.

use profirt_base::{AnalysisError, AnalysisResult, TaskSet, Time};
use profirt_sched::fixed::rta::{response_times_with_jitter, RtaConfig};
use profirt_sched::fixed::PriorityMap;
use serde::{Deserialize, Serialize};

use crate::config::{MasterConfig, NetworkConfig};
use crate::dm::DmAnalysis;
use crate::edf::EdfAnalysis;
use crate::jitter::{inherit_jitter, with_inherited_jitter, JitterModel};

/// Host-task structure behind one message stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TaskSegments {
    /// The request-generating model (defines `g` and the jitter).
    pub generator: JitterModel,
    /// Host-task index of the response-processing (delivery) segment; its
    /// WCRT is `d`. Commonly the receiving task, or the resumed second
    /// segment of the combined task.
    pub delivery_task: usize,
}

/// Which message dispatching policy prices `Q + C`.
#[derive(Clone, Copy, Debug)]
pub enum MessagePolicy {
    /// Deadline-monotonic AP queue (eq. (16)).
    Dm(DmAnalysis),
    /// EDF AP queue (eqs. (17)–(18)).
    Edf(EdfAnalysis),
}

/// The end-to-end analysis for the streams of one master.
#[derive(Clone, Debug)]
pub struct EndToEndAnalysis {
    /// Message dispatching policy.
    pub policy: MessagePolicy,
    /// RTA configuration for the host CPU.
    pub rta: RtaConfig,
}

/// Per-stream delay decomposition.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EndToEndBreakdown {
    /// Generation delay `g` (= inherited release jitter).
    pub g: Time,
    /// Bus phase `Q + C` (the message worst-case response time).
    pub qc: Time,
    /// Delivery delay `d`.
    pub d: Time,
    /// `E = g + Q + C + d`.
    pub total: Time,
    /// Whether the *message* deadline is met by the bus phase.
    pub message_schedulable: bool,
}

impl EndToEndAnalysis {
    /// DM-policy end-to-end analysis with defaults.
    pub fn dm() -> EndToEndAnalysis {
        EndToEndAnalysis {
            policy: MessagePolicy::Dm(DmAnalysis::conservative()),
            rta: RtaConfig::default(),
        }
    }

    /// EDF-policy end-to-end analysis with defaults.
    pub fn edf() -> EndToEndAnalysis {
        EndToEndAnalysis {
            policy: MessagePolicy::Edf(EdfAnalysis::paper()),
            rta: RtaConfig::default(),
        }
    }

    /// Computes `E = g + Q + C + d` for every stream of master
    /// `master_index` in `net`.
    ///
    /// `host`/`host_prio` describe the master's CPU; `segments[s]` ties
    /// stream `s` to its generating and delivery tasks. The stream set's
    /// jitters are overwritten with the inherited `g` values before the
    /// message analysis runs.
    pub fn analyze(
        &self,
        net: &NetworkConfig,
        master_index: usize,
        host: &TaskSet,
        host_prio: &PriorityMap,
        segments: &[TaskSegments],
    ) -> AnalysisResult<Vec<EndToEndBreakdown>> {
        let master = net
            .masters
            .get(master_index)
            .ok_or(AnalysisError::IndexOutOfRange {
                index: master_index,
                len: net.masters.len(),
            })?;
        assert_eq!(
            segments.len(),
            master.nh(),
            "one TaskSegments per stream required"
        );

        // g (and jitter) per stream.
        let generators: Vec<JitterModel> = segments.iter().map(|s| s.generator).collect();
        let g = inherit_jitter(host, host_prio, &generators)?;

        // Message analysis with inherited jitter.
        let streams = with_inherited_jitter(&master.streams, &g)?;
        let mut masters = net.masters.clone();
        masters[master_index] = MasterConfig::new(streams, master.cl);
        let jittered = NetworkConfig::new(masters, net.ttr)?;
        let message = match &self.policy {
            MessagePolicy::Dm(a) => a.analyze(&jittered)?,
            MessagePolicy::Edf(a) => a.analyze(&jittered)?,
        };

        // d per stream from the host RTA.
        let host_rta = response_times_with_jitter(host, host_prio, &self.rta)?;

        let mut out = Vec::with_capacity(segments.len());
        for (s, seg) in segments.iter().enumerate() {
            let d_idx = seg.delivery_task;
            let _ = host.get(d_idx)?;
            let d = host_rta.verdicts[d_idx]
                .wcrt()
                .ok_or(AnalysisError::DivergentIteration {
                    what: "delivery-task rta",
                    bound: host.tasks()[d_idx].d.ticks(),
                })?;
            let row = message.masters[master_index][s];
            out.push(EndToEndBreakdown {
                g: g[s],
                qc: row.response_time,
                d,
                total: g[s] + row.response_time + d,
                message_schedulable: row.schedulable,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;
    use profirt_base::StreamSet;

    /// Host: τ0 = sender (1, 50, 10_000 ticks), τ1 = receiver (2, 100, 10_000),
    /// τ2 = background (5, 200, 10_000). RM order 0,1,2 by period? All equal
    /// periods: ties by index so order 0,1,2.
    fn host() -> TaskSet {
        TaskSet::from_cdt(&[
            (1, 10_000, 10_000),
            (2, 10_000, 10_000),
            (5, 10_000, 10_000),
        ])
        .unwrap()
    }

    fn net() -> NetworkConfig {
        NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[(100, 5_000, 10_000)]).unwrap(),
                t(100),
            )],
            t(900),
        )
        .unwrap()
    }

    #[test]
    fn breakdown_sums_components() {
        let host = host();
        let pm = PriorityMap::rate_monotonic(&host);
        let segs = [TaskSegments {
            generator: JitterModel::SeparateSender { task: 0 },
            delivery_task: 1,
        }];
        let e = EndToEndAnalysis::edf()
            .analyze(&net(), 0, &host, &pm, &segs)
            .unwrap();
        assert_eq!(e.len(), 1);
        let b = e[0];
        // g = R(τ0) = 1; d = R(τ1) = 3; qc = Tcycle = 1000.
        assert_eq!(b.g, t(1));
        assert_eq!(b.d, t(3));
        assert_eq!(b.qc, t(1_000));
        assert_eq!(b.total, b.g + b.qc + b.d);
        assert!(b.message_schedulable);
    }

    #[test]
    fn dm_policy_variant() {
        let host = host();
        let pm = PriorityMap::rate_monotonic(&host);
        let segs = [TaskSegments {
            generator: JitterModel::CombinedTask {
                task: 0,
                generation_cost: t(1),
            },
            delivery_task: 0,
        }];
        let e = EndToEndAnalysis::dm()
            .analyze(&net(), 0, &host, &pm, &segs)
            .unwrap();
        // Conservative DM, single stream: qc = Tcycle (own) = 1000.
        assert_eq!(e[0].qc, t(1_000));
        assert_eq!(e[0].g, t(1));
    }

    #[test]
    fn jitter_feeds_into_message_analysis() {
        // Two streams; generator of stream 1 is the slow task -> larger g
        // -> stream 0's interference window grows under DM.
        let host = host();
        let pm = PriorityMap::rate_monotonic(&host);
        let net = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[(100, 9_000, 10_000), (100, 9_500, 10_000)]).unwrap(),
                t(100),
            )],
            t(900),
        )
        .unwrap();
        let segs = [
            TaskSegments {
                generator: JitterModel::SeparateSender { task: 0 },
                delivery_task: 1,
            },
            TaskSegments {
                generator: JitterModel::SeparateSender { task: 2 },
                delivery_task: 1,
            },
        ];
        let e = EndToEndAnalysis::dm()
            .analyze(&net, 0, &host, &pm, &segs)
            .unwrap();
        // g of stream 1 = R(τ2) = 8; g of stream 0 = 1.
        assert_eq!(e[0].g, t(1));
        assert_eq!(e[1].g, t(8));
    }

    #[test]
    fn bad_master_index_is_error() {
        let host = host();
        let pm = PriorityMap::rate_monotonic(&host);
        let r = EndToEndAnalysis::edf().analyze(&net(), 5, &host, &pm, &[]);
        assert!(matches!(r, Err(AnalysisError::IndexOutOfRange { .. })));
    }

    #[test]
    #[should_panic(expected = "one TaskSegments per stream")]
    fn mismatched_segments_panic() {
        let host = host();
        let pm = PriorityMap::rate_monotonic(&host);
        let _ = EndToEndAnalysis::edf().analyze(&net(), 0, &host, &pm, &[]);
    }
}
