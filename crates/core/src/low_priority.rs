//! Low-priority traffic outlook — an extension beyond the paper.
//!
//! The paper analyses only high-priority streams; low-priority traffic
//! (parameterisation data, file transfers, GAP maintenance) runs on
//! *residual* token-holding time and is starved whenever the token arrives
//! late (§3.1: low-priority cycles require `TTH > 0` and an empty
//! high-priority queue). This module answers the operational questions the
//! paper leaves open:
//!
//! * **Guaranteed residual budget.** Over any window of `n_rot` rotations,
//!   high-priority traffic and token passes consume at most
//!   `demand = Σ_streams ⌈window/T⌉·Ch + n_rot · ring_overhead`; the
//!   *target* gives the budget `n_rot · TTR`. If `budget > demand` the
//!   surplus is available to low-priority cycles in the long run.
//! * **Starvation risk.** If a single synchronous batch of high-priority
//!   requests plus overheads already exceeds `TTR`, every subsequent token
//!   arrival can be late and low-priority traffic may starve indefinitely
//!   (the `low_priority_starved_on_late_token` behaviour demonstrated by
//!   the simulator).
//!
//! These are *throughput* statements, not per-message response-time
//! bounds: a low-priority message has no worst-case latency guarantee
//! under PROFIBUS, which is exactly why the paper routes deadline traffic
//! through the high-priority queue.

use profirt_base::{Frac, Time};
use serde::{Deserialize, Serialize};

use crate::config::NetworkConfig;

/// Long-run outlook for low-priority traffic on one network.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LowPriorityOutlook {
    /// Long-run fraction of bus time consumed by high-priority streams
    /// (exact rational).
    pub high_utilization: Frac,
    /// Worst-case duration of one synchronous high-priority batch across
    /// the whole ring (every stream fires once) plus one round of token
    /// passes.
    pub burst: Time,
    /// `true` if such a batch exceeds `TTR`: rotations can then stay late
    /// back-to-back and low-priority traffic has no guaranteed service.
    pub starvation_risk: bool,
    /// Mean residual bus time per target rotation available to
    /// low-priority traffic in the long run (zero when saturated),
    /// in ticks, rounded down.
    pub residual_per_rotation: Time,
}

/// Computes the low-priority outlook.
pub fn low_priority_outlook(net: &NetworkConfig) -> LowPriorityOutlook {
    // Long-run high-priority utilisation Σ Ch/T (exact).
    let high_utilization: Frac = net
        .masters
        .iter()
        .flat_map(|m| m.streams.streams())
        .map(|s| Frac::new(s.ch.ticks() as i128, s.t.ticks() as i128))
        .sum();
    // One synchronous batch: every stream's cycle once + one full round of
    // token passes.
    let burst: Time = net
        .masters
        .iter()
        .flat_map(|m| m.streams.streams())
        .map(|s| s.ch)
        .sum::<Time>()
        + net.ring_overhead();
    let starvation_risk = burst >= net.ttr;
    // Mean residual per target rotation: TTR·(1 − U_high) − overhead,
    // computed exactly then floored; clamped at zero.
    let ttr = net.ttr.ticks() as i128;
    let used = Frac::new(ttr, 1) * high_utilization;
    let residual_num =
        ttr * used.den() - used.num() - (net.ring_overhead().ticks() as i128) * used.den();
    let residual = if residual_num <= 0 {
        Time::ZERO
    } else {
        Time::new((residual_num / used.den()) as i64)
    };
    LowPriorityOutlook {
        high_utilization,
        burst,
        starvation_risk,
        residual_per_rotation: residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MasterConfig;
    use profirt_base::time::t;
    use profirt_base::StreamSet;

    fn net(streams: &[(i64, i64, i64)], ttr: i64) -> NetworkConfig {
        NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(streams).unwrap(),
                t(0),
            )],
            t(ttr),
        )
        .unwrap()
    }

    #[test]
    fn light_load_leaves_residual() {
        let n = net(&[(100, 10_000, 10_000)], 2_000);
        let o = low_priority_outlook(&n);
        assert_eq!(o.high_utilization, Frac::new(1, 100));
        assert_eq!(o.burst, t(100));
        assert!(!o.starvation_risk);
        // TTR·(1−0.01) = 1980.
        assert_eq!(o.residual_per_rotation, t(1_980));
    }

    #[test]
    fn heavy_burst_flags_starvation() {
        // One synchronous batch (900+900=1800) >= TTR (1500).
        let n = net(&[(900, 50_000, 5_000), (900, 50_000, 5_000)], 1_500);
        let o = low_priority_outlook(&n);
        assert!(o.starvation_risk);
        assert_eq!(o.burst, t(1_800));
    }

    #[test]
    fn saturation_zeroes_residual() {
        // U_high = 0.9, TTR = 1000, residual = 1000*0.1 = 100; with
        // overhead pushing past it, clamps to zero.
        let n = net(&[(900, 10_000, 1_000)], 1_000);
        let o = low_priority_outlook(&n);
        assert_eq!(o.high_utilization, Frac::new(9, 10));
        assert_eq!(o.residual_per_rotation, t(100));
        let with_ovh = n.with_token_pass(t(150));
        let o2 = low_priority_outlook(&with_ovh);
        assert_eq!(o2.residual_per_rotation, Time::ZERO);
    }

    #[test]
    fn outlook_matches_simulator_behaviour() {
        // The starvation example from the simulator tests: heavy high
        // stream with TTR = 500 -> risk; generous TTR -> no risk.
        let starved = net(&[(900, 50_000, 1_000)], 500);
        assert!(low_priority_outlook(&starved).starvation_risk);
        let healthy = net(&[(200, 8_000, 10_000)], 2_000);
        assert!(!low_priority_outlook(&healthy).starvation_risk);
    }

    #[test]
    fn multi_master_burst_sums_all_streams() {
        let n = NetworkConfig::new(
            vec![
                MasterConfig::new(StreamSet::from_cdt(&[(300, 50_000, 50_000)]).unwrap(), t(0)),
                MasterConfig::new(StreamSet::from_cdt(&[(400, 50_000, 50_000)]).unwrap(), t(0)),
            ],
            t(5_000),
        )
        .unwrap()
        .with_token_pass(t(100));
        let o = low_priority_outlook(&n);
        assert_eq!(o.burst, t(300 + 400 + 200));
    }
}
