//! The stock-PROFIBUS FCFS bound (paper §3.2, eqs. (11)–(12)).
//!
//! With FCFS outgoing queues, at most one message per stream is pending at
//! once (two would already imply a missed deadline), so at most `nh^k`
//! messages precede any request, and one high-priority cycle is guaranteed
//! per token visit:
//!
//! `Qi^k = nh^k · Tcycle − Chi^k`,  `Ri^k = Qi^k + Chi^k = nh^k · Tcycle` (eq. (11))
//!
//! schedulable iff `Dhi^k ≥ Ri^k` for every stream (eq. (12)).
//!
//! Note the bound is *the same for every stream of a master* — deadline
//! tightness is invisible to FCFS. That flat profile is precisely the
//! priority-inversion cost the paper's §4 removes.

use profirt_base::AnalysisResult;

use crate::config::NetworkConfig;
use crate::tcycle::{tcycle, TcycleModel};
use crate::{NetworkAnalysis, StreamResponse};

/// The FCFS analysis of eqs. (11)–(12).
#[derive(Clone, Copy, Debug, Default)]
pub struct FcfsAnalysis {
    /// Token-cycle model feeding eq. (11).
    pub model: TcycleModel,
}

impl FcfsAnalysis {
    /// Analysis with the paper's eq. (13) lateness bound.
    pub fn paper() -> FcfsAnalysis {
        FcfsAnalysis {
            model: TcycleModel::Paper,
        }
    }

    /// Analysis with the refined lateness bound.
    pub fn refined() -> FcfsAnalysis {
        FcfsAnalysis {
            model: TcycleModel::Refined,
        }
    }

    /// Computes eq. (11) for every stream and eq. (12) verdicts.
    pub fn analyze(net: &NetworkConfig) -> AnalysisResult<NetworkAnalysis> {
        FcfsAnalysis::default().run(net)
    }

    /// Computes the analysis with this configuration.
    pub fn run(&self, net: &NetworkConfig) -> AnalysisResult<NetworkAnalysis> {
        let bound = tcycle(net, self.model);
        let mut masters = Vec::with_capacity(net.n_masters());
        for (k, master) in net.masters.iter().enumerate() {
            let nh = master.nh() as i64;
            let mut rows = Vec::with_capacity(master.nh());
            for (i, s) in master.streams.iter() {
                let r = bound.tcycle.try_mul(nh)?;
                rows.push(StreamResponse {
                    master: k,
                    stream: i,
                    response_time: r,
                    deadline: s.d,
                    schedulable: s.d >= r,
                    queuing_delay: (r - s.ch).max_zero(),
                });
            }
            masters.push(rows);
        }
        Ok(NetworkAnalysis {
            tcycle: bound.tcycle,
            tdel: bound.tdel,
            masters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MasterConfig;
    use profirt_base::time::t;
    use profirt_base::StreamSet;

    fn net() -> NetworkConfig {
        NetworkConfig::new(
            vec![
                MasterConfig::new(
                    StreamSet::from_cdt(&[(300, 30_000, 30_000), (240, 7_000, 60_000)]).unwrap(),
                    t(360),
                ),
                MasterConfig::new(StreamSet::from_cdt(&[(300, 45_000, 45_000)]).unwrap(), t(0)),
            ],
            t(3_000),
        )
        .unwrap()
    }

    #[test]
    fn response_is_nh_times_tcycle() {
        let an = FcfsAnalysis::analyze(&net()).unwrap();
        // Tdel = max(300,240,360) + 300 = 360 + 300 = 660; Tcycle = 3660.
        assert_eq!(an.tdel, t(660));
        assert_eq!(an.tcycle, t(3_660));
        // Master 0 has nh = 2: R = 7320 for both streams.
        assert_eq!(an.masters[0][0].response_time, t(7_320));
        assert_eq!(an.masters[0][1].response_time, t(7_320));
        // Master 1 has nh = 1: R = 3660.
        assert_eq!(an.masters[1][0].response_time, t(3_660));
    }

    #[test]
    fn flat_profile_ignores_deadlines() {
        let an = FcfsAnalysis::analyze(&net()).unwrap();
        // Stream (0,1) has the tighter deadline 7000 but the same R: FCFS
        // misses it while the lax stream passes.
        assert!(an.masters[0][0].schedulable); // D = 30000 >= 7320
        assert!(!an.masters[0][1].schedulable); // D = 7000 < 7320
        assert!(!an.all_schedulable());
        assert_eq!(an.schedulable_count(), 2);
    }

    #[test]
    fn queuing_delay_decomposition() {
        let an = FcfsAnalysis::analyze(&net()).unwrap();
        // Q = R - Ch per eq. (11).
        assert_eq!(an.masters[0][0].queuing_delay, t(7_320 - 300));
        assert_eq!(an.masters[1][0].queuing_delay, t(3_660 - 300));
    }

    #[test]
    fn exact_deadline_boundary_schedulable() {
        let net = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[(100, 1_100, 10_000)]).unwrap(),
                t(0),
            )],
            t(1_000),
        )
        .unwrap();
        // Tdel = 100, Tcycle = 1100, nh=1 -> R = 1100 = D: schedulable.
        let an = FcfsAnalysis::analyze(&net).unwrap();
        assert!(an.masters[0][0].schedulable);
        // One tick tighter fails.
        let net2 = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[(100, 1_099, 10_000)]).unwrap(),
                t(0),
            )],
            t(1_000),
        )
        .unwrap();
        assert!(!FcfsAnalysis::analyze(&net2).unwrap().masters[0][0].schedulable);
    }

    #[test]
    fn refined_model_gives_smaller_or_equal_r() {
        let p = FcfsAnalysis::paper().run(&net()).unwrap();
        let r = FcfsAnalysis::refined().run(&net()).unwrap();
        for (a, b) in p.iter().zip(r.iter()) {
            assert!(b.response_time <= a.response_time);
        }
    }

    #[test]
    fn response_grows_with_stream_count() {
        // Adding a stream to a master increases every R of that master.
        let base = FcfsAnalysis::analyze(&net()).unwrap();
        let mut masters = net().masters.clone();
        let mut streams: Vec<_> = masters[1].streams.clone().into();
        streams.push(profirt_base::MessageStream::new(t(200), t(50_000), t(50_000)).unwrap());
        masters[1] = MasterConfig::new(StreamSet::new(streams).unwrap(), t(0));
        let bigger =
            FcfsAnalysis::analyze(&NetworkConfig::new(masters, t(3_000)).unwrap()).unwrap();
        assert!(bigger.masters[1][0].response_time > base.masters[1][0].response_time);
    }
}
