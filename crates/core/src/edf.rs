//! EDF message response times — the paper's §4.3, eqs. (17)–(18).
//!
//! With the AP queue ordered by absolute deadline, message scheduling is
//! non-preemptive EDF with every service slot costing one token cycle. The
//! paper transposes the George et al. analysis (eqs. (9)–(10)) with
//! `C → Tcycle` and the §4.1 release jitter:
//!
//! `Ri^k(a) = max{Tcycle, Li(a) + Tcycle − a}`                  (eq. (17))
//!
//! `Li^{m+1}(a) = T*cycle·[∃j: Dj > a+Di] + Wi(a, Li^m(a)) + ⌊a/Ti⌋·Tcycle`
//!
//! `Wi(a, t) = Σ_{j≠i, Dj ≤ a+Di}
//!     min{1 + ⌊(t+Jj)/Tj⌋, 1 + ⌊(a+Di−Dj+Jj)/Tj⌋} · Tcycle`   (eq. (18))
//!
//! Arrival candidates follow eq. (10)'s pattern; because jitter advances
//! releases, we enumerate both the plain offsets `k·Tj + Dj − Di` and the
//! jitter-shifted `k·Tj + Dj − Jj − Di` (a sound superset of the paper's
//! set), bounded by the blocking-extended message busy period.
//!
//! The analysis requires `Σ_j Tcycle/Tj < 1` per master (each pending
//! message consumes a full token cycle of service capacity); violations are
//! reported as [`profirt_base::AnalysisError::UtilizationAtLeastOne`].

use profirt_base::{AnalysisError, AnalysisResult, Frac, Time};
use profirt_sched::{fixpoint, CheckpointScratch, FixOutcome, FixpointConfig};
use serde::{Deserialize, Serialize};

use crate::config::{MasterConfig, NetworkConfig};
use crate::tcycle::{tcycle, TcycleModel};
use crate::{NetworkAnalysis, StreamResponse};

/// The EDF message analysis of eqs. (17)–(18).
#[derive(Clone, Copy, Debug)]
pub struct EdfAnalysis {
    /// Token-cycle model.
    pub model: TcycleModel,
    /// Fixpoint iteration limits.
    pub fixpoint: FixpointConfig,
    /// Hard cap on arrival candidates per stream.
    pub max_candidates: u64,
}

impl Default for EdfAnalysis {
    fn default() -> Self {
        EdfAnalysis {
            model: TcycleModel::Paper,
            fixpoint: FixpointConfig::default(),
            max_candidates: 2_000_000,
        }
    }
}

/// Detailed per-stream outcome (the critical arrival offset).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EdfStreamDetail {
    /// The arrival offset at which the worst case is attained.
    pub critical_a: Time,
    /// Number of candidates examined.
    pub candidates: usize,
}

impl EdfAnalysis {
    /// The paper-literal configuration.
    pub fn paper() -> EdfAnalysis {
        EdfAnalysis::default()
    }

    /// Runs the analysis for every master and stream.
    pub fn analyze(&self, net: &NetworkConfig) -> AnalysisResult<NetworkAnalysis> {
        Ok(self.analyze_detailed(net)?.0)
    }

    /// Runs the analysis reusing a caller-owned scratch — the hot path for
    /// long-running consumers (the `serve` shards) that answer many
    /// analyses back to back and want the working buffers warm.
    pub fn analyze_with_scratch(
        &self,
        net: &NetworkConfig,
        scratch: &mut MessageScratch,
    ) -> AnalysisResult<NetworkAnalysis> {
        Ok(self.analyze_detailed_with(net, scratch)?.0)
    }

    /// Runs the analysis, also returning per-stream critical offsets.
    pub fn analyze_detailed(
        &self,
        net: &NetworkConfig,
    ) -> AnalysisResult<(NetworkAnalysis, Vec<Vec<EdfStreamDetail>>)> {
        // One set of working buffers per analysis run, reused across every
        // master, stream and arrival candidate.
        let mut scratch = MessageScratch::default();
        self.analyze_detailed_with(net, &mut scratch)
    }

    /// [`EdfAnalysis::analyze_detailed`] with a caller-owned scratch.
    pub fn analyze_detailed_with(
        &self,
        net: &NetworkConfig,
        scratch: &mut MessageScratch,
    ) -> AnalysisResult<(NetworkAnalysis, Vec<Vec<EdfStreamDetail>>)> {
        let bound = tcycle(net, self.model);
        let tc = bound.tcycle;
        let mut masters = Vec::with_capacity(net.n_masters());
        let mut details = Vec::with_capacity(net.n_masters());
        for (k, master) in net.masters.iter().enumerate() {
            let (rows, det) = self.analyze_master(k, master, tc, scratch)?;
            masters.push(rows);
            details.push(det);
        }
        Ok((
            NetworkAnalysis {
                tcycle: bound.tcycle,
                tdel: bound.tdel,
                masters,
            },
            details,
        ))
    }

    fn analyze_master(
        &self,
        k: usize,
        master: &MasterConfig,
        tc: Time,
        scratch: &mut MessageScratch,
    ) -> AnalysisResult<(Vec<StreamResponse>, Vec<EdfStreamDetail>)> {
        let streams = master.streams.streams();
        if streams.is_empty() {
            return Ok((Vec::new(), Vec::new()));
        }
        // Service-capacity check: Σ Tcycle/Tj < 1 (exact).
        let u: Frac = streams
            .iter()
            .map(|s| Frac::new(tc.ticks() as i128, s.t.ticks() as i128))
            .sum();
        if !u.lt_one() {
            return Err(AnalysisError::UtilizationAtLeastOne);
        }
        // Blocking-extended message busy period: fixpoint of
        // Tcycle + Σ ⌈(t+Jj)/Tj⌉·Tcycle.
        let seed: Time = tc.try_mul(streams.len() as i64 + 1)?;
        let l_outcome = fixpoint(
            "edf-message busy period",
            seed,
            Time::MAX,
            self.fixpoint,
            |t| {
                let mut next = tc;
                for s in streams {
                    let n = (t + s.j).ceil_div(s.t).max(1);
                    next = next.try_add(tc.try_mul(n)?)?;
                }
                Ok(next)
            },
        )?;
        let l = match l_outcome {
            FixOutcome::Converged(v) => v,
            FixOutcome::ExceededBound(_) => {
                return Err(AnalysisError::Overflow {
                    context: "edf message busy period",
                })
            }
        };

        let mut rows = Vec::with_capacity(streams.len());
        let mut details = Vec::with_capacity(streams.len());
        for (i, s) in master.streams.iter() {
            // Candidate arrivals: plain and jitter-shifted progressions.
            let progs = &mut scratch.progs;
            progs.clear();
            for sj in streams {
                progs.push((sj.d - s.d, sj.t));
                if sj.j.is_positive() {
                    progs.push((sj.d - sj.j - s.d, sj.t));
                }
            }
            let mut best_r = tc;
            let mut best_a = Time::ZERO;
            let mut examined: u64 = 0;
            let mut cursor = scratch.checkpoints.start(progs, l);
            while let Some(a) = cursor.next_point() {
                examined += 1;
                if examined > self.max_candidates {
                    return Err(AnalysisError::IterationLimit {
                        what: "edf-message candidates",
                        limit: self.max_candidates,
                    });
                }
                let li = self.start_busy_period(master, i, a, tc, l, &mut scratch.terms)?;
                let r = tc.max(li + tc - a);
                if r > best_r {
                    best_r = r;
                    best_a = a;
                }
            }
            rows.push(StreamResponse {
                master: k,
                stream: i,
                response_time: best_r,
                deadline: s.d,
                schedulable: best_r <= s.d,
                queuing_delay: (best_r - s.ch).max_zero(),
            });
            details.push(EdfStreamDetail {
                critical_a: best_a,
                candidates: examined as usize,
            });
        }
        Ok((rows, details))
    }

    /// Solves eq. (18) for one arrival offset. The deadline-qualified
    /// interference rows — period, jitter, and the arrival-independent job
    /// cap — are hoisted into `terms` so the fixpoint closure walks one
    /// flat array.
    fn start_busy_period(
        &self,
        master: &MasterConfig,
        i: usize,
        a: Time,
        tc: Time,
        bound: Time,
        terms: &mut Vec<(Time, Time, i64)>,
    ) -> AnalysisResult<Time> {
        let streams = master.streams.streams();
        let s_i = streams[i];
        let deadline_i = a + s_i.d;
        // Blocking: one token cycle if any stream's relative deadline
        // exceeds a + Di (a later-deadline request may hold the stack slot).
        let mut blocked = false;
        terms.clear();
        for (j, sj) in streams.iter().enumerate() {
            if j == i {
                continue;
            }
            if sj.d > deadline_i {
                blocked = true;
            } else {
                let by_deadline = 1 + (deadline_i - sj.d + sj.j).floor_div(sj.t);
                terms.push((sj.t, sj.j, by_deadline));
            }
        }
        let blocking = if blocked { tc } else { Time::ZERO };
        let own_prior = tc.try_mul(a.floor_div(s_i.t))?;
        let base = blocking.try_add(own_prior)?;

        let outcome = fixpoint(
            "edf-message start busy period",
            Time::ZERO,
            bound,
            self.fixpoint,
            |t| {
                let mut next = base;
                for &(t_j, j_j, by_deadline) in terms.iter() {
                    let by_time = 1 + (t + j_j).floor_div(t_j);
                    next = next.try_add(tc.try_mul(by_time.min(by_deadline).max(0))?)?;
                }
                Ok(next)
            },
        )?;
        match outcome {
            FixOutcome::Converged(v) => Ok(v),
            FixOutcome::ExceededBound(v) => Err(AnalysisError::DivergentIteration {
                what: "edf-message start busy period",
                bound: v.ticks(),
            }),
        }
    }
}

/// Reusable buffers for one [`EdfAnalysis`] run: candidate progressions,
/// the checkpoint merge heap, and the hoisted interference rows. All fields
/// are cleared before use, so a single instance can serve any sequence of
/// analyses (see [`EdfAnalysis::analyze_with_scratch`]); results never
/// depend on what a previous run left behind.
#[derive(Debug, Default)]
pub struct MessageScratch {
    progs: Vec<(Time, Time)>,
    checkpoints: CheckpointScratch,
    terms: Vec<(Time, Time, i64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MasterConfig;
    use crate::fcfs::FcfsAnalysis;
    use profirt_base::time::t;
    use profirt_base::StreamSet;

    /// Tcycle = 1000 (TTR = 900, Tdel = 100 via Cl).
    fn net(streams: &[(i64, i64, i64)]) -> NetworkConfig {
        NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(streams).unwrap(),
                t(100),
            )],
            t(900),
        )
        .unwrap()
    }

    #[test]
    fn single_stream_r_is_tcycle() {
        let an = EdfAnalysis::paper()
            .analyze(&net(&[(100, 5_000, 10_000)]))
            .unwrap();
        assert_eq!(an.masters[0][0].response_time, t(1_000));
        assert!(an.masters[0][0].schedulable);
    }

    #[test]
    fn two_streams_tight_one_blocked_once() {
        // Streams: tight D=3000, lax D=40000, both T=10000.
        let an = EdfAnalysis::paper()
            .analyze(&net(&[(100, 3_000, 10_000), (100, 40_000, 10_000)]))
            .unwrap();
        // Tight stream at a=0: later-deadline stream can block (Tcycle),
        // no same-or-earlier-deadline interference: L = 1000,
        // R = max(1000, 1000+1000-0) = 2000.
        assert_eq!(an.masters[0][0].response_time, t(2_000));
        assert!(an.masters[0][0].schedulable);
        // Lax stream: interference from tight one bounded by its deadline
        // window; R stays within D.
        assert!(an.masters[0][1].schedulable);
    }

    #[test]
    fn edf_beats_fcfs_for_tight_deadlines() {
        let cfg = net(&[
            (100, 3_000, 10_000),
            (100, 6_000, 10_000),
            (100, 40_000, 10_000),
        ]);
        let edf = EdfAnalysis::paper().analyze(&cfg).unwrap();
        let fcfs = FcfsAnalysis::paper().run(&cfg).unwrap();
        // FCFS: flat 3 * 1000 = 3000 — the tight stream is at its deadline.
        assert_eq!(fcfs.masters[0][0].response_time, t(3_000));
        // EDF: the tight stream sees one blocking + bounded interference.
        assert!(edf.masters[0][0].response_time < t(3_000));
    }

    #[test]
    fn utilization_guard() {
        // Tcycle = 1000 but periods of 1500 each: 2 * 1000/1500 > 1.
        let cfg = net(&[(100, 1_500, 1_500), (100, 1_500, 1_500)]);
        assert!(matches!(
            EdfAnalysis::paper().analyze(&cfg),
            Err(AnalysisError::UtilizationAtLeastOne)
        ));
    }

    #[test]
    fn jitter_increases_response() {
        let plain = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdtj(&[(100, 9_000, 10_000, 0), (100, 9_500, 10_000, 0)]).unwrap(),
                t(100),
            )],
            t(900),
        )
        .unwrap();
        let jittered = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdtj(&[(100, 9_000, 10_000, 0), (100, 9_500, 10_000, 4_000)])
                    .unwrap(),
                t(100),
            )],
            t(900),
        )
        .unwrap();
        let r0 = EdfAnalysis::paper().analyze(&plain).unwrap();
        let r1 = EdfAnalysis::paper().analyze(&jittered).unwrap();
        assert!(
            r1.masters[0][0].response_time >= r0.masters[0][0].response_time,
            "jitter on a peer must not reduce the bound"
        );
    }

    #[test]
    fn detailed_reports_candidates() {
        let cfg = net(&[(100, 3_000, 10_000), (100, 40_000, 10_000)]);
        let (_, det) = EdfAnalysis::paper().analyze_detailed(&cfg).unwrap();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].len(), 2);
        assert!(det[0][0].candidates > 0);
    }

    #[test]
    fn candidate_cap_enforced() {
        let cfg = net(&[(100, 3_000, 10_000), (100, 40_000, 10_000)]);
        let an = EdfAnalysis {
            max_candidates: 1,
            ..EdfAnalysis::paper()
        };
        assert!(matches!(
            an.analyze(&cfg),
            Err(AnalysisError::IterationLimit { .. })
        ));
    }

    #[test]
    fn deadline_miss_detected() {
        // Deadline below Tcycle can never be met (R >= Tcycle).
        let an = EdfAnalysis::paper()
            .analyze(&net(&[(100, 800, 10_000)]))
            .unwrap();
        assert!(!an.masters[0][0].schedulable);
        assert_eq!(an.masters[0][0].response_time, t(1_000));
    }

    #[test]
    fn empty_master_allowed() {
        let cfg = NetworkConfig::new(
            vec![
                MasterConfig::new(StreamSet::new(vec![]).unwrap(), t(100)),
                MasterConfig::new(StreamSet::from_cdt(&[(100, 5_000, 10_000)]).unwrap(), t(0)),
            ],
            t(900),
        )
        .unwrap();
        let an = EdfAnalysis::paper().analyze(&cfg).unwrap();
        assert!(an.masters[0].is_empty());
        assert_eq!(an.masters[1].len(), 1);
    }
}
