//! The token-cycle upper bound `Tcycle` (paper §3.3, eqs. (13)–(14)).
//!
//! `Tcycle` bounds the interval between consecutive token arrivals at any
//! master. The real rotation time exceeds `TTR` only through *token
//! lateness*: some master overruns its `TTH` (a message cycle started just
//! before expiry always completes), and each following master, receiving a
//! late token, may still transmit one high-priority message cycle. The
//! worst chain is bounded by
//!
//! `Tdel = Σ_k CM^k`,  `CM^k = max{max_i Chi^k, Cl^k}`       (eq. (13))
//!
//! `Tcycle = TTR + Tdel`                                      (eq. (14))
//!
//! The paper notes a more accurate `Tcycle` exists (its reference \[14\])
//! accounting for which master overruns and what the others may send on a
//! late token: the overrunner contributes its longest cycle of *either*
//! priority, but every other master — holding a late token — can send at
//! most **one high-priority** cycle, so
//!
//! `Tdel_refined = max_j { CM^j + Σ_{k≠j} maxHigh^k }`
//!
//! which never exceeds the eq. (13) value. Both are provided via
//! [`TcycleModel`].

use profirt_base::Time;
use serde::{Deserialize, Serialize};

use crate::config::NetworkConfig;

/// Which token-lateness bound to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum TcycleModel {
    /// Eq. (13) verbatim: every master charged its longest cycle `CM^k`.
    #[default]
    Paper,
    /// The per-overrunner refinement: one master overruns with `CM^j`; the
    /// others contribute at most one high-priority cycle each.
    Refined,
}

/// The computed token-cycle bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TcycleBound {
    /// Worst-case token lateness `Tdel`.
    pub tdel: Time,
    /// `Tcycle = TTR + Tdel`.
    pub tcycle: Time,
    /// The model used.
    pub model: TcycleModel,
}

/// Computes the token lateness `Tdel` under the chosen model.
pub fn token_lateness(net: &NetworkConfig, model: TcycleModel) -> Time {
    match model {
        TcycleModel::Paper => net.masters.iter().map(|m| m.longest_cycle()).sum(),
        TcycleModel::Refined => {
            let high_sum: Time = net.masters.iter().map(|m| m.max_high_cycle()).sum();
            net.masters
                .iter()
                .map(|m| m.longest_cycle() + (high_sum - m.max_high_cycle()))
                .max()
                .unwrap_or(Time::ZERO)
        }
    }
}

/// Computes the full bound `Tcycle = TTR + Tdel + ring overhead`
/// (eq. (14); the overhead term is zero in the paper-literal configuration,
/// see [`NetworkConfig::token_pass`]).
pub fn tcycle(net: &NetworkConfig, model: TcycleModel) -> TcycleBound {
    let tdel = token_lateness(net, model);
    TcycleBound {
        tdel,
        tcycle: net.ttr + tdel + net.ring_overhead(),
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MasterConfig;
    use profirt_base::time::t;
    use profirt_base::StreamSet;

    fn net3() -> NetworkConfig {
        // Master 0: high cycles {300, 240}, Cl = 360 -> CM = 360.
        // Master 1: high {300},           Cl = 0   -> CM = 300.
        // Master 2: high {500},           Cl = 450 -> CM = 500.
        NetworkConfig::new(
            vec![
                MasterConfig::new(
                    StreamSet::from_cdt(&[(300, 30_000, 30_000), (240, 60_000, 60_000)]).unwrap(),
                    t(360),
                ),
                MasterConfig::new(StreamSet::from_cdt(&[(300, 45_000, 45_000)]).unwrap(), t(0)),
                MasterConfig::new(
                    StreamSet::from_cdt(&[(500, 90_000, 90_000)]).unwrap(),
                    t(450),
                ),
            ],
            t(3_000),
        )
        .unwrap()
    }

    #[test]
    fn paper_tdel_sums_longest_cycles() {
        let net = net3();
        assert_eq!(token_lateness(&net, TcycleModel::Paper), t(360 + 300 + 500));
        let b = tcycle(&net, TcycleModel::Paper);
        assert_eq!(b.tdel, t(1160));
        assert_eq!(b.tcycle, t(4160));
    }

    #[test]
    fn refined_tdel_charges_one_overrunner() {
        let net = net3();
        // maxHigh = (300, 300, 500), sum = 1100.
        // overrunner 0: 360 + (1100-300) = 1160
        // overrunner 1: 300 + (1100-300) = 1100
        // overrunner 2: 500 + (1100-500) = 1100
        // max = 1160.
        assert_eq!(token_lateness(&net, TcycleModel::Refined), t(1160));
    }

    #[test]
    fn refined_never_exceeds_paper() {
        let net = net3();
        assert!(
            token_lateness(&net, TcycleModel::Refined) <= token_lateness(&net, TcycleModel::Paper)
        );
        // Strictly smaller when some master's Cl dominates its high cycles
        // at more than one station: make master 1 carry a big Cl.
        let mut masters = net.masters.clone();
        masters[1].cl = t(900); // CM1 = 900 now
        let net2 = NetworkConfig::new(masters, t(3_000)).unwrap();
        let p = token_lateness(&net2, TcycleModel::Paper); // 360+900+500 = 1760
        let r = token_lateness(&net2, TcycleModel::Refined);
        // overrunner 1: 900 + (1100-300) = 1700; others smaller.
        assert_eq!(p, t(1760));
        assert_eq!(r, t(1700));
        assert!(r < p);
    }

    #[test]
    fn single_master_tdel_is_its_longest_cycle() {
        let net = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[(120, 10_000, 10_000)]).unwrap(),
                t(200),
            )],
            t(1_000),
        )
        .unwrap();
        assert_eq!(token_lateness(&net, TcycleModel::Paper), t(200));
        assert_eq!(token_lateness(&net, TcycleModel::Refined), t(200));
        assert_eq!(tcycle(&net, TcycleModel::Paper).tcycle, t(1_200));
    }

    #[test]
    fn paper_worked_scenario() {
        // §3.3 illustration: after an idle rotation, master k holds the
        // token for TTH plus its longest message; all following masters get
        // a late token and send one high-priority cycle each. The bound
        // must cover that chain: Tcycle >= TTR + CM^k + Σ_{j≠k} maxHigh^j.
        let net = net3();
        let b = tcycle(&net, TcycleModel::Paper);
        for k in 0..net.n_masters() {
            let chain: Time = net.masters[k].longest_cycle()
                + net
                    .masters
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != k)
                    .map(|(_, m)| m.max_high_cycle())
                    .sum::<Time>();
            assert!(net.ttr + chain <= b.tcycle);
        }
    }
}
