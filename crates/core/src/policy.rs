//! Uniform dispatch over the paper's queue policies.
//!
//! The analyses ([`FcfsAnalysis`], [`DmAnalysis`], [`EdfAnalysis`]) and the
//! simulator's [`QueuePolicy`] grew up as separate types; every consumer
//! that sweeps "all policies" (the CLI, the experiments, the campaign
//! engine) used to hand-roll the same match. [`PolicyKind`] names each
//! analysable policy once — including the two eq. (16) fidelity variants —
//! and maps it to both its analysis and its simulator queue discipline.

use profirt_base::AnalysisResult;
use profirt_profibus::QueuePolicy;
use profirt_sched::FixpointConfig;

use crate::config::NetworkConfig;
use crate::dm::DmAnalysis;
use crate::edf::{EdfAnalysis, MessageScratch};
use crate::fcfs::FcfsAnalysis;
use crate::NetworkAnalysis;

/// Reusable working buffers for [`PolicyKind::analyze_with_scratch`]. Today
/// only the EDF message analysis allocates scratch worth keeping warm (the
/// FCFS/DM recurrences are allocation-light), but routing every policy
/// through one opaque scratch lets long-running consumers — the `serve`
/// shards — hold a single value per worker regardless of which policies the
/// request mix asks for.
#[derive(Debug, Default)]
pub struct PolicyScratch {
    edf: MessageScratch,
}

/// Analysis tuning shared by every policy's analysis and passed through the
/// uniform dispatch: fixpoint iteration caps and the arrival-candidate cap
/// of the EDF message analysis. One tuning value configures a whole sweep
/// (the campaign engine builds it once per work unit).
#[derive(Clone, Copy, Debug)]
pub struct PolicyTuning {
    /// Fixpoint iteration limits for every recurrence.
    pub fixpoint: FixpointConfig,
    /// Hard cap on arrival candidates per stream (EDF analysis only).
    pub max_candidates: u64,
}

impl Default for PolicyTuning {
    fn default() -> Self {
        // Derived from the EDF analysis defaults (the only analysis with a
        // candidate cap), so retuning EdfAnalysis::default() cannot drift
        // apart from the dispatch path.
        let edf = EdfAnalysis::default();
        PolicyTuning {
            fixpoint: edf.fixpoint,
            max_candidates: edf.max_candidates,
        }
    }
}

/// One analysable queue policy, with its fidelity variant where relevant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PolicyKind {
    /// Stock PROFIBUS FCFS (§3, eq. (11)).
    Fcfs,
    /// §4 priority-queue architecture, deadline-monotonic dispatching,
    /// conservative (sound) variant of eq. (16).
    Dm,
    /// §4 architecture, DM dispatching, paper-literal eq. (16) (optimistic
    /// in corner cases; kept for the fidelity experiments).
    DmPaper,
    /// §4 architecture, EDF dispatching (eqs. (17)–(18)).
    Edf,
}

impl PolicyKind {
    /// Every policy, in the order the paper discusses them.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Fcfs,
        PolicyKind::Dm,
        PolicyKind::DmPaper,
        PolicyKind::Edf,
    ];

    /// The canonical name (also the accepted CLI / campaign spelling).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::Dm => "dm",
            PolicyKind::DmPaper => "dm-paper",
            PolicyKind::Edf => "edf",
        }
    }

    /// Parses a policy name (`"fcfs"`, `"dm"`, `"dm-paper"`, `"edf"`, plus
    /// the `"dm-cons"` alias the experiments historically used).
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "fcfs" => Some(PolicyKind::Fcfs),
            "dm" | "dm-cons" => Some(PolicyKind::Dm),
            "dm-paper" => Some(PolicyKind::DmPaper),
            "edf" => Some(PolicyKind::Edf),
            _ => None,
        }
    }

    /// A short human label for report headings.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "FCFS (eq. 11)",
            PolicyKind::Dm => "DM conservative (eq. 16 fixed)",
            PolicyKind::DmPaper => "DM paper-literal (eq. 16)",
            PolicyKind::Edf => "EDF (eqs. 17-18)",
        }
    }

    /// Runs the policy's worst-case response-time analysis with default
    /// tuning.
    pub fn analyze(self, net: &NetworkConfig) -> AnalysisResult<NetworkAnalysis> {
        self.analyze_with(net, &PolicyTuning::default())
    }

    /// Runs the policy's worst-case response-time analysis, passing the
    /// caller's tuning (fixpoint / candidate caps) through to the concrete
    /// analysis. With `PolicyTuning::default()` this is exactly
    /// [`PolicyKind::analyze`].
    pub fn analyze_with(
        self,
        net: &NetworkConfig,
        tuning: &PolicyTuning,
    ) -> AnalysisResult<NetworkAnalysis> {
        self.analyze_with_scratch(net, tuning, &mut PolicyScratch::default())
    }

    /// [`PolicyKind::analyze_with`] reusing caller-owned working buffers.
    /// Scratch reuse never changes results (every buffer is cleared before
    /// use); it only keeps allocations warm across a request stream.
    pub fn analyze_with_scratch(
        self,
        net: &NetworkConfig,
        tuning: &PolicyTuning,
        scratch: &mut PolicyScratch,
    ) -> AnalysisResult<NetworkAnalysis> {
        match self {
            PolicyKind::Fcfs => FcfsAnalysis::paper().run(net),
            PolicyKind::Dm => DmAnalysis {
                fixpoint: tuning.fixpoint,
                ..DmAnalysis::conservative()
            }
            .analyze(net),
            PolicyKind::DmPaper => DmAnalysis {
                fixpoint: tuning.fixpoint,
                ..DmAnalysis::paper()
            }
            .analyze(net),
            PolicyKind::Edf => EdfAnalysis {
                fixpoint: tuning.fixpoint,
                max_candidates: tuning.max_candidates,
                ..EdfAnalysis::paper()
            }
            .analyze_with_scratch(net, &mut scratch.edf),
        }
    }

    /// The matching simulator queue discipline.
    pub fn queue_policy(self) -> QueuePolicy {
        match self {
            PolicyKind::Fcfs => QueuePolicy::Fcfs,
            PolicyKind::Dm | PolicyKind::DmPaper => QueuePolicy::DeadlineMonotonic,
            PolicyKind::Edf => QueuePolicy::Edf,
        }
    }

    /// `true` for the policies that require the paper's §4 priority-queue
    /// architecture (outgoing queue reordered at insertion) rather than the
    /// stock FCFS master.
    pub fn is_section4(self) -> bool {
        !matches!(self, PolicyKind::Fcfs)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MasterConfig;
    use profirt_base::{StreamSet, Time};

    fn net() -> NetworkConfig {
        let m = MasterConfig::new(
            StreamSet::from_cdt(&[(300, 30_000, 30_000), (240, 60_000, 60_000)]).unwrap(),
            Time::new(360),
        );
        NetworkConfig::new(vec![m], Time::new(3_000)).unwrap()
    }

    #[test]
    fn names_round_trip() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(PolicyKind::parse("dm-cons"), Some(PolicyKind::Dm));
        assert_eq!(PolicyKind::parse("nope"), None);
    }

    #[test]
    fn dispatch_matches_direct_constructors() {
        let n = net();
        let via = PolicyKind::Dm.analyze(&n).unwrap();
        let direct = DmAnalysis::conservative().analyze(&n).unwrap();
        assert_eq!(via, direct);
        let via = PolicyKind::Fcfs.analyze(&n).unwrap();
        let direct = FcfsAnalysis::paper().run(&n).unwrap();
        assert_eq!(via, direct);
    }

    #[test]
    fn default_tuning_matches_plain_analyze() {
        let n = net();
        let tuning = PolicyTuning::default();
        for p in PolicyKind::ALL {
            let plain = p.analyze(&n).unwrap();
            let tuned = p.analyze_with(&n, &tuning).unwrap();
            assert_eq!(plain, tuned, "{p}: tuning pass-through changed results");
        }
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        let n = net();
        let tuning = PolicyTuning::default();
        let mut scratch = PolicyScratch::default();
        for _ in 0..3 {
            for p in PolicyKind::ALL {
                let fresh = p.analyze_with(&n, &tuning).unwrap();
                let warm = p.analyze_with_scratch(&n, &tuning, &mut scratch).unwrap();
                assert_eq!(fresh, warm, "{p}: scratch reuse changed results");
            }
        }
    }

    #[test]
    fn queue_mapping_and_architecture() {
        assert_eq!(PolicyKind::Fcfs.queue_policy(), QueuePolicy::Fcfs);
        assert_eq!(
            PolicyKind::DmPaper.queue_policy(),
            QueuePolicy::DeadlineMonotonic
        );
        assert_eq!(PolicyKind::Edf.queue_policy(), QueuePolicy::Edf);
        assert!(!PolicyKind::Fcfs.is_section4());
        assert!(PolicyKind::Dm.is_section4() && PolicyKind::Edf.is_section4());
    }
}
