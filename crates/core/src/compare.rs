//! Side-by-side comparison of the three dispatching policies — the paper's
//! headline result, mechanised.
//!
//! Runs the FCFS bound (eq. (11)), the DM analysis (eq. (16)) and the EDF
//! analysis (eqs. (17)–(18)) on one network and reports per-stream response
//! times, schedulability counts and dominance relations. The conclusion the
//! paper draws — "the use of priority-based dispatching … allows the support
//! of messages with more tight deadlines" — corresponds to
//! [`PolicyComparison::priority_dominates_fcfs_on_tightest`].

use profirt_base::{AnalysisResult, Time};
use serde::{Deserialize, Serialize};

use crate::config::NetworkConfig;
use crate::dm::DmAnalysis;
use crate::edf::EdfAnalysis;
use crate::fcfs::FcfsAnalysis;
use crate::NetworkAnalysis;

/// Results of all three policies on one network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PolicyComparison {
    /// Eq. (11) result.
    pub fcfs: NetworkAnalysis,
    /// Eq. (16) result.
    pub dm: NetworkAnalysis,
    /// Eqs. (17)–(18) result (`None` if the EDF service-capacity
    /// precondition `Σ Tcycle/Tj < 1` fails).
    pub edf: Option<NetworkAnalysis>,
}

impl PolicyComparison {
    /// Schedulable-stream counts as `(fcfs, dm, edf)`.
    pub fn schedulable_counts(&self) -> (usize, usize, Option<usize>) {
        (
            self.fcfs.schedulable_count(),
            self.dm.schedulable_count(),
            self.edf.as_ref().map(NetworkAnalysis::schedulable_count),
        )
    }

    /// For each master, `true` iff the tightest-deadline stream's bound
    /// under DM is at most its FCFS bound — the priority-inversion removal
    /// the paper promises. (It always holds structurally; exposed for
    /// assertion in experiments.)
    pub fn priority_dominates_fcfs_on_tightest(&self) -> Vec<bool> {
        self.fcfs
            .masters
            .iter()
            .zip(self.dm.masters.iter())
            .map(|(f, d)| {
                // Tightest stream = smallest deadline.
                match f.iter().zip(d.iter()).min_by_key(|(fr, _)| fr.deadline) {
                    Some((fr, dr)) => dr.response_time <= fr.response_time,
                    None => true,
                }
            })
            .collect()
    }

    /// Per-stream response-time triples `(fcfs, dm, edf)` flattened across
    /// masters, for tabulation.
    pub fn rows(&self) -> Vec<ComparisonRow> {
        let mut out = Vec::new();
        for (k, f_rows) in self.fcfs.masters.iter().enumerate() {
            for (i, f) in f_rows.iter().enumerate() {
                out.push(ComparisonRow {
                    master: k,
                    stream: i,
                    deadline: f.deadline,
                    fcfs: f.response_time,
                    dm: self.dm.masters[k][i].response_time,
                    edf: self.edf.as_ref().map(|e| e.masters[k][i].response_time),
                });
            }
        }
        out
    }
}

/// One row of the comparison table.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Master index.
    pub master: usize,
    /// Stream index.
    pub stream: usize,
    /// Relative deadline.
    pub deadline: Time,
    /// FCFS worst-case response time.
    pub fcfs: Time,
    /// DM worst-case response time.
    pub dm: Time,
    /// EDF worst-case response time, if computable.
    pub edf: Option<Time>,
}

/// Runs all three analyses with the given DM/EDF configurations.
pub fn compare_policies(
    net: &NetworkConfig,
    dm: &DmAnalysis,
    edf: &EdfAnalysis,
) -> AnalysisResult<PolicyComparison> {
    let fcfs = FcfsAnalysis { model: dm.model }.run(net)?;
    let dm_result = dm.analyze(net)?;
    let edf_result = match edf.analyze(net) {
        Ok(r) => Some(r),
        Err(profirt_base::AnalysisError::UtilizationAtLeastOne) => None,
        Err(e) => return Err(e),
    };
    Ok(PolicyComparison {
        fcfs,
        dm: dm_result,
        edf: edf_result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MasterConfig;
    use profirt_base::time::t;
    use profirt_base::StreamSet;

    fn net() -> NetworkConfig {
        NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[
                    (100, 3_000, 10_000),
                    (100, 6_000, 12_000),
                    (100, 40_000, 15_000),
                ])
                .unwrap(),
                t(100),
            )],
            t(900),
        )
        .unwrap()
    }

    #[test]
    fn comparison_has_all_policies() {
        let cmp = compare_policies(&net(), &DmAnalysis::paper(), &EdfAnalysis::paper()).unwrap();
        assert!(cmp.edf.is_some());
        let rows = cmp.rows();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.edf.is_some());
            // FCFS is flat nh*Tcycle = 3000 for all streams.
            assert_eq!(r.fcfs, t(3_000));
        }
    }

    #[test]
    fn tightest_stream_dominance() {
        let cmp = compare_policies(&net(), &DmAnalysis::paper(), &EdfAnalysis::paper()).unwrap();
        assert_eq!(cmp.priority_dominates_fcfs_on_tightest(), vec![true]);
    }

    #[test]
    fn schedulable_counts() {
        let cmp = compare_policies(&net(), &DmAnalysis::paper(), &EdfAnalysis::paper()).unwrap();
        let (f, d, e) = cmp.schedulable_counts();
        // FCFS: flat 3000 <= D for all three (3000, 6000, 40000): the
        // tightest is exactly at its deadline.
        assert_eq!(f, 3);
        assert_eq!(d, 3);
        assert_eq!(e, Some(3));
        // Tighten the first deadline: FCFS loses it, DM/EDF keep it.
        let tight = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[
                    (100, 2_500, 10_000),
                    (100, 6_000, 12_000),
                    (100, 40_000, 15_000),
                ])
                .unwrap(),
                t(100),
            )],
            t(900),
        )
        .unwrap();
        let cmp2 = compare_policies(&tight, &DmAnalysis::paper(), &EdfAnalysis::paper()).unwrap();
        let (f2, d2, e2) = cmp2.schedulable_counts();
        assert_eq!(f2, 2);
        assert_eq!(d2, 3);
        assert_eq!(e2, Some(3));
    }

    #[test]
    fn edf_capacity_failure_reported_as_none() {
        let overloaded = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[(100, 1_500, 1_500), (100, 1_500, 1_500)]).unwrap(),
                t(100),
            )],
            t(900),
        )
        .unwrap();
        let cmp =
            compare_policies(&overloaded, &DmAnalysis::paper(), &EdfAnalysis::paper()).unwrap();
        assert!(cmp.edf.is_none());
        let rows = cmp.rows();
        assert!(rows.iter().all(|r| r.edf.is_none()));
    }
}
