//! Deadline-monotonic message response times — the paper's §4.3, eq. (16).
//!
//! With the priority-ordered AP queue (stack queue capped at one request),
//! message scheduling becomes non-preemptive fixed-priority scheduling in
//! which every service slot costs one token cycle: the paper substitutes
//! `C → Tcycle` into the non-preemptive analysis (eqs. (1)–(2)) and adds
//! release jitter:
//!
//! `Ri^k = T*cycle + Σ_{j ∈ hp(i)} ⌈(Ri^k + Jj^k)/Tj^k⌉ · Tcycle`  (eq. (16))
//!
//! where `T*cycle = Tcycle` except for the lowest-priority stream of the
//! master (`T*cycle = 0`), and "all message cycles are equal" (each costs a
//! full `Tcycle` of token rotation).
//!
//! ### Variants
//!
//! * [`DmVariant::Paper`] — eq. (16) verbatim. Like the paper's eq. (1), the
//!   literal recurrence admits a degenerate zero fixpoint when the constant
//!   term vanishes (the lowest-priority stream with zero jitter); we seed
//!   the iteration with the critical-instant workload
//!   `T*cycle + Σ_{hp} Tcycle` to obtain the intended least positive
//!   fixpoint (same repair as in `profirt-sched`'s non-preemptive module).
//! * [`DmVariant::Conservative`] — charges the blocking token cycle (when a
//!   lower-priority request can sit in the single stack slot) **and** the
//!   stream's own service cycle separately:
//!   `Ri = Bi + Tcycle + Σ_{hp} ⌈(Ri + Jj)/Tj⌉·Tcycle`, `Bi = Tcycle` iff
//!   `lp(i) ≠ ∅`. This dominates the paper's bound; the T8 simulation
//!   experiment arbitrates which is the true worst case (EXPERIMENTS.md).

use profirt_base::{AnalysisResult, Time};
use profirt_sched::fixed::PriorityMap;
use profirt_sched::{fixpoint, FixOutcome, FixpointConfig};
use serde::{Deserialize, Serialize};

use crate::config::NetworkConfig;
use crate::tcycle::{tcycle, TcycleModel};
use crate::{NetworkAnalysis, StreamResponse};

/// Which eq. (16) interpretation to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum DmVariant {
    /// Eq. (16) verbatim (`T*cycle = 0` for the lowest-priority stream).
    Paper,
    /// Separate blocking + own-service accounting (sound upper bound).
    #[default]
    Conservative,
}

/// The deadline-monotonic analysis of eq. (16).
#[derive(Clone, Copy, Debug, Default)]
pub struct DmAnalysis {
    /// Formula variant.
    pub variant: DmVariant,
    /// Token-cycle model.
    pub model: TcycleModel,
    /// Fixpoint iteration limits.
    pub fixpoint: FixpointConfig,
}

impl DmAnalysis {
    /// Eq. (16) verbatim with the paper's `Tcycle`.
    pub fn paper() -> DmAnalysis {
        DmAnalysis {
            variant: DmVariant::Paper,
            model: TcycleModel::Paper,
            fixpoint: FixpointConfig::default(),
        }
    }

    /// The conservative variant (default).
    pub fn conservative() -> DmAnalysis {
        DmAnalysis::default()
    }

    /// Runs the analysis for every master and stream.
    ///
    /// Streams are prioritised deadline-monotonically within each master
    /// (ties by index), exactly the §4 inheritance scheme.
    pub fn analyze(&self, net: &NetworkConfig) -> AnalysisResult<NetworkAnalysis> {
        let bound = tcycle(net, self.model);
        let tc = bound.tcycle;
        let mut masters = Vec::with_capacity(net.n_masters());
        for (k, master) in net.masters.iter().enumerate() {
            let pm = PriorityMap::deadline_monotonic_streams(&master.streams);
            let mut rows = Vec::with_capacity(master.nh());
            for (i, s) in master.streams.iter() {
                let hp: Vec<usize> = pm.hp(i).collect();
                let has_lp = pm.lp(i).next().is_some();
                // Constant term: paper merges blocking+service into T*cycle;
                // conservative charges both.
                let constant = match self.variant {
                    DmVariant::Paper => {
                        if has_lp {
                            tc
                        } else {
                            Time::ZERO
                        }
                    }
                    DmVariant::Conservative => {
                        if has_lp {
                            tc + tc
                        } else {
                            tc
                        }
                    }
                };
                // Seed with the critical-instant workload to avoid the
                // degenerate zero fixpoint of the ceiling form.
                let mut seed = constant;
                for _ in &hp {
                    seed = seed.try_add(tc)?;
                }
                let deadline = s.d;
                let outcome = fixpoint("dm-message-rta", seed, deadline, self.fixpoint, |r| {
                    let mut next = constant;
                    for &j in &hp {
                        let sj = master.streams.streams()[j];
                        let n_msgs = (r + sj.j).ceil_div(sj.t);
                        next = next.try_add(tc.try_mul(n_msgs)?)?;
                    }
                    Ok(next)
                })?;
                let (r, schedulable) = match outcome {
                    FixOutcome::Converged(r) => (r, true),
                    FixOutcome::ExceededBound(r) => (r, false),
                };
                rows.push(StreamResponse {
                    master: k,
                    stream: i,
                    response_time: r,
                    deadline,
                    schedulable,
                    queuing_delay: (r - s.ch).max_zero(),
                });
            }
            masters.push(rows);
        }
        Ok(NetworkAnalysis {
            tcycle: bound.tcycle,
            tdel: bound.tdel,
            masters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MasterConfig;
    use crate::fcfs::FcfsAnalysis;
    use profirt_base::time::t;
    use profirt_base::StreamSet;

    /// One master, three streams with distinct deadlines; Tcycle = 1000 via
    /// TTR = 900 and Tdel = 100.
    fn net() -> NetworkConfig {
        NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[
                    (100, 3_000, 10_000),
                    (100, 6_000, 10_000),
                    (100, 40_000, 10_000),
                ])
                .unwrap(),
                t(0),
            )],
            t(900),
        )
        .unwrap()
    }

    #[test]
    fn paper_variant_graded_responses() {
        let an = DmAnalysis::paper().analyze(&net()).unwrap();
        assert_eq!(an.tcycle, t(1_000));
        // Stream 0 (highest): R = Tcycle = 1000.
        assert_eq!(an.masters[0][0].response_time, t(1_000));
        // Stream 1: R = Tcycle + ⌈R/T0⌉Tcycle -> seed 2000:
        //   1000 + ⌈2000/10000⌉*1000 = 2000 ✓.
        assert_eq!(an.masters[0][1].response_time, t(2_000));
        // Stream 2 (lowest): T* = 0: R = Σhp ⌈R/T⌉ Tcycle, seed 2000:
        //   ⌈2000/10000⌉*1000*2 = 2000 ✓.
        assert_eq!(an.masters[0][2].response_time, t(2_000));
        assert!(an.all_schedulable());
    }

    #[test]
    fn conservative_dominates_paper() {
        let p = DmAnalysis::paper().analyze(&net()).unwrap();
        let c = DmAnalysis::conservative().analyze(&net()).unwrap();
        for (a, b) in p.iter().zip(c.iter()) {
            assert!(b.response_time >= a.response_time);
        }
        // Conservative: stream 0: B + own = 2000.
        assert_eq!(c.masters[0][0].response_time, t(2_000));
        // Lowest stream: B=0 (no lp) + own 1000 + interference 2000 = 3000.
        assert_eq!(c.masters[0][2].response_time, t(3_000));
    }

    #[test]
    fn dm_beats_fcfs_for_tight_streams() {
        // The headline claim: the tightest stream gets a much lower bound
        // than FCFS's flat nh * Tcycle.
        let an_dm = DmAnalysis::paper().analyze(&net()).unwrap();
        let an_fcfs = FcfsAnalysis::paper().run(&net()).unwrap();
        let dm_tight = an_dm.masters[0][0].response_time;
        let fcfs_tight = an_fcfs.masters[0][0].response_time;
        assert!(dm_tight < fcfs_tight);
        assert_eq!(fcfs_tight, t(3_000)); // nh=3 × 1000
        assert_eq!(dm_tight, t(1_000));
    }

    #[test]
    fn jitter_inflates_interference() {
        let base = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdtj(&[(100, 5_000, 10_000, 0), (100, 40_000, 10_000, 0)]).unwrap(),
                t(0),
            )],
            t(900),
        )
        .unwrap();
        let jit = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdtj(&[(100, 5_000, 10_000, 9_500), (100, 40_000, 10_000, 0)])
                    .unwrap(),
                t(0),
            )],
            t(900),
        )
        .unwrap();
        let r_base = DmAnalysis::paper().analyze(&base).unwrap();
        let r_jit = DmAnalysis::paper().analyze(&jit).unwrap();
        // Stream 1 sees more interference from stream 0's jitter:
        // base: R = 0 + ⌈R/10000⌉*1000, seed 1000 -> 1000.
        // jit: R = ⌈(R+9500)/10000⌉*1000, seed 1000 -> ⌈10500/10000⌉=2 ->
        //      2000 -> ⌈11500/10000⌉=2 ✓ -> 2000.
        assert_eq!(r_base.masters[0][1].response_time, t(1_000));
        assert_eq!(r_jit.masters[0][1].response_time, t(2_000));
    }

    #[test]
    fn unschedulable_stream_detected() {
        let net = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[(100, 1_500, 900), (100, 1_800, 2_000)]).unwrap(),
                t(0),
            )],
            t(900),
        )
        .unwrap();
        // Tcycle = 1000. Stream 1 (lowest): seed 1000, ⌈1000/900⌉·1000 =
        // 2000 > 1800: unschedulable. Stream 0: R = T* = 1000 <= 1500.
        let an = DmAnalysis::paper().analyze(&net).unwrap();
        assert!(an.masters[0][0].schedulable);
        assert!(!an.masters[0][1].schedulable);
    }

    #[test]
    fn single_stream_master() {
        let net = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[(100, 5_000, 10_000)]).unwrap(),
                t(100),
            )],
            t(900),
        )
        .unwrap();
        // Tdel = 100, Tcycle = 1000. Paper: lowest (and only) stream: T*=0,
        // no hp -> seed 0 -> R = 0?? The seed repair gives seed = 0 and the
        // fixpoint is 0 — degenerate. Verify we do better: constant=0,
        // hp empty => R = 0. This is the verbatim-paper answer; the
        // conservative variant charges the own cycle.
        let p = DmAnalysis::paper().analyze(&net).unwrap();
        let c = DmAnalysis::conservative().analyze(&net).unwrap();
        assert_eq!(p.masters[0][0].response_time, t(0)); // documented artefact
        assert_eq!(c.masters[0][0].response_time, t(1_000));
    }

    #[test]
    fn deadline_ties_break_by_index() {
        let net = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[(100, 5_000, 10_000), (100, 5_000, 10_000)]).unwrap(),
                t(100),
            )],
            t(900),
        )
        .unwrap();
        let an = DmAnalysis::conservative().analyze(&net).unwrap();
        // Index 0 wins the tie: its R (2 Tcycle: blocking+own) is below
        // index 1's (own + interference + no blocking).
        assert!(an.masters[0][0].response_time <= an.masters[0][1].response_time);
    }
}
