//! Setting the `TTR` parameter (paper §3.4, eq. (15)).
//!
//! Substituting `Tcycle = TTR + Tdel` into the schedulability condition
//! `Dhi^k ≥ nh^k · Tcycle` and solving for `TTR`:
//!
//! `0 ≤ TTR ≤ min_{k, i} { Dhi^k / nh^k − Tdel }`             (eq. (15))
//!
//! The *largest* feasible `TTR` is operationally desirable (more room for
//! low-priority traffic and GAP maintenance); [`max_feasible_ttr`] computes
//! it exactly with floor division, and [`TtrSetting`] also reports the
//! binding stream.

use profirt_base::Time;
use serde::{Deserialize, Serialize};

use crate::config::NetworkConfig;
use crate::tcycle::{token_lateness, TcycleModel};

/// Result of the eq. (15) computation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TtrSetting {
    /// The largest feasible `TTR` (ticks). `None` if even `TTR → 0⁺` cannot
    /// satisfy the tightest stream (the right-hand side is non-positive).
    pub max_ttr: Option<Time>,
    /// The effective lateness used: `Tdel` plus the configured ring
    /// overhead (zero in the paper-literal configuration).
    pub tdel: Time,
    /// The `(master, stream)` whose constraint binds.
    pub binding: (usize, usize),
}

/// Computes eq. (15): the largest `TTR` for which the FCFS condition
/// (eq. (12)) holds for every stream, or `None` when infeasible.
///
/// Returns `None` inside [`TtrSetting::max_ttr`] when the bound is `< 1`
/// tick (PROFIBUS requires a positive `TTR`).
pub fn max_feasible_ttr(net: &NetworkConfig, model: TcycleModel) -> TtrSetting {
    let tdel = token_lateness(net, model) + net.ring_overhead();
    let mut best: Option<(Time, (usize, usize))> = None;
    for (k, master) in net.masters.iter().enumerate() {
        let nh = master.nh() as i64;
        if nh == 0 {
            continue;
        }
        for (i, s) in master.streams.iter() {
            // TTR <= D/nh - Tdel - overhead, integer-safe via floor division.
            let limit = Time::new(s.d.floor_div(Time::new(nh))) - tdel;
            match best {
                Some((b, _)) if b <= limit => {}
                _ => best = Some((limit, (k, i))),
            }
        }
    }
    let (limit, binding) = best.unwrap_or((Time::MAX, (0, 0)));
    TtrSetting {
        max_ttr: if limit >= Time::ONE {
            Some(limit)
        } else {
            None
        },
        tdel,
        binding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MasterConfig;
    use crate::fcfs::FcfsAnalysis;
    use profirt_base::time::t;
    use profirt_base::StreamSet;

    fn net() -> NetworkConfig {
        NetworkConfig::new(
            vec![
                MasterConfig::new(
                    StreamSet::from_cdt(&[(300, 30_000, 30_000), (240, 9_000, 60_000)]).unwrap(),
                    t(360),
                ),
                MasterConfig::new(StreamSet::from_cdt(&[(300, 45_000, 45_000)]).unwrap(), t(0)),
            ],
            t(3_000),
        )
        .unwrap()
    }

    #[test]
    fn derived_ttr_makes_set_schedulable() {
        let setting = max_feasible_ttr(&net(), TcycleModel::Paper);
        let ttr = setting.max_ttr.expect("feasible");
        // Tdel = 660. Limits: (0,0): 30000/2-660 = 14340; (0,1): 9000/2-660
        // = 3840; (1,0): 45000-660 = 44340. Binding: (0,1) at 3840.
        assert_eq!(setting.tdel, t(660));
        assert_eq!(ttr, t(3_840));
        assert_eq!(setting.binding, (0, 1));

        let tuned = net().with_ttr(ttr).unwrap();
        assert!(FcfsAnalysis::analyze(&tuned).unwrap().all_schedulable());
    }

    #[test]
    fn one_tick_more_breaks_the_binding_stream() {
        let setting = max_feasible_ttr(&net(), TcycleModel::Paper);
        let ttr = setting.max_ttr.unwrap();
        let over = net().with_ttr(ttr + t(1)).unwrap();
        let an = FcfsAnalysis::analyze(&over).unwrap();
        assert!(!an.all_schedulable());
        let (mk, si) = setting.binding;
        assert!(!an.masters[mk][si].schedulable);
    }

    #[test]
    fn infeasible_when_deadline_shorter_than_lateness() {
        // Deadline so tight that even TTR -> 0 fails: D/nh <= Tdel.
        let net = NetworkConfig::new(
            vec![MasterConfig::new(
                StreamSet::from_cdt(&[(500, 400, 10_000)]).unwrap(),
                t(0),
            )],
            t(1_000),
        )
        .unwrap();
        // Tdel = 500 > D = 400.
        let setting = max_feasible_ttr(&net, TcycleModel::Paper);
        assert_eq!(setting.max_ttr, None);
    }

    #[test]
    fn refined_model_allows_larger_ttr() {
        // With Cl inflating one master's CM, the refined Tdel is smaller,
        // leaving more TTR headroom.
        let net = NetworkConfig::new(
            vec![
                MasterConfig::new(
                    StreamSet::from_cdt(&[(100, 20_000, 20_000)]).unwrap(),
                    t(900),
                ),
                MasterConfig::new(
                    StreamSet::from_cdt(&[(100, 20_000, 20_000)]).unwrap(),
                    t(900),
                ),
            ],
            t(1_000),
        )
        .unwrap();
        let paper = max_feasible_ttr(&net, TcycleModel::Paper);
        let refined = max_feasible_ttr(&net, TcycleModel::Refined);
        // Paper Tdel = 900+900 = 1800; refined = max(900+100) = 1000.
        assert_eq!(paper.tdel, t(1_800));
        assert_eq!(refined.tdel, t(1_000));
        assert!(refined.max_ttr.unwrap() > paper.max_ttr.unwrap());
    }

    #[test]
    fn binding_stream_is_tightest_per_capita_deadline() {
        let setting = max_feasible_ttr(&net(), TcycleModel::Paper);
        assert_eq!(setting.binding, (0, 1));
    }
}
