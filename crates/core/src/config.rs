//! The analysed network configuration.
//!
//! A [`NetworkConfig`] is the exact input of the paper's analysis: for each
//! master `k` in the logical ring, its high-priority message streams
//! `Shi^k` and its longest low-priority message cycle `Cl^k`; plus the
//! ring-wide target token rotation time `TTR`. All times in ticks (bit
//! times when derived from [`profirt_profibus::BusParams`]).

use profirt_base::{AnalysisError, AnalysisResult, Criticality, StreamSet, Time};
use profirt_profibus::{BusParams, MasterStation};
use serde::{Deserialize, Serialize};

/// Analysis-relevant view of one master.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MasterConfig {
    /// High-priority streams of this master.
    pub streams: StreamSet,
    /// Longest low-priority message cycle `Cl^k` (zero if the master sends
    /// no low-priority traffic).
    pub cl: Time,
    /// Per-stream criticality levels, parallel to `streams`. An empty
    /// vector — the default of every constructor — means all-HI, the
    /// backward-compatible reading under which pre-existing configs are
    /// unchanged. When non-empty, the length must equal `streams.len()`.
    #[serde(default)]
    pub criticality: Vec<Criticality>,
}

impl MasterConfig {
    /// Creates a master configuration (all streams HI).
    pub fn new(streams: StreamSet, cl: Time) -> MasterConfig {
        MasterConfig {
            streams,
            cl,
            criticality: Vec::new(),
        }
    }

    /// Derives the configuration from a full station model (all streams HI).
    pub fn from_station(station: &MasterStation) -> MasterConfig {
        MasterConfig {
            streams: station.streams.clone(),
            cl: station.max_low_cycle().unwrap_or(Time::ZERO),
            criticality: Vec::new(),
        }
    }

    /// Returns a copy carrying per-stream criticality levels. Lengths must
    /// match the stream set (or the vector may be empty for all-HI).
    pub fn with_criticality(mut self, criticality: Vec<Criticality>) -> MasterConfig {
        self.criticality = criticality;
        self
    }

    /// The criticality of stream `i`; absent entries read as HI.
    pub fn criticality_of(&self, i: usize) -> Criticality {
        self.criticality.get(i).copied().unwrap_or(Criticality::Hi)
    }

    /// `true` if any stream of this master is below HI criticality.
    pub fn has_sub_hi(&self) -> bool {
        self.criticality.iter().any(|c| c.shed_in_hi_mode())
    }

    /// Number of high-priority streams, the paper's `nh^k`.
    pub fn nh(&self) -> usize {
        self.streams.len()
    }

    /// The longest high-priority cycle `max_i Chi^k` (zero if none).
    pub fn max_high_cycle(&self) -> Time {
        self.streams.max_cycle_time().unwrap_or(Time::ZERO)
    }

    /// The paper's `CM^k = max{max_i Chi^k, Cl^k}` (eq. (13) term).
    pub fn longest_cycle(&self) -> Time {
        self.max_high_cycle().max(self.cl)
    }
}

/// The whole-network analysis input.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Masters in logical-ring order.
    pub masters: Vec<MasterConfig>,
    /// Target token rotation time `TTR`.
    pub ttr: Time,
    /// Per-hop token-pass overhead added to the `Tcycle` bound as
    /// `n_masters · token_pass`.
    ///
    /// **Fidelity note.** The paper's eq. (14) (`Tcycle = TTR + Tdel`)
    /// carries no explicit overhead term (its footnote 7 folds "ring
    /// latency and other protocol overheads" into the illustration only).
    /// Simulation shows the literal bound can be exceeded by up to one
    /// token pass per master in a worst-case rotation (see EXPERIMENTS.md,
    /// T5), so validation experiments set this to the real SD4+TID2 pass
    /// time. The default `0` reproduces the paper verbatim.
    #[serde(default)]
    pub token_pass: Time,
}

impl NetworkConfig {
    /// Creates and validates a network configuration: at least one master,
    /// positive `TTR`, and non-negative `Cl` everywhere. The token-pass
    /// overhead defaults to zero (paper-literal bound).
    pub fn new(masters: Vec<MasterConfig>, ttr: Time) -> AnalysisResult<NetworkConfig> {
        if masters.is_empty() {
            return Err(AnalysisError::EmptySet);
        }
        if !ttr.is_positive() {
            return Err(AnalysisError::Model(
                profirt_base::ModelError::NonPositivePeriod { value: ttr.ticks() },
            ));
        }
        for m in &masters {
            if m.cl.is_negative() {
                return Err(AnalysisError::Model(
                    profirt_base::ModelError::NonPositiveCost {
                        value: m.cl.ticks(),
                    },
                ));
            }
            if !m.criticality.is_empty() && m.criticality.len() != m.streams.len() {
                return Err(AnalysisError::IndexOutOfRange {
                    index: m.criticality.len(),
                    len: m.streams.len(),
                });
            }
        }
        Ok(NetworkConfig {
            masters,
            ttr,
            token_pass: Time::ZERO,
        })
    }

    /// Returns a copy carrying a per-hop token-pass overhead (included in
    /// every `Tcycle`-derived bound).
    pub fn with_token_pass(mut self, token_pass: Time) -> NetworkConfig {
        self.token_pass = token_pass;
        self
    }

    /// The whole-ring overhead `n_masters · token_pass`.
    pub fn ring_overhead(&self) -> Time {
        self.token_pass * self.masters.len() as i64
    }

    /// Builds the configuration from full station models and bus
    /// parameters (taking `TTR` from the bus profile).
    pub fn from_stations(
        params: &BusParams,
        stations: &[MasterStation],
    ) -> AnalysisResult<NetworkConfig> {
        NetworkConfig::new(
            stations.iter().map(MasterConfig::from_station).collect(),
            params.ttr,
        )
    }

    /// Returns a copy with a different `TTR` (used by the eq. (15) sweep);
    /// the token-pass overhead is preserved.
    pub fn with_ttr(&self, ttr: Time) -> AnalysisResult<NetworkConfig> {
        Ok(NetworkConfig::new(self.masters.clone(), ttr)?.with_token_pass(self.token_pass))
    }

    /// Replaces `TTR` in place: exactly [`NetworkConfig::with_ttr`] minus
    /// the master-set copy, with the same validation and `self` untouched
    /// on error. The warm campaign chains re-parameterise one realized
    /// network per `ttr` coordinate; cloning every stream set per
    /// coordinate would dominate the chain walk.
    pub fn set_ttr(&mut self, ttr: Time) -> AnalysisResult<()> {
        if !ttr.is_positive() {
            return Err(AnalysisError::Model(
                profirt_base::ModelError::NonPositivePeriod { value: ttr.ticks() },
            ));
        }
        self.ttr = ttr;
        Ok(())
    }

    /// `true` if any stream anywhere in the ring is below HI criticality —
    /// the condition under which degraded-mode analysis differs from the
    /// nominal one.
    pub fn has_sub_hi(&self) -> bool {
        self.masters.iter().any(MasterConfig::has_sub_hi)
    }

    /// The HI-only projection: every master keeps only its HI-criticality
    /// streams (`cl`, `TTR` and the token-pass overhead are unchanged — the
    /// ring still rotates, and low-priority traffic is not criticality
    /// managed). Returns the projected configuration plus, per master, the
    /// *original* stream index of each kept stream, so degraded-mode bounds
    /// can be matched back to observations on the full workload.
    pub fn hi_projection(&self) -> AnalysisResult<(NetworkConfig, Vec<Vec<usize>>)> {
        let mut masters = Vec::with_capacity(self.masters.len());
        let mut kept = Vec::with_capacity(self.masters.len());
        for m in &self.masters {
            let mut indices = Vec::new();
            let mut streams = Vec::new();
            for (i, s) in m.streams.iter() {
                if m.criticality_of(i) == profirt_base::Criticality::Hi {
                    indices.push(i);
                    streams.push(*s);
                }
            }
            masters.push(MasterConfig::new(StreamSet::new(streams)?, m.cl));
            kept.push(indices);
        }
        Ok((
            NetworkConfig::new(masters, self.ttr)?.with_token_pass(self.token_pass),
            kept,
        ))
    }

    /// Number of masters `n`.
    pub fn n_masters(&self) -> usize {
        self.masters.len()
    }

    /// Total number of high-priority streams across all masters.
    pub fn total_streams(&self) -> usize {
        self.masters.iter().map(MasterConfig::nh).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;
    use profirt_base::StreamSet;
    use profirt_profibus::QueuePolicy;

    fn streams() -> StreamSet {
        StreamSet::from_cdt(&[(300, 30_000, 30_000), (240, 60_000, 60_000)]).unwrap()
    }

    #[test]
    fn master_config_statistics() {
        let m = MasterConfig::new(streams(), t(360));
        assert_eq!(m.nh(), 2);
        assert_eq!(m.max_high_cycle(), t(300));
        assert_eq!(m.longest_cycle(), t(360)); // Cl dominates
        let m2 = MasterConfig::new(streams(), t(0));
        assert_eq!(m2.longest_cycle(), t(300));
    }

    #[test]
    fn network_validation() {
        assert!(matches!(
            NetworkConfig::new(vec![], t(1000)),
            Err(AnalysisError::EmptySet)
        ));
        assert!(NetworkConfig::new(vec![MasterConfig::new(streams(), t(0))], t(0)).is_err());
        let net = NetworkConfig::new(vec![MasterConfig::new(streams(), t(10))], t(1000)).unwrap();
        assert_eq!(net.n_masters(), 1);
        assert_eq!(net.total_streams(), 2);
    }

    #[test]
    fn from_stations_uses_bus_ttr() {
        let params = BusParams::profile_500k();
        let st = MasterStation::priority_queued(
            profirt_base::MasterAddr(3),
            streams(),
            QueuePolicy::DeadlineMonotonic,
        );
        let net = NetworkConfig::from_stations(&params, &[st]).unwrap();
        assert_eq!(net.ttr, params.ttr);
        assert_eq!(net.masters[0].cl, t(0));
    }

    #[test]
    fn with_ttr_replaces() {
        let net = NetworkConfig::new(vec![MasterConfig::new(streams(), t(5))], t(100)).unwrap();
        let net2 = net.with_ttr(t(999)).unwrap();
        assert_eq!(net2.ttr, t(999));
        assert_eq!(net2.masters, net.masters);
    }

    #[test]
    fn criticality_defaults_to_hi_and_validates_length() {
        use profirt_base::Criticality;
        let m = MasterConfig::new(streams(), t(0));
        assert_eq!(m.criticality_of(0), Criticality::Hi);
        assert_eq!(m.criticality_of(99), Criticality::Hi);
        assert!(!m.has_sub_hi());
        let mixed = m
            .clone()
            .with_criticality(vec![Criticality::Lo, Criticality::Hi]);
        assert!(mixed.has_sub_hi());
        assert_eq!(mixed.criticality_of(0), Criticality::Lo);
        // A non-empty vector of the wrong length is rejected at network
        // construction.
        let short = m.with_criticality(vec![Criticality::Lo]);
        assert!(matches!(
            NetworkConfig::new(vec![short], t(1000)),
            Err(AnalysisError::IndexOutOfRange { index: 1, len: 2 })
        ));
    }

    #[test]
    fn hi_projection_keeps_hi_streams_and_ring_shape() {
        use profirt_base::Criticality;
        let m0 = MasterConfig::new(streams(), t(360))
            .with_criticality(vec![Criticality::Lo, Criticality::Hi]);
        let m1 = MasterConfig::new(streams(), t(0)); // implicit all-HI
        let net = NetworkConfig::new(vec![m0, m1], t(3000))
            .unwrap()
            .with_token_pass(t(166));
        assert!(net.has_sub_hi());
        let (hi, kept) = net.hi_projection().unwrap();
        assert_eq!(hi.n_masters(), 2); // the ring shape is preserved
        assert_eq!(hi.masters[0].nh(), 1);
        assert_eq!(hi.masters[1].nh(), 2);
        assert_eq!(kept, vec![vec![1], vec![0, 1]]);
        assert_eq!(hi.masters[0].cl, t(360));
        assert_eq!(hi.token_pass, t(166));
        // All-HI networks project to themselves (modulo the criticality
        // annotation, which the projection drops).
        let plain = NetworkConfig::new(vec![MasterConfig::new(streams(), t(0))], t(3000)).unwrap();
        let (p, k) = plain.hi_projection().unwrap();
        assert_eq!(p, plain);
        assert_eq!(k, vec![vec![0, 1]]);
    }

    #[test]
    fn set_ttr_matches_with_ttr() {
        let net = NetworkConfig::new(vec![MasterConfig::new(streams(), t(5))], t(100))
            .unwrap()
            .with_token_pass(t(7));
        let copied = net.with_ttr(t(999)).unwrap();
        let mut patched = net.clone();
        patched.set_ttr(t(999)).unwrap();
        assert_eq!(patched, copied);
        // Same validation, and `self` is untouched on error.
        assert!(patched.set_ttr(t(0)).is_err());
        assert_eq!(patched.ttr, t(999));
    }
}
