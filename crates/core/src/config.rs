//! The analysed network configuration.
//!
//! A [`NetworkConfig`] is the exact input of the paper's analysis: for each
//! master `k` in the logical ring, its high-priority message streams
//! `Shi^k` and its longest low-priority message cycle `Cl^k`; plus the
//! ring-wide target token rotation time `TTR`. All times in ticks (bit
//! times when derived from [`profirt_profibus::BusParams`]).

use profirt_base::{AnalysisError, AnalysisResult, StreamSet, Time};
use profirt_profibus::{BusParams, MasterStation};
use serde::{Deserialize, Serialize};

/// Analysis-relevant view of one master.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MasterConfig {
    /// High-priority streams of this master.
    pub streams: StreamSet,
    /// Longest low-priority message cycle `Cl^k` (zero if the master sends
    /// no low-priority traffic).
    pub cl: Time,
}

impl MasterConfig {
    /// Creates a master configuration.
    pub fn new(streams: StreamSet, cl: Time) -> MasterConfig {
        MasterConfig { streams, cl }
    }

    /// Derives the configuration from a full station model.
    pub fn from_station(station: &MasterStation) -> MasterConfig {
        MasterConfig {
            streams: station.streams.clone(),
            cl: station.max_low_cycle().unwrap_or(Time::ZERO),
        }
    }

    /// Number of high-priority streams, the paper's `nh^k`.
    pub fn nh(&self) -> usize {
        self.streams.len()
    }

    /// The longest high-priority cycle `max_i Chi^k` (zero if none).
    pub fn max_high_cycle(&self) -> Time {
        self.streams.max_cycle_time().unwrap_or(Time::ZERO)
    }

    /// The paper's `CM^k = max{max_i Chi^k, Cl^k}` (eq. (13) term).
    pub fn longest_cycle(&self) -> Time {
        self.max_high_cycle().max(self.cl)
    }
}

/// The whole-network analysis input.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Masters in logical-ring order.
    pub masters: Vec<MasterConfig>,
    /// Target token rotation time `TTR`.
    pub ttr: Time,
    /// Per-hop token-pass overhead added to the `Tcycle` bound as
    /// `n_masters · token_pass`.
    ///
    /// **Fidelity note.** The paper's eq. (14) (`Tcycle = TTR + Tdel`)
    /// carries no explicit overhead term (its footnote 7 folds "ring
    /// latency and other protocol overheads" into the illustration only).
    /// Simulation shows the literal bound can be exceeded by up to one
    /// token pass per master in a worst-case rotation (see EXPERIMENTS.md,
    /// T5), so validation experiments set this to the real SD4+TID2 pass
    /// time. The default `0` reproduces the paper verbatim.
    #[serde(default)]
    pub token_pass: Time,
}

impl NetworkConfig {
    /// Creates and validates a network configuration: at least one master,
    /// positive `TTR`, and non-negative `Cl` everywhere. The token-pass
    /// overhead defaults to zero (paper-literal bound).
    pub fn new(masters: Vec<MasterConfig>, ttr: Time) -> AnalysisResult<NetworkConfig> {
        if masters.is_empty() {
            return Err(AnalysisError::EmptySet);
        }
        if !ttr.is_positive() {
            return Err(AnalysisError::Model(
                profirt_base::ModelError::NonPositivePeriod { value: ttr.ticks() },
            ));
        }
        for m in &masters {
            if m.cl.is_negative() {
                return Err(AnalysisError::Model(
                    profirt_base::ModelError::NonPositiveCost {
                        value: m.cl.ticks(),
                    },
                ));
            }
        }
        Ok(NetworkConfig {
            masters,
            ttr,
            token_pass: Time::ZERO,
        })
    }

    /// Returns a copy carrying a per-hop token-pass overhead (included in
    /// every `Tcycle`-derived bound).
    pub fn with_token_pass(mut self, token_pass: Time) -> NetworkConfig {
        self.token_pass = token_pass;
        self
    }

    /// The whole-ring overhead `n_masters · token_pass`.
    pub fn ring_overhead(&self) -> Time {
        self.token_pass * self.masters.len() as i64
    }

    /// Builds the configuration from full station models and bus
    /// parameters (taking `TTR` from the bus profile).
    pub fn from_stations(
        params: &BusParams,
        stations: &[MasterStation],
    ) -> AnalysisResult<NetworkConfig> {
        NetworkConfig::new(
            stations.iter().map(MasterConfig::from_station).collect(),
            params.ttr,
        )
    }

    /// Returns a copy with a different `TTR` (used by the eq. (15) sweep);
    /// the token-pass overhead is preserved.
    pub fn with_ttr(&self, ttr: Time) -> AnalysisResult<NetworkConfig> {
        Ok(NetworkConfig::new(self.masters.clone(), ttr)?.with_token_pass(self.token_pass))
    }

    /// Replaces `TTR` in place: exactly [`NetworkConfig::with_ttr`] minus
    /// the master-set copy, with the same validation and `self` untouched
    /// on error. The warm campaign chains re-parameterise one realized
    /// network per `ttr` coordinate; cloning every stream set per
    /// coordinate would dominate the chain walk.
    pub fn set_ttr(&mut self, ttr: Time) -> AnalysisResult<()> {
        if !ttr.is_positive() {
            return Err(AnalysisError::Model(
                profirt_base::ModelError::NonPositivePeriod { value: ttr.ticks() },
            ));
        }
        self.ttr = ttr;
        Ok(())
    }

    /// Number of masters `n`.
    pub fn n_masters(&self) -> usize {
        self.masters.len()
    }

    /// Total number of high-priority streams across all masters.
    pub fn total_streams(&self) -> usize {
        self.masters.iter().map(MasterConfig::nh).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;
    use profirt_base::StreamSet;
    use profirt_profibus::QueuePolicy;

    fn streams() -> StreamSet {
        StreamSet::from_cdt(&[(300, 30_000, 30_000), (240, 60_000, 60_000)]).unwrap()
    }

    #[test]
    fn master_config_statistics() {
        let m = MasterConfig::new(streams(), t(360));
        assert_eq!(m.nh(), 2);
        assert_eq!(m.max_high_cycle(), t(300));
        assert_eq!(m.longest_cycle(), t(360)); // Cl dominates
        let m2 = MasterConfig::new(streams(), t(0));
        assert_eq!(m2.longest_cycle(), t(300));
    }

    #[test]
    fn network_validation() {
        assert!(matches!(
            NetworkConfig::new(vec![], t(1000)),
            Err(AnalysisError::EmptySet)
        ));
        assert!(NetworkConfig::new(vec![MasterConfig::new(streams(), t(0))], t(0)).is_err());
        let net = NetworkConfig::new(vec![MasterConfig::new(streams(), t(10))], t(1000)).unwrap();
        assert_eq!(net.n_masters(), 1);
        assert_eq!(net.total_streams(), 2);
    }

    #[test]
    fn from_stations_uses_bus_ttr() {
        let params = BusParams::profile_500k();
        let st = MasterStation::priority_queued(
            profirt_base::MasterAddr(3),
            streams(),
            QueuePolicy::DeadlineMonotonic,
        );
        let net = NetworkConfig::from_stations(&params, &[st]).unwrap();
        assert_eq!(net.ttr, params.ttr);
        assert_eq!(net.masters[0].cl, t(0));
    }

    #[test]
    fn with_ttr_replaces() {
        let net = NetworkConfig::new(vec![MasterConfig::new(streams(), t(5))], t(100)).unwrap();
        let net2 = net.with_ttr(t(999)).unwrap();
        assert_eq!(net2.ttr, t(999));
        assert_eq!(net2.masters, net.masters);
    }

    #[test]
    fn set_ttr_matches_with_ttr() {
        let net = NetworkConfig::new(vec![MasterConfig::new(streams(), t(5))], t(100))
            .unwrap()
            .with_token_pass(t(7));
        let copied = net.with_ttr(t(999)).unwrap();
        let mut patched = net.clone();
        patched.set_ttr(t(999)).unwrap();
        assert_eq!(patched, copied);
        // Same validation, and `self` is untouched on error.
        assert!(patched.set_ttr(t(0)).is_err());
        assert_eq!(patched.ttr, t(999));
    }
}
