//! # profirt-core — worst-case message response times on PROFIBUS
//!
//! The primary contribution of Tovar & Vasques (1999), §3.2–§4.3:
//!
//! * [`config`] — the analysed network: per-master high-priority stream sets
//!   (`Shi^k = (Chi, Dhi, Thi, Ji)`), longest low-priority cycles `Cl^k`, and
//!   the target token rotation time `TTR`.
//! * [`tcycle`] — the token-cycle upper bound: worst-case token lateness
//!   `Tdel = Σ_k CM^k` (eq. (13)) and `Tcycle = TTR + Tdel` (eq. (14)),
//!   plus the refined per-overrunner bound suggested by the paper's
//!   reference \[14\].
//! * [`fcfs`] — the stock-PROFIBUS bound: `Ri^k = nh^k · Tcycle` (eq. (11))
//!   and the schedulability condition `Dhi^k ≥ Ri^k` (eq. (12)).
//! * [`ttr`] — setting the `TTR` parameter from deadlines (eq. (15)).
//! * [`dm`] — the §4 priority-queue architecture with deadline-monotonic
//!   dispatching: the jitter-aware fixed-priority iteration of eq. (16).
//! * [`edf`] — the same architecture with EDF dispatching: the jitter-aware
//!   non-preemptive busy-period analysis of eqs. (17)–(18).
//! * [`jitter`] — release-jitter inheritance from the generating tasks
//!   (§4.1), computed with `profirt-sched`'s response-time analyses.
//! * [`end_to_end`] — the `E = g + Q + C + d` decomposition of §4.2.
//! * [`compare`] — FCFS vs DM vs EDF side-by-side on one network (the
//!   paper's headline comparison).
//! * [`policy`] — [`PolicyKind`], the uniform name → (analysis, simulator
//!   queue discipline) dispatch used by the CLI and the campaign engine.
//! * [`mode`] — [`ModeAnalysis`], the mixed-criticality two-verdict pair
//!   (LO-mode bounds for stable phases, HI-mode bounds through any churn).
//!
//! ## Fidelity switches
//!
//! Equations (11) and (16) embed modelling choices that are debatable as
//! worst-case bounds (see DESIGN.md §3 and the module docs): analyses that
//! implement a formula *verbatim* expose a `paper()` constructor, and
//! sound-by-construction alternatives expose `conservative()`. The
//! simulator crate arbitrates empirically; EXPERIMENTS.md records the
//! verdicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod config;
pub mod dm;
pub mod edf;
pub mod end_to_end;
pub mod fcfs;
pub mod jitter;
pub mod low_priority;
pub mod mode;
pub mod policy;
pub mod tcycle;
pub mod ttr;

pub use compare::{compare_policies, PolicyComparison};
pub use config::{MasterConfig, NetworkConfig};
pub use dm::{DmAnalysis, DmVariant};
pub use edf::EdfAnalysis;
pub use end_to_end::{EndToEndAnalysis, EndToEndBreakdown, TaskSegments};
pub use fcfs::FcfsAnalysis;
pub use jitter::{inherit_jitter, JitterModel};
pub use low_priority::{low_priority_outlook, LowPriorityOutlook};
pub use mode::ModeAnalysis;
pub use policy::{PolicyKind, PolicyScratch, PolicyTuning};
pub use tcycle::{TcycleBound, TcycleModel};
pub use ttr::{max_feasible_ttr, TtrSetting};

use profirt_base::Time;
use serde::{Deserialize, Serialize};

/// Per-stream outcome of a message response-time analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StreamResponse {
    /// Master index within the network configuration.
    pub master: usize,
    /// Stream index within the master.
    pub stream: usize,
    /// Worst-case response time `R` (release → completed message cycle).
    pub response_time: Time,
    /// The stream's relative deadline `Dh`.
    pub deadline: Time,
    /// `response_time <= deadline`.
    pub schedulable: bool,
    /// Worst-case queuing delay `Q = R − Ch` (eq. (11) decomposition),
    /// clamped at zero.
    pub queuing_delay: Time,
}

/// Whole-network analysis result.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NetworkAnalysis {
    /// The token-cycle bound used.
    pub tcycle: Time,
    /// The token-lateness component `Tdel`.
    pub tdel: Time,
    /// Per-master, per-stream responses (indexes mirror the configuration).
    pub masters: Vec<Vec<StreamResponse>>,
}

impl NetworkAnalysis {
    /// `true` iff every stream of every master meets its deadline.
    pub fn all_schedulable(&self) -> bool {
        self.masters.iter().flatten().all(|r| r.schedulable)
    }

    /// Iterates over all stream responses.
    pub fn iter(&self) -> impl Iterator<Item = &StreamResponse> {
        self.masters.iter().flatten()
    }

    /// The largest response time in the network.
    pub fn max_response(&self) -> Option<Time> {
        self.iter().map(|r| r.response_time).max()
    }

    /// Number of schedulable streams.
    pub fn schedulable_count(&self) -> usize {
        self.iter().filter(|r| r.schedulable).count()
    }

    /// Total number of streams.
    pub fn stream_count(&self) -> usize {
        self.iter().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profirt_base::time::t;

    fn resp(rt: i64, d: i64) -> StreamResponse {
        StreamResponse {
            master: 0,
            stream: 0,
            response_time: t(rt),
            deadline: t(d),
            schedulable: rt <= d,
            queuing_delay: t(rt),
        }
    }

    #[test]
    fn aggregation_helpers() {
        let an = NetworkAnalysis {
            tcycle: t(100),
            tdel: t(40),
            masters: vec![vec![resp(50, 60), resp(70, 60)], vec![resp(10, 99)]],
        };
        assert!(!an.all_schedulable());
        assert_eq!(an.schedulable_count(), 2);
        assert_eq!(an.stream_count(), 3);
        assert_eq!(an.max_response(), Some(t(70)));
    }

    #[test]
    fn empty_network_is_schedulable() {
        let an = NetworkAnalysis {
            tcycle: t(1),
            tdel: t(0),
            masters: vec![],
        };
        assert!(an.all_schedulable());
        assert_eq!(an.max_response(), None);
    }
}
