//! End-to-end campaign test: a 2×2×2 scenario matrix runs to a temp
//! directory and produces the full, parseable artifact set.

use profirt_base::json::{self, Value};
use profirt_experiments::campaign::{plan, run_campaign, CampaignSpec, ScenarioKind};

fn spec() -> CampaignSpec {
    CampaignSpec::new(
        "e2e-2x2x2",
        "campaign end-to-end test matrix",
        ScenarioKind::Network,
    )
    .replications(2)
    .sim_horizon(300_000)
    .axis_i64("masters", &[2, 3])
    .axis_f64("tightness", &[0.9, 0.5])
    .axis_str("policy", &["fcfs", "dm"])
    .axis_i64("streams", &[2])
}

#[test]
fn two_by_two_by_two_campaign_produces_parseable_artifacts() {
    let root = std::env::temp_dir().join("profirt-campaign-e2e");
    let _ = std::fs::remove_dir_all(&root);

    let spec = spec();
    assert_eq!(spec.unit_count(), 8);
    let outcome = run_campaign(&spec, &root).unwrap();
    let dir = root.join("e2e-2x2x2");
    assert_eq!(outcome.out_dir, dir);

    // Every artifact exists.
    for name in [
        "campaign.json",
        "units.csv",
        "summary.json",
        "EXPERIMENTS.md",
    ] {
        assert!(dir.join(name).exists(), "missing artifact {name}");
    }

    // units.csv: header + one row per unit, stable IDs in plan order, with
    // the instrumentation columns trailing.
    let csv = std::fs::read_to_string(dir.join("units.csv")).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + 8);
    assert!(lines[0].starts_with("unit,masters,tightness,policy,streams,sched_ratio"));
    assert!(lines[0].ends_with(",fixpoint_iters,warm_hit,unit_micros"));
    assert!(lines[1].starts_with("u0000__masters_2__tightness_0p9__policy_fcfs__streams_2,"));
    assert!(lines[8].starts_with("u0007__masters_3__tightness_0p5__policy_dm__streams_2,"));

    // summary.json parses back through the same JSON layer and matches.
    let summary = json::parse(&std::fs::read_to_string(dir.join("summary.json")).unwrap()).unwrap();
    assert_eq!(
        summary.get("name").and_then(Value::as_str),
        Some("e2e-2x2x2")
    );
    assert_eq!(summary.get("unit_count").and_then(Value::as_i64), Some(8));
    let units = summary.get("units").and_then(Value::as_array).unwrap();
    assert_eq!(units.len(), 8);
    // Aggregate throughput numbers are recorded and positive.
    let timing = summary.get("timing").unwrap();
    assert!(timing.get("total_wall_secs").unwrap().as_f64().unwrap() > 0.0);
    assert!(timing.get("units_per_sec").unwrap().as_f64().unwrap() > 0.0);
    for unit in units {
        assert!(
            unit.get("unit_micros").unwrap().as_f64().unwrap() >= 0.0,
            "per-unit timing missing"
        );
        assert!(
            unit.get("warm_hit").unwrap().as_f64().is_some(),
            "per-unit warm-hit flag missing"
        );
        assert!(
            matches!(unit.get("error"), Some(Value::Null)),
            "unexpected unit error"
        );
        let metrics = unit.get("metrics").and_then(Value::as_object).unwrap();
        // Simulation ran: the validation columns are populated numbers.
        let worst = metrics.get("sim_worst_ratio").unwrap();
        assert!(
            worst.as_f64().is_some(),
            "sim_worst_ratio missing: {worst:?}"
        );
        // The analysis-vs-simulation contract: observed <= analytical.
        assert!(worst.as_f64().unwrap() <= 1.0, "bound violated: {worst:?}");
        assert_eq!(metrics.get("sim_violations").unwrap().as_f64(), Some(0.0));
    }

    // campaign.json round-trips to the executed spec.
    let echoed =
        CampaignSpec::from_json_str(&std::fs::read_to_string(dir.join("campaign.json")).unwrap())
            .unwrap();
    assert_eq!(echoed, spec);

    // EXPERIMENTS.md carries the matrix and the results table.
    let md = std::fs::read_to_string(dir.join("EXPERIMENTS.md")).unwrap();
    assert!(md.contains("# Campaign `e2e-2x2x2`"));
    assert!(md.contains("| `policy` | `fcfs`, `dm` |"));
    assert!(md.contains("u0000__masters_2__tightness_0p9__policy_fcfs__streams_2"));
    assert!(md.contains("## Validation contract"));

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn rerunning_the_same_spec_is_deterministic() {
    let root_a = std::env::temp_dir().join("profirt-campaign-e2e-a");
    let root_b = std::env::temp_dir().join("profirt-campaign-e2e-b");
    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
    let mut spec = spec();
    spec.sim_horizon = 0; // analysis-only keeps this fast
    spec.workers = 3;
    let a = run_campaign(&spec, &root_a).unwrap();
    spec.workers = 1; // worker count must not affect results
    let b = run_campaign(&spec, &root_b).unwrap();
    let csv_a = std::fs::read_to_string(a.out_dir.join("units.csv")).unwrap();
    let csv_b = std::fs::read_to_string(b.out_dir.join("units.csv")).unwrap();
    // Every column except the trailing instrumentation (`fixpoint_iters`,
    // `warm_hit`, `unit_micros`) must be byte-identical across worker
    // counts.
    let strip_instrumentation = |csv: &str| -> Vec<String> {
        csv.lines()
            .map(|line| {
                let mut rest = line;
                for _ in 0..3 {
                    rest = rest.rsplit_once(',').expect("instrumentation column").0;
                }
                rest.to_string()
            })
            .collect()
    };
    assert_eq!(strip_instrumentation(&csv_a), strip_instrumentation(&csv_b));
    std::fs::remove_dir_all(&root_a).ok();
    std::fs::remove_dir_all(&root_b).ok();
}

#[test]
fn planner_surface_from_integration_level() {
    // The documented planner contract, exercised through the public API.
    let p = plan(&spec()).unwrap();
    assert_eq!(p.units.len(), 8);
    let dup = spec().axis_i64("masters", &[9]);
    assert!(plan(&dup).is_err());
}
