//! Integration tests for the experiment harness itself: reports emit
//! correctly, CSVs round-trip, and the parallel runner composes with real
//! experiment workloads.

use profirt_experiments::csvout::write_table;
use profirt_experiments::runner::par_map_seeds;
use profirt_experiments::{ExpConfig, ExpReport, Table};

#[test]
fn report_exit_semantics() {
    let mut ok = ExpReport::new("X1");
    ok.check("always true", true, "detail".into());
    assert!(ok.all_pass());

    let mut bad = ExpReport::new("X2");
    bad.check("true", true, String::new());
    bad.check("false", false, String::new());
    assert!(!bad.all_pass());
}

#[test]
fn table_csv_round_trip_preserves_cells() {
    let dir = std::env::temp_dir().join("profirt-harness-test");
    let mut t = Table::new("round trip", &["k", "v"]);
    for i in 0..10 {
        t.row(vec![format!("key{i}"), format!("value,{i}")]);
    }
    let path = write_table(&dir, "rt", &t).unwrap();
    let content = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    assert_eq!(lines.len(), 11); // header + 10 rows
    assert_eq!(lines[0], "k,v");
    assert!(lines[1].contains("\"value,0\"")); // comma escaped
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn runner_scales_with_worker_counts() {
    for workers in [1usize, 2, 8, 64] {
        let out = par_map_seeds(32, workers, |seed| seed * seed);
        assert_eq!(out, (0..32).map(|s| s * s).collect::<Vec<_>>());
    }
}

#[test]
fn quick_config_runs_a_real_experiment_end_to_end() {
    // The cheapest experiment (F3 is pure analysis) as an end-to-end smoke
    // test of the harness plumbing.
    let report = profirt_experiments::exps::f3::run(&ExpConfig::quick());
    assert!(report.all_pass());
    assert_eq!(report.tables.len(), 2);
    assert!(report.tables.iter().all(|t| !t.is_empty()));
}

#[test]
fn experiment_reports_are_deterministic() {
    let cfg = ExpConfig {
        replications: 6,
        ..ExpConfig::quick()
    };
    let a = profirt_experiments::exps::f2::run(&cfg);
    let b = profirt_experiments::exps::f2::run(&cfg);
    // Same tables cell-for-cell.
    assert_eq!(a.tables.len(), b.tables.len());
    for (ta, tb) in a.tables.iter().zip(b.tables.iter()) {
        assert_eq!(ta.rows(), tb.rows());
    }
}
