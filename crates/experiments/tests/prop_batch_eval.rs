//! Differential property tests for the batched, warm-started campaign
//! path: [`EvalMode::Warm`] must produce a `units.csv` that is
//! byte-identical to the cold per-unit reference — modulo the three
//! trailing instrumentation columns (`fixpoint_iters`, `warm_hit`,
//! `unit_micros`) — across random campaign seeds and worker counts
//! {1, 2, 8}. Run under several `PROPTEST_SEED`s in CI.

use proptest::prelude::*;

use profirt_experiments::campaign::{run_campaign_with, CampaignSpec, EvalMode, ScenarioKind};

/// Reads `units.csv` and strips the three trailing instrumentation
/// columns from every line, leaving the deterministic payload.
fn stripped_csv(dir: &std::path::Path) -> Vec<String> {
    let csv = std::fs::read_to_string(dir.join("units.csv")).unwrap();
    csv.lines()
        .map(|line| {
            let mut rest = line;
            for _ in 0..3 {
                rest = rest.rsplit_once(',').expect("instrumentation column").0;
            }
            rest.to_string()
        })
        .collect()
}

fn run_stripped(spec: &CampaignSpec, tag: &str, mode: EvalMode, workers: usize) -> Vec<String> {
    let mut spec = spec.clone();
    spec.workers = workers;
    let root = std::env::temp_dir().join(format!(
        "profirt-prop-batch-{tag}-{}-{}-{workers}",
        spec.name, spec.seed
    ));
    let _ = std::fs::remove_dir_all(&root);
    let outcome = run_campaign_with(&spec, &root, mode).unwrap();
    let rows = stripped_csv(&outcome.out_dir);
    std::fs::remove_dir_all(&root).ok();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn warm_cpu_campaign_csv_identical_to_cold(
        seed in 0u64..1_000_000,
        n_uts in 1usize..=3,
    ) {
        // Policy is the fastest axis: every chain analyses one workload
        // under all twelve §2 tests through the batched entry points.
        let uts = &[0.5_f64, 0.8, 0.97][..n_uts];
        let mut spec = CampaignSpec::new("prop-cpu", "", ScenarioKind::Cpu)
            .replications(2)
            .axis_i64("tasks", &[3, 6])
            .axis_f64("utilization", uts)
            .axis_str(
                "policy",
                &[
                    "rm-ll", "rm-hb", "rm-rta", "dm-rta", "np-dm", "edf-util",
                    "edf-demand", "edf-demand-paper", "np-edf-zs", "np-edf-george",
                    "edf-rta", "np-edf-rta",
                ],
            );
        spec.seed = seed;
        let cold = run_stripped(&spec, "cold", EvalMode::Cold, 1);
        for workers in [1usize, 2, 8] {
            let warm = run_stripped(&spec, "warm", EvalMode::Warm, workers);
            prop_assert_eq!(&cold, &warm, "workers {}", workers);
        }
    }

    #[test]
    fn warm_network_campaign_csv_identical_to_cold(
        seed in 0u64..1_000_000,
        tight_idx in 0usize..3,
    ) {
        // `ttr` is the fastest axis: the warm path generates each network
        // once per replication and hoists the ttr-independent eq. (15)
        // search across the whole chain.
        let tightness = [0.9, 0.6, 0.4][tight_idx];
        let mut spec = CampaignSpec::new("prop-net", "", ScenarioKind::Network)
            .replications(2)
            .axis_i64("masters", &[2, 3])
            .axis_f64("tightness", &[tightness])
            .axis_str("policy", &["fcfs", "dm", "edf"])
            .axis_i64("ttr", &[1_500, 3_000, 6_000]);
        spec.seed = seed;
        let cold = run_stripped(&spec, "cold", EvalMode::Cold, 1);
        for workers in [1usize, 2, 8] {
            let warm = run_stripped(&spec, "warm", EvalMode::Warm, workers);
            prop_assert_eq!(&cold, &warm, "workers {}", workers);
        }
    }
}
