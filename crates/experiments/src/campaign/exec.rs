//! The campaign executor: shards work units over the seed-parallel worker
//! pool and writes the artifact set.
//!
//! The sharding grain depends on the [`EvalMode`]: the default warm mode
//! hands each worker a contiguous *warm chain* (units linked along the
//! fastest-varying axis, see `plan::CampaignPlan::warm_chains`), so a
//! worker generates each workload once and walks the chain with warm
//! analysis state; cold mode shards independent units, one evaluation
//! context each. Either way a unit's replications run serially inside one
//! worker, per-unit aggregation needs no cross-thread state, and the row
//! order is plan order regardless of scheduling. A unit that panics
//! (degenerate generation parameters, analysis invariant violation) is
//! caught by the panic-safe runner and surfaced as a
//! [`CampaignError::UnitPanics`] naming the failing unit IDs instead of
//! aborting the whole campaign process.

use std::path::{Path, PathBuf};
use std::time::Instant;

use profirt_base::json::{self, Value};

use super::eval::{eval_chain, eval_unit, metric_names, UnitEval};
use super::plan::{plan, CampaignPlan};
use super::report;
use super::spec::CampaignSpec;
use super::CampaignError;
use crate::csvout;
use crate::runner::try_par_map_seeds;
use crate::table::Table;

/// A completed campaign: the expanded plan, all metric rows (plan order),
/// and where the artifacts were written.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// The executed spec (post any scaling).
    pub spec: CampaignSpec,
    /// The expanded matrix.
    pub plan: CampaignPlan,
    /// Metric column names (kind-dependent).
    pub metrics: Vec<&'static str>,
    /// Per-unit metric rows, aligned with `plan.units` and `metrics`.
    pub rows: Vec<Vec<f64>>,
    /// Per-unit evaluation wall time in microseconds, aligned with
    /// `plan.units` (the `unit_micros` column of `units.csv`). Warm-chain
    /// units report the chain's elapsed time divided by its length.
    pub unit_micros: Vec<f64>,
    /// Per-unit fixpoint iteration counts (`NaN` for uninstrumented
    /// evaluators, e.g. the network analyses), aligned with `plan.units`.
    pub fixpoint_iters: Vec<f64>,
    /// Per-unit warm-hit flags (`1.0` when the unit reused its warm
    /// predecessor's generated workload), aligned with `plan.units`.
    pub warm_hits: Vec<f64>,
    /// Per-unit workload-generation failure notes (`None` for healthy
    /// units), aligned with `plan.units`.
    pub unit_errors: Vec<Option<String>>,
    /// Total campaign wall time in seconds (planning + evaluation across
    /// all workers, as observed by the caller).
    pub total_wall_secs: f64,
    /// `out_root/<campaign name>`.
    pub out_dir: PathBuf,
    /// Every artifact written, in creation order.
    pub artifacts: Vec<PathBuf>,
}

/// Formats one metric cell (`-` for NaN, integers without decimals).
pub fn fmt_metric(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.4}")
    }
}

impl CampaignOutcome {
    /// The per-unit results as an aligned text table (also the CSV shape).
    /// The trailing `fixpoint_iters`, `warm_hit` and `unit_micros` columns
    /// are instrumentation, not metrics: they vary with the evaluation
    /// mode (and, for timing, run to run) even when every metric is
    /// deterministic — comparisons strip all three.
    pub fn units_table(&self) -> Table {
        let mut headers: Vec<&str> = vec!["unit"];
        for axis in &self.spec.axes {
            headers.push(&axis.name);
        }
        headers.extend(self.metrics.iter().copied());
        headers.push("fixpoint_iters");
        headers.push("warm_hit");
        headers.push("unit_micros");
        let mut t = Table::new("campaign units", &headers);
        for (i, (unit, row)) in self.plan.units.iter().zip(&self.rows).enumerate() {
            let mut cells = vec![unit.id.clone()];
            cells.extend(unit.point.iter().map(|(_, v)| v.to_string()));
            cells.extend(row.iter().map(|&x| fmt_metric(x)));
            cells.push(fmt_metric(self.fixpoint_iters[i].round()));
            cells.push(fmt_metric(self.warm_hits[i]));
            cells.push(fmt_metric(self.unit_micros[i].round()));
            t.row(cells);
        }
        t
    }

    /// Fraction of units that reused a warm predecessor's workload
    /// (0 in cold mode and for chain heads).
    pub fn warm_hit_rate(&self) -> f64 {
        if self.warm_hits.is_empty() {
            0.0
        } else {
            self.warm_hits.iter().sum::<f64>() / self.warm_hits.len() as f64
        }
    }

    /// Total fixpoint iterations over the instrumented units (`NaN`
    /// entries from uninstrumented evaluators are skipped).
    pub fn total_fixpoint_iters(&self) -> f64 {
        self.fixpoint_iters.iter().filter(|x| !x.is_nan()).sum()
    }

    /// Aggregate evaluation throughput in units per second, derived from
    /// the total wall time (0 when no time was observed).
    pub fn units_per_sec(&self) -> f64 {
        if self.total_wall_secs > 0.0 {
            self.plan.units.len() as f64 / self.total_wall_secs
        } else {
            0.0
        }
    }

    /// The `summary.json` document.
    pub fn summary_json(&self) -> Value {
        report::summary_json(self)
    }

    /// Units that broke the `observed ≤ analytical` validation contract:
    /// simulated campaigns only, sound analyses only (the paper-literal
    /// `dm-paper` variant is *expected* to be optimistic and is exempt —
    /// its violations are a recorded finding, not a failure).
    ///
    /// The HI-mode contract (`hi_sim_violations`) is stricter: the
    /// HI-projection bounds must hold through *any* churn plan, with **no**
    /// policy exemption — a violated HI bound is always a failure.
    pub fn contract_failures(&self) -> Vec<String> {
        let col = |name: &str| self.metrics.iter().position(|m| *m == name);
        let mut failures = Vec::new();
        if let Some(vcol) = col("sim_violations") {
            failures.extend(
                self.plan
                    .units
                    .iter()
                    .zip(&self.rows)
                    .filter(|(unit, row)| {
                        let v = row[vcol];
                        !v.is_nan() && v > 0.0 && unit.get_str("policy", "fcfs") != "dm-paper"
                    })
                    .map(|(unit, row)| format!("{}: {} bound violation(s)", unit.id, row[vcol])),
            );
        }
        if let Some(hcol) = col("hi_sim_violations") {
            failures.extend(
                self.plan
                    .units
                    .iter()
                    .zip(&self.rows)
                    .filter(|(_, row)| {
                        let v = row[hcol];
                        !v.is_nan() && v > 0.0
                    })
                    .map(|(unit, row)| {
                        format!("{}: {} HI-mode bound violation(s)", unit.id, row[hcol])
                    }),
            );
        }
        failures
    }
}

/// How [`run_campaign_with`] evaluates the matrix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalMode {
    /// Warm chains (the default production path): each worker walks a
    /// contiguous last-axis chain, generating every workload once and
    /// reusing warm analysis state across the chain's units.
    Warm,
    /// Independent units with fresh state each — the differential
    /// reference path the warm mode is pinned against.
    Cold,
}

/// Expands, validates and executes a campaign in warm-chain mode, writing
/// the artifact set under `out_root/<campaign name>/`:
///
/// * `campaign.json` — the executed spec, echoed back.
/// * `units.csv` — one row per work unit: ID, axis coordinates, metrics.
/// * `summary.json` — machine-readable outcome (spec + per-unit rows).
/// * `EXPERIMENTS.md` — the generated human-readable report.
pub fn run_campaign(
    spec: &CampaignSpec,
    out_root: &Path,
) -> Result<CampaignOutcome, CampaignError> {
    run_campaign_with(spec, out_root, EvalMode::Warm)
}

/// [`run_campaign`] with an explicit [`EvalMode`]. Both modes produce
/// identical metric rows (pinned by `tests/prop_batch_eval.rs`); only the
/// instrumentation columns and the wall time differ.
pub fn run_campaign_with(
    spec: &CampaignSpec,
    out_root: &Path,
    mode: EvalMode,
) -> Result<CampaignOutcome, CampaignError> {
    let started = Instant::now();
    let plan = plan(spec)?;
    let workers = if spec.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        spec.workers
    };

    let units = &plan.units;
    let evals: Vec<(UnitEval, f64)> = match mode {
        EvalMode::Cold => try_par_map_seeds(units.len() as u64, workers, |i| {
            let unit_start = Instant::now();
            let eval = eval_unit(spec, &units[i as usize]);
            (eval, unit_start.elapsed().as_secs_f64() * 1e6)
        })
        .map_err(|panics| CampaignError::UnitPanics {
            units: panics
                .failures
                .iter()
                .map(|(i, msg)| (units[*i as usize].id.clone(), msg.clone()))
                .collect(),
        })?,
        EvalMode::Warm => {
            let chains = plan.warm_chains(spec);
            let per_chain = try_par_map_seeds(chains.len() as u64, workers, |ci| {
                let range = chains[ci as usize].clone();
                let chain_start = Instant::now();
                let evals = eval_chain(spec, &units[range.clone()]);
                let micros = chain_start.elapsed().as_secs_f64() * 1e6 / range.len().max(1) as f64;
                evals
                    .into_iter()
                    .map(|e| (e, micros))
                    .collect::<Vec<(UnitEval, f64)>>()
            })
            .map_err(|panics| CampaignError::UnitPanics {
                units: panics
                    .failures
                    .iter()
                    .map(|(ci, msg)| (units[chains[*ci as usize].start].id.clone(), msg.clone()))
                    .collect(),
            })?;
            per_chain.into_iter().flatten().collect()
        }
    };
    let total_wall_secs = started.elapsed().as_secs_f64();

    let mut rows = Vec::with_capacity(evals.len());
    let mut unit_micros = Vec::with_capacity(evals.len());
    let mut fixpoint_iters = Vec::with_capacity(evals.len());
    let mut warm_hits = Vec::with_capacity(evals.len());
    let mut unit_errors = Vec::with_capacity(evals.len());
    for (e, micros) in evals {
        rows.push(e.row);
        unit_micros.push(micros);
        fixpoint_iters.push(e.fixpoint_iters);
        warm_hits.push(e.warm_hit);
        unit_errors.push(e.error);
    }

    let mut outcome = CampaignOutcome {
        spec: spec.clone(),
        plan,
        metrics: metric_names(spec.kind).to_vec(),
        rows,
        unit_micros,
        fixpoint_iters,
        warm_hits,
        unit_errors,
        total_wall_secs,
        out_dir: out_root.join(&spec.name),
        artifacts: Vec::new(),
    };
    write_artifacts(&mut outcome)?;
    Ok(outcome)
}

fn write_artifacts(outcome: &mut CampaignOutcome) -> Result<(), CampaignError> {
    let dir = outcome.out_dir.clone();
    std::fs::create_dir_all(&dir)
        .map_err(|e| CampaignError::Io(format!("cannot create {}: {e}", dir.display())))?;
    let io = |path: &Path, e: std::io::Error| {
        CampaignError::Io(format!("cannot write {}: {e}", path.display()))
    };

    let spec_path = dir.join("campaign.json");
    std::fs::write(&spec_path, outcome.spec.to_json().pretty() + "\n")
        .map_err(|e| io(&spec_path, e))?;
    outcome.artifacts.push(spec_path);

    let csv_path = csvout::write_table(&dir, "units", &outcome.units_table())
        .map_err(|e| io(&dir.join("units.csv"), e))?;
    outcome.artifacts.push(csv_path);

    let summary_path = dir.join("summary.json");
    std::fs::write(&summary_path, outcome.summary_json().pretty() + "\n")
        .map_err(|e| io(&summary_path, e))?;
    outcome.artifacts.push(summary_path);

    let md_path = dir.join("EXPERIMENTS.md");
    std::fs::write(&md_path, report::experiments_md(outcome)).map_err(|e| io(&md_path, e))?;
    outcome.artifacts.push(md_path);
    Ok(())
}

/// Prints a finished campaign to stdout: the unit table, the validation
/// verdict, and the artifact locations. Returns a process exit code —
/// nonzero when a sound analysis broke the `observed ≤ analytical`
/// contract, so scripts gating on the experiment binaries keep their
/// failure semantics.
pub fn print_outcome(outcome: &CampaignOutcome) -> i32 {
    println!(
        "campaign {} ({}): {} unit(s) x {} replication(s), kind {}",
        outcome.spec.name,
        outcome.spec.description,
        outcome.plan.units.len(),
        outcome.spec.replications,
        outcome.spec.kind.name()
    );
    println!();
    println!("{}", outcome.units_table());
    println!(
        "timing: {} unit(s) in {:.3}s ({:.1} units/s, warm hit rate {:.2}, {} fixpoint iter(s))",
        outcome.plan.units.len(),
        outcome.total_wall_secs,
        outcome.units_per_sec(),
        outcome.warm_hit_rate(),
        fmt_metric(outcome.total_fixpoint_iters().round())
    );
    let failures = outcome.contract_failures();
    if outcome.spec.sim_horizon > 0 {
        if failures.is_empty() {
            println!("CONTRACT [PASS] observed <= analytical for every sound-policy unit");
        } else {
            for f in &failures {
                println!("CONTRACT [FAIL] {f}");
            }
        }
    }
    for artifact in &outcome.artifacts {
        println!("[artifact] {}", artifact.display());
    }
    i32::from(!failures.is_empty())
}

/// Parses `V` from `json::Value` paths — helper for tests and consumers
/// reading `summary.json` back.
pub fn load_summary(path: &Path) -> Result<Value, CampaignError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CampaignError::Io(format!("cannot read {}: {e}", path.display())))?;
    json::parse(&text).map_err(|e| CampaignError::BadSpec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::spec::ScenarioKind;

    #[test]
    fn metric_formatting() {
        assert_eq!(fmt_metric(f64::NAN), "-");
        assert_eq!(fmt_metric(3.0), "3");
        assert_eq!(fmt_metric(0.5), "0.5000");
    }

    #[test]
    fn contract_failures_flag_sound_policies_only() {
        // Build a synthetic simulated outcome: fcfs with violations fails,
        // dm-paper with violations is exempt, analysis-only reports none.
        let spec = CampaignSpec::new("contract", "", ScenarioKind::Network)
            .replications(1)
            .sim_horizon(1_000)
            .axis_str("policy", &["fcfs", "dm-paper"]);
        let plan = crate::campaign::plan(&spec).unwrap();
        let metrics = crate::campaign::eval::metric_names(ScenarioKind::Network).to_vec();
        let vcol = metrics.iter().position(|m| *m == "sim_violations").unwrap();
        let mut row = vec![0.0; metrics.len()];
        row[vcol] = 3.0;
        let outcome = CampaignOutcome {
            spec,
            plan,
            metrics,
            rows: vec![row.clone(), row],
            unit_micros: vec![1.0, 1.0],
            fixpoint_iters: vec![f64::NAN, f64::NAN],
            warm_hits: vec![0.0, 1.0],
            unit_errors: vec![None, None],
            total_wall_secs: 0.001,
            out_dir: std::path::PathBuf::from("unused"),
            artifacts: Vec::new(),
        };
        assert_eq!(outcome.warm_hit_rate(), 0.5);
        assert_eq!(outcome.total_fixpoint_iters(), 0.0);
        let failures = outcome.contract_failures();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("policy_fcfs"), "{failures:?}");
        assert_eq!(print_outcome(&outcome), 1);

        let mut clean = outcome.clone();
        clean.rows = vec![vec![0.0; clean.metrics.len()]; 2];
        assert!(clean.contract_failures().is_empty());
        assert_eq!(print_outcome(&clean), 0);
    }

    #[test]
    fn campaign_runs_and_writes_artifacts() {
        let spec = CampaignSpec::new("exec-smoke", "executor smoke", ScenarioKind::Cpu)
            .replications(2)
            .axis_f64("utilization", &[0.4, 0.8])
            .axis_str("policy", &["rm-ll"]);
        let root = std::env::temp_dir().join("profirt-exec-smoke");
        let _ = std::fs::remove_dir_all(&root);
        let outcome = run_campaign(&spec, &root).unwrap();
        assert_eq!(outcome.rows.len(), 2);
        assert_eq!(outcome.artifacts.len(), 4);
        for artifact in &outcome.artifacts {
            assert!(artifact.exists(), "{}", artifact.display());
        }
        let summary = load_summary(&outcome.out_dir.join("summary.json")).unwrap();
        assert_eq!(
            summary.get("name").and_then(Value::as_str),
            Some("exec-smoke")
        );
        let timing = summary.get("timing").unwrap();
        assert!(timing
            .get("warm_hit_rate")
            .and_then(Value::as_f64)
            .is_some());
        // Two units, one axis value on the fastest axis -> every unit is a
        // chain head: no warm hits, but the fields are present.
        assert_eq!(outcome.warm_hits.len(), 2);
        assert!(outcome.unit_errors.iter().all(Option::is_none));

        // Cold mode produces identical metric rows.
        let cold_root = std::env::temp_dir().join("profirt-exec-smoke-cold");
        let _ = std::fs::remove_dir_all(&cold_root);
        let spec_cold = outcome.spec.clone();
        let cold = run_campaign_with(&spec_cold, &cold_root, EvalMode::Cold).unwrap();
        for (a, b) in cold.rows.iter().zip(&outcome.rows) {
            for (x, y) in a.iter().zip(b) {
                assert!((x.is_nan() && y.is_nan()) || x == y, "{a:?} vs {b:?}");
            }
        }
        std::fs::remove_dir_all(&cold_root).ok();
        std::fs::remove_dir_all(&root).ok();
    }
}
