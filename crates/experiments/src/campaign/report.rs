//! Artifact generation: the machine-readable `summary.json` and the
//! auto-generated `EXPERIMENTS.md` report of a campaign run.

use profirt_base::json::{self, Value};

use super::exec::{fmt_metric, CampaignOutcome};

/// Builds the `summary.json` document for a finished campaign.
pub fn summary_json(outcome: &CampaignOutcome) -> Value {
    let units = outcome
        .plan
        .units
        .iter()
        .enumerate()
        .zip(outcome.rows.iter().zip(&outcome.unit_micros))
        .map(|((i, unit), (row, &micros))| {
            let axes = Value::Object(
                unit.point
                    .iter()
                    .map(|(name, v)| {
                        (
                            name.clone(),
                            match v {
                                super::spec::AxisValue::Int(n) => Value::Int(*n),
                                super::spec::AxisValue::Float(f) => Value::Float(*f),
                                super::spec::AxisValue::Str(s) => Value::Str(s.clone()),
                            },
                        )
                    })
                    .collect(),
            );
            let metrics = Value::Object(
                outcome
                    .metrics
                    .iter()
                    .zip(row)
                    .map(|(name, &x)| {
                        let v = if x.is_nan() {
                            Value::Null
                        } else {
                            Value::Float(x)
                        };
                        (name.to_string(), v)
                    })
                    .collect(),
            );
            let iters = outcome.fixpoint_iters[i];
            json::object([
                ("id", Value::Str(unit.id.clone())),
                ("axes", axes),
                ("metrics", metrics),
                (
                    "fixpoint_iters",
                    if iters.is_nan() {
                        Value::Null
                    } else {
                        Value::Float(iters)
                    },
                ),
                ("warm_hit", Value::Float(outcome.warm_hits[i])),
                (
                    "error",
                    match &outcome.unit_errors[i] {
                        Some(e) => Value::Str(e.clone()),
                        None => Value::Null,
                    },
                ),
                ("unit_micros", Value::Float(micros)),
            ])
        })
        .collect();
    json::object([
        ("name", Value::Str(outcome.spec.name.clone())),
        ("description", Value::Str(outcome.spec.description.clone())),
        ("kind", Value::Str(outcome.spec.kind.name().to_string())),
        ("replications", Value::Int(outcome.spec.replications as i64)),
        ("seed", Value::Int(outcome.spec.seed as i64)),
        ("sim_horizon", Value::Int(outcome.spec.sim_horizon)),
        ("unit_count", Value::Int(outcome.plan.units.len() as i64)),
        (
            "metric_names",
            Value::Array(
                outcome
                    .metrics
                    .iter()
                    .map(|m| Value::Str(m.to_string()))
                    .collect(),
            ),
        ),
        (
            "timing",
            json::object([
                ("total_wall_secs", Value::Float(outcome.total_wall_secs)),
                ("units_per_sec", Value::Float(outcome.units_per_sec())),
                ("warm_hit_rate", Value::Float(outcome.warm_hit_rate())),
                (
                    "fixpoint_iters",
                    Value::Float(outcome.total_fixpoint_iters()),
                ),
            ]),
        ),
        ("units", Value::Array(units)),
    ])
}

/// Renders the human-readable `EXPERIMENTS.md` report.
pub fn experiments_md(outcome: &CampaignOutcome) -> String {
    let spec = &outcome.spec;
    let mut md = String::new();
    md.push_str(&format!("# Campaign `{}`\n\n", spec.name));
    if !spec.description.is_empty() {
        md.push_str(&format!("{}\n\n", spec.description));
    }
    md.push_str(&format!(
        "Scenario kind **{}** · {} work unit(s) · {} replication(s)/unit · base seed `{:#x}` · {}\n\n",
        spec.kind.name(),
        outcome.plan.units.len(),
        spec.replications,
        spec.seed,
        if spec.sim_horizon > 0 {
            format!("simulation horizon {} ticks", spec.sim_horizon)
        } else {
            "analysis only (no simulation)".to_string()
        }
    ));

    md.push_str("## Matrix\n\n| axis | values |\n|---|---|\n");
    for axis in &spec.axes {
        let values: Vec<String> = axis.values.iter().map(|v| format!("`{v}`")).collect();
        md.push_str(&format!("| `{}` | {} |\n", axis.name, values.join(", ")));
    }
    md.push('\n');

    md.push_str("## Results\n\n");
    // Header: unit, axes, metrics.
    let mut headers: Vec<String> = vec!["unit".into()];
    headers.extend(spec.axes.iter().map(|a| a.name.clone()));
    headers.extend(outcome.metrics.iter().map(|m| m.to_string()));
    md.push_str(&format!("| {} |\n", headers.join(" | ")));
    md.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
    for (unit, row) in outcome.plan.units.iter().zip(&outcome.rows) {
        let mut cells: Vec<String> = vec![format!("`{}`", unit.id)];
        cells.extend(unit.point.iter().map(|(_, v)| v.to_string()));
        cells.extend(row.iter().map(|&x| fmt_metric(x)));
        md.push_str(&format!("| {} |\n", cells.join(" | ")));
    }
    md.push('\n');

    if spec.sim_horizon > 0 {
        md.push_str(
            "## Validation contract\n\n\
             Simulation columns are checked against the analytical bounds: \
             `sim_worst_ratio` is the largest observed/bound response-time \
             ratio over schedulable streams and must stay ≤ 1, and \
             `sim_violations` counts streams whose observed maximum exceeded \
             the bound (must be 0 for the sound analyses; the paper-literal \
             variants are *expected* to violate occasionally — that optimism \
             is the finding, see ARCHITECTURE.md).\n\n",
        );
    }

    md.push_str("## Artifacts\n\n");
    md.push_str(
        "* `campaign.json` — the executed spec (re-runnable via `profirt campaign run`).\n\
         * `units.csv` — one row per work unit (this table, machine-readable).\n\
         * `summary.json` — spec + per-unit rows as one JSON document.\n",
    );
    md.push_str("\n*Generated by `profirt-experiments::campaign`.*\n");
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::exec::run_campaign;
    use crate::campaign::spec::{CampaignSpec, ScenarioKind};

    #[test]
    fn report_contains_matrix_results_and_artifacts() {
        let spec = CampaignSpec::new("report-test", "report smoke", ScenarioKind::Cpu)
            .replications(2)
            .axis_f64("utilization", &[0.5])
            .axis_str("policy", &["rm-ll", "rm-rta"]);
        let root = std::env::temp_dir().join("profirt-report-test");
        let _ = std::fs::remove_dir_all(&root);
        let outcome = run_campaign(&spec, &root).unwrap();
        let md = experiments_md(&outcome);
        assert!(md.contains("# Campaign `report-test`"));
        assert!(md.contains("| `policy` | `rm-ll`, `rm-rta` |"));
        assert!(md.contains("accept_ratio"));
        assert!(md.contains("`units.csv`"));

        let summary = summary_json(&outcome);
        assert_eq!(summary.get("unit_count").and_then(Value::as_i64), Some(2));
        let units = summary.get("units").and_then(Value::as_array).unwrap();
        assert_eq!(units.len(), 2);
        assert!(units[0]
            .get("metrics")
            .unwrap()
            .get("accept_ratio")
            .is_some());
        std::fs::remove_dir_all(&root).ok();
    }
}
