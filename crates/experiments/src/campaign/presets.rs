//! The T1–T8 / F1–F6 experiments as campaign presets.
//!
//! Each legacy experiment's sweep is restated as a declarative
//! [`CampaignSpec`]: the same axes, the same workload envelope (through
//! [`profirt_workload::NetGenParams::standard`] /
//! [`profirt_workload::TaskGenParams::standard`]), run by the one campaign
//! executor. The `src/bin` experiment binaries are shims over
//! [`crate::campaign::run_preset_main`]; the bespoke shape-check narratives
//! remain available through `exps::*::run` and the `all_experiments`
//! binary.

use super::spec::{CampaignSpec, ScenarioKind};

/// The deadline-tightness sweep shared by F1 and the legacy module.
const TIGHTNESS: [f64; 8] = [1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.2, 0.15];

/// F1 — schedulability-ratio curves vs deadline tightness per policy.
pub fn f1() -> CampaignSpec {
    CampaignSpec::new(
        "f1",
        "acceptance ratio vs deadline tightness (FCFS/DM/EDF)",
        ScenarioKind::Network,
    )
    .replications(200)
    .axis_f64("tightness", &TIGHTNESS)
    .axis_str("policy", &["fcfs", "dm", "edf"])
    .axis_i64("streams", &[4])
    .axis_i64("masters", &[3])
}

/// F2 — WCRT profile across stream-set size per policy (the graded-vs-flat
/// picture, as mean max response).
pub fn f2() -> CampaignSpec {
    CampaignSpec::new(
        "f2",
        "WCRT profile on an 8-stream master (FCFS flat, DM/EDF graded)",
        ScenarioKind::Network,
    )
    .replications(100)
    .axis_i64("streams", &[8])
    .axis_f64("tightness", &[0.4])
    .axis_i64("masters", &[2])
    .axis_str("policy", &["fcfs", "dm", "edf"])
}

/// F3 — token-lateness (`Tdel`) growth with the master count.
pub fn f3() -> CampaignSpec {
    CampaignSpec::new(
        "f3",
        "Tdel/Tcycle growth vs number of masters (eq. 13/14)",
        ScenarioKind::Network,
    )
    .replications(100)
    .axis_i64("masters", &[2, 4, 6, 8, 12, 16])
    .axis_i64("streams", &[2])
    .axis_f64("tightness", &[1.0])
    .axis_str("policy", &["fcfs"])
}

/// F4 — the eq. (15) feasibility region: `TTR` headroom vs tightness.
pub fn f4() -> CampaignSpec {
    CampaignSpec::new(
        "f4",
        "max feasible TTR vs deadline tightness (eq. 15 region)",
        ScenarioKind::Network,
    )
    .replications(200)
    .axis_f64("tightness", &[1.0, 0.8, 0.6, 0.4, 0.3, 0.2, 0.1])
    .axis_i64("streams", &[4])
    .axis_i64("masters", &[3])
    .axis_str("policy", &["fcfs"])
}

/// F5 — jitter-sensitive priority policies across the tightness sweep
/// (the §4.1 analyses carry the jitter terms).
pub fn f5() -> CampaignSpec {
    CampaignSpec::new(
        "f5",
        "DM/EDF response bounds across tightness (§4.1 jitter-aware analyses)",
        ScenarioKind::Network,
    )
    .replications(100)
    .axis_f64("tightness", &[0.8, 0.6, 0.4])
    .axis_str("policy", &["dm", "edf"])
    .axis_i64("streams", &[3])
    .axis_i64("masters", &[1])
}

/// F6 — bound tightness under simulation (pessimism distributions).
pub fn f6() -> CampaignSpec {
    CampaignSpec::new(
        "f6",
        "bound pessimism vs simulation per policy",
        ScenarioKind::Network,
    )
    .replications(60)
    .sim_horizon(6_000_000)
    .axis_str("policy", &["fcfs", "dm", "edf"])
    .axis_f64("tightness", &[0.8])
    .axis_i64("streams", &[3])
    .axis_i64("masters", &[3])
}

/// T1 — fixed-priority acceptance: utilisation tests vs RTA over
/// (task count × utilisation).
pub fn t1() -> CampaignSpec {
    CampaignSpec::new(
        "t1",
        "preemptive RM acceptance: LL vs hyperbolic vs RTA (§2.1)",
        ScenarioKind::Cpu,
    )
    .replications(200)
    .axis_i64("tasks", &[4, 8, 16])
    .axis_f64("utilization", &[0.5, 0.7, 0.8, 0.9])
    .axis_str("policy", &["rm-ll", "rm-hb", "rm-rta"])
}

/// T2 — preemptive EDF feasibility: utilisation vs demand tests, plus the
/// Standard-vs-PaperCeiling formula ablation (fidelity note B-A3).
pub fn t2() -> CampaignSpec {
    CampaignSpec::new(
        "t2",
        "EDF demand-test acceptance and the paper-ceiling ablation (§2.2 eq. 3)",
        ScenarioKind::Cpu,
    )
    .replications(200)
    .axis_i64("tasks", &[6])
    .axis_f64("utilization", &[0.6, 0.75, 0.9])
    .axis_f64("deadline_frac", &[1.0, 0.6, 0.3])
    .axis_str("policy", &["edf-util", "edf-demand", "edf-demand-paper"])
}

/// T3 — non-preemptive EDF feasibility: eq. (4) pessimism vs eq. (5).
pub fn t3() -> CampaignSpec {
    CampaignSpec::new(
        "t3",
        "np-EDF feasibility: Zheng-Shin eq. 4 vs George eq. 5",
        ScenarioKind::Cpu,
    )
    .replications(200)
    .axis_i64("tasks", &[4, 8])
    .axis_f64("utilization", &[0.4, 0.6, 0.8])
    .axis_f64("deadline_frac", &[0.5])
    .axis_str("period_spread", &["wide"])
    .axis_str("policy", &["np-edf-zs", "np-edf-george"])
}

/// T4 — EDF worst-case response times, preemptive vs non-preemptive.
pub fn t4() -> CampaignSpec {
    CampaignSpec::new(
        "t4",
        "EDF WCRT bounds (Spuri / George, eqs. 6-10)",
        ScenarioKind::Cpu,
    )
    .replications(64)
    .axis_i64("tasks", &[4])
    .axis_f64("utilization", &[0.55, 0.7, 0.85])
    .axis_str("policy", &["edf-rta", "np-edf-rta"])
}

/// T5 — the §3.3 token-cycle bound vs observed `TRR` over network size.
pub fn t5() -> CampaignSpec {
    CampaignSpec::new(
        "t5",
        "Tcycle bound vs observed TRR over network size (eq. 13/14)",
        ScenarioKind::Network,
    )
    .replications(40)
    .sim_horizon(6_000_000)
    .axis_i64("masters", &[2, 4, 8])
    .axis_i64("streams", &[3])
    .axis_f64("tightness", &[0.9])
    .axis_str("policy", &["fcfs"])
}

/// T6 — FCFS schedulability and the eq. (15) `TTR` derivation over
/// stream-set size.
pub fn t6() -> CampaignSpec {
    CampaignSpec::new(
        "t6",
        "FCFS TTR setting (eq. 15) over stream-set size, with simulation",
        ScenarioKind::Network,
    )
    .replications(60)
    .sim_horizon(6_000_000)
    .axis_i64("streams", &[2, 4, 8])
    .axis_f64("tightness", &[0.9])
    .axis_i64("masters", &[3])
    .axis_str("policy", &["fcfs"])
}

/// T7 — the headline per-policy comparison on one network class.
pub fn t7() -> CampaignSpec {
    CampaignSpec::new(
        "t7",
        "headline FCFS vs DM vs EDF comparison (§4.3)",
        ScenarioKind::Network,
    )
    .replications(200)
    .axis_str("policy", &["fcfs", "dm", "dm-paper", "edf"])
    .axis_f64("tightness", &[0.45])
    .axis_i64("streams", &[4])
    .axis_i64("masters", &[2])
}

/// T8 — analysis-vs-simulation validation of every policy (the
/// `observed ≤ analytical` contract, including the paper-literal DM
/// variant whose occasional violations are the finding).
pub fn t8() -> CampaignSpec {
    CampaignSpec::new(
        "t8",
        "observed/bound validation per policy (§4 architecture)",
        ScenarioKind::Network,
    )
    .replications(80)
    .sim_horizon(6_000_000)
    .axis_str("policy", &["fcfs", "dm", "dm-paper", "edf"])
    .axis_f64("tightness", &[0.8])
    .axis_i64("streams", &[3])
    .axis_i64("masters", &[3])
}

/// CH — live-ring dynamics: membership churn and GAP polling stress the
/// token service beyond the paper's static-ring assumption. The
/// `observed ≤ analytical` contract is checked on stable phases only
/// (full ring, two calm rotations before a release); the `ring_events` /
/// `min_ring_size` / `max_ring_size` columns quantify the disturbance.
pub fn churn() -> CampaignSpec {
    CampaignSpec::new(
        "churn",
        "ring membership churn and GAP polling vs the stable-phase contract",
        ScenarioKind::Network,
    )
    .replications(24)
    .sim_horizon(3_000_000)
    .axis_str("churn", &["none", "light", "heavy"])
    .axis_i64("gap_factor", &[3, 10])
    .axis_str("policy", &["fcfs", "dm"])
    .axis_f64("tightness", &[0.6])
    .axis_i64("streams", &[3])
    .axis_i64("masters", &[3])
}

/// MC — mixed-criticality overload modes under ring churn: HI bounds must
/// hold through *any* disturbance (`hi_sim_violations == 0`, no policy
/// exemption) while the full-workload bounds are promised in stable LO
/// phases only. The `mode_switches` / `time_to_matchup_p99` /
/// `lo_shed_ratio` columns quantify the degradation-and-recovery cycle.
pub fn mc_churn() -> CampaignSpec {
    CampaignSpec::new(
        "mc-churn",
        "mixed-criticality overload modes with match-up recovery under ring churn",
        ScenarioKind::Network,
    )
    .replications(24)
    .sim_horizon(3_000_000)
    .axis_str("criticality", &["all-hi", "mixed", "mixed3"])
    .axis_str("churn", &["none", "light", "heavy"])
    .axis_i64("gap_factor", &[3])
    .axis_str("policy", &["fcfs", "dm"])
    .axis_f64("tightness", &[0.6])
    .axis_i64("streams", &[3])
    .axis_i64("masters", &[3])
}

/// Every preset, in the paper's presentation order (the churn and
/// mixed-criticality studies, not part of the paper, come last).
pub fn all() -> Vec<CampaignSpec> {
    vec![
        t1(),
        t2(),
        t3(),
        t4(),
        t5(),
        t6(),
        t7(),
        t8(),
        f1(),
        f2(),
        f3(),
        f4(),
        f5(),
        f6(),
        churn(),
        mc_churn(),
    ]
}

/// Looks up a preset by name (`"f1"` … `"t8"`, case-insensitive).
pub fn preset(id: &str) -> Option<CampaignSpec> {
    let id = id.to_ascii_lowercase();
    all().into_iter().find(|spec| spec.name == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::plan::plan;
    use crate::ExpConfig;

    #[test]
    fn all_sixteen_presets_validate_and_plan() {
        let specs = all();
        assert_eq!(specs.len(), 16);
        for spec in &specs {
            let p = plan(spec).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(p.units.len(), spec.unit_count(), "{}", spec.name);
            assert!(!spec.description.is_empty(), "{}", spec.name);
        }
        // Names are unique and resolvable.
        for spec in &specs {
            assert_eq!(preset(&spec.name).unwrap(), *spec);
        }
        assert!(preset("nope").is_none());
    }

    #[test]
    fn presets_scale_down_for_quick_runs() {
        let quick = t8().scaled(&ExpConfig::quick());
        assert!(quick.replications <= ExpConfig::quick().replications);
        assert!(quick.sim_horizon <= ExpConfig::quick().sim_horizon);
        // Analysis-only presets stay analysis-only.
        assert_eq!(f1().scaled(&ExpConfig::quick()).sim_horizon, 0);
    }

    #[test]
    fn churn_preset_contract_holds_and_is_worker_independent() {
        let mut spec = churn().scaled(&ExpConfig::quick());
        spec.replications = 2;
        spec.sim_horizon = 500_000;
        spec.name = "churn-preset-smoke".into();
        spec.workers = 1;
        let root = std::env::temp_dir().join("profirt-churn-smoke");
        let _ = std::fs::remove_dir_all(&root);
        let one = run_preset_like(&spec, &root.join("w1"));
        // The stable-phase contract holds for the sound policies.
        assert!(
            one.contract_failures().is_empty(),
            "{:?}",
            one.contract_failures()
        );
        // Churn really happened and was surfaced in the ring columns.
        let names = crate::campaign::eval::metric_names(spec.kind);
        let events_col = names.iter().position(|m| *m == "ring_events").unwrap();
        let min_col = names.iter().position(|m| *m == "min_ring_size").unwrap();
        assert!(one.rows.iter().any(|r| r[events_col] > 0.0));
        assert!(one.rows.iter().any(|r| r[min_col] < 3.0));
        // Same spec, different worker count: identical rows (the unit,
        // not the thread, owns the RNG stream).
        let mut wide = spec.clone();
        wide.workers = 3;
        let three = run_preset_like(&wide, &root.join("w3"));
        for (a, b) in one.rows.iter().zip(&three.rows) {
            for (x, y) in a.iter().zip(b) {
                assert!((x.is_nan() && y.is_nan()) || x == y, "{a:?} vs {b:?}");
            }
        }
        // The written artifact must be byte-identical too, modulo the
        // one wall-clock column (`unit_micros`): steal order and worker
        // count may vary freely, but nothing else thread-dependent may
        // leak into units.csv.
        let strip_wall_clock = |path: std::path::PathBuf| {
            let text = std::fs::read_to_string(path).unwrap();
            let header = text.lines().next().unwrap();
            let drop_col = header
                .split(',')
                .position(|c| c == "unit_micros")
                .expect("units.csv has a unit_micros column");
            text.lines()
                .map(|line| {
                    line.split(',')
                        .enumerate()
                        .filter(|&(i, _)| i != drop_col)
                        .map(|(_, c)| c)
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        let csv_one = strip_wall_clock(root.join("w1").join(&spec.name).join("units.csv"));
        let csv_three = strip_wall_clock(root.join("w3").join(&spec.name).join("units.csv"));
        assert_eq!(csv_one, csv_three, "units.csv differs across worker counts");
        std::fs::remove_dir_all(&root).ok();
    }

    fn run_preset_like(
        spec: &CampaignSpec,
        root: &std::path::Path,
    ) -> crate::campaign::CampaignOutcome {
        crate::campaign::run_campaign(spec, root).unwrap()
    }

    #[test]
    fn mc_churn_preset_hi_contract_holds_and_is_worker_independent() {
        let mut spec = mc_churn().scaled(&ExpConfig::quick());
        spec.replications = 2;
        spec.sim_horizon = 600_000;
        spec.name = "mc-churn-preset-smoke".into();
        spec.workers = 1;
        let root = std::env::temp_dir().join("profirt-mc-churn-smoke");
        let _ = std::fs::remove_dir_all(&root);
        let one = run_preset_like(&spec, &root.join("w1"));
        // Both contracts hold: LO bounds in stable phases, HI-projection
        // bounds through every churn plan (no exemption).
        assert!(
            one.contract_failures().is_empty(),
            "{:?}",
            one.contract_failures()
        );
        let names = crate::campaign::eval::metric_names(spec.kind);
        let col = |name: &str| names.iter().position(|m| *m == name).unwrap();
        let unit_str = |i: usize, axis: &str| one.plan.units[i].get_str(axis, "");
        // Mixed workloads under churn really degrade, shed and match up.
        let mixed_heavy = (0..one.rows.len())
            .filter(|&i| unit_str(i, "criticality") != "all-hi" && unit_str(i, "churn") == "heavy");
        let mut saw_matchup = false;
        for i in mixed_heavy {
            let row = &one.rows[i];
            assert!(
                row[col("mode_switches")] > 0.0,
                "{}: {row:?}",
                one.plan.units[i].id
            );
            saw_matchup |= row[col("time_to_matchup_p99")] > 0.0;
        }
        assert!(saw_matchup, "no mixed/heavy unit completed a match-up");
        // All-HI units are mode-blind regardless of churn.
        for i in 0..one.rows.len() {
            if unit_str(i, "criticality") == "all-hi" {
                assert_eq!(one.rows[i][col("mode_switches")], 0.0);
                assert_eq!(one.rows[i][col("lo_shed_ratio")], 0.0);
            }
        }
        // Same spec, three workers: identical rows — the mc contract must
        // not depend on the worker count.
        let mut wide = spec.clone();
        wide.workers = 3;
        let three = run_preset_like(&wide, &root.join("w3"));
        assert!(three.contract_failures().is_empty());
        for (a, b) in one.rows.iter().zip(&three.rows) {
            for (x, y) in a.iter().zip(b) {
                assert!((x.is_nan() && y.is_nan()) || x == y, "{a:?} vs {b:?}");
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn one_preset_runs_end_to_end_quickly() {
        let mut spec = f3().scaled(&ExpConfig::quick());
        spec.replications = 2;
        spec.name = "f3-preset-smoke".into();
        let root = std::env::temp_dir().join("profirt-preset-smoke");
        let _ = std::fs::remove_dir_all(&root);
        let outcome = crate::campaign::run_campaign(&spec, &root).unwrap();
        assert_eq!(outcome.rows.len(), 6); // 6 master counts
                                           // Tdel grows with the master count (the F3 shape, via the matrix).
        let tdel_col = outcome
            .metrics
            .iter()
            .position(|m| *m == "mean_tdel")
            .unwrap();
        let first = outcome.rows.first().unwrap()[tdel_col];
        let last = outcome.rows.last().unwrap()[tdel_col];
        assert!(
            last > first,
            "Tdel should grow with masters: {first} -> {last}"
        );
        std::fs::remove_dir_all(&root).ok();
    }
}
