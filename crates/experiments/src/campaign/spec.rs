//! The declarative campaign model.
//!
//! A [`CampaignSpec`] names a scenario matrix: a [`ScenarioKind`] selecting
//! the evaluator (PROFIBUS network or single-CPU task set), execution
//! parameters (replications, base seed, simulation horizon, worker count),
//! and a list of [`Axis`] value lists whose cross-product the planner
//! expands into work units. Specs parse from and serialise to JSON through
//! [`profirt_base::json`] — the same hand-rolled parser the CLI config
//! files use.

use profirt_base::json::{self, Value};
use profirt_core::PolicyKind;

use super::CampaignError;
use crate::ExpConfig;

/// Which evaluator interprets the matrix points.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScenarioKind {
    /// PROFIBUS network scenarios (§3–§4): axes over network size,
    /// stream-set shape, deadline tightness, `TTR` and queue policy.
    Network,
    /// Single-processor task-set scenarios (§2): axes over task count,
    /// utilisation, deadline fraction and scheduling test.
    Cpu,
}

impl ScenarioKind {
    /// The JSON spelling.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Network => "network",
            ScenarioKind::Cpu => "cpu",
        }
    }

    /// Parses the JSON spelling.
    pub fn parse(s: &str) -> Option<ScenarioKind> {
        match s {
            "network" => Some(ScenarioKind::Network),
            "cpu" => Some(ScenarioKind::Cpu),
            _ => None,
        }
    }

    /// The axis names this kind's evaluator understands.
    pub fn supported_axes(self) -> &'static [&'static str] {
        match self {
            ScenarioKind::Network => &[
                "masters",
                "streams",
                "tightness",
                "criticality",
                "ttr",
                "policy",
                "gap_factor",
                "churn",
            ],
            ScenarioKind::Cpu => &[
                "tasks",
                "utilization",
                "deadline_frac",
                "period_spread",
                "policy",
            ],
        }
    }
}

/// The CPU-side policy/test names (the network side uses
/// [`PolicyKind::parse`] names).
pub const CPU_POLICIES: [&str; 12] = [
    "rm-ll",
    "rm-hb",
    "rm-rta",
    "dm-rta",
    "np-dm",
    "edf-util",
    "edf-demand",
    "edf-demand-paper",
    "np-edf-zs",
    "np-edf-george",
    "edf-rta",
    "np-edf-rta",
];

/// One coordinate value of a matrix axis.
#[derive(Clone, PartialEq, Debug)]
pub enum AxisValue {
    /// An integer coordinate (master counts, stream counts, ticks).
    Int(i64),
    /// A fractional coordinate (tightness, utilisation).
    Float(f64),
    /// A categorical coordinate (policy names).
    Str(String),
}

impl AxisValue {
    /// Integer view (accepts exactly-integral floats of safe magnitude,
    /// matching [`profirt_base::json::Value::as_i64`] — a saturating cast
    /// would silently rewrite the coordinate).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AxisValue::Int(n) => Some(*n),
            AxisValue::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// Floating-point view (accepts integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AxisValue::Int(n) => Some(*n as f64),
            AxisValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AxisValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn from_json(v: &Value) -> Result<AxisValue, String> {
        match v {
            Value::Int(n) => Ok(AxisValue::Int(*n)),
            Value::Float(f) => Ok(AxisValue::Float(*f)),
            Value::Str(s) => Ok(AxisValue::Str(s.clone())),
            other => Err(format!(
                "axis values must be numbers or strings, got {other:?}"
            )),
        }
    }

    fn to_json(&self) -> Value {
        match self {
            AxisValue::Int(n) => Value::Int(*n),
            AxisValue::Float(f) => Value::Float(*f),
            AxisValue::Str(s) => Value::Str(s.clone()),
        }
    }

    /// A filesystem/ID-safe slug of the value (`0.8` → `0p8`).
    pub fn slug(&self) -> String {
        let raw = self.to_string();
        raw.chars()
            .map(|c| match c {
                '.' => 'p',
                '-' => 'm',
                c if c.is_ascii_alphanumeric() => c,
                _ => '_',
            })
            .collect()
    }
}

impl std::fmt::Display for AxisValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxisValue::Int(n) => write!(f, "{n}"),
            AxisValue::Float(x) => write!(f, "{x}"),
            AxisValue::Str(s) => f.write_str(s),
        }
    }
}

/// One named axis of the scenario matrix.
#[derive(Clone, PartialEq, Debug)]
pub struct Axis {
    /// Axis name (must be one of the kind's supported axes).
    pub name: String,
    /// The coordinate values swept along this axis.
    pub values: Vec<AxisValue>,
}

/// A declarative experiment campaign: cross-product axes plus execution
/// parameters. See the README's campaign quickstart for the JSON schema.
#[derive(Clone, PartialEq, Debug)]
pub struct CampaignSpec {
    /// Campaign name — also the artifact directory name under `out/`.
    pub name: String,
    /// One-line description for reports.
    pub description: String,
    /// Which evaluator interprets the matrix points.
    pub kind: ScenarioKind,
    /// Seeds evaluated per work unit.
    pub replications: u64,
    /// Base RNG seed; unit and replication indices are mixed in.
    pub seed: u64,
    /// Simulation horizon in ticks; `0` runs the analyses only.
    pub sim_horizon: i64,
    /// Worker threads for the unit shards; `0` means all available cores.
    pub workers: usize,
    /// The matrix axes, outermost first.
    pub axes: Vec<Axis>,
}

impl CampaignSpec {
    /// Creates an empty campaign with default execution parameters
    /// (50 replications, analysis-only, all cores).
    pub fn new(name: &str, description: &str, kind: ScenarioKind) -> CampaignSpec {
        CampaignSpec {
            name: name.to_string(),
            description: description.to_string(),
            kind,
            replications: 50,
            seed: 0x5EED,
            sim_horizon: 0,
            workers: 0,
            axes: Vec::new(),
        }
    }

    /// Builder: appends an axis.
    pub fn axis(mut self, name: &str, values: Vec<AxisValue>) -> CampaignSpec {
        self.axes.push(Axis {
            name: name.to_string(),
            values,
        });
        self
    }

    /// Builder: appends an integer axis.
    pub fn axis_i64(self, name: &str, values: &[i64]) -> CampaignSpec {
        self.axis(name, values.iter().map(|&v| AxisValue::Int(v)).collect())
    }

    /// Builder: appends a float axis.
    pub fn axis_f64(self, name: &str, values: &[f64]) -> CampaignSpec {
        self.axis(name, values.iter().map(|&v| AxisValue::Float(v)).collect())
    }

    /// Builder: appends a categorical axis.
    pub fn axis_str(self, name: &str, values: &[&str]) -> CampaignSpec {
        self.axis(
            name,
            values
                .iter()
                .map(|v| AxisValue::Str(v.to_string()))
                .collect(),
        )
    }

    /// Builder: sets replications.
    pub fn replications(mut self, n: u64) -> CampaignSpec {
        self.replications = n;
        self
    }

    /// Builder: sets the simulation horizon (ticks; `0` = analysis only).
    pub fn sim_horizon(mut self, horizon: i64) -> CampaignSpec {
        self.sim_horizon = horizon;
        self
    }

    /// Scales the campaign to an [`ExpConfig`] (the legacy binaries' knob):
    /// replications and horizon are capped, the worker count is adopted.
    /// The base seed is part of the campaign's identity and is kept.
    pub fn scaled(&self, cfg: &ExpConfig) -> CampaignSpec {
        let mut spec = self.clone();
        spec.replications = spec.replications.min(cfg.replications);
        if spec.sim_horizon > 0 {
            spec.sim_horizon = spec.sim_horizon.min(cfg.sim_horizon);
        }
        spec.workers = cfg.workers;
        spec
    }

    /// The largest matrix [`validate`](CampaignSpec::validate) accepts: a
    /// friendly error beats an allocation abort (or a product overflow)
    /// deep inside the planner.
    pub const MAX_UNITS: usize = 100_000;

    /// Number of work units the matrix expands to (product of axis sizes),
    /// saturating at `usize::MAX` for absurd matrices.
    pub fn unit_count(&self) -> usize {
        self.axes
            .iter()
            .map(|a| a.values.len())
            .try_fold(1usize, |acc, n| acc.checked_mul(n))
            .unwrap_or(usize::MAX)
    }

    /// Validates the spec: at least one axis, no duplicate or unknown axis
    /// names, no empty axes, parseable policy values, and a bounded matrix.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(CampaignError::BadSpec(format!(
                "campaign name {:?} must be non-empty [a-zA-Z0-9_-]",
                self.name
            )));
        }
        if self.axes.is_empty() {
            return Err(CampaignError::BadSpec(
                "a campaign needs at least one axis".into(),
            ));
        }
        if self.replications == 0 {
            return Err(CampaignError::BadSpec("replications must be >= 1".into()));
        }
        // The runner additionally clamps workers to the unit count; this
        // bound just rejects obviously nonsensical specs up front.
        if self.workers > 4096 {
            return Err(CampaignError::BadSpec(format!(
                "workers = {} is absurd (max 4096; 0 = all cores)",
                self.workers
            )));
        }
        if self.unit_count() > Self::MAX_UNITS {
            return Err(CampaignError::BadSpec(format!(
                "the axis cross-product expands to more than {} work units",
                Self::MAX_UNITS
            )));
        }
        let mut seen: Vec<&str> = Vec::new();
        for axis in &self.axes {
            if seen.contains(&axis.name.as_str()) {
                return Err(CampaignError::DuplicateAxis(axis.name.clone()));
            }
            seen.push(&axis.name);
            if axis.values.is_empty() {
                return Err(CampaignError::BadSpec(format!(
                    "axis {:?} has no values",
                    axis.name
                )));
            }
            if !self.kind.supported_axes().contains(&axis.name.as_str()) {
                return Err(CampaignError::UnknownAxis {
                    axis: axis.name.clone(),
                    kind: self.kind.name(),
                });
            }
            self.validate_axis_values(axis)?;
        }
        Ok(())
    }

    /// Type- and range-checks one axis's values so a bad coordinate fails
    /// up front instead of being silently evaluated at a default.
    fn validate_axis_values(&self, axis: &Axis) -> Result<(), CampaignError> {
        let bad = |v: &AxisValue, want: &str| {
            Err(CampaignError::BadSpec(format!(
                "axis {:?}: value {v:?} must be {want}",
                axis.name
            )))
        };
        for v in &axis.values {
            match axis.name.as_str() {
                "masters" | "streams" | "tasks" | "ttr" if v.as_i64().is_none_or(|n| n < 1) => {
                    return bad(v, "an integer >= 1");
                }
                "masters" | "streams" | "tasks" | "ttr" => {}
                "tightness" | "utilization" | "deadline_frac"
                    if !v.as_f64().is_some_and(|x| x > 0.0 && x <= 1.0) =>
                {
                    return bad(v, "a number in (0, 1]");
                }
                "tightness" | "utilization" | "deadline_frac" => {}
                "period_spread" if !matches!(v.as_str(), Some("standard") | Some("wide")) => {
                    return bad(v, "\"standard\" or \"wide\"");
                }
                "period_spread" => {}
                "gap_factor" if v.as_i64().is_none_or(|n| !(0..=1_000).contains(&n)) => {
                    return bad(v, "an integer in 0..=1000 (0 disables GAP polling)");
                }
                "gap_factor" => {}
                "churn" if !matches!(v.as_str(), Some("none") | Some("light") | Some("heavy")) => {
                    return bad(v, "\"none\", \"light\" or \"heavy\"");
                }
                "churn" => {}
                "criticality"
                    if v.as_str()
                        .is_none_or(|s| profirt_workload::CriticalityMix::parse(s).is_none()) =>
                {
                    return bad(v, "\"all-hi\", \"mixed\" or \"mixed3\"");
                }
                "criticality" => {}
                "policy" => {
                    let name = v.as_str().unwrap_or("");
                    let known = match self.kind {
                        ScenarioKind::Network => PolicyKind::parse(name).is_some(),
                        ScenarioKind::Cpu => CPU_POLICIES.contains(&name),
                    };
                    if !known {
                        return Err(CampaignError::BadSpec(format!(
                            "unknown {} policy {v:?}",
                            self.kind.name()
                        )));
                    }
                }
                // Unknown names were already rejected by the caller.
                _ => {}
            }
        }
        Ok(())
    }

    /// Parses a spec from a JSON document string.
    pub fn from_json_str(text: &str) -> Result<CampaignSpec, CampaignError> {
        let doc = json::parse(text).map_err(|e| CampaignError::BadSpec(e.to_string()))?;
        Self::from_json(&doc)
    }

    /// Loads and validates a spec from a file.
    pub fn load(path: &std::path::Path) -> Result<CampaignSpec, CampaignError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CampaignError::Io(format!("cannot read {}: {e}", path.display())))?;
        let spec = Self::from_json_str(&text)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a spec from a parsed JSON document. Unknown fields are
    /// rejected so a typoed execution parameter (`"replication"`,
    /// `"horizon"`) cannot silently run the campaign with defaults.
    pub fn from_json(doc: &Value) -> Result<CampaignSpec, CampaignError> {
        let bad = |m: String| CampaignError::BadSpec(m);
        const KNOWN: [&str; 8] = [
            "name",
            "description",
            "kind",
            "replications",
            "seed",
            "sim_horizon",
            "workers",
            "axes",
        ];
        if let Some(map) = doc.as_object() {
            for key in map.keys() {
                if !KNOWN.contains(&key.as_str()) {
                    return Err(bad(format!(
                        "unknown field {key:?} (known: {})",
                        KNOWN.join(", ")
                    )));
                }
            }
        }
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing string field \"name\"".into()))?;
        let description = doc
            .get("description")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let kind_name = doc.get("kind").and_then(Value::as_str).unwrap_or("network");
        let kind = ScenarioKind::parse(kind_name)
            .ok_or_else(|| bad(format!("unknown kind {kind_name:?} (network|cpu)")))?;
        let int_field = |key: &str, default: i64| -> Result<i64, CampaignError> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_i64()
                    .ok_or_else(|| bad(format!("field {key:?} must be an integer"))),
            }
        };
        let replications = int_field("replications", 50)?;
        let seed = int_field("seed", 0x5EED)?;
        let sim_horizon = int_field("sim_horizon", 0)?;
        let workers = int_field("workers", 0)?;
        if replications < 0 || workers < 0 || sim_horizon < 0 {
            return Err(bad(
                "replications, workers and sim_horizon must be >= 0".into()
            ));
        }
        let mut axes = Vec::new();
        for entry in doc
            .get("axes")
            .ok_or_else(|| bad("missing field \"axes\"".into()))?
            .as_array()
            .ok_or_else(|| bad("field \"axes\" must be an array".into()))?
        {
            if let Some(map) = entry.as_object() {
                for key in map.keys() {
                    if key != "name" && key != "values" {
                        return Err(bad(format!(
                            "unknown axis field {key:?} (known: name, values)"
                        )));
                    }
                }
            }
            let axis_name = entry
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("each axis needs a string \"name\"".into()))?;
            let values = entry
                .get("values")
                .and_then(Value::as_array)
                .ok_or_else(|| bad(format!("axis {axis_name:?} needs a \"values\" array")))?
                .iter()
                .map(AxisValue::from_json)
                .collect::<Result<Vec<_>, _>>()
                .map_err(bad)?;
            axes.push(Axis {
                name: axis_name.to_string(),
                values,
            });
        }
        Ok(CampaignSpec {
            name: name.to_string(),
            description,
            kind,
            replications: replications as u64,
            seed: seed as u64,
            sim_horizon,
            workers: workers as usize,
            axes,
        })
    }

    /// Serialises the spec back to a JSON document.
    pub fn to_json(&self) -> Value {
        json::object([
            ("name", Value::Str(self.name.clone())),
            ("description", Value::Str(self.description.clone())),
            ("kind", Value::Str(self.kind.name().to_string())),
            ("replications", Value::Int(self.replications as i64)),
            ("seed", Value::Int(self.seed as i64)),
            ("sim_horizon", Value::Int(self.sim_horizon)),
            ("workers", Value::Int(self.workers as i64)),
            (
                "axes",
                Value::Array(
                    self.axes
                        .iter()
                        .map(|a| {
                            json::object([
                                ("name", Value::Str(a.name.clone())),
                                (
                                    "values",
                                    Value::Array(a.values.iter().map(AxisValue::to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> CampaignSpec {
        CampaignSpec::new("demo", "a demo", ScenarioKind::Network)
            .axis_i64("masters", &[2, 4])
            .axis_f64("tightness", &[0.8, 0.4])
            .axis_str("policy", &["fcfs", "edf"])
    }

    #[test]
    fn json_round_trip() {
        let spec = demo();
        let text = spec.to_json().pretty();
        let again = CampaignSpec::from_json_str(&text).unwrap();
        assert_eq!(spec, again);
        again.validate().unwrap();
    }

    #[test]
    fn validation_rejects_duplicates_unknowns_and_bad_policies() {
        let dup = demo().axis_i64("masters", &[8]);
        assert!(matches!(
            dup.validate(),
            Err(CampaignError::DuplicateAxis(name)) if name == "masters"
        ));

        let unknown = demo().axis_i64("warp_factor", &[9]);
        assert!(matches!(
            unknown.validate(),
            Err(CampaignError::UnknownAxis { axis, .. }) if axis == "warp_factor"
        ));

        let bad_policy =
            CampaignSpec::new("p", "", ScenarioKind::Network).axis_str("policy", &["round-robin"]);
        assert!(bad_policy.validate().is_err());

        let mut absurd_workers = demo();
        absurd_workers.workers = 1_000_000;
        assert!(absurd_workers.validate().is_err());

        // Axis values are type- and range-checked, not silently defaulted.
        let stringly =
            CampaignSpec::new("s", "", ScenarioKind::Network).axis_str("masters", &["three"]);
        assert!(stringly.validate().is_err());
        let zero = CampaignSpec::new("z", "", ScenarioKind::Network).axis_i64("masters", &[0]);
        assert!(zero.validate().is_err());
        let loose = CampaignSpec::new("l", "", ScenarioKind::Network).axis_f64("tightness", &[1.5]);
        assert!(loose.validate().is_err());
        let narrow =
            CampaignSpec::new("n", "", ScenarioKind::Cpu).axis_str("period_spread", &["narrow"]);
        assert!(narrow.validate().is_err());
        let wide =
            CampaignSpec::new("w", "", ScenarioKind::Cpu).axis_str("period_spread", &["wide"]);
        wide.validate().unwrap();

        // Out-of-range float coordinates are rejected, not saturated.
        assert_eq!(AxisValue::Float(1e19).as_i64(), None);
        let huge = CampaignSpec::new("h", "", ScenarioKind::Network)
            .axis("ttr", vec![AxisValue::Float(1e19)]);
        assert!(huge.validate().is_err());

        // The matrix size is capped before any allocation happens.
        let vals: Vec<i64> = (1..=1000).collect();
        let exploded = CampaignSpec::new("x", "", ScenarioKind::Network)
            .axis_i64("masters", &vals)
            .axis_i64("streams", &vals)
            .axis_i64("ttr", &vals);
        assert_eq!(exploded.unit_count(), 1_000_000_000);
        assert!(exploded.validate().is_err());

        // Cpu kind accepts its own policy names but not network axes.
        let cpu = CampaignSpec::new("c", "", ScenarioKind::Cpu)
            .axis_i64("tasks", &[4])
            .axis_str("policy", &["rm-rta"]);
        cpu.validate().unwrap();
        let cpu_bad = CampaignSpec::new("c", "", ScenarioKind::Cpu).axis_i64("masters", &[2]);
        assert!(cpu_bad.validate().is_err());
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let typo =
            r#"{"name": "x", "replication": 500, "axes": [{"name": "masters", "values": [2]}]}"#;
        let err = CampaignSpec::from_json_str(typo).unwrap_err();
        assert!(err.to_string().contains("replication"), "{err}");
        let axis_typo =
            r#"{"name": "x", "axes": [{"name": "masters", "values": [2], "value": [3]}]}"#;
        assert!(CampaignSpec::from_json_str(axis_typo).is_err());
    }

    #[test]
    fn unit_count_is_axis_product() {
        assert_eq!(demo().unit_count(), 2 * 2 * 2);
    }

    #[test]
    fn slugs_are_id_safe() {
        assert_eq!(AxisValue::Float(0.8).slug(), "0p8");
        assert_eq!(AxisValue::Str("dm-paper".into()).slug(), "dmmpaper");
        assert_eq!(AxisValue::Int(-3).slug(), "m3");
    }

    #[test]
    fn scaling_caps_replications_and_horizon() {
        let spec = demo().replications(200).sim_horizon(6_000_000);
        let quick = spec.scaled(&ExpConfig::quick());
        assert_eq!(quick.replications, ExpConfig::quick().replications);
        assert_eq!(quick.sim_horizon, ExpConfig::quick().sim_horizon);
        let analysis_only = demo().scaled(&ExpConfig::quick());
        assert_eq!(analysis_only.sim_horizon, 0);
    }
}
