//! # The campaign engine — one declarative runner for every experiment
//!
//! The paper's evaluation is a grid of figures and tables; this module
//! replaces per-experiment sweep plumbing with a single pipeline:
//!
//! 1. **Spec** ([`CampaignSpec`]) — a declarative scenario matrix: axes
//!    over network size, stream-set shape, deadline tightness, `TTR`,
//!    queue policy, plus replications/seed/horizon/workers. Parses from
//!    JSON via [`profirt_base::json`].
//! 2. **Plan** ([`plan()`]) — expands the axis cross-product into
//!    [`WorkUnit`]s with stable, coordinate-bearing IDs.
//! 3. **Execute** ([`run_campaign`]) — shards units over the panic-safe
//!    seed-parallel worker pool and aggregates each unit's metric row.
//! 4. **Report** — writes `out/<campaign>/{campaign.json, units.csv,
//!    summary.json, EXPERIMENTS.md}`.
//!
//! The historical T1–T8/F1–F6 experiment binaries are thin shims over
//! [`presets`]: each legacy sweep is now a ~20-line [`CampaignSpec`]
//! constructor, and a new scenario study is a preset or a JSON file — not
//! a new binary.
//!
//! ```
//! use profirt_experiments::campaign::{self, CampaignSpec, ScenarioKind};
//!
//! let spec = CampaignSpec::new("doc-demo", "doctest", ScenarioKind::Cpu)
//!     .replications(2)
//!     .axis_f64("utilization", &[0.4, 0.9])
//!     .axis_str("policy", &["rm-ll", "rm-rta"]);
//! let plan = campaign::plan(&spec).unwrap();
//! assert_eq!(plan.units.len(), 4); // 2 utilizations x 2 policies
//! assert!(plan.units[0].id.starts_with("u0000__utilization_0p4"));
//! ```

pub mod eval;
pub mod exec;
pub mod plan;
pub mod presets;
pub mod report;
pub mod spec;

pub use eval::UnitEval;
pub use exec::{print_outcome, run_campaign, run_campaign_with, CampaignOutcome, EvalMode};
pub use plan::{generation_axes, plan, CampaignPlan, WorkUnit};
pub use spec::{Axis, AxisValue, CampaignSpec, ScenarioKind};

use crate::runner::SeedPanics;
use crate::ExpConfig;

/// Everything that can go wrong planning or executing a campaign.
#[derive(Clone, Debug)]
pub enum CampaignError {
    /// The spec is malformed (missing fields, bad types, bad values).
    BadSpec(String),
    /// Two axes share a name.
    DuplicateAxis(String),
    /// An axis name the scenario kind's evaluator does not understand.
    UnknownAxis {
        /// The offending axis name.
        axis: String,
        /// The scenario kind it was rejected for.
        kind: &'static str,
    },
    /// One or more work units panicked during evaluation.
    UnitPanics {
        /// `(unit id, panic message)` per failing unit.
        units: Vec<(String, String)>,
    },
    /// Artifact I/O failure.
    Io(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::BadSpec(msg) => write!(f, "invalid campaign spec: {msg}"),
            CampaignError::DuplicateAxis(name) => write!(f, "duplicate axis {name:?}"),
            CampaignError::UnknownAxis { axis, kind } => {
                write!(f, "axis {axis:?} is not supported by {kind} scenarios")
            }
            CampaignError::UnitPanics { units } => {
                write!(f, "{} work unit(s) failed:", units.len())?;
                for (id, msg) in units {
                    write!(f, " [{id}: {msg}]")?;
                }
                Ok(())
            }
            CampaignError::Io(msg) => write!(f, "artifact I/O error: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<SeedPanics> for CampaignError {
    fn from(p: SeedPanics) -> CampaignError {
        CampaignError::UnitPanics {
            units: p
                .failures
                .into_iter()
                .map(|(seed, msg)| (format!("seed {seed}"), msg))
                .collect(),
        }
    }
}

/// Runs a named preset scaled to an [`ExpConfig`], writing artifacts under
/// `out/<preset>/`. The entry point of the legacy experiment binaries;
/// returns a process exit code.
///
/// Exit semantics: nonzero on planning/execution/artifact failure and on
/// a broken `observed ≤ analytical` contract in simulated presets (`t5`,
/// `t6`, `t8`, `f6`). Analysis-only presets have no pass/fail criterion —
/// the qualitative shape checks that used to gate the old binaries live
/// in `exps::*::run` and still gate the `all_experiments` binary.
pub fn run_preset_main(id: &str, cfg: &ExpConfig) -> i32 {
    let Some(spec) = presets::preset(id) else {
        eprintln!("unknown campaign preset {id:?}");
        return 2;
    };
    match run_campaign(&spec.scaled(cfg), std::path::Path::new("out")) {
        Ok(outcome) => print_outcome(&outcome),
        Err(e) => {
            eprintln!("campaign {id} failed: {e}");
            1
        }
    }
}
